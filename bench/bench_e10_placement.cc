// E10 — extension ablation: slab placement policy.
//
// Same workload as E7 (4 clients streaming one 64 MiB region on 4
// servers, 4 MiB slabs), swapping the master's placement policy:
//
//   stripe  round-robin (RStore's default — the choice behind E3's
//           aggregate bandwidth),
//   pack    fill one server first (fewest QPs / machines touched),
//   random  uniform per slab.
//
// Expected shape: stripe engages every server port and wins; pack
// serializes all four readers behind one port; random lands between,
// losing to stripe by its placement imbalance.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

void RunPolicy(benchmark::State& state, core::PlacementPolicy policy) {
  constexpr uint64_t kRegionBytes = 64ULL << 20;
  constexpr uint32_t kClients = 4;
  constexpr int kPasses = 4;

  double gbps = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 4;
    cfg.client_nodes = kClients;
    cfg.server_capacity = kRegionBytes;
    cfg.master.slab_size = 4ULL << 20;
    cfg.master.placement = policy;
    core::TestCluster cluster(cfg);
    sim::Nanos t_begin = sim::kNever, t_end = 0;
    for (uint32_t c = 0; c < kClients; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        if (c == 0) {
          if (!client.Ralloc("r", kRegionBytes).ok()) return;
          (void)client.NotifyInc("alloc");
        } else {
          (void)client.WaitNotify("alloc", 1);
        }
        auto region = client.Rmap("r");
        if (!region.ok()) return;
        auto buf = client.AllocBuffer(kRegionBytes);
        if (!buf.ok()) return;
        (void)(*region)->Read(0, buf->data);  // warm
        (void)client.NotifyInc("warm");
        (void)client.WaitNotify("warm", kClients);
        const sim::Nanos t0 = sim::Now();
        std::vector<core::IoFuture> futures;
        for (int p = 0; p < kPasses; ++p) {
          auto f = (*region)->ReadAsync(0, buf->data);
          if (!f.ok()) return;
          futures.push_back(std::move(*f));
        }
        for (auto& f : futures) (void)f.Wait();
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
      });
    }
    cluster.sim().Run();
    const double secs = sim::ToSeconds(t_end - t_begin);
    gbps = kClients * kPasses * kRegionBytes * 8.0 / secs / 1e9;
    ReportVirtualTime(state, secs);
  }
  state.counters["aggregate_Gbps"] = gbps;
}

void E10_Stripe(benchmark::State& state) {
  RunPolicy(state, core::PlacementPolicy::kStripe);
}
void E10_Pack(benchmark::State& state) {
  RunPolicy(state, core::PlacementPolicy::kPack);
}
void E10_Random(benchmark::State& state) {
  RunPolicy(state, core::PlacementPolicy::kRandom);
}

BENCHMARK(E10_Stripe)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E10_Pack)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E10_Random)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
