// E11 — extension: YCSB-style mixed workloads on RKV.
//
// The standard cloud-serving benchmark mixes, run by 4 client machines
// against one shared RKV table with Zipf(0.99)-distributed keys
// (YCSB's default skew), 100-byte values:
//
//   A  50% read / 50% update
//   B  95% read /  5% update
//   C  100% read
//
// Reported: aggregate throughput (kops/s of virtual time) and the
// seqlock conflict count — contention concentrates on the Zipf head, so
// workload A on a skewed keyspace is where the RDMA seqlock has to earn
// its keep.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "kv/kv.h"

namespace rstore::bench {
namespace {

constexpr uint64_t kKeys = 2048;
constexpr int kOpsPerClient = 400;

// Shared workload-shape grammar (bench_util.h): --sessions maps to the
// closed-loop client count, --skew to the zipf theta, --duration bounds
// the measurement window in virtual time (default: a fixed op count).
// --offered-load is parsed but ignored — E11 is closed loop; E13 is the
// open-loop experiment.
uint32_t Clients() {
  const LoadFlags& flags = GetLoadFlags();
  if (flags.sessions <= 0) return 4;
  return static_cast<uint32_t>(std::min<int64_t>(flags.sessions, 64));
}

void RunMix(benchmark::State& state, double read_fraction,
            uint32_t cache_slots = 0) {
  const uint32_t kClients = Clients();
  const LoadFlags& flags = GetLoadFlags();
  const double theta = flags.skew >= 0 ? flags.skew : 0.99;
  const sim::Nanos window =
      flags.duration_ms > 0 ? sim::Millis(flags.duration_ms) : 0;
  double kops = 0;
  uint64_t conflicts = 0;
  uint64_t cache_hits = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 4;
    cfg.client_nodes = kClients;
    cfg.server_capacity = 16ULL << 20;
    cfg.master.slab_size = 1ULL << 20;
    core::TestCluster cluster(cfg);
    sim::Nanos t_begin = sim::kNever, t_end = 0;
    uint64_t total_conflicts = 0;
    uint64_t total_ops = 0;
    for (uint32_t c = 0; c < kClients; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        Result<std::unique_ptr<kv::KvStore>> kv(ErrorCode::kInternal, "");
        kv::KvOptions opts;
        opts.buckets = 4 * kKeys;
        opts.cache_slots = cache_slots;
        if (c == 0) {
          kv = kv::KvStore::Create(client, "ycsb", opts);
          if (!kv.ok()) return;
          // Load phase: populate every key.
          std::vector<std::byte> value(100);
          for (uint64_t k = 0; k < kKeys; ++k) {
            (void)(*kv)->Put("user" + std::to_string(k), value);
          }
          (void)client.NotifyInc("loaded");
        } else {
          (void)client.WaitNotify("loaded", 1);
          kv = kv::KvStore::Open(client, "ycsb", cache_slots);
          if (!kv.ok()) return;
        }
        (void)client.NotifyInc("armed");
        (void)client.WaitNotify("armed", kClients);

        ZipfGenerator zipf(kKeys, theta, 1000 + c);
        Rng dice(2000 + c);
        std::vector<std::byte> value(100);
        const sim::Nanos t0 = sim::Now();
        uint64_t ops = 0;
        // Fixed op count by default; --duration switches to a
        // virtual-time-bounded window instead.
        for (int i = 0;
             window > 0 ? sim::Now() - t0 < window : i < kOpsPerClient;
             ++i) {
          const std::string key = "user" + std::to_string(zipf.Next());
          if (dice.NextDouble() < read_fraction) {
            (void)(*kv)->Get(key);
            ++ops;
          } else {
            Status st = (*kv)->Put(key, value);
            if (!st.ok() && st.code() == ErrorCode::kAborted) {
              --i;  // retry
            } else {
              ++ops;
            }
          }
        }
        total_ops += ops;
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
        total_conflicts += (*kv)->stats().version_retries;
        cache_hits += (*kv)->stats().cache_hits;
      });
    }
    cluster.sim().Run();
    const double secs = sim::ToSeconds(t_end - t_begin);
    kops = static_cast<double>(total_ops) / secs / 1e3;
    conflicts = total_conflicts;
    ReportVirtualTime(state, secs);
  }
  state.counters["kops_per_s"] = kops;
  state.counters["seqlock_conflicts"] = static_cast<double>(conflicts);
  if (cache_slots > 0) {
    state.counters["cache_hits"] = static_cast<double>(cache_hits);
  }
}

void E11_WorkloadA(benchmark::State& state) { RunMix(state, 0.50); }
void E11_WorkloadB(benchmark::State& state) { RunMix(state, 0.95); }
void E11_WorkloadC(benchmark::State& state) { RunMix(state, 1.00); }

// The same mixes with a 512-entry client-local slot cache: Zipf-head
// GETs validate in 8 bytes instead of re-reading the slot.
void E11_WorkloadACached(benchmark::State& state) {
  RunMix(state, 0.50, 512);
}
void E11_WorkloadBCached(benchmark::State& state) {
  RunMix(state, 0.95, 512);
}
void E11_WorkloadCCached(benchmark::State& state) {
  RunMix(state, 1.00, 512);
}

BENCHMARK(E11_WorkloadA)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E11_WorkloadB)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E11_WorkloadC)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E11_WorkloadACached)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E11_WorkloadBCached)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(E11_WorkloadCCached)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
