// E12 — extension: the client-side region cache (src/cache/) under a
// controlled skewed read workload.
//
// One client maps a 16 MiB region and issues 4 KiB reads whose page is
// Zipf(0.99)-distributed — the standard skew used across the KV
// experiments — so the hot head fits in a small cache while the tail
// forces fills and evictions. The sweep crosses:
//
//   consistency mode   kNone (today's behavior, every read remote),
//                      kImmutable, and kEpoch with a bump every 512
//                      reads (the bump invalidates every cached page,
//                      modelling a barrier);
//   cache budget       2 / 8 / 32 MiB against the 16 MiB working set
//                      (budget pressure, the paper-default, and
//                      everything-fits).
//
// Reported: virtual time per read plus hit rate, fills, and evictions.
// The kNone rows double as the regression anchor — they must match a
// build without the cache exactly.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"

namespace rstore::bench {
namespace {

constexpr uint64_t kRegionBytes = 16ULL << 20;
constexpr uint64_t kPageBytes = 64ULL << 10;
constexpr uint64_t kReadBytes = 4096;
constexpr int kOps = 4096;
constexpr int kEpochEvery = 512;  // reads per epoch in kEpoch mode

void E12_ZipfReads(benchmark::State& state) {
  const auto mode = static_cast<cache::CacheMode>(state.range(0));
  const uint64_t budget = static_cast<uint64_t>(state.range(1)) << 20;
  cache::CacheStats stats;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 4;
    cfg.client_nodes = 1;
    cfg.server_capacity = 64ULL << 20;
    cfg.master.slab_size = 1ULL << 20;
    core::TestCluster cluster(cfg);
    core::ClientOptions copts;
    copts.cache.capacity_bytes = budget;
    double seconds = 0;
    cluster.RunClient(
        [&](core::RStoreClient& client) {
          if (!client.Ralloc("w", kRegionBytes).ok()) return;
          core::RmapOptions ropts;
          ropts.cache_mode = mode;
          auto region = client.Rmap("w", ropts);
          if (!region.ok()) return;
          auto buf = client.AllocBuffer(kRegionBytes);
          if (!buf.ok()) return;
          if (!(*region)->Write(0, buf->data).ok()) return;

          ZipfGenerator zipf(kRegionBytes / kPageBytes, 0.99, 12);
          Rng rng(34);
          Stopwatch watch;
          for (int i = 0; i < kOps; ++i) {
            if (mode == cache::CacheMode::kEpoch && i % kEpochEvery == 0) {
              (*region)->BumpEpoch();
            }
            const uint64_t page = zipf.Next();
            const uint64_t slot = rng.Next() % (kPageBytes / kReadBytes);
            const uint64_t off = page * kPageBytes + slot * kReadBytes;
            watch.Start();
            (void)(*region)->Read(off,
                                  std::span(buf->begin(), kReadBytes));
            watch.Stop();
          }
          seconds = watch.seconds() / kOps;
          stats = client.cache_stats();
        },
        copts);
    ReportVirtualTime(state, seconds);
  }
  state.SetLabel(std::string(cache::ToString(mode)));
  ReportCacheCounters(state, stats);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t mode : {0, 1, 2}) {
    for (int64_t budget_mib : {2, 8, 32}) {
      b->Args({mode, budget_mib});
    }
  }
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(E12_ZipfReads)->Apply(Sweep);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
