// E13 — extension: massive-fan-in serving under open-loop load.
//
// 10,000+ client sessions (lightweight state machines, ~2,500 per client
// machine) drive YCSB mixes against one RKV table through the src/load
// dataplane: sessions multiplexed ~156:1 onto a bounded pool of verbs
// QPs, per-server admission control, load-adaptive doorbell batching.
// The arrival process is open loop and latency is measured from each
// op's *intended* send time (coordinated-omission-safe), so the
// tail-latency-vs-offered-load curve is honest past the saturation knee.
//
// Sweeps offered load x admission control, zipf skew, session count, and
// the YCSB mixes; emits the curve to BENCH_fanin.json and hard-fails
// (exit 1) if the virtual end time or event count diverges across
// partitioned-scheduler host thread counts.
//
// Flags (see bench_util.h): --offered-load/--sessions/--duration/--skew
// override the sweep's default point grammar; --smoke shrinks everything
// for CI; --no-determinism skips the host-thread cross-check; --rcheck /
// --host-threads / --json / --trace as everywhere else.
//
// rtrace: the sweep runs with per-op causal tracing in sampled mode by
// default (--rtrace off|sampled|full to override). Every point's JSON row
// carries the p999-band per-stage attribution, and the highest-load
// admitted point's full report lands in BENCH_fanin_attr.json
// (--attribution to relocate) for tools/rtail. The determinism gate
// cross-checks that every rtrace mode is virtual-time bit-identical on
// every scheduler (off/sampled/full x host-threads {0,1,4}), and that
// attaching the rlin linearizability checker (--rlin / RSTORE_RLIN) is
// likewise a zero-probe-effect observer on every scheduler.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench/bench_util.h"
#include "common/log.h"
#include "core/cluster.h"
#include "load/engine.h"
#include "sim/time.h"

namespace rstore::bench {
namespace {

struct FaninPoint {
  std::string label;
  double offered = 0;       // ops/s
  double theta = 0;
  uint32_t sessions = 0;
  bool admission = true;
  char mix = 'b';
  // --- results ---
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t deferred = 0;
  uint64_t retries = 0;
  uint64_t p50 = 0, p99 = 0, p999 = 0;  // ns, intended -> done
  double achieved_kops = 0;
  uint32_t qps = 0;
  double sessions_per_qp = 0;
  double mean_chain = 0;    // WRs per doorbell chain
  uint32_t inflight_hw = 0;
  uint64_t virtual_nanos = 0;
  uint64_t events = 0;
  double wall_seconds = 0;
  obs::RtraceReport rtrace;  // merged across engines (empty when off)
  std::vector<load::HotKey> hotkeys;
};

constexpr uint32_t kServers = 8;
constexpr uint32_t kClients = 4;

FaninPoint RunFanin(const load::LoadOptions& base, double offered,
                    double theta, uint32_t sessions, bool admission,
                    char mix, uint32_t host_threads = 0) {
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(rdet-wallclock) harness wall-time

  load::LoadOptions opts = base;
  opts.offered_load = offered;
  opts.theta = theta;
  opts.sessions = sessions;
  opts.admission = admission;
  opts.mix = load::WorkloadMix::Ycsb(mix);

  core::ClusterConfig cfg;
  cfg.telemetry = ActiveTelemetry();
  cfg.memory_servers = kServers;
  cfg.client_nodes = kClients;
  const uint64_t table_bytes =
      opts.buckets() * opts.slot_bytes + 4096;
  cfg.server_capacity = table_bytes / kServers + (8ULL << 20);
  cfg.master.slab_size = 1ULL << 20;
  cfg.seed = opts.seed;
  cfg.host_threads = host_threads;
  core::TestCluster cluster(cfg);

  std::vector<load::EngineStats> per_engine(kClients);
  std::vector<Status> engine_status(kClients, Status::Ok());
  for (uint32_t c = 0; c < kClients; ++c) {
    cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
      if (c == 0) {
        engine_status[c] = load::LoadEngine::PreloadTable(client, "fanin",
                                                          opts);
        if (!engine_status[c].ok()) return;
        (void)client.NotifyInc("e13.loaded");
      }
      auto loaded = client.WaitNotify("e13.loaded", 1);
      if (!loaded.ok()) {
        engine_status[c] = loaded.status();
        return;
      }
      load::LoadEngine engine(client, "fanin", opts, c, kClients);
      engine_status[c] = engine.Run();
      per_engine[c] = engine.stats();
    });
  }
  cluster.sim().Run();

  FaninPoint p;
  p.offered = offered;
  p.theta = theta;
  p.sessions = sessions;
  p.admission = admission;
  p.mix = mix;
  for (uint32_t c = 0; c < kClients; ++c) {
    if (!engine_status[c].ok()) {
      std::fprintf(stderr, "FATAL: engine %u: %s\n", c,
                   engine_status[c].message().c_str());
      std::exit(1);
    }
  }
  LatencyHistogram merged(1.04);
  sim::Nanos window_start = sim::kNever;
  sim::Nanos drained = 0;
  uint64_t chains = 0, wrs = 0;
  for (const load::EngineStats& s : per_engine) {
    p.arrivals += s.arrivals;
    p.completed += s.completed;
    p.errors += s.errors;
    p.shed += s.shed;
    p.deferred += s.admission.deferred;
    p.retries += s.retries;
    p.qps += s.qps;
    p.inflight_hw = std::max(p.inflight_hw, s.admission.inflight_high_water);
    merged.Merge(s.latency);
    window_start = std::min(window_start, s.window_start);
    drained = std::max(drained, s.drained_at);
    chains += s.mux.chains_posted;
    wrs += s.mux.wrs_posted;
    p.rtrace.config = s.rtrace.config;
    p.rtrace.Merge(s.rtrace);
  }
  // Merge the per-engine space-saving sketches by summing per-key
  // estimates (the standard sketch merge: counts add, errors add).
  std::map<uint64_t, load::HotKey> hot;
  for (const load::EngineStats& s : per_engine) {
    for (const load::HotKey& hk : s.hotkeys) {
      load::HotKey& e = hot[hk.key_id];
      e.key_id = hk.key_id;
      e.count += hk.count;
      e.error += hk.error;
    }
  }
  for (const auto& [id, hk] : hot) p.hotkeys.push_back(hk);
  std::sort(p.hotkeys.begin(), p.hotkeys.end(),
            [](const load::HotKey& a, const load::HotKey& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key_id < b.key_id;
            });
  if (p.hotkeys.size() > 16) p.hotkeys.resize(16);
  p.p50 = merged.Quantile(0.50);
  p.p99 = merged.Quantile(0.99);
  p.p999 = merged.Quantile(0.999);
  const double secs = sim::ToSeconds(drained - window_start);
  p.achieved_kops = secs > 0 ? p.completed / secs / 1e3 : 0;
  p.sessions_per_qp =
      p.qps > 0 ? static_cast<double>(sessions) / p.qps : 0;
  p.mean_chain = chains > 0 ? static_cast<double>(wrs) / chains : 0;
  p.virtual_nanos = cluster.sim().NowNanos();
  p.events = cluster.sim().events_processed();
  p.wall_seconds =
      // NOLINTNEXTLINE(rdet-wallclock): harness wall-time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return p;
}

void Print(const FaninPoint& p) {
  std::printf(
      "%-26s offered %8.0fk ach %8.1fk  p50 %7.1fus p99 %8.1fus p999 "
      "%9.1fus  shed %6" PRIu64 " defer %6" PRIu64 " chain %.1f",
      p.label.c_str(), p.offered / 1e3, p.achieved_kops,
      p.p50 / 1e3, p.p99 / 1e3, p.p999 / 1e3, p.shed, p.deferred,
      p.mean_chain);
  if (p.rtrace.ops > 0) {
    // The stage that owns the p999 band, straight from the attribution.
    const obs::RtraceReport::Slice tail = p.rtrace.Attribution(0.999, 1.0);
    uint32_t top = 0;
    for (uint32_t i = 1; i < obs::kRtraceStageCount; ++i) {
      if (tail.stage_ns[i] > tail.stage_ns[top]) top = i;
    }
    if (tail.total_ns > 0) {
      std::printf("  tail:%s %.0f%%",
                  std::string(obs::RtraceStageName(top)).c_str(),
                  100.0 * static_cast<double>(tail.stage_ns[top]) /
                      static_cast<double>(tail.total_ns));
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rstore::bench

int main(int argc, char** argv) {
  using namespace rstore;
  using namespace rstore::bench;
  SetLogLevel(LogLevel::kWarn);

#if defined(__GLIBC__)
  (void)mallopt(M_MMAP_THRESHOLD, 256 << 20);
  (void)mallopt(M_TRIM_THRESHOLD, -1);
#endif

  ParseObsArgs(&argc, argv);
  bool smoke = false;
  bool determinism = true;
  char sweep_mix = 'a';
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--no-determinism") == 0) determinism = false;
    if (std::strcmp(argv[i], "--mix") == 0 && i + 1 < argc) {
      sweep_mix = argv[i + 1][0];
    }
  }

  load::LoadOptions base;
  base.sessions = smoke ? 1200 : 10000;
  base.preload_keys = smoke ? 4096 : 16384;
  base.duration = smoke ? sim::Millis(5) : sim::Millis(25);
  base.seed = 7;
  const LoadFlags& flags = GetLoadFlags();
  if (flags.sessions > 0) base.sessions = static_cast<uint32_t>(flags.sessions);
  if (flags.duration_ms > 0) base.duration = sim::Millis(flags.duration_ms);
  const double default_theta = flags.skew >= 0 ? flags.skew : 0.99;

  // rtrace: sampled by default so every point carries attribution; the
  // mode never moves virtual time (the determinism gate below proves it).
  base.rtrace.mode = obs::RtraceMode::kSampled;
  if (!flags.rtrace.empty() &&
      !obs::ParseRtraceMode(flags.rtrace, &base.rtrace.mode)) {
    std::fprintf(stderr, "bad --rtrace mode '%s' (off|sampled|full)\n",
                 flags.rtrace.c_str());
    return 1;
  }

  // Offered-load sweep (aggregate ops/s). --offered-load pins a single
  // point; otherwise sweep through and past the saturation knee.
  std::vector<double> loads;
  if (flags.offered_load > 0) {
    loads = {flags.offered_load};
  } else if (smoke) {
    loads = {100e3, 400e3};
  } else {
    loads = {100e3, 250e3, 500e3, 1e6, 2e6, 4e6};
  }

  const unsigned host_cores = std::thread::hardware_concurrency();
  std::vector<FaninPoint> points;
  int rc = 0;

  // Warmup: fault in buffers; result dropped.
  (void)RunFanin(base, loads[0], default_theta, base.sessions,
                 /*admission=*/true, 'b');

  // Determinism cross-check: the smallest point must land on the same
  // virtual end time on the legacy scheduler and on partitioned
  // schedulers with different worker counts, and the same event count
  // across partitioned worker counts (the partitioned scheduler posts
  // extra cross-partition bridging events, so its event count is only
  // comparable to other partitioned runs — same contract as
  // bench_scaling).
  if (determinism) {
    // Probe-effect and scheduler cross-check: every rtrace mode must land
    // on the reference virtual end time on the legacy scheduler and on
    // partitioned schedulers with different worker counts — attaching the
    // tracer never moves virtual time.
    load::LoadOptions dbase = base;
    dbase.rtrace.mode = obs::RtraceMode::kOff;
    FaninPoint ref = RunFanin(dbase, loads[0], default_theta, base.sessions,
                              true, sweep_mix);
    uint64_t part_events = 0;
    for (const obs::RtraceMode mode :
         {obs::RtraceMode::kOff, obs::RtraceMode::kSampled,
          obs::RtraceMode::kFull}) {
      dbase.rtrace.mode = mode;
      for (const uint32_t t : {0u, 1u, 4u}) {
        if (mode == obs::RtraceMode::kOff && t == 0) continue;  // == ref
        FaninPoint p = RunFanin(dbase, loads[0], default_theta,
                                base.sessions, true, sweep_mix, t);
        if (p.virtual_nanos != ref.virtual_nanos) {
          std::fprintf(stderr,
                       "FATAL: rtrace=%s host_threads=%u diverged: vnanos "
                       "%" PRIu64 " vs %" PRIu64 "\n",
                       std::string(obs::ToString(mode)).c_str(), t,
                       p.virtual_nanos, ref.virtual_nanos);
          rc = 1;
        }
        if (t == 0) continue;  // legacy event counts are not comparable
        if (part_events == 0) {
          part_events = p.events;
        } else if (p.events != part_events) {
          std::fprintf(stderr,
                       "FATAL: rtrace=%s host_threads=%u event count "
                       "diverged: %" PRIu64 " vs %" PRIu64 "\n",
                       std::string(obs::ToString(mode)).c_str(), t, p.events,
                       part_events);
          rc = 1;
        }
      }
    }
    // rlin probe-effect gate: attaching the linearizability checker
    // (recording the full per-op KV history) must not move virtual time
    // either — same reference point, every scheduler. Event counts follow
    // the same partitioned-only comparability rule as above. The env var
    // is read per-Simulation, exactly like --rlin sets it binary-wide
    // (in which case it is already on and stays on after the gate).
    const bool rlin_already_on = std::getenv("RSTORE_RLIN") != nullptr;
    setenv("RSTORE_RLIN", "1", /*overwrite=*/1);
    dbase.rtrace.mode = obs::RtraceMode::kOff;
    for (const uint32_t t : {0u, 1u, 4u}) {
      FaninPoint p = RunFanin(dbase, loads[0], default_theta, base.sessions,
                              true, sweep_mix, t);
      if (p.virtual_nanos != ref.virtual_nanos) {
        std::fprintf(stderr,
                     "FATAL: rlin=on host_threads=%u diverged: vnanos "
                     "%" PRIu64 " vs %" PRIu64 "\n",
                     t, p.virtual_nanos, ref.virtual_nanos);
        rc = 1;
      }
      if (t != 0 && p.events != part_events) {
        std::fprintf(stderr,
                     "FATAL: rlin=on host_threads=%u event count diverged: "
                     "%" PRIu64 " vs %" PRIu64 "\n",
                     t, p.events, part_events);
        rc = 1;
      }
    }
    if (!rlin_already_on) unsetenv("RSTORE_RLIN");
    std::printf("determinism: (rtrace {off,sampled,full} + rlin) x "
                "host_threads {default,1,4} %s (vtime %.6fs, %" PRIu64
                " events)\n",
                rc == 0 ? "bit-identical" : "DIVERGED",
                sim::ToSeconds(ref.virtual_nanos), ref.events);
  }

  // 1) Tail latency vs offered load, with and without admission control.
  // Update-heavy by default (--mix to override): seqlock contention on
  // the zipf head is what bends the curve, and admission control is what
  // keeps the completed-op tail bounded past the knee.
  for (const double offered : loads) {
    for (const bool admission : {true, false}) {
      FaninPoint p = RunFanin(base, offered, default_theta, base.sessions,
                              admission, sweep_mix);
      p.label = std::string("load/") + (admission ? "admit" : "open");
      Print(p);
      points.push_back(std::move(p));
    }
  }

  if (flags.offered_load <= 0 && flags.skew < 0) {
    // 2) Skew sweep at a saturating load.
    const double mid = smoke ? 400e3 : 1e6;
    for (const double theta : {0.5, 1.2}) {
      FaninPoint p =
          RunFanin(base, mid, theta, base.sessions, true, 'b');
      p.label = "skew";
      Print(p);
      points.push_back(std::move(p));
    }
    // 3) Session-count sweep (fan-in scaling at fixed offered load).
    if (!smoke && flags.sessions <= 0) {
      for (const uint32_t n : {2500u, 20000u}) {
        FaninPoint p = RunFanin(base, mid, default_theta, n, true, 'b');
        p.label = "sessions";
        Print(p);
        points.push_back(std::move(p));
      }
    }
    // 4) YCSB mix coverage (A..F) at a moderate load.
    const double mixload = smoke ? 100e3 : 500e3;
    for (const char mix : {'a', 'c', 'd', 'e', 'f'}) {
      FaninPoint p = RunFanin(base, mixload, default_theta, base.sessions,
                              true, mix);
      p.label = std::string("mix/") + mix;
      Print(p);
      points.push_back(std::move(p));
    }
  }

  FILE* f = std::fopen("BENCH_fanin.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"experiment\": \"E13 massive-fan-in serving\",\n"
        "  \"workload\": \"open-loop YCSB over RKV, %u servers, %u client "
        "machines, QP-multiplexed sessions\",\n"
        "  \"latency\": \"ns from intended send time "
        "(coordinated-omission-safe)\",\n"
        "  \"host_cores\": %u,\n"
        "  \"note\": \"wall_seconds depends on host_cores; CI runners are "
        "often 1-2 cores, so compare virtual metrics only\",\n"
        "  \"smoke\": %s,\n"
        "  \"deterministic\": %s,\n"
        "  \"rtrace_mode\": \"%s\",\n"
        "  \"rtrace_stages\": [",
        kServers, kClients, host_cores, smoke ? "true" : "false",
        rc == 0 ? "true" : "false",
        std::string(obs::ToString(base.rtrace.mode)).c_str());
    for (uint32_t i = 0; i < obs::kRtraceStageCount; ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                   std::string(obs::RtraceStageName(i)).c_str());
    }
    std::fprintf(f, "],\n  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const FaninPoint& p = points[i];
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"mix\": \"%c\", \"offered_ops\": %.0f, "
          "\"theta\": %.2f, \"sessions\": %u, \"admission\": %s, "
          "\"arrivals\": %" PRIu64 ", \"completed\": %" PRIu64
          ", \"errors\": %" PRIu64 ", \"shed\": %" PRIu64
          ", \"deferred\": %" PRIu64 ", \"retries\": %" PRIu64
          ", \"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
          ", \"p999_ns\": %" PRIu64 ", \"achieved_kops\": %.1f, "
          "\"qps\": %u, \"sessions_per_qp\": %.1f, \"mean_chain\": %.2f, "
          "\"inflight_high_water\": %u, \"virtual_seconds\": %.6f, "
          "\"events\": %" PRIu64 ", \"wall_seconds\": %.3f",
          p.label.c_str(), p.mix, p.offered, p.theta, p.sessions,
          p.admission ? "true" : "false", p.arrivals, p.completed, p.errors,
          p.shed, p.deferred, p.retries, p.p50, p.p99, p.p999,
          p.achieved_kops, p.qps, p.sessions_per_qp, p.mean_chain,
          p.inflight_hw, sim::ToSeconds(p.virtual_nanos), p.events,
          p.wall_seconds);
      // Per-stage attribution of the p999 band (virtual ns summed over
      // the band's ops; the stages sum exactly to attr_p999_total_ns).
      const obs::RtraceReport::Slice tail = p.rtrace.Attribution(0.999, 1.0);
      std::fprintf(f,
                   ", \"rtrace_ops\": %" PRIu64 ", \"attr_p999_count\": %" PRIu64
                   ", \"attr_p999_total_ns\": %" PRIu64
                   ", \"attr_p999_stage_ns\": [",
                   p.rtrace.ops, tail.count, tail.total_ns);
      for (uint32_t st = 0; st < obs::kRtraceStageCount; ++st) {
        std::fprintf(f, "%s%" PRIu64, st == 0 ? "" : ", ",
                     tail.stage_ns[st]);
      }
      std::fprintf(f, "], \"hotkeys\": [");
      const size_t hk_n = std::min<size_t>(p.hotkeys.size(), 4);
      for (size_t h = 0; h < hk_n; ++h) {
        std::fprintf(f, "%s{\"key\": %" PRIu64 ", \"count\": %" PRIu64 "}",
                     h == 0 ? "" : ", ", p.hotkeys[h].key_id,
                     p.hotkeys[h].count);
      }
      std::fprintf(f, "]}%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_fanin.json\n");
  }

  // Full attribution report of the highest-load admitted point, for
  // tools/rtail (quantiles, band tables, windows, kept slowest ops).
  if (base.rtrace.mode != obs::RtraceMode::kOff) {
    const FaninPoint* best = nullptr;
    for (const FaninPoint& p : points) {
      if (p.label != "load/admit" || p.rtrace.ops == 0) continue;
      if (best == nullptr || p.offered > best->offered) best = &p;
    }
    if (best != nullptr) {
      const std::string attr_path = flags.attribution.empty()
                                        ? "BENCH_fanin_attr.json"
                                        : flags.attribution;
      std::string out;
      obs::AppendRtraceJson(out, best->rtrace);
      out += '\n';
      FILE* af = std::fopen(attr_path.c_str(), "wb");
      if (af != nullptr &&
          std::fwrite(out.data(), 1, out.size(), af) == out.size()) {
        std::printf("wrote %s (offered %.0fk, %" PRIu64 " ops)\n",
                    attr_path.c_str(), best->offered / 1e3, best->rtrace.ops);
      } else {
        std::fprintf(stderr, "failed to write %s\n", attr_path.c_str());
        rc = 1;
      }
      if (af != nullptr) std::fclose(af);
    }
  }
  // Flush --json / --trace telemetry (rtrace flow events land here).
  rc |= WriteObsOutputs();
  return rc;
}
