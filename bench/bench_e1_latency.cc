// E1 — "close-to-hardware latency" (paper abstract; data-path latency
// figure). Read/write latency vs transfer size for three systems:
//
//   verbs    raw one-sided RDMA READ/WRITE on a connected QP — the
//            hardware floor,
//   rstore   RStore rread/rwrite through a mapped region (adds client
//            bookkeeping + striping arithmetic, no extra messages),
//   rpc      the two-sided RPC store (server CPU on the data path).
//
// Expected shape: rstore tracks verbs within a small constant; both
// converge at large sizes (wire-limited); rpc pays handler + marshalling
// and stays strictly above. The benchmark reports the virtual-time
// latency of each op as manual time; `bytes` is a counter.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/rpcstore/rpcstore.h"
#include "bench/bench_util.h"
#include "core/cluster.h"
#include "verbs/verbs.h"

namespace rstore::bench {
namespace {

constexpr int kOpsPerMeasurement = 32;

// Raw verbs latency: one client QP to one server MR.
void E1_RawVerbs(benchmark::State& state) {
  const auto size = static_cast<uint64_t>(state.range(0));
  const bool is_read = state.range(1) != 0;
  for (auto _ : state) {
    sim::Simulation sim;
    sim.AttachTelemetry(ActiveTelemetry());
    verbs::Network net(sim);
    auto& server = sim.AddNode("server");
    auto& client = sim.AddNode("client");
    auto& sdev = net.AddDevice(server);
    auto& cdev = net.AddDevice(client);

    std::vector<std::byte> remote(size), local(size);
    auto* rmr = *sdev.CreatePd().RegisterMemory(
        remote.data(), remote.size(),
        verbs::kLocalWrite | verbs::kRemoteRead | verbs::kRemoteWrite);
    auto* lmr = *cdev.CreatePd().RegisterMemory(
        local.data(), local.size(), verbs::kLocalWrite);

    net.Listen(sdev, 1);
    server.Spawn("srv", [&] { (void)net.Listen(sdev, 1).Accept(); });
    double seconds = 0;
    client.Spawn("cli", [&] {
      auto qp = net.Connect(cdev, server.id(), 1);
      if (!qp.ok()) return;
      Stopwatch watch;
      for (int i = 0; i < kOpsPerMeasurement; ++i) {
        watch.Start();
        (void)(*qp)->PostSend(verbs::SendWr{
            .wr_id = 1,
            .opcode = is_read ? verbs::Opcode::kRdmaRead
                              : verbs::Opcode::kRdmaWrite,
            .local = {local.data(), static_cast<uint32_t>(size),
                      lmr->lkey()},
            .remote_addr = rmr->remote_addr(),
            .rkey = rmr->rkey()});
        (void)(*qp)->send_cq().WaitOne();
        watch.Stop();
      }
      seconds = watch.seconds() / kOpsPerMeasurement;
      sim::CurrentNode().sim().RequestStop();
    });
    sim.Run();
    ReportVirtualTime(state, seconds);
  }
  state.counters["bytes"] = static_cast<double>(size);
}

// RStore rread/rwrite through a mapped region.
void E1_RStore(benchmark::State& state) {
  const auto size = static_cast<uint64_t>(state.range(0));
  const bool is_read = state.range(1) != 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 1;
    cfg.client_nodes = 1;
    cfg.server_capacity = 64ULL << 20;
    core::TestCluster cluster(cfg);
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      if (!client.Ralloc("r", 8ULL << 20).ok()) return;
      auto region = client.Rmap("r");
      if (!region.ok()) return;
      auto buf = client.AllocBuffer(size);
      if (!buf.ok()) return;
      // Warm the data connection: setup is E2's subject, not E1's.
      (void)(*region)->Read(0, std::span<std::byte>(buf->begin(), 1));
      Stopwatch watch;
      for (int i = 0; i < kOpsPerMeasurement; ++i) {
        watch.Start();
        if (is_read) {
          (void)(*region)->Read(0, buf->data);
        } else {
          (void)(*region)->Write(0, buf->data);
        }
        watch.Stop();
      }
      seconds = watch.seconds() / kOpsPerMeasurement;
    });
    ReportVirtualTime(state, seconds);
  }
  state.counters["bytes"] = static_cast<double>(size);
}

// Two-sided RPC store GET/PUT.
void E1_RpcStore(benchmark::State& state) {
  const auto size = static_cast<uint64_t>(state.range(0));
  const bool is_read = state.range(1) != 0;
  for (auto _ : state) {
    sim::Simulation sim;
    sim.AttachTelemetry(ActiveTelemetry());
    verbs::Network net(sim);
    auto& server = sim.AddNode("server");
    auto& client = sim.AddNode("client");
    auto& sdev = net.AddDevice(server);
    auto& cdev = net.AddDevice(client);
    baselines::RpcStoreOptions opts;
    opts.max_io_bytes = 8ULL << 20;
    baselines::RpcStoreServer store(sdev, opts);
    store.Start();
    double seconds = 0;
    client.Spawn("cli", [&] {
      auto c = baselines::RpcStoreClient::Connect(cdev, server.id(), opts);
      if (!c.ok()) return;
      std::vector<std::byte> buf(size);
      (void)(*c)->Put(0, buf);  // warm
      Stopwatch watch;
      for (int i = 0; i < kOpsPerMeasurement; ++i) {
        watch.Start();
        if (is_read) {
          (void)(*c)->Get(0, buf);
        } else {
          (void)(*c)->Put(0, buf);
        }
        watch.Stop();
      }
      seconds = watch.seconds() / kOpsPerMeasurement;
      sim::CurrentNode().sim().RequestStop();
    });
    sim.Run();
    ReportVirtualTime(state, seconds);
  }
  state.counters["bytes"] = static_cast<double>(size);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t rw : {1, 0}) {  // 1 = read, 0 = write
    for (int64_t size = 8; size <= (4 << 20); size *= 8) {
      b->Args({size, rw});
    }
  }
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(E1_RawVerbs)->Apply(Sizes);
BENCHMARK(E1_RStore)->Apply(Sizes);
BENCHMARK(E1_RpcStore)->Apply(Sizes);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
