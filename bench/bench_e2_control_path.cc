// E2 — control-path vs data-path separation (the paper's core design
// argument: "carefully separating resource setup from IO operations").
//
// Series:
//   E2_Ralloc        allocate a named region of S bytes (master RPC +
//                    slab bookkeeping) — milliseconds-class, amortized
//   E2_RmapCold      first map: master round trip for the slab table
//   E2_RmapCached    subsequent map: pure client cache hit (zero time)
//   E2_Rfree         teardown
//   E2_ConnectSetup  data-QP establishment to one memory server
//   E2_DataOp4K      a 4 KiB rread for contrast — microseconds-class
//
// Expected shape: setup operations cost 100x-1000x a data operation and
// scale with region size only logarithmically (slab count), which is why
// RStore keeps them off the hot path.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

core::ClusterConfig Cfg() {
  core::ClusterConfig cfg;
  cfg.telemetry = ActiveTelemetry();
  cfg.memory_servers = 8;
  cfg.client_nodes = 1;
  cfg.server_capacity = 64ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

void MeasureControlOp(
    benchmark::State& state,
    const std::function<double(core::RStoreClient&, uint64_t)>& measure) {
  const auto region_bytes = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    core::TestCluster cluster(Cfg());
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      seconds = measure(client, region_bytes);
    });
    ReportVirtualTime(state, seconds);
  }
  state.counters["region_bytes"] = static_cast<double>(region_bytes);
  state.counters["slabs"] =
      static_cast<double>((region_bytes + (1ULL << 20) - 1) / (1ULL << 20));
}

void E2_Ralloc(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    Stopwatch watch;
    watch.Start();
    (void)client.Ralloc("r", bytes);
    watch.Stop();
    return watch.seconds();
  });
}

void E2_RmapCold(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    (void)client.Ralloc("r", bytes);
    Stopwatch watch;
    watch.Start();
    (void)client.Rmap("r");
    watch.Stop();
    return watch.seconds();
  });
}

void E2_RmapCached(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    (void)client.Ralloc("r", bytes);
    (void)client.Rmap("r");
    Stopwatch watch;
    watch.Start();
    for (int i = 0; i < 1000; ++i) (void)client.Rmap("r");
    watch.Stop();
    return watch.seconds() / 1000;
  });
}

void E2_Rfree(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    (void)client.Ralloc("r", bytes);
    Stopwatch watch;
    watch.Start();
    (void)client.Rfree("r");
    watch.Stop();
    return watch.seconds();
  });
}

void E2_ConnectSetup(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    (void)client.Ralloc("r", bytes);
    auto region = client.Rmap("r");
    auto buf = client.AllocBuffer(8);
    if (!region.ok() || !buf.ok()) return 0.0;
    // First tiny read pays lazy QP setup; second shows the data floor.
    Stopwatch watch;
    watch.Start();
    (void)(*region)->Read(0, buf->data);
    watch.Stop();
    return watch.seconds();
  });
}

void E2_DataOp4K(benchmark::State& state) {
  MeasureControlOp(state, [](core::RStoreClient& client, uint64_t bytes) {
    (void)client.Ralloc("r", bytes);
    auto region = client.Rmap("r");
    auto buf = client.AllocBuffer(4096);
    if (!region.ok() || !buf.ok()) return 0.0;
    (void)(*region)->Read(0, buf->data);  // warm connection
    Stopwatch watch;
    for (int i = 0; i < 64; ++i) {
      watch.Start();
      (void)(*region)->Read(0, buf->data);
      watch.Stop();
    }
    return watch.seconds() / 64;
  });
}

void RegionSizes(benchmark::internal::Benchmark* b) {
  for (int64_t mb : {4, 16, 64, 256, 448}) {
    b->Arg(mb << 20);
  }
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMicrosecond);
}

BENCHMARK(E2_Ralloc)->Apply(RegionSizes);
BENCHMARK(E2_RmapCold)->Apply(RegionSizes);
BENCHMARK(E2_RmapCached)->Apply(RegionSizes);
BENCHMARK(E2_Rfree)->Apply(RegionSizes);
BENCHMARK(E2_ConnectSetup)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(E2_DataOp4K)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
