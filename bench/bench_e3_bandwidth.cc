// E3 — "705 Gb/s aggregate bandwidth on our 12-machine testbed"
// (paper abstract; aggregate-bandwidth-vs-machines figure).
//
// N client machines each map a large region striped across N memory
// servers and stream it with big one-sided reads; aggregate delivered
// bandwidth is total bytes / makespan. Expected shape: near-linear in N
// (every machine contributes its NIC), reaching ~705 Gb/s at N = 12 with
// the paper's per-port 58.8 Gb/s.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

void E3_AggregateReadBandwidth(benchmark::State& state) {
  const auto machines = static_cast<uint32_t>(state.range(0));
  // One 4 MiB slab per memory server: every client streams from every
  // server, the all-to-all the paper's aggregate figure measures.
  const uint64_t kRegionBytes = machines * (4ULL << 20);
  constexpr int kPasses = 24;

  double total_gbps = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = machines;
    cfg.client_nodes = machines;
    cfg.server_capacity =
        (kRegionBytes * machines) / machines + (8ULL << 20);
    cfg.master.slab_size = 4ULL << 20;
    core::TestCluster cluster(cfg);

    sim::Nanos t_begin = sim::kNever;
    sim::Nanos t_end = 0;
    for (uint32_t c = 0; c < machines; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        const std::string name = "r" + std::to_string(c);
        if (!client.Ralloc(name, kRegionBytes).ok()) return;
        auto region = client.Rmap(name);
        if (!region.ok()) return;
        auto buf = client.AllocBuffer(kRegionBytes);
        if (!buf.ok()) return;
        // Warm all data connections, then rendezvous.
        (void)(*region)->Read(0, buf->data);
        (void)client.NotifyInc("warm");
        (void)client.WaitNotify("warm", machines);
        const sim::Nanos t0 = sim::Now();
        // Deep pipeline: all passes posted up front so the NIC never
        // idles on a straggler fragment (reading into the same buffer is
        // fine — only throughput is observed).
        std::vector<core::IoFuture> futures;
        for (int pass = 0; pass < kPasses; ++pass) {
          auto f = (*region)->ReadAsync(0, buf->data);
          if (!f.ok()) return;
          futures.push_back(std::move(*f));
        }
        for (auto& f : futures) (void)f.Wait();
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
      });
    }
    cluster.sim().Run();

    const double seconds = sim::ToSeconds(t_end - t_begin);
    const double bits =
        static_cast<double>(machines) * kPasses * kRegionBytes * 8.0;
    total_gbps = bits / seconds / 1e9;
    ReportVirtualTime(state, seconds);
  }
  state.counters["machines"] = machines;
  state.counters["aggregate_Gbps"] = total_gbps;
  state.counters["per_machine_Gbps"] = total_gbps / machines;
}

BENCHMARK(E3_AggregateReadBandwidth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
