// E4 — "The graph processing framework ... outperforms state-of-the-art
// systems by margins of 2.6–4.2x when calculating PageRank" (abstract;
// PageRank comparison figure/table).
//
// Three systems run 10 PageRank iterations over the same graph with the
// same partitioning and per-edge compute model on 8 compute nodes:
//
//   Carafe     contributions flow through shared RStore regions read
//              with one-sided verbs (this repo's reproduction of the
//              paper's framework),
//   MP-lean    message-passing BSP with a lean native engine's
//              per-edge-message overhead (~18 ns) — GraphLab-class,
//   MP-heavy   the same with a heavier dataflow stack's overhead
//              (~36 ns) — distributed-dataflow-class.
//
// Expected shape: Carafe wins by roughly 2.6x against the lean engine
// and up to ~4.2x against the heavy one; see EXPERIMENTS.md for the
// calibration discussion. Graphs: RMAT (power-law) and uniform, average
// degree 16, as in evaluations of the period.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "baselines/bsp/msg_bsp.h"
#include "bench/bench_util.h"
#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"

namespace rstore::bench {
namespace {

constexpr uint32_t kWorkers = 8;
constexpr uint32_t kIterations = 10;

carafe::Graph MakeGraph(bool rmat, int64_t scale) {
  return rmat ? carafe::RmatGraph(static_cast<uint32_t>(scale), 16.0, 7)
              : carafe::UniformRandomGraph(1ULL << scale, 16.0, 7);
}

void RunCarafe(benchmark::State& state, bool cached) {
  const bool rmat = state.range(1) != 0;
  carafe::Graph graph = MakeGraph(rmat, state.range(0));
  cache::CacheStats cache_total;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 8;
    cfg.client_nodes = kWorkers;
    cfg.server_capacity = 96ULL << 20;
    cfg.master.slab_size = 1ULL << 20;
    core::TestCluster cluster(cfg);
    sim::Nanos elapsed = 0;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      cluster.SpawnClient(w, [&, w](core::RStoreClient& client) {
        if (w == 0) {
          if (!carafe::UploadGraph(client, "g", graph).ok()) return;
          (void)client.NotifyInc("up");
        } else {
          (void)client.WaitNotify("up", 1);
        }
        carafe::WorkerConfig wc{w, kWorkers, "e4"};
        wc.cache = cached;
        carafe::Worker worker(client, "g", wc);
        if (!worker.Init().ok()) return;
        (void)client.NotifyInc("ready");
        (void)client.WaitNotify("ready", kWorkers);
        const sim::Nanos t0 = sim::Now();
        (void)worker.PageRank({.iterations = kIterations});
        elapsed = std::max(elapsed, sim::Now() - t0);
        const auto& cs = client.cache_stats();
        cache_total.hits += cs.hits;
        cache_total.misses += cs.misses;
        cache_total.fills += cs.fills;
        cache_total.evictions += cs.evictions;
        cache_total.bypass_reads += cs.bypass_reads;
      });
    }
    cluster.sim().Run();
    ReportVirtualTime(state, sim::ToSeconds(elapsed));
  }
  state.counters["vertices"] = static_cast<double>(graph.num_vertices());
  state.counters["edges"] = static_cast<double>(graph.num_edges());
  if (cached) ReportCacheCounters(state, cache_total);
}

void E4_Carafe(benchmark::State& state) { RunCarafe(state, false); }
void E4_CarafeCached(benchmark::State& state) { RunCarafe(state, true); }

void RunMessagePassing(benchmark::State& state, double per_message_ns) {
  const bool rmat = state.range(1) != 0;
  carafe::Graph graph = MakeGraph(rmat, state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim.AttachTelemetry(ActiveTelemetry());
    verbs::Network net(sim);
    std::vector<sim::Node*> nodes;
    std::vector<uint32_t> ids;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      nodes.push_back(&sim.AddNode("w" + std::to_string(w)));
      net.AddDevice(*nodes.back());
      ids.push_back(nodes.back()->id());
    }
    std::vector<std::unique_ptr<baselines::MsgBspWorker>> workers(kWorkers);
    sim::Nanos elapsed = 0;
    uint32_t done = 0;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      baselines::MsgBspConfig cfg;
      cfg.worker_id = w;
      cfg.num_workers = kWorkers;
      cfg.worker_nodes = ids;
      cfg.per_message_ns = per_message_ns;
      workers[w] = std::make_unique<baselines::MsgBspWorker>(
          net.device(ids[w]), graph, cfg);
      workers[w]->StartService();
      nodes[w]->Spawn("pr", [&, w] {
        sim::Sleep(sim::Millis(1));
        const sim::Nanos t0 = sim::Now();
        (void)workers[w]->PageRank(kIterations);
        elapsed = std::max(elapsed, sim::Now() - t0);
        if (++done == kWorkers) sim::CurrentNode().sim().RequestStop();
      });
    }
    sim.Run();
    ReportVirtualTime(state, sim::ToSeconds(elapsed));
  }
  state.counters["vertices"] = static_cast<double>(graph.num_vertices());
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}

void E4_MessagePassingLean(benchmark::State& state) {
  RunMessagePassing(state, 18.0);
}

void E4_MessagePassingHeavy(benchmark::State& state) {
  RunMessagePassing(state, 36.0);
}

void GraphShapes(benchmark::internal::Benchmark* b) {
  for (int64_t rmat : {1, 0}) {
    for (int64_t scale : {14, 15, 16}) {
      b->Args({scale, rmat});
    }
  }
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(E4_Carafe)->Apply(GraphShapes);
BENCHMARK(E4_CarafeCached)->Apply(GraphShapes);
BENCHMARK(E4_MessagePassingLean)->Apply(GraphShapes);
BENCHMARK(E4_MessagePassingHeavy)->Apply(GraphShapes);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
