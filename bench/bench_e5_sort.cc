// E5 — "The Key-Value sorter can sort 256 GB of data in 31.7 sec, which
// is 8x better than Hadoop TeraSort in a similar setting" (abstract;
// sorting table).
//
// Both sorters run on 12 workers over the same TeraGen input:
//   RSort      in-DRAM sample sort over RStore (one-sided shuffle),
//   TeraSort   disk MapReduce baseline (4 disk passes + RPC shuffle +
//              task startup).
// Sizes are scaled down to what a single host simulates comfortably; the
// shape to check is the RSort/TeraSort ratio (~8x) and near-linear
// growth with input size. A final model-projected row extrapolates both
// systems' measured per-byte throughput to the paper's 256 GB point —
// printed as counters, clearly labelled a projection.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "baselines/terasort/terasort.h"
#include "bench/bench_util.h"
#include "rsort/rsort.h"

namespace rstore::bench {
namespace {

constexpr uint32_t kWorkers = 12;

// Measured seconds for RSort at `records`, or a failure.
double RunRSort(uint64_t records) {
  core::ClusterConfig cfg;
  cfg.telemetry = ActiveTelemetry();
  cfg.memory_servers = kWorkers;
  cfg.client_nodes = kWorkers;
  // input + exchange + output regions plus slack.
  cfg.server_capacity =
      (records * sort::kRecordBytes * 3) / kWorkers + (24ULL << 20);
  cfg.master.slab_size = 4ULL << 20;
  core::TestCluster cluster(cfg);
  sim::Nanos slowest = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](core::RStoreClient& client) {
      sort::SortConfig scfg;
      scfg.worker_id = w;
      scfg.num_workers = kWorkers;
      scfg.total_records = records;
      scfg.seed = 31;
      sort::SortWorker worker(client, scfg);
      if (!worker.GenerateInput().ok()) return;
      (void)client.NotifyInc("gen");
      (void)client.WaitNotify("gen", kWorkers);
      auto stats = worker.Sort();
      if (stats.ok()) slowest = std::max(slowest, stats->total_time);
    });
  }
  cluster.sim().Run();
  return sim::ToSeconds(slowest);
}

double RunTeraSort(uint64_t records) {
  sim::Simulation sim;
  sim.AttachTelemetry(ActiveTelemetry());
  verbs::Network net(sim);
  std::vector<sim::Node*> nodes;
  std::vector<uint32_t> ids;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    nodes.push_back(&sim.AddNode("t" + std::to_string(w)));
    net.AddDevice(*nodes.back());
    ids.push_back(nodes.back()->id());
  }
  std::vector<std::unique_ptr<baselines::TeraSortWorker>> ts(kWorkers);
  sim::Nanos slowest = 0;
  uint32_t done = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    baselines::TeraSortConfig cfg;
    cfg.worker_id = w;
    cfg.num_workers = kWorkers;
    cfg.total_records = records;
    cfg.seed = 31;
    cfg.worker_nodes = ids;
    ts[w] = std::make_unique<baselines::TeraSortWorker>(net.device(ids[w]),
                                                        cfg);
    ts[w]->StartService();
    nodes[w]->Spawn("sort", [&, w] {
      if (!ts[w]->GenerateInput().ok()) return;
      sim::Sleep(sim::Millis(1));
      auto stats = ts[w]->Sort();
      if (stats.ok()) slowest = std::max(slowest, stats->total_time);
      if (++done == kWorkers) sim::CurrentNode().sim().RequestStop();
    });
  }
  sim.Run();
  return sim::ToSeconds(slowest);
}

void E5_RSort(benchmark::State& state) {
  const auto records = static_cast<uint64_t>(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    seconds = RunRSort(records);
    ReportVirtualTime(state, seconds);
  }
  state.counters["GB"] =
      static_cast<double>(records) * sort::kRecordBytes / 1e9;
  state.counters["MB_per_s"] =
      static_cast<double>(records) * sort::kRecordBytes / 1e6 / seconds;
}

void E5_TeraSort(benchmark::State& state) {
  const auto records = static_cast<uint64_t>(state.range(0));
  double seconds = 0;
  for (auto _ : state) {
    seconds = RunTeraSort(records);
    ReportVirtualTime(state, seconds);
  }
  state.counters["GB"] =
      static_cast<double>(records) * sort::kRecordBytes / 1e9;
  state.counters["MB_per_s"] =
      static_cast<double>(records) * sort::kRecordBytes / 1e6 / seconds;
}

// The paper's headline point, projected: measures both systems at two
// sizes and extrapolates to 256 GB along the large-size slope (the
// two-point secant removes fixed costs — task startup, per-stream seeks
// — that do not scale with input). Clearly a projection, not a
// measurement — see EXPERIMENTS.md.
void E5_Projection256GB(benchmark::State& state) {
  constexpr uint64_t kSmall = 2'000'000;  // 200 MB
  constexpr uint64_t kLarge = 4'000'000;  // 400 MB
  double rsort_proj = 0, tera_proj = 0;
  for (auto _ : state) {
    const double r1 = RunRSort(kSmall);
    const double r2 = RunRSort(kLarge);
    const double t1 = RunTeraSort(kSmall);
    const double t2 = RunTeraSort(kLarge);
    const double gb_small = kSmall * sort::kRecordBytes / 1e9;
    const double gb_large = kLarge * sort::kRecordBytes / 1e9;
    const double target_gb = 256.0;
    auto project = [&](double small_s, double large_s) {
      const double slope = (large_s - small_s) / (gb_large - gb_small);
      return large_s + slope * (target_gb - gb_large);
    };
    rsort_proj = project(r1, r2);
    tera_proj = project(t1, t2);
    ReportVirtualTime(state, r2 + t2);
  }
  state.counters["rsort_256GB_s"] = rsort_proj;
  state.counters["terasort_256GB_s"] = tera_proj;
  state.counters["speedup"] = tera_proj / rsort_proj;
}

BENCHMARK(E5_RSort)
    ->Arg(500'000)     //  50 MB
    ->Arg(1'000'000)   // 100 MB
    ->Arg(2'000'000)   // 200 MB
    ->Arg(4'000'000)   // 400 MB
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(E5_TeraSort)
    ->Arg(500'000)
    ->Arg(1'000'000)
    ->Arg(2'000'000)
    ->Arg(4'000'000)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(E5_Projection256GB)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
