// E6 — the architectural argument for direct access: one-sided reads vs
// two-sided RPC GETs against a single server under increasing client
// load.
//
// Series, per client count 1..8 (64 KiB reads, 64 per client):
//   E6_OneSided   RStore rread: throughput scales with the server NIC;
//                 server CPU stays flat at zero,
//   E6_TwoSided   RPC-store GET: every byte moves through the server CPU
//                 (handler + marshal + memcpy), which saturates first.
//
// Counters: aggregate client-observed throughput (MB/s of virtual time)
// and server CPU microseconds burned per MB served.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "baselines/rpcstore/rpcstore.h"
#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

constexpr uint64_t kIoBytes = 64 << 10;
constexpr int kOpsPerClient = 64;

void E6_OneSided(benchmark::State& state) {
  const auto clients = static_cast<uint32_t>(state.range(0));
  double mb_per_s = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 1;
    cfg.client_nodes = clients;
    cfg.server_capacity = 64ULL << 20;
    core::TestCluster cluster(cfg);
    sim::Nanos t_begin = sim::kNever, t_end = 0;
    for (uint32_t c = 0; c < clients; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        if (c == 0) (void)client.Ralloc("r", 16ULL << 20);
        auto region = client.Rmap("r");
        while (!region.ok()) {
          sim::Sleep(sim::Millis(1));
          region = client.Rmap("r");
        }
        auto buf = client.AllocBuffer(kIoBytes);
        if (!buf.ok()) return;
        (void)(*region)->Read(0, buf->data);  // warm
        (void)client.NotifyInc("go");
        (void)client.WaitNotify("go", clients);
        const sim::Nanos t0 = sim::Now();
        for (int i = 0; i < kOpsPerClient; ++i) {
          (void)(*region)->Read((c * kOpsPerClient + i) % 128 * kIoBytes,
                                buf->data);
        }
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
      });
    }
    cluster.sim().Run();
    const double secs = sim::ToSeconds(t_end - t_begin);
    mb_per_s = clients * kOpsPerClient * kIoBytes / 1e6 / secs;
    ReportVirtualTime(state, secs);
  }
  state.counters["clients"] = clients;
  state.counters["MB_per_s"] = mb_per_s;
  state.counters["server_cpu_us_per_MB"] = 0.0;  // one-sided: by design
}

void E6_TwoSided(benchmark::State& state) {
  const auto clients = static_cast<uint32_t>(state.range(0));
  double mb_per_s = 0;
  double cpu_us_per_mb = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    sim.AttachTelemetry(ActiveTelemetry());
    verbs::Network net(sim);
    auto& server_node = sim.AddNode("server");
    auto& sdev = net.AddDevice(server_node);
    baselines::RpcStoreOptions opts;
    opts.max_io_bytes = 1 << 20;
    auto store = std::make_unique<baselines::RpcStoreServer>(sdev, opts);
    store->Start();

    std::vector<sim::Node*> cnodes;
    for (uint32_t c = 0; c < clients; ++c) {
      cnodes.push_back(&sim.AddNode("c" + std::to_string(c)));
      net.AddDevice(*cnodes.back());
    }
    sim::Nanos t_begin = sim::kNever, t_end = 0;
    uint32_t done = 0;
    uint32_t armed = 0;
    for (uint32_t c = 0; c < clients; ++c) {
      cnodes[c]->Spawn("cli", [&, c] {
        auto cli = baselines::RpcStoreClient::Connect(
            net.device(cnodes[c]->id()), server_node.id(), opts);
        if (!cli.ok()) return;
        std::vector<std::byte> buf(kIoBytes);
        (void)(*cli)->Get(0, buf);  // warm
        ++armed;
        while (armed < clients) sim::Sleep(sim::Micros(100));
        const sim::Nanos t0 = sim::Now();
        for (int i = 0; i < kOpsPerClient; ++i) {
          (void)(*cli)->Get((c * kOpsPerClient + i) % 128 * kIoBytes, buf);
        }
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
        if (++done == clients) sim::CurrentNode().sim().RequestStop();
      });
    }
    sim.Run();
    const double secs = sim::ToSeconds(t_end - t_begin);
    const double mb = clients * kOpsPerClient * kIoBytes / 1e6;
    mb_per_s = mb / secs;
    cpu_us_per_mb = sim::ToMicros(store->cpu_time()) / mb;
    ReportVirtualTime(state, secs);
  }
  state.counters["clients"] = clients;
  state.counters["MB_per_s"] = mb_per_s;
  state.counters["server_cpu_us_per_MB"] = cpu_us_per_mb;
}

void Clients(benchmark::internal::Benchmark* b) {
  for (int64_t c : {1, 2, 4, 8}) b->Arg(c);
  b->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

BENCHMARK(E6_OneSided)->Apply(Clients);
BENCHMARK(E6_TwoSided)->Apply(Clients);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
