// E7 — striping/slab-size ablation (design choice called out in
// DESIGN.md: slab granularity trades metadata size and mapping cost
// against parallel bandwidth).
//
// Four clients concurrently stream the *same* 64 MiB region hosted by 4
// memory servers while the slab size sweeps 1..64 MiB. With small slabs
// the region spreads over all servers and the clients' aggregate
// bandwidth approaches 4 NIC ports; at 64 MiB the whole region sits on
// one server and every reader queues behind a single egress port.
//
// Counters: aggregate read bandwidth, slab-table entries, cold-rmap cost.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

void E7_SlabSize(benchmark::State& state) {
  const auto slab_bytes = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kRegionBytes = 64ULL << 20;
  constexpr uint32_t kClients = 4;
  constexpr int kPasses = 4;

  double gbps = 0;
  double rmap_us = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 4;
    cfg.client_nodes = kClients;
    cfg.server_capacity = kRegionBytes;
    cfg.master.slab_size = slab_bytes;
    core::TestCluster cluster(cfg);
    sim::Nanos t_begin = sim::kNever, t_end = 0;
    for (uint32_t c = 0; c < kClients; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        if (c == 0) {
          if (!client.Ralloc("r", kRegionBytes).ok()) return;
          (void)client.NotifyInc("alloc");
        } else {
          (void)client.WaitNotify("alloc", 1);
        }
        Stopwatch map_watch;
        map_watch.Start();
        auto region = client.Rmap("r");
        map_watch.Stop();
        if (c == 0) rmap_us = sim::ToMicros(map_watch.elapsed());
        if (!region.ok()) return;
        auto buf = client.AllocBuffer(kRegionBytes);
        if (!buf.ok()) return;
        (void)(*region)->Read(0, buf->data);  // warm connections
        (void)client.NotifyInc("warm");
        (void)client.WaitNotify("warm", kClients);
        const sim::Nanos t0 = sim::Now();
        std::vector<core::IoFuture> futures;
        for (int p = 0; p < kPasses; ++p) {
          auto f = (*region)->ReadAsync(0, buf->data);
          if (!f.ok()) return;
          futures.push_back(std::move(*f));
        }
        for (auto& f : futures) (void)f.Wait();
        t_begin = std::min(t_begin, t0);
        t_end = std::max(t_end, sim::Now());
      });
    }
    cluster.sim().Run();
    const double secs = sim::ToSeconds(t_end - t_begin);
    gbps = kClients * kPasses * kRegionBytes * 8.0 / secs / 1e9;
    ReportVirtualTime(state, secs);
  }
  state.counters["slab_MiB"] = static_cast<double>(slab_bytes >> 20);
  state.counters["slab_table_entries"] =
      static_cast<double>(kRegionBytes / slab_bytes);
  state.counters["aggregate_Gbps"] = gbps;
  state.counters["rmap_cold_us"] = rmap_us;
}

BENCHMARK(E7_SlabSize)
    ->Arg(1 << 20)
    ->Arg(4 << 20)
    ->Arg(16 << 20)
    ->Arg(64 << 20)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
