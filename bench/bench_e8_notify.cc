// E8 — synchronization path: the master-hosted notification channels
// that Carafe's barriers and RSort's phase transitions are built on.
//
// Series:
//   E8_NotifyInc   latency of a single increment (one control RPC),
//   E8_Barrier     full-barrier latency (arrive + release) vs number of
//                  participating clients 2..12,
//   E8_FetchAddSync an RStore remote atomic for comparison — the
//                  one-sided alternative for small synchronization state.
//
// Expected shape: barrier cost grows mildly with participants (the
// master serializes increments); a one-sided fetch-add is cheaper than a
// notification RPC because it bypasses the master's CPU.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"

namespace rstore::bench {
namespace {

void E8_NotifyInc(benchmark::State& state) {
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 1;
    cfg.client_nodes = 1;
    core::TestCluster cluster(cfg);
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      (void)client.NotifyInc("warm");
      Stopwatch watch;
      for (int i = 0; i < 64; ++i) {
        watch.Start();
        (void)client.NotifyInc("chan");
        watch.Stop();
      }
      seconds = watch.seconds() / 64;
    });
    ReportVirtualTime(state, seconds);
  }
}

void E8_Barrier(benchmark::State& state) {
  const auto participants = static_cast<uint32_t>(state.range(0));
  constexpr int kRounds = 16;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 1;
    cfg.client_nodes = participants;
    core::TestCluster cluster(cfg);
    sim::Nanos slowest = 0;
    for (uint32_t c = 0; c < participants; ++c) {
      cluster.SpawnClient(c, [&, c](core::RStoreClient& client) {
        (void)client.NotifyInc("arm");
        (void)client.WaitNotify("arm", participants);
        const sim::Nanos t0 = sim::Now();
        for (int round = 0; round < kRounds; ++round) {
          const std::string chan = "b" + std::to_string(round);
          (void)client.NotifyInc(chan);
          (void)client.WaitNotify(chan, participants);
        }
        slowest = std::max(slowest, sim::Now() - t0);
      });
    }
    cluster.sim().Run();
    ReportVirtualTime(state, sim::ToSeconds(slowest) / kRounds);
  }
  state.counters["participants"] = participants;
}

void E8_FetchAddSync(benchmark::State& state) {
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    cfg.memory_servers = 1;
    cfg.client_nodes = 1;
    core::TestCluster cluster(cfg);
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      if (!client.Ralloc("ctr", 4096).ok()) return;
      auto region = client.Rmap("ctr");
      if (!region.ok()) return;
      (void)(*region)->FetchAdd(0, 1);  // warm the data QP
      Stopwatch watch;
      for (int i = 0; i < 64; ++i) {
        watch.Start();
        (void)(*region)->FetchAdd(0, 1);
        watch.Stop();
      }
      seconds = watch.seconds() / 64;
    });
    ReportVirtualTime(state, seconds);
  }
}

BENCHMARK(E8_NotifyInc)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(E8_Barrier)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(E8_FetchAddSync)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
