// E9 — extension experiment (not in the paper): RKV, the key-value
// layer built on RStore's memory-like API, against the two-sided RPC
// store serving the same working set.
//
// The comparison isolates the data-path architecture at the
// key-value abstraction level:
//   RKV GET   = 2 one-sided reads (slot + seqlock validate),
//   RKV PUT   = 1 read + CAS + payload write + release write,
//   RPC GET/PUT = one two-sided round trip through the server CPU.
//
// Expected shape — the classic one-sided-KV trade-off the literature of
// the period converged on (HERD vs Pilaf/FaRM): a single two-sided RPC
// *wins small-object latency* (one round trip vs RKV's two reads per
// GET and read+CAS+write+release per PUT), while the one-sided design
// keeps the server CPU at zero and therefore scales with client count
// (E6 shows that axis). Reproducing that crossover, rather than a
// one-sided sweep, is the point of this experiment.
#include <benchmark/benchmark.h>

#include "baselines/rpcstore/rpcstore.h"
#include "bench/bench_util.h"
#include "kv/kv.h"

namespace rstore::bench {
namespace {

constexpr int kOps = 128;
constexpr uint32_t kValueBytes = 64;

void E9_RkvGet(benchmark::State& state) {
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    core::TestCluster cluster(cfg);
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      auto kv = kv::KvStore::Create(client, "t");
      if (!kv.ok()) return;
      std::vector<std::byte> value(kValueBytes);
      for (int i = 0; i < kOps; ++i) {
        (void)(*kv)->Put("key" + std::to_string(i), value);
      }
      Stopwatch watch;
      for (int i = 0; i < kOps; ++i) {
        watch.Start();
        (void)(*kv)->Get("key" + std::to_string(i));
        watch.Stop();
      }
      seconds = watch.seconds() / kOps;
    });
    ReportVirtualTime(state, seconds);
  }
}

// Hot GETs with the client-local slot cache: each hit moves one 8-byte
// seqlock validate instead of a slot-sized read plus validate.
void E9_RkvGetCached(benchmark::State& state) {
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    core::TestCluster cluster(cfg);
    double seconds = 0;
    uint64_t hits = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      kv::KvOptions opts;
      opts.cache_slots = 256;
      auto kv = kv::KvStore::Create(client, "t", opts);
      if (!kv.ok()) return;
      std::vector<std::byte> value(kValueBytes);
      for (int i = 0; i < kOps; ++i) {
        (void)(*kv)->Put("key" + std::to_string(i), value);
      }
      Stopwatch watch;
      for (int i = 0; i < kOps; ++i) {
        watch.Start();
        (void)(*kv)->Get("key" + std::to_string(i));
        watch.Stop();
      }
      seconds = watch.seconds() / kOps;
      hits = (*kv)->stats().cache_hits;
    });
    ReportVirtualTime(state, seconds);
    state.counters["cache_hits"] = static_cast<double>(hits);
  }
}

void E9_RkvPut(benchmark::State& state) {
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.telemetry = ActiveTelemetry();
    core::TestCluster cluster(cfg);
    double seconds = 0;
    cluster.RunClient([&](core::RStoreClient& client) {
      auto kv = kv::KvStore::Create(client, "t");
      if (!kv.ok()) return;
      std::vector<std::byte> value(kValueBytes);
      (void)(*kv)->Put("warm", value);
      Stopwatch watch;
      for (int i = 0; i < kOps; ++i) {
        watch.Start();
        (void)(*kv)->Put("key" + std::to_string(i), value);
        watch.Stop();
      }
      seconds = watch.seconds() / kOps;
    });
    ReportVirtualTime(state, seconds);
  }
}

void RunRpcKv(benchmark::State& state, bool is_get) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.AttachTelemetry(ActiveTelemetry());
    verbs::Network net(sim);
    auto& server = sim.AddNode("server");
    auto& client_node = sim.AddNode("client");
    auto& sdev = net.AddDevice(server);
    auto& cdev = net.AddDevice(client_node);
    baselines::RpcStoreServer store(sdev);
    store.Start();
    double seconds = 0;
    client_node.Spawn("cli", [&] {
      auto cli = baselines::RpcStoreClient::Connect(cdev, server.id());
      if (!cli.ok()) return;
      std::vector<std::byte> value(kValueBytes);
      (void)(*cli)->Put(0, value);  // warm
      Stopwatch watch;
      for (int i = 0; i < kOps; ++i) {
        watch.Start();
        if (is_get) {
          (void)(*cli)->Get(i * 256, value);
        } else {
          (void)(*cli)->Put(i * 256, value);
        }
        watch.Stop();
      }
      seconds = watch.seconds() / kOps;
      sim::CurrentNode().sim().RequestStop();
    });
    sim.Run();
    ReportVirtualTime(state, seconds);
  }
}

void E9_RpcStoreGet(benchmark::State& state) { RunRpcKv(state, true); }
void E9_RpcStorePut(benchmark::State& state) { RunRpcKv(state, false); }

BENCHMARK(E9_RkvGet)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(E9_RkvGetCached)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(E9_RkvPut)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(E9_RpcStoreGet)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(E9_RpcStorePut)->UseManualTime()->Iterations(1)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace rstore::bench

RSTORE_BENCH_MAIN()
