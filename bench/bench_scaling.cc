// Scaling harness: how does the partitioned scheduler scale with host
// worker threads and with cluster size?
//
// Sweeps host threads {1, 2, 4, 8} x total machines {12, 32, 64, 128}
// (half memory servers, half client machines, plus the master) over a
// fixed mixed workload — streaming writes/reads, scattered vectored IO,
// remote atomics — and reports host wall time and scheduler events per
// real second for every point. Within one cluster size, every thread
// count must produce the bit-identical virtual end time and event count
// (the tentpole determinism claim); the binary exits non-zero if any
// point diverges. Results go to BENCH_scaling.json; speedups are only
// meaningful relative to the host core count recorded next to them.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/log.h"
#include "core/cluster.h"
#include "sim/time.h"

namespace rstore::bench {
namespace {

struct ScalePoint {
  uint32_t machines = 0;      // servers + clients (master not counted)
  uint32_t host_threads = 0;  // partitioned worker count (>= 1)
  uint64_t events = 0;
  uint64_t virtual_nanos = 0;
  double wall_seconds = 0;
};

// A fixed per-client workload whose aggregate grows linearly with the
// cluster: every client owns a region striped across every server and
// drives streams, scatters, and atomics against it. Lighter than the
// 12x12 saturation bench so the 128-machine point stays affordable.
ScalePoint RunScaleWorkload(uint32_t machines, uint32_t host_threads) {
  const uint32_t servers = machines / 2;
  const uint32_t clients = machines - servers;
  constexpr uint64_t kSlab = 256ULL << 10;
  const uint64_t region_bytes = servers * kSlab;  // one slab per server

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(rdet-wallclock) harness wall-time

  core::ClusterConfig cfg;
  cfg.memory_servers = servers;
  cfg.client_nodes = clients;
  cfg.server_capacity = clients * kSlab + (4ULL << 20);
  cfg.master.slab_size = kSlab;
  cfg.seed = 42;
  cfg.host_threads = host_threads;
  core::TestCluster cluster(cfg);

  for (uint32_t c = 0; c < clients; ++c) {
    cluster.SpawnClient(c, [c, region_bytes](core::RStoreClient& client) {
      const std::string name = "r" + std::to_string(c);
      if (!client.Ralloc(name, region_bytes).ok()) return;
      auto region = client.Rmap(name);
      if (!region.ok()) return;
      auto buf = client.AllocBuffer(region_bytes);
      if (!buf.ok()) return;

      // Streaming: two overlapped full-region passes each way.
      std::vector<core::IoFuture> futures;
      for (int pass = 0; pass < 2; ++pass) {
        auto w = (*region)->WriteAsync(0, buf->data);
        if (!w.ok()) return;
        futures.push_back(std::move(*w));
      }
      for (auto& f : futures) (void)f.Wait();
      futures.clear();
      for (int pass = 0; pass < 2; ++pass) {
        auto r = (*region)->ReadAsync(0, buf->data);
        if (!r.ok()) return;
        futures.push_back(std::move(*r));
      }
      for (auto& f : futures) (void)f.Wait();

      // Scatter: small vectored segments striding the slab table.
      constexpr int kSegments = 16;
      std::vector<core::IoVec> segs(kSegments);
      const uint64_t stride = region_bytes / kSegments;
      for (int s = 0; s < kSegments; ++s) {
        segs[s] = {static_cast<uint64_t>(s) * stride,
                   buf->begin() + static_cast<uint64_t>(s) * stride, 2048};
      }
      auto rv = (*region)->ReadV(segs);
      if (!rv.ok()) return;
      (void)rv->Wait();
      auto wv = (*region)->WriteV(segs);
      if (!wv.ok()) return;
      (void)wv->Wait();

      // Atomics: contended FetchAdds on slab 0.
      for (int i = 0; i < 8; ++i) {
        (void)(*region)->FetchAdd(0, 1);
      }
    });
  }
  cluster.sim().Run();

  ScalePoint p;
  p.machines = machines;
  p.host_threads = host_threads;
  p.events = cluster.sim().events_processed();
  p.virtual_nanos = cluster.sim().NowNanos();
  p.wall_seconds =
      // NOLINTNEXTLINE(rdet-wallclock): harness wall-time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return p;
}

}  // namespace
}  // namespace rstore::bench

int main() {
  rstore::SetLogLevel(rstore::LogLevel::kWarn);

#if defined(__GLIBC__)
  (void)mallopt(M_MMAP_THRESHOLD, 256 << 20);
  (void)mallopt(M_TRIM_THRESHOLD, -1);
#endif

  constexpr uint32_t kMachineSweep[] = {12, 32, 64, 128};
  constexpr uint32_t kThreadSweep[] = {1, 2, 4, 8};
  const unsigned host_cores = std::thread::hardware_concurrency();

  // Warmup: fault in pooled buffers and the allocator's retained heap.
  (void)rstore::bench::RunScaleWorkload(12, 1);

  std::vector<rstore::bench::ScalePoint> points;
  int rc = 0;
  for (uint32_t machines : kMachineSweep) {
    uint64_t ref_vnanos = 0;
    uint64_t ref_events = 0;
    for (uint32_t threads : kThreadSweep) {
      auto p = rstore::bench::RunScaleWorkload(machines, threads);
      std::printf("machines=%3u threads=%u: %.3fs wall, %" PRIu64
                  " events, %.2fM events/s, vtime %.6fs\n",
                  machines, threads, p.wall_seconds, p.events,
                  static_cast<double>(p.events) / p.wall_seconds / 1e6,
                  rstore::sim::ToSeconds(p.virtual_nanos));
      if (threads == kThreadSweep[0]) {
        ref_vnanos = p.virtual_nanos;
        ref_events = p.events;
      } else if (p.virtual_nanos != ref_vnanos || p.events != ref_events) {
        std::fprintf(stderr,
                     "FATAL: machines=%u threads=%u diverged: vnanos %" PRIu64
                     " vs %" PRIu64 ", events %" PRIu64 " vs %" PRIu64 "\n",
                     machines, threads, p.virtual_nanos, ref_vnanos,
                     p.events, ref_events);
        rc = 1;
      }
      points.push_back(p);
    }
  }

  FILE* f = std::fopen("BENCH_scaling.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"mixed stream+scatter+atomics, half "
                 "servers half clients\",\n"
                 "  \"host_cores\": %u,\n"
                 "  \"deterministic\": %s,\n"
                 "  \"points\": [\n",
                 host_cores, rc == 0 ? "true" : "false");
    for (size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(f,
                   "    {\"machines\": %u, \"host_threads\": %u, "
                   "\"events\": %" PRIu64 ", \"virtual_seconds\": %.6f, "
                   "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f}%s\n",
                   p.machines, p.host_threads, p.events,
                   rstore::sim::ToSeconds(p.virtual_nanos), p.wall_seconds,
                   static_cast<double>(p.events) / p.wall_seconds,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_scaling.json\n");
  }
  return rc;
}
