// Shared plumbing for the experiment benchmarks.
//
// Every benchmark runs a fresh simulated cluster and reports *virtual*
// time: wall-clock on the host is meaningless, so benchmarks use
// google-benchmark's manual-time mode with the simulation clock, and the
// interesting figures (Gb/s, microseconds, speedups) appear as counters.
// Each binary prints the series of exactly one paper experiment; the
// mapping to the paper's tables/figures lives in DESIGN.md and the
// measured-vs-paper record in EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>

#include "cache/region_cache.h"
#include "common/log.h"
#include "core/cluster.h"
#include "sim/time.h"

namespace rstore::bench {

// Runs `body` on client 0 of a fresh cluster and returns the virtual time
// it spent inside the innermost Measure() bracket.
class Stopwatch {
 public:
  void Start() { start_ = sim::Now(); }
  void Stop() { elapsed_ += sim::Now() - start_; }
  [[nodiscard]] sim::Nanos elapsed() const noexcept { return elapsed_; }
  [[nodiscard]] double seconds() const noexcept {
    return sim::ToSeconds(elapsed_);
  }

 private:
  sim::Nanos start_ = 0;
  sim::Nanos elapsed_ = 0;
};

// Applies one simulated-time measurement to a manual-time benchmark
// iteration.
inline void ReportVirtualTime(benchmark::State& state, double seconds) {
  state.SetIterationTime(seconds);
}

// Publishes a client's region-cache counters; aggregate stats from every
// participating client before calling (counters are totals, hit_rate is
// hits / (hits + misses)).
inline void ReportCacheCounters(benchmark::State& state,
                                const cache::CacheStats& stats) {
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_fills"] = static_cast<double>(stats.fills);
  state.counters["cache_evictions"] = static_cast<double>(stats.evictions);
  state.counters["cache_bypass"] = static_cast<double>(stats.bypass_reads);
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
}

}  // namespace rstore::bench

// BENCHMARK_MAIN with the cluster's INFO chatter silenced.
#define RSTORE_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                           \
    ::rstore::SetLogLevel(::rstore::LogLevel::kWarn);         \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    return 0;                                                 \
  }
