// Shared plumbing for the experiment benchmarks.
//
// Every benchmark runs a fresh simulated cluster and reports *virtual*
// time: wall-clock on the host is meaningless, so benchmarks use
// google-benchmark's manual-time mode with the simulation clock, and the
// interesting figures (Gb/s, microseconds, speedups) appear as counters.
// Each binary prints the series of exactly one paper experiment; the
// mapping to the paper's tables/figures lives in DESIGN.md and the
// measured-vs-paper record in EXPERIMENTS.md.
// Telemetry flags (stripped before google-benchmark sees argv):
//
//   --json <path>   attach an obs::Telemetry to every cluster the binary
//                   builds (via ActiveTelemetry()) and write a JSON file
//                   with the run results and the merged metrics registry.
//   --trace <path>  additionally enable span tracing and export a Chrome
//                   trace_event file (chrome://tracing, Perfetto).
//
// Without either flag ActiveTelemetry() is null and the benchmarks run
// exactly as before — virtual times are bit-identical either way (see
// obs/metrics.h's probe-effect rule).
//
//   --explore <policy>:<seed>:<runs>[:<max_delay_ns>]
//                   run the whole binary under schedule exploration: every
//                   Simulation attaches a SchedulePolicy from the spec (seed
//                   cycles across runs) plus the happens-before checker.
//                   Implemented by exporting RSTORE_EXPLORE/RSTORE_RCHECK,
//                   which src/sim reads per-Simulation; violating runs dump
//                   a replayable trace for tools/rexplore.
//
//   --rlin          run the whole binary under the per-key linearizability
//                   checker (RSTORE_RLIN, see check/lin.h). Recording is
//                   observe-only: virtual times are bit-identical with the
//                   flag off or on. A violation prints the counterexample,
//                   writes rlin_report.json (or into RSTORE_RLIN_OUT), and
//                   aborts.
//
//   --host-threads <N>
//                   run every simulation on the partitioned scheduler with
//                   N host worker threads (RSTORE_HOST_THREADS). Virtual
//                   times are bit-identical to the legacy scheduler for
//                   every N; only host wall-clock changes.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/region_cache.h"
#include "common/log.h"
#include "core/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/time.h"

namespace rstore::bench {

// Runs `body` on client 0 of a fresh cluster and returns the virtual time
// it spent inside the innermost Measure() bracket.
class Stopwatch {
 public:
  void Start() { start_ = sim::Now(); }
  void Stop() { elapsed_ += sim::Now() - start_; }
  [[nodiscard]] sim::Nanos elapsed() const noexcept { return elapsed_; }
  [[nodiscard]] double seconds() const noexcept {
    return sim::ToSeconds(elapsed_);
  }

 private:
  sim::Nanos start_ = 0;
  sim::Nanos elapsed_ = 0;
};

// Applies one simulated-time measurement to a manual-time benchmark
// iteration.
inline void ReportVirtualTime(benchmark::State& state, double seconds) {
  state.SetIterationTime(seconds);
}

// Publishes a client's region-cache counters; aggregate stats from every
// participating client before calling (counters are totals, hit_rate is
// hits / (hits + misses)).
inline void ReportCacheCounters(benchmark::State& state,
                                const cache::CacheStats& stats) {
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_fills"] = static_cast<double>(stats.fills);
  state.counters["cache_evictions"] = static_cast<double>(stats.evictions);
  state.counters["cache_bypass"] = static_cast<double>(stats.bypass_reads);
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
}

// ---------------------------------------------------------------------------
// Telemetry plumbing (--json / --trace)
// ---------------------------------------------------------------------------

struct ObsConfig {
  std::string binary_name;
  std::string json_path;
  std::string trace_path;
};

inline ObsConfig& GetObsConfig() {
  static ObsConfig config;
  return config;
}

// Shared workload-shape grammar for the serving benchmarks (E9/E11/E13):
//
//   --offered-load <ops_per_s>   aggregate open-loop arrival rate
//   --sessions <n>               logical client sessions (or clients,
//                                for closed-loop benchmarks)
//   --duration <ms>              measurement window, milliseconds
//   --skew <theta>               zipf skew over the key space
//
// Unset fields keep each benchmark's own default; a closed-loop benchmark
// documents which fields it honors (E11 ignores --offered-load).
struct LoadFlags {
  double offered_load = -1.0;  // < 0 = benchmark default
  int64_t sessions = -1;
  double duration_ms = -1.0;
  double skew = -1.0;
  // --rtrace <off|sampled|full>: per-op causal tracing mode for the load
  // engine (see obs/rtrace.h). Empty keeps the benchmark's default.
  std::string rtrace;
  // --attribution <path>: where the rtrace attribution JSON report lands
  // (benchmarks with rtrace support write a default path when unset).
  std::string attribution;
};

inline LoadFlags& GetLoadFlags() {
  static LoadFlags flags;
  return flags;
}

// The binary-wide telemetry sink, or null when neither flag was given.
// Benchmarks pass this as ClusterConfig::telemetry (or AttachTelemetry it
// onto hand-built simulations); one sink aggregates every iteration.
inline obs::Telemetry* ActiveTelemetry() {
  ObsConfig& config = GetObsConfig();
  if (config.json_path.empty() && config.trace_path.empty()) return nullptr;
  static obs::Telemetry telemetry;
  telemetry.EnableTracing(!config.trace_path.empty());
  return &telemetry;
}

// Strips --json/--trace/--rcheck/--rlin/--explore (space- or =-separated)
// from argv before benchmark::Initialize, which rejects unknown flags.
inline void ParseObsArgs(int* argc, char** argv) {
  ObsConfig& config = GetObsConfig();
  if (*argc > 0) {
    const char* slash = std::strrchr(argv[0], '/');
    config.binary_name = slash != nullptr ? slash + 1 : argv[0];
  }
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if ((arg == "--json" || arg == "--trace") && i + 1 < *argc) {
      (arg == "--json" ? config.json_path : config.trace_path) = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--trace=", 0) == 0) {
      config.trace_path = std::string(arg.substr(8));
    } else if ((arg == "--host-threads" && i + 1 < *argc) ||
               arg.rfind("--host-threads=", 0) == 0) {
      // Partitioned scheduler: every Simulation the binary constructs
      // reads RSTORE_HOST_THREADS in its constructor (same env-var
      // mechanism as --rcheck). N >= 1 turns on per-node event-loop
      // partitions dispatched by N host worker threads; virtual times are
      // bit-identical for every N (and to N=0, the legacy scheduler).
      const std::string n = arg == "--host-threads"
                                ? std::string(argv[++i])
                                : std::string(arg.substr(15));
      setenv("RSTORE_HOST_THREADS", n.c_str(), /*overwrite=*/1);
    } else if (arg == "--rcheck") {
      // Runs the whole binary under the happens-before checker. Set as an
      // env var (not a global) because every Simulation the benchmarks
      // construct reads RSTORE_RCHECK in its constructor.
      setenv("RSTORE_RCHECK", "1", /*overwrite=*/1);
    } else if (arg == "--rlin") {
      // Runs the whole binary under the per-key linearizability checker
      // (see check/lin.h); same env-var mechanism as --rcheck. A violation
      // prints the counterexample and aborts on Simulation shutdown.
      setenv("RSTORE_RLIN", "1", /*overwrite=*/1);
    } else if ((arg == "--explore" && i + 1 < *argc) ||
               arg.rfind("--explore=", 0) == 0) {
      // Schedule exploration, same env-var mechanism as --rcheck: every
      // Simulation reads RSTORE_EXPLORE in its constructor and attaches a
      // policy built from the spec. Exploration without the checker finds
      // nothing, so --explore implies --rcheck.
      const std::string spec = arg == "--explore"
                                   ? std::string(argv[++i])
                                   : std::string(arg.substr(10));
      setenv("RSTORE_EXPLORE", spec.c_str(), /*overwrite=*/1);
      setenv("RSTORE_RCHECK", "1", /*overwrite=*/1);
    } else if ((arg == "--offered-load" && i + 1 < *argc) ||
               arg.rfind("--offered-load=", 0) == 0) {
      GetLoadFlags().offered_load = std::atof(
          arg == "--offered-load" ? argv[++i] : arg.substr(15).data());
    } else if ((arg == "--sessions" && i + 1 < *argc) ||
               arg.rfind("--sessions=", 0) == 0) {
      GetLoadFlags().sessions = std::atoll(
          arg == "--sessions" ? argv[++i] : arg.substr(11).data());
    } else if ((arg == "--duration" && i + 1 < *argc) ||
               arg.rfind("--duration=", 0) == 0) {
      GetLoadFlags().duration_ms = std::atof(
          arg == "--duration" ? argv[++i] : arg.substr(11).data());
    } else if ((arg == "--skew" && i + 1 < *argc) ||
               arg.rfind("--skew=", 0) == 0) {
      GetLoadFlags().skew =
          std::atof(arg == "--skew" ? argv[++i] : arg.substr(7).data());
    } else if ((arg == "--rtrace" && i + 1 < *argc) ||
               arg.rfind("--rtrace=", 0) == 0) {
      GetLoadFlags().rtrace =
          arg == "--rtrace" ? argv[++i] : std::string(arg.substr(9));
    } else if ((arg == "--attribution" && i + 1 < *argc) ||
               arg.rfind("--attribution=", 0) == 0) {
      GetLoadFlags().attribution =
          arg == "--attribution" ? argv[++i] : std::string(arg.substr(14));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

// One finished benchmark run, captured for the --json report.
struct CollectedRun {
  std::string name;
  int64_t iterations = 0;
  double real_time_s = 0;  // per-iteration virtual time (manual time)
  std::vector<std::pair<std::string, double>> counters;
};

inline std::vector<CollectedRun>& CollectedRuns() {
  static std::vector<CollectedRun> runs;
  return runs;
}

// Console reporter that also records each run for the JSON report.
class RunCollector : public benchmark::ConsoleReporter {
 public:
  using ConsoleReporter::ConsoleReporter;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      CollectedRun c;
      c.name = run.benchmark_name();
      c.iterations = run.iterations;
      c.real_time_s = run.iterations > 0
                          ? run.real_accumulated_time /
                                static_cast<double>(run.iterations)
                          : 0.0;
      for (const auto& [key, counter] : run.counters) {
        c.counters.emplace_back(key, static_cast<double>(counter));
      }
      CollectedRuns().push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

// Writes the --json report ({binary, runs, metrics}) and the --trace
// Chrome trace file. Called by RSTORE_BENCH_MAIN after the run.
inline int WriteObsOutputs() {
  const ObsConfig& config = GetObsConfig();
  obs::Telemetry* telemetry = ActiveTelemetry();
  int rc = 0;
  if (!config.json_path.empty() && telemetry != nullptr) {
    std::string out = "{\"binary\":";
    obs::AppendJsonString(out, config.binary_name);
    out += ",\"runs\":[";
    bool first = true;
    for (const CollectedRun& run : CollectedRuns()) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      obs::AppendJsonString(out, run.name);
      out += ",\"iterations\":" + std::to_string(run.iterations);
      char buf[64];
      std::snprintf(buf, sizeof buf, ",\"real_time_s\":%.9g",
                    run.real_time_s);
      out += buf;
      out += ",\"counters\":{";
      bool cfirst = true;
      for (const auto& [key, value] : run.counters) {
        if (!cfirst) out += ',';
        cfirst = false;
        obs::AppendJsonString(out, key);
        std::snprintf(buf, sizeof buf, ":%.17g", value);
        out += buf;
      }
      out += "}}";
    }
    out += "],\"metrics\":" + telemetry->DumpMetricsJson() + "}\n";
    std::FILE* f = std::fopen(config.json_path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
      std::fprintf(stderr, "failed to write %s\n", config.json_path.c_str());
      rc = 1;
    }
    if (f != nullptr) std::fclose(f);
  }
  if (!config.trace_path.empty() && telemetry != nullptr) {
    Status st = telemetry->WriteTrace(config.trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   config.trace_path.c_str(), st.message().c_str());
      rc = 1;
    }
    if (telemetry->tracer().dropped() > 0) {
      std::fprintf(stderr,
                   "trace capacity reached: %llu events dropped\n",
                   static_cast<unsigned long long>(
                       telemetry->tracer().dropped()));
    }
  }
  return rc;
}

}  // namespace rstore::bench

// BENCHMARK_MAIN with the cluster's INFO chatter silenced, plus the
// --json/--trace telemetry flags (see the header comment).
#define RSTORE_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                           \
    ::rstore::SetLogLevel(::rstore::LogLevel::kWarn);         \
    ::rstore::bench::ParseObsArgs(&argc, argv);               \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::rstore::bench::RunCollector reporter;                   \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);           \
    const int obs_rc = ::rstore::bench::WriteObsOutputs();    \
    ::benchmark::Shutdown();                                  \
    return obs_rc;                                            \
  }
