// Wall-clock harness: how fast does the *simulator itself* run?
//
// Every other benchmark in this directory reports virtual time — the
// modelled cluster's performance. This one reports host time: it drives a
// fixed 12-server / 12-client saturation workload (streaming reads and
// writes, scattered vectored IO, remote atomics — the same primitives
// E1–E11 lean on) and measures how many scheduler events and simulated
// bytes the simulator core pushes through per real second. That is the
// number that bounds how large a workload any future experiment can
// afford, so it is tracked as a trajectory: the result is written to
// BENCH_wallclock.json for comparison across PRs.
//
// The workload is deterministic in virtual time (fixed seed; the
// determinism test in tests/ asserts as much), so runs are comparable:
// only the wall-clock denominator varies between hosts.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/log.h"
#include "core/cluster.h"
#include "sim/time.h"

namespace rstore::bench {
namespace {

struct WallclockResult {
  uint64_t events = 0;          // scheduler events dispatched
  uint64_t slices = 0;          // events that were OS thread handoffs
  uint64_t sim_bytes = 0;       // bytes moved through the fabric
  uint64_t virtual_nanos = 0;   // exact end-of-run virtual clock
  double virtual_seconds = 0;   // simulated time covered
  double wall_seconds = 0;      // host time spent
};

// One full cluster lifetime: build, run to quiescence, tear down. Setup
// and teardown are included — they are real simulator work (thread spawn
// and unwind) that any experiment pays too. host_threads = 0 runs the
// legacy single-loop scheduler; N >= 1 runs per-node partitions on N host
// worker threads (virtual time must not depend on N — asserted in main).
WallclockResult RunSaturationWorkload(uint32_t host_threads = 0) {
  constexpr uint32_t kMachines = 12;
  constexpr uint64_t kSlab = 1ULL << 20;            // 1 MiB striping
  constexpr uint64_t kRegionBytes = kMachines * kSlab;  // one slab/server
  constexpr int kStreamPasses = 6;
  constexpr int kScatterSegments = 64;
  constexpr uint64_t kScatterBytes = 4096;
  constexpr int kAtomicOps = 32;

  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(rdet-wallclock) harness wall-time

  core::ClusterConfig cfg;
  cfg.memory_servers = kMachines;
  cfg.client_nodes = kMachines;
  cfg.server_capacity = kMachines * kSlab + (8ULL << 20);
  cfg.master.slab_size = kSlab;
  cfg.seed = 42;
  cfg.host_threads = host_threads;
  core::TestCluster cluster(cfg);

  for (uint32_t c = 0; c < kMachines; ++c) {
    cluster.SpawnClient(c, [c](core::RStoreClient& client) {
      const std::string name = "r" + std::to_string(c);
      if (!client.Ralloc(name, kRegionBytes).ok()) return;
      auto region = client.Rmap(name);
      if (!region.ok()) return;
      auto buf = client.AllocBuffer(kRegionBytes);
      if (!buf.ok()) return;

      // Streaming phase: overlapped full-region writes then reads, the
      // all-to-all that saturates every port (E3's shape).
      std::vector<core::IoFuture> futures;
      for (int pass = 0; pass < kStreamPasses; ++pass) {
        auto w = (*region)->WriteAsync(0, buf->data);
        if (!w.ok()) return;
        futures.push_back(std::move(*w));
      }
      for (auto& f : futures) (void)f.Wait();
      futures.clear();
      for (int pass = 0; pass < kStreamPasses; ++pass) {
        auto r = (*region)->ReadAsync(0, buf->data);
        if (!r.ok()) return;
        futures.push_back(std::move(*r));
      }
      for (auto& f : futures) (void)f.Wait();

      // Scatter phase: many small vectored segments striding the slab
      // table — the event-heavy small-message pattern (E9/E11's shape).
      std::vector<core::IoVec> segs(kScatterSegments);
      const uint64_t stride = kRegionBytes / kScatterSegments;
      for (int pass = 0; pass < 4; ++pass) {
        for (int s = 0; s < kScatterSegments; ++s) {
          segs[s] = {static_cast<uint64_t>(s) * stride,
                     buf->begin() + static_cast<uint64_t>(s) * stride,
                     kScatterBytes};
        }
        auto rv = (*region)->ReadV(segs);
        if (!rv.ok()) return;
        (void)rv->Wait();
        auto wv = (*region)->WriteV(segs);
        if (!wv.ok()) return;
        (void)wv->Wait();
      }

      // Atomic phase: contended FetchAdds on slab 0 (synchronization
      // primitives under Carafe barriers / RSort phase turns).
      for (int i = 0; i < kAtomicOps; ++i) {
        (void)(*region)->FetchAdd(0, 1);
      }
    });
  }
  cluster.sim().Run();

  WallclockResult r;
  r.slices = cluster.sim().thread_slices();
  r.events = cluster.sim().events_processed();
  r.sim_bytes = cluster.net().fabric().total_bytes();
  r.virtual_nanos = cluster.sim().NowNanos();
  r.virtual_seconds = sim::ToSeconds(cluster.sim().NowNanos());
  r.wall_seconds =
      // NOLINTNEXTLINE(rdet-wallclock): harness wall-time
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace
}  // namespace rstore::bench

int main() {
  rstore::SetLogLevel(rstore::LogLevel::kWarn);

#if defined(__GLIBC__)
  // Harness tuning: keep large malloc blocks (recv rings, staging
  // vectors) in the retained heap instead of mmap/munmap per cluster
  // lifetime, so repetitions after the first reuse warm pages rather
  // than re-faulting them. Affects measurement noise, not the simulator.
  (void)mallopt(M_MMAP_THRESHOLD, 256 << 20);
  (void)mallopt(M_TRIM_THRESHOLD, -1);
#endif

  // One untimed warmup rep faults in the pooled buffer mappings and the
  // allocator's retained heap, so every measured repetition sees the same
  // warm-memory conditions (the steady state any long experiment runs in).
  (void)rstore::bench::RunSaturationWorkload();

  // Best-of-N: the virtual-time work is identical each repetition; the
  // minimum wall time is the least-noisy estimate of simulator speed.
  constexpr int kReps = 3;
  rstore::bench::WallclockResult best;
  for (int i = 0; i < kReps; ++i) {
    auto r = rstore::bench::RunSaturationWorkload();
    std::printf("rep %d: %.3fs wall, %" PRIu64 " events, %.2fM events/s\n",
                i, r.wall_seconds, r.events,
                static_cast<double>(r.events) / r.wall_seconds / 1e6);
    if (best.wall_seconds == 0 || r.wall_seconds < best.wall_seconds) {
      best = r;
    }
  }

  // Partitioned-scheduler rows: the same workload on per-node event-loop
  // partitions with 1 and 8 host worker threads. Virtual time must be
  // bit-identical across worker counts (the tentpole determinism claim);
  // the wall-clock ratio is the parallel speedup on this host.
  const unsigned host_cores = std::thread::hardware_concurrency();
  constexpr uint32_t kThreadRows[] = {1, 8};
  rstore::bench::WallclockResult part[2];
  for (size_t t = 0; t < 2; ++t) {
    for (int i = 0; i < kReps; ++i) {
      auto r = rstore::bench::RunSaturationWorkload(kThreadRows[t]);
      std::printf("threads=%u rep %d: %.3fs wall, %" PRIu64
                  " events, vtime %.6fs\n",
                  kThreadRows[t], i, r.wall_seconds, r.events,
                  r.virtual_seconds);
      if (part[t].wall_seconds == 0 ||
          r.wall_seconds < part[t].wall_seconds) {
        part[t] = r;
      }
    }
  }
  if (part[0].virtual_nanos != part[1].virtual_nanos ||
      part[0].events != part[1].events) {
    std::fprintf(stderr,
                 "FATAL: partitioned run diverged across host-thread "
                 "counts: vnanos %" PRIu64 " vs %" PRIu64 ", events %" PRIu64
                 " vs %" PRIu64 "\n",
                 part[0].virtual_nanos, part[1].virtual_nanos,
                 part[0].events, part[1].events);
    return 1;
  }

  const double events_per_sec =
      static_cast<double>(best.events) / best.wall_seconds;
  const double sim_bytes_per_sec =
      static_cast<double>(best.sim_bytes) / best.wall_seconds;

  std::printf("\nwallclock harness (12x12 saturation workload)\n");
  std::printf("  events dispatched : %" PRIu64 "\n", best.events);
  std::printf("  thread slices     : %" PRIu64 "\n", best.slices);
  std::printf("  simulated bytes   : %" PRIu64 "\n", best.sim_bytes);
  std::printf("  virtual seconds   : %.6f\n", best.virtual_seconds);
  std::printf("  wall seconds      : %.3f\n", best.wall_seconds);
  std::printf("  events/sec        : %.3fM\n", events_per_sec / 1e6);
  std::printf("  sim bytes/sec     : %.1f MB/s\n", sim_bytes_per_sec / 1e6);
  for (size_t t = 0; t < 2; ++t) {
    std::printf("  partitioned x%u    : %.3fs wall (%.2fx vs legacy)\n",
                kThreadRows[t], part[t].wall_seconds,
                best.wall_seconds / part[t].wall_seconds);
  }

  // The tier-1 suite cannot be timed from inside one of its own build's
  // binaries; CI (or the operator) passes it in when known.
  double suite_seconds = 0;
  if (const char* env = std::getenv("RSTORE_TIER1_SUITE_SECONDS")) {
    suite_seconds = std::atof(env);
  }

  FILE* f = std::fopen("BENCH_wallclock.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": \"12x12 saturation (stream + scatter + "
                 "atomics)\",\n"
                 "  \"events_dispatched\": %" PRIu64 ",\n"
                 "  \"thread_slices\": %" PRIu64 ",\n"
                 "  \"simulated_bytes\": %" PRIu64 ",\n"
                 "  \"virtual_seconds\": %.6f,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"events_per_sec\": %.0f,\n"
                 "  \"sim_bytes_per_real_sec\": %.0f,\n"
                 "  \"tier1_suite_seconds\": %.2f,\n"
                 "  \"host_cores\": %u,\n"
                 "  \"partitioned_note\": \"speedup_vs_legacy is only "
                 "meaningful when host_cores > host_threads; CI runners are "
                 "often 1-2 cores, where the epoch workers time-slice one "
                 "core and the rows below measure overhead, not scaling\",\n"
                 "  \"partitioned\": [\n"
                 "    {\"host_threads\": %u, \"wall_seconds\": %.3f,\n"
                 "     \"events_per_sec\": %.0f,\n"
                 "     \"speedup_vs_legacy\": %.3f},\n"
                 "    {\"host_threads\": %u, \"wall_seconds\": %.3f,\n"
                 "     \"events_per_sec\": %.0f,\n"
                 "     \"speedup_vs_legacy\": %.3f}\n"
                 "  ],\n"
                 "  \"baseline_pre_batching\": {\n"
                 "    \"wall_seconds\": 0.688,\n"
                 "    \"events_dispatched\": 56424,\n"
                 "    \"sim_bytes_per_real_sec\": 2671900000,\n"
                 "    \"tier1_suite_seconds\": 12.70\n"
                 "  }\n"
                 "}\n",
                 best.events, best.slices, best.sim_bytes,
                 best.virtual_seconds, best.wall_seconds, events_per_sec,
                 sim_bytes_per_sec, suite_seconds, host_cores,
                 kThreadRows[0], part[0].wall_seconds,
                 static_cast<double>(part[0].events) / part[0].wall_seconds,
                 best.wall_seconds / part[0].wall_seconds,
                 kThreadRows[1], part[1].wall_seconds,
                 static_cast<double>(part[1].events) / part[1].wall_seconds,
                 best.wall_seconds / part[1].wall_seconds);
    std::fclose(f);
    std::printf("  wrote BENCH_wallclock.json\n");
  }
  return 0;
}
