file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_placement.dir/bench_e10_placement.cc.o"
  "CMakeFiles/bench_e10_placement.dir/bench_e10_placement.cc.o.d"
  "bench_e10_placement"
  "bench_e10_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
