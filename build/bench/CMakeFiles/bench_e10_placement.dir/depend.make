# Empty dependencies file for bench_e10_placement.
# This may be replaced when dependencies are built.
