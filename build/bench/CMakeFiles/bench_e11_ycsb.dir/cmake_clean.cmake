file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_ycsb.dir/bench_e11_ycsb.cc.o"
  "CMakeFiles/bench_e11_ycsb.dir/bench_e11_ycsb.cc.o.d"
  "bench_e11_ycsb"
  "bench_e11_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
