file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_control_path.dir/bench_e2_control_path.cc.o"
  "CMakeFiles/bench_e2_control_path.dir/bench_e2_control_path.cc.o.d"
  "bench_e2_control_path"
  "bench_e2_control_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_control_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
