# Empty dependencies file for bench_e2_control_path.
# This may be replaced when dependencies are built.
