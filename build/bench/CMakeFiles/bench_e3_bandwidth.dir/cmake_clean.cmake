file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_bandwidth.dir/bench_e3_bandwidth.cc.o"
  "CMakeFiles/bench_e3_bandwidth.dir/bench_e3_bandwidth.cc.o.d"
  "bench_e3_bandwidth"
  "bench_e3_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
