# Empty dependencies file for bench_e3_bandwidth.
# This may be replaced when dependencies are built.
