file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_pagerank.dir/bench_e4_pagerank.cc.o"
  "CMakeFiles/bench_e4_pagerank.dir/bench_e4_pagerank.cc.o.d"
  "bench_e4_pagerank"
  "bench_e4_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
