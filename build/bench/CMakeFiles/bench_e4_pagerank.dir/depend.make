# Empty dependencies file for bench_e4_pagerank.
# This may be replaced when dependencies are built.
