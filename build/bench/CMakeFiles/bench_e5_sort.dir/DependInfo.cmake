
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e5_sort.cc" "bench/CMakeFiles/bench_e5_sort.dir/bench_e5_sort.cc.o" "gcc" "bench/CMakeFiles/bench_e5_sort.dir/bench_e5_sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rstore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/carafe/CMakeFiles/carafe.dir/DependInfo.cmake"
  "/root/repo/build/src/rsort/CMakeFiles/rsort.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/verbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
