file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_sort.dir/bench_e5_sort.cc.o"
  "CMakeFiles/bench_e5_sort.dir/bench_e5_sort.cc.o.d"
  "bench_e5_sort"
  "bench_e5_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
