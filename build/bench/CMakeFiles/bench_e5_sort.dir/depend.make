# Empty dependencies file for bench_e5_sort.
# This may be replaced when dependencies are built.
