file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_cpu.dir/bench_e6_cpu.cc.o"
  "CMakeFiles/bench_e6_cpu.dir/bench_e6_cpu.cc.o.d"
  "bench_e6_cpu"
  "bench_e6_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
