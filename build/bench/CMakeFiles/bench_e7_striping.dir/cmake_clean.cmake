file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_striping.dir/bench_e7_striping.cc.o"
  "CMakeFiles/bench_e7_striping.dir/bench_e7_striping.cc.o.d"
  "bench_e7_striping"
  "bench_e7_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
