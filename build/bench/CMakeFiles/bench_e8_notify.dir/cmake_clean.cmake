file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_notify.dir/bench_e8_notify.cc.o"
  "CMakeFiles/bench_e8_notify.dir/bench_e8_notify.cc.o.d"
  "bench_e8_notify"
  "bench_e8_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
