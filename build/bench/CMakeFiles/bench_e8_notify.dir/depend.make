# Empty dependencies file for bench_e8_notify.
# This may be replaced when dependencies are built.
