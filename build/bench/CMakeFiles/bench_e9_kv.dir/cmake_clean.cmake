file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_kv.dir/bench_e9_kv.cc.o"
  "CMakeFiles/bench_e9_kv.dir/bench_e9_kv.cc.o.d"
  "bench_e9_kv"
  "bench_e9_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
