file(REMOVE_RECURSE
  "CMakeFiles/kv_sort.dir/kv_sort.cpp.o"
  "CMakeFiles/kv_sort.dir/kv_sort.cpp.o.d"
  "kv_sort"
  "kv_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
