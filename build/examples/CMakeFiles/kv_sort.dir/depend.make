# Empty dependencies file for kv_sort.
# This may be replaced when dependencies are built.
