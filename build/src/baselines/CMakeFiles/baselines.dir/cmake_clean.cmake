file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/bsp/msg_bsp.cc.o"
  "CMakeFiles/baselines.dir/bsp/msg_bsp.cc.o.d"
  "CMakeFiles/baselines.dir/rpcstore/rpcstore.cc.o"
  "CMakeFiles/baselines.dir/rpcstore/rpcstore.cc.o.d"
  "CMakeFiles/baselines.dir/terasort/terasort.cc.o"
  "CMakeFiles/baselines.dir/terasort/terasort.cc.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
