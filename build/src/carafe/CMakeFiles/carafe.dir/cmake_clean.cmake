file(REMOVE_RECURSE
  "CMakeFiles/carafe.dir/engine.cc.o"
  "CMakeFiles/carafe.dir/engine.cc.o.d"
  "CMakeFiles/carafe.dir/graph.cc.o"
  "CMakeFiles/carafe.dir/graph.cc.o.d"
  "CMakeFiles/carafe.dir/storage.cc.o"
  "CMakeFiles/carafe.dir/storage.cc.o.d"
  "libcarafe.a"
  "libcarafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
