file(REMOVE_RECURSE
  "libcarafe.a"
)
