# Empty dependencies file for carafe.
# This may be replaced when dependencies are built.
