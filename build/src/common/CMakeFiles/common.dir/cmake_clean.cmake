file(REMOVE_RECURSE
  "CMakeFiles/common.dir/log.cc.o"
  "CMakeFiles/common.dir/log.cc.o.d"
  "CMakeFiles/common.dir/rng.cc.o"
  "CMakeFiles/common.dir/rng.cc.o.d"
  "CMakeFiles/common.dir/stats.cc.o"
  "CMakeFiles/common.dir/stats.cc.o.d"
  "CMakeFiles/common.dir/status.cc.o"
  "CMakeFiles/common.dir/status.cc.o.d"
  "libcommon.a"
  "libcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
