
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/rstore_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/client.cc.o.d"
  "/root/repo/src/core/master.cc" "src/core/CMakeFiles/rstore_core.dir/master.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/master.cc.o.d"
  "/root/repo/src/core/memory_server.cc" "src/core/CMakeFiles/rstore_core.dir/memory_server.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/memory_server.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/rstore_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/rstore_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/verbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
