file(REMOVE_RECURSE
  "CMakeFiles/rstore_core.dir/client.cc.o"
  "CMakeFiles/rstore_core.dir/client.cc.o.d"
  "CMakeFiles/rstore_core.dir/master.cc.o"
  "CMakeFiles/rstore_core.dir/master.cc.o.d"
  "CMakeFiles/rstore_core.dir/memory_server.cc.o"
  "CMakeFiles/rstore_core.dir/memory_server.cc.o.d"
  "CMakeFiles/rstore_core.dir/types.cc.o"
  "CMakeFiles/rstore_core.dir/types.cc.o.d"
  "librstore_core.a"
  "librstore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
