# Empty compiler generated dependencies file for rstore_core.
# This may be replaced when dependencies are built.
