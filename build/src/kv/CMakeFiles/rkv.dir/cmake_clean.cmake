file(REMOVE_RECURSE
  "CMakeFiles/rkv.dir/kv.cc.o"
  "CMakeFiles/rkv.dir/kv.cc.o.d"
  "librkv.a"
  "librkv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rkv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
