file(REMOVE_RECURSE
  "librkv.a"
)
