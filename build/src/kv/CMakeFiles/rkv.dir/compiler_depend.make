# Empty compiler generated dependencies file for rkv.
# This may be replaced when dependencies are built.
