file(REMOVE_RECURSE
  "CMakeFiles/rpc.dir/rpc.cc.o"
  "CMakeFiles/rpc.dir/rpc.cc.o.d"
  "librpc.a"
  "librpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
