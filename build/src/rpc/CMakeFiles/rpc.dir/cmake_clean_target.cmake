file(REMOVE_RECURSE
  "librpc.a"
)
