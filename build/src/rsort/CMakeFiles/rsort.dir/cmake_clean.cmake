file(REMOVE_RECURSE
  "CMakeFiles/rsort.dir/records.cc.o"
  "CMakeFiles/rsort.dir/records.cc.o.d"
  "CMakeFiles/rsort.dir/rsort.cc.o"
  "CMakeFiles/rsort.dir/rsort.cc.o.d"
  "librsort.a"
  "librsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
