file(REMOVE_RECURSE
  "librsort.a"
)
