# Empty compiler generated dependencies file for rsort.
# This may be replaced when dependencies are built.
