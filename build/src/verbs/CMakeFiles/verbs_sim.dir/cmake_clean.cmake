file(REMOVE_RECURSE
  "CMakeFiles/verbs_sim.dir/verbs.cc.o"
  "CMakeFiles/verbs_sim.dir/verbs.cc.o.d"
  "libverbs_sim.a"
  "libverbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
