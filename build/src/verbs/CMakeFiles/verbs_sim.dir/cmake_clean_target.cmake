file(REMOVE_RECURSE
  "libverbs_sim.a"
)
