# Empty compiler generated dependencies file for verbs_sim.
# This may be replaced when dependencies are built.
