file(REMOVE_RECURSE
  "CMakeFiles/carafe_test.dir/carafe_test.cc.o"
  "CMakeFiles/carafe_test.dir/carafe_test.cc.o.d"
  "carafe_test"
  "carafe_test.pdb"
  "carafe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carafe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
