# Empty dependencies file for carafe_test.
# This may be replaced when dependencies are built.
