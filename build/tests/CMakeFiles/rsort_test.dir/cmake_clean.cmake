file(REMOVE_RECURSE
  "CMakeFiles/rsort_test.dir/rsort_test.cc.o"
  "CMakeFiles/rsort_test.dir/rsort_test.cc.o.d"
  "rsort_test"
  "rsort_test.pdb"
  "rsort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
