# Empty compiler generated dependencies file for rsort_test.
# This may be replaced when dependencies are built.
