// Failure-recovery example: replication, lease expiry, and failover.
//
// Allocates a 2-way replicated region, writes data, then kills the
// memory server holding the primary copy of the first slab. The master's
// lease sweeper notices, a fresh rmap promotes the surviving replica to
// primary, and the data reads back intact — while an unreplicated region
// on the same server becomes (observably) degraded.
//
// Run:  ./build/examples/failure_recovery
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cluster.h"

using namespace rstore;

int main() {
  SetLogLevel(LogLevel::kWarn);
  core::ClusterConfig config;
  config.memory_servers = 4;
  config.client_nodes = 1;
  config.server_capacity = 32ULL << 20;
  config.master.slab_size = 1ULL << 20;
  config.master.lease_timeout = sim::Millis(150);
  config.master.sweep_interval = sim::Millis(50);
  core::TestCluster cluster(config);

  cluster.RunClient([&](core::RStoreClient& client) {
    // One replicated and one unreplicated region.
    (void)client.Ralloc("durable", 4ULL << 20, /*copies=*/2);
    (void)client.Ralloc("fragile", 4ULL << 20, /*copies=*/1);
    auto durable = client.Rmap("durable");
    auto fragile = client.Rmap("fragile");
    auto buf = client.AllocBuffer(1ULL << 20);
    Rng rng(1);
    rng.Fill(buf->begin(), buf->size());
    (void)(*durable)->Write(0, buf->data);
    (void)(*fragile)->Write(0, buf->data);
    std::printf("wrote 1 MiB to 'durable' (2 copies) and 'fragile' (1 copy)\n");

    // Kill the server hosting both primaries' first slab.
    const uint32_t victim = (*durable)->desc().slabs[0].server_node;
    std::printf("killing memory server on node %u ...\n", victim);
    sim::CurrentNode().sim().KillNode(victim);
    sim::Sleep(sim::Millis(500));  // let the lease lapse

    auto stat = client.Stat();
    std::printf("cluster now has %u live servers\n", stat->live_servers);

    // Replicated region: a fresh map promotes the replica.
    auto recovered = client.Rmap("durable", false, /*fresh=*/true);
    if (recovered.ok()) {
      auto back = client.AllocBuffer(1ULL << 20);
      const sim::Nanos t0 = sim::Now();
      Status read = (*recovered)->Read(0, back->data);
      std::printf("'durable' remapped: primary moved to node %u; read %s "
                  "in %s — data %s\n",
                  (*recovered)->desc().slabs[0].server_node,
                  read.ok() ? "OK" : read.ToString().c_str(),
                  FormatDuration(sim::Now() - t0).c_str(),
                  std::memcmp(back->begin(), buf->begin(), buf->size()) == 0
                      ? "intact"
                      : "CORRUPT");
    } else {
      std::printf("'durable' remap failed: %s\n",
                  recovered.status().ToString().c_str());
    }

    // Unreplicated region on the dead server: clean, explicit failure.
    auto lost = client.Rmap("fragile", false, /*fresh=*/true);
    std::printf("'fragile' remap: %s\n",
                lost.ok() ? "unexpectedly OK"
                          : lost.status().ToString().c_str());

    // The cluster keeps serving new allocations on the survivors.
    Status fresh_alloc = client.Ralloc("after-failure", 8ULL << 20);
    std::printf("new allocation after the failure: %s\n",
                fresh_alloc.ToString().c_str());
  });
  return 0;
}
