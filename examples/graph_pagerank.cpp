// Carafe example: distributed PageRank over RStore.
//
// Generates a power-law (RMAT) graph, uploads it into the store, runs
// PageRank on 4 compute nodes with Carafe, checks the result against the
// single-machine reference, and prints the highest-ranked vertices plus
// the per-worker timing — the workload behind experiment E4.
//
// Run:  ./build/examples/graph_pagerank
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "common/log.h"
#include "common/stats.h"
#include "core/cluster.h"

using namespace rstore;

int main() {
  SetLogLevel(LogLevel::kWarn);
  constexpr uint32_t kWorkers = 4;
  constexpr uint32_t kIterations = 15;

  carafe::Graph graph = carafe::RmatGraph(/*scale=*/13, /*avg_degree=*/16.0,
                                          /*seed=*/2015);
  std::printf("graph: %llu vertices, %llu edges (RMAT scale 13)\n",
              static_cast<unsigned long long>(graph.num_vertices()),
              static_cast<unsigned long long>(graph.num_edges()));

  core::ClusterConfig config;
  config.memory_servers = 4;
  config.client_nodes = kWorkers;
  config.server_capacity = 64ULL << 20;
  config.master.slab_size = 1ULL << 20;
  core::TestCluster cluster(config);

  std::vector<double> ranks;
  sim::Nanos elapsed = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](core::RStoreClient& client) {
      if (w == 0) {
        if (!carafe::UploadGraph(client, "web", graph).ok()) return;
        (void)client.NotifyInc("uploaded");
      } else {
        (void)client.WaitNotify("uploaded", 1);
      }
      carafe::Worker worker(client, "web",
                            carafe::WorkerConfig{w, kWorkers, "demo"});
      if (!worker.Init().ok()) return;
      const sim::Nanos t0 = sim::Now();
      auto result = worker.PageRank({.iterations = kIterations});
      if (!result.ok()) {
        std::printf("worker %u failed: %s\n", w,
                    result.status().ToString().c_str());
        return;
      }
      if (w == 0) {
        ranks = std::move(*result);
        elapsed = sim::Now() - t0;
      }
    });
  }
  cluster.sim().Run();
  if (ranks.empty()) return 1;

  std::printf("PageRank: %u iterations on %u workers in %s (cluster time)\n",
              kIterations, kWorkers, FormatDuration(elapsed).c_str());

  // Validate against the single-machine reference.
  auto expected = carafe::ReferencePageRank(graph, kIterations);
  double max_err = 0;
  for (size_t v = 0; v < expected.size(); ++v) {
    max_err = std::max(max_err, std::abs(ranks[v] - expected[v]));
  }
  std::printf("max |distributed - reference| = %.2e  (%s)\n", max_err,
              max_err < 1e-10 ? "OK" : "MISMATCH");

  // Top ranked vertices — the hubs the RMAT recursion concentrates on.
  std::vector<uint32_t> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](uint32_t a, uint32_t b) { return ranks[a] > ranks[b]; });
  std::printf("top vertices by rank:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  v%-6u rank %.6f  out-degree %llu\n", order[i],
                ranks[order[i]],
                static_cast<unsigned long long>(graph.out_degree(order[i])));
  }
  return max_err < 1e-10 ? 0 : 1;
}
