// RSort example: distributed key-value sort over RStore.
//
// Generates TeraGen-style records into a distributed input region, sorts
// them with the one-sided sample sort on 8 workers, validates the output
// (global order + multiset equality with the generated input), and
// prints the phase breakdown — the workload behind experiment E5.
//
// Run:  ./build/examples/kv_sort
#include <algorithm>
#include <cstdio>

#include "common/log.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "rsort/rsort.h"

using namespace rstore;

int main() {
  SetLogLevel(LogLevel::kWarn);
  constexpr uint32_t kWorkers = 8;
  constexpr uint64_t kRecords = 400'000;  // 40 MB of 100-byte records

  core::ClusterConfig config;
  config.memory_servers = 8;
  config.client_nodes = kWorkers;
  config.server_capacity = 48ULL << 20;
  config.master.slab_size = 2ULL << 20;
  core::TestCluster cluster(config);

  sort::SortStats slowest{};
  bool validated = false;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](core::RStoreClient& client) {
      sort::SortConfig cfg;
      cfg.worker_id = w;
      cfg.num_workers = kWorkers;
      cfg.total_records = kRecords;
      cfg.seed = 1797;
      sort::SortWorker worker(client, cfg);
      if (!worker.GenerateInput().ok()) return;
      (void)client.NotifyInc("generated");
      (void)client.WaitNotify("generated", kWorkers);

      auto stats = worker.Sort();
      if (!stats.ok()) {
        std::printf("worker %u failed: %s\n", w,
                    stats.status().ToString().c_str());
        return;
      }
      if (stats->total_time > slowest.total_time) slowest = *stats;

      (void)client.NotifyInc("sorted");
      if (w == 0) {
        (void)client.WaitNotify("sorted", kWorkers);
        validated = sort::ValidateSortedOutput(client, cfg).ok();
      }
    });
  }
  cluster.sim().Run();

  const double gb = kRecords * sort::kRecordBytes / 1e9;
  std::printf("RSort: %.2f GB on %u workers\n", gb, kWorkers);
  std::printf("  sample + splitters : %s\n",
              FormatDuration(slowest.sample_time).c_str());
  std::printf("  one-sided shuffle  : %s\n",
              FormatDuration(slowest.shuffle_time).c_str());
  std::printf("  local sort + emit  : %s\n",
              FormatDuration(slowest.sort_time).c_str());
  std::printf("  total (slowest)    : %s  → %.0f MB/s aggregate\n",
              FormatDuration(slowest.total_time).c_str(),
              gb * 1e3 / sim::ToSeconds(slowest.total_time) / 1.0);
  std::printf("validation: %s\n", validated ? "sorted, multiset preserved"
                                            : "FAILED");
  return validated ? 0 : 1;
}
