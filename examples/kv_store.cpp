// RKV example: a shared key-value table over RStore.
//
// Client 0 creates the table and loads it; client 1 opens the same table
// by name from another machine and reads/updates concurrently. Every
// operation is one-sided IO against computable slot addresses — the
// master is only involved in the initial map.
//
// Run:  ./build/examples/kv_store
#include <cstdio>
#include <string>

#include "common/log.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "kv/kv.h"

using namespace rstore;

int main() {
  SetLogLevel(LogLevel::kWarn);
  core::ClusterConfig config;
  config.memory_servers = 4;
  config.client_nodes = 2;
  config.server_capacity = 16ULL << 20;
  config.master.slab_size = 1ULL << 20;
  core::TestCluster cluster(config);

  // Writer: creates and loads the table.
  cluster.SpawnClient(0, [](core::RStoreClient& client) {
    kv::KvOptions opts;
    opts.buckets = 1024;
    auto kv = kv::KvStore::Create(client, "users", opts);
    if (!kv.ok()) return;
    const sim::Nanos t0 = sim::Now();
    for (int i = 0; i < 500; ++i) {
      (void)(*kv)->Put("user:" + std::to_string(i),
                       "profile-data-for-user-" + std::to_string(i));
    }
    std::printf("writer: 500 puts in %s (%.2f us/op)\n",
                FormatDuration(sim::Now() - t0).c_str(),
                sim::ToMicros(sim::Now() - t0) / 500);
    (void)client.NotifyInc("loaded");
    // Update a key after the reader has started.
    (void)client.WaitNotify("reading", 1);
    (void)(*kv)->Put("user:42", "updated-by-writer");
    (void)client.NotifyInc("updated");
  });

  // Reader on another machine: opens by name.
  cluster.SpawnClient(1, [](core::RStoreClient& client) {
    (void)client.WaitNotify("loaded", 1);
    auto kv = kv::KvStore::Open(client, "users");
    if (!kv.ok()) return;
    auto v = (*kv)->Get("user:42");
    std::printf("reader: user:42 = \"%.*s\"\n",
                static_cast<int>(v->size()),
                reinterpret_cast<const char*>(v->data()));
    (void)client.NotifyInc("reading");
    (void)client.WaitNotify("updated", 1);
    v = (*kv)->Get("user:42");
    std::printf("reader after writer's update: user:42 = \"%.*s\"\n",
                static_cast<int>(v->size()),
                reinterpret_cast<const char*>(v->data()));
    auto missing = (*kv)->Get("user:9999");
    std::printf("reader: user:9999 -> %s\n",
                missing.status().ToString().c_str());
    std::printf("reader stats: %llu slot reads for %llu gets, "
                "%llu seqlock retries\n",
                static_cast<unsigned long long>((*kv)->stats().probe_reads),
                static_cast<unsigned long long>((*kv)->stats().gets),
                static_cast<unsigned long long>(
                    (*kv)->stats().version_retries));
  });

  cluster.sim().Run();
  return 0;
}
