// Producer/consumer example: sharing distributed memory between
// applications.
//
// A producer client streams batches into a ring of buffers inside one
// RStore region; a consumer on another machine maps the same region by
// name and drains it. Handoff uses the master's notification channels
// (control path) while all data moves with one-sided IO (data path) —
// the producer never talks to the consumer directly, and no server CPU
// touches a byte.
//
// Run:  ./build/examples/producer_consumer
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/cluster.h"

using namespace rstore;

namespace {
constexpr uint64_t kBatchBytes = 1ULL << 20;
constexpr uint32_t kRingSlots = 4;
constexpr uint32_t kBatches = 12;
}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);
  core::ClusterConfig config;
  config.memory_servers = 4;
  config.client_nodes = 2;
  config.server_capacity = 16ULL << 20;
  config.master.slab_size = 1ULL << 20;
  core::TestCluster cluster(config);

  uint64_t produced_sum = 0;
  uint64_t consumed_sum = 0;
  sim::Nanos consumer_done = 0;

  // Producer: fills ring slots, announces progress on "filled".
  cluster.SpawnClient(0, [&](core::RStoreClient& client) {
    if (!client.Ralloc("ring", kRingSlots * kBatchBytes).ok()) return;
    auto region = client.Rmap("ring");
    auto buf = client.AllocBuffer(kBatchBytes);
    if (!region.ok() || !buf.ok()) return;
    Rng rng(7);
    for (uint32_t batch = 0; batch < kBatches; ++batch) {
      // Flow control: do not overwrite a slot the consumer has not
      // drained (stay at most kRingSlots ahead).
      if (batch >= kRingSlots) {
        (void)client.WaitNotify("drained", batch - kRingSlots + 1);
      }
      rng.Fill(buf->begin(), kBatchBytes);
      for (size_t i = 0; i < kBatchBytes; i += 4096) {
        produced_sum += static_cast<uint8_t>(buf->begin()[i]);
      }
      const uint64_t slot = batch % kRingSlots;
      (void)(*region)->Write(slot * kBatchBytes, buf->data);
      (void)client.NotifyInc("filled");
    }
    std::printf("producer: %u batches of %s pushed\n", kBatches,
                FormatBytes(kBatchBytes).c_str());
  });

  // Consumer: waits for batches, reads them with one-sided IO.
  cluster.SpawnClient(1, [&](core::RStoreClient& client) {
    (void)client.WaitNotify("filled", 1);  // region exists by now
    auto region = client.Rmap("ring");
    auto buf = client.AllocBuffer(kBatchBytes);
    if (!region.ok() || !buf.ok()) return;
    for (uint32_t batch = 0; batch < kBatches; ++batch) {
      (void)client.WaitNotify("filled", batch + 1);
      const uint64_t slot = batch % kRingSlots;
      (void)(*region)->Read(slot * kBatchBytes, buf->data);
      for (size_t i = 0; i < kBatchBytes; i += 4096) {
        consumed_sum += static_cast<uint8_t>(buf->begin()[i]);
      }
      (void)client.NotifyInc("drained");
    }
    consumer_done = sim::Now();
    std::printf("consumer: %u batches drained by t=%s\n", kBatches,
                FormatDuration(consumer_done).c_str());
  });

  cluster.sim().Run();
  std::printf("checksums: producer %llu, consumer %llu — %s\n",
              static_cast<unsigned long long>(produced_sum),
              static_cast<unsigned long long>(consumed_sum),
              produced_sum == consumed_sum ? "match" : "MISMATCH");
  return produced_sum == consumed_sum ? 0 : 1;
}
