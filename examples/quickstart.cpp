// Quickstart: the RStore memory-like API in one page.
//
// Builds a small simulated cluster (1 master, 4 memory servers), then a
// client program: allocate a named distributed region, map it, write and
// read it with one-sided IO, use a remote atomic, inspect cluster stats,
// and free the region. Everything observable is printed.
//
// Run:  ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "common/log.h"
#include "common/stats.h"
#include "core/cluster.h"

using namespace rstore;

int main() {
  SetLogLevel(LogLevel::kWarn);

  core::ClusterConfig config;
  config.memory_servers = 4;
  config.client_nodes = 1;
  config.server_capacity = 64ULL << 20;  // each server donates 64 MiB
  config.master.slab_size = 4ULL << 20;
  core::TestCluster cluster(config);

  cluster.RunClient([](core::RStoreClient& client) {
    // --- control path: allocate and map a distributed region ----------
    auto stat = client.Stat();
    std::printf("cluster: %u memory servers, %s donated\n",
                stat->live_servers, FormatBytes(stat->total_bytes).c_str());

    if (auto st = client.Ralloc("greeting", 16ULL << 20); !st.ok()) {
      std::printf("ralloc failed: %s\n", st.ToString().c_str());
      return;
    }
    auto region = client.Rmap("greeting");
    if (!region.ok()) return;
    std::printf("region '%s': %s in %zu slabs across the cluster\n",
                (*region)->name().c_str(),
                FormatBytes((*region)->size()).c_str(),
                (*region)->desc().slabs.size());

    // --- data path: one-sided write and read --------------------------
    auto buf = client.AllocBuffer(1 << 20);  // pinned IO buffer
    const char msg[] = "hello, direct-access DRAM";
    std::memcpy(buf->begin(), msg, sizeof(msg));
    const sim::Nanos w0 = sim::Now();
    (void)(*region)->Write(5ULL << 20, std::span<const std::byte>(
                                           buf->begin(), sizeof(msg)));
    std::printf("wrote %zu bytes at offset 5 MiB in %s\n", sizeof(msg),
                FormatDuration(sim::Now() - w0).c_str());

    auto back = client.AllocBuffer(sizeof(msg));
    const sim::Nanos r0 = sim::Now();
    (void)(*region)->Read(5ULL << 20, back->data);
    std::printf("read it back in %s: \"%s\"\n",
                FormatDuration(sim::Now() - r0).c_str(),
                reinterpret_cast<const char*>(back->begin()));

    // Large striped read: the region spans several servers, so the
    // client streams from all of them.
    auto big = client.AllocBuffer(16ULL << 20);
    const sim::Nanos b0 = sim::Now();
    (void)(*region)->Read(0, big->data);
    const double secs = sim::ToSeconds(sim::Now() - b0);
    std::printf("streamed the whole region: %s in %s (%s)\n",
                FormatBytes(16ULL << 20).c_str(),
                FormatDuration(sim::Now() - b0).c_str(),
                FormatGbps((16ULL << 20) * 8 / secs).c_str());

    // --- remote atomics ------------------------------------------------
    auto old = (*region)->FetchAdd(0, 7);
    auto now = (*region)->FetchAdd(0, 0);
    std::printf("fetch-add: counter was %llu, now %llu\n",
                static_cast<unsigned long long>(*old),
                static_cast<unsigned long long>(*now));

    // --- teardown -------------------------------------------------------
    (void)client.Rfree("greeting");
    stat = client.Stat();
    std::printf("after rfree: %s free again\n",
                FormatBytes(stat->free_bytes).c_str());
    std::printf("client stats: %llu data ops, %llu control calls\n",
                static_cast<unsigned long long>(client.data_ops()),
                static_cast<unsigned long long>(client.control_calls()));
  });
  return 0;
}
