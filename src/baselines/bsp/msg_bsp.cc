#include "baselines/bsp/msg_bsp.h"

#include <cstring>

#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::baselines {

// Inbound state for the superstep currently being received. Handlers run
// on the worker node's RPC threads; the compute thread waits on the
// condvar until all peers' batches for its superstep have landed.
struct MsgBspWorker::Inbox {
  explicit Inbox(sim::Simulation& s) : ready(s) {}
  uint32_t superstep = 0;  // accumulating for this superstep
  uint32_t batches = 0;    // received for `superstep`
  double dangling = 0;
  std::vector<double> acc;
  // Batches that raced ahead (sender already in superstep+1).
  std::vector<std::vector<std::byte>> deferred;
  sim::CondVar ready;
};

MsgBspWorker::MsgBspWorker(verbs::Device& device, const carafe::Graph& graph,
                           MsgBspConfig config)
    : device_(device), graph_(graph), config_(std::move(config)) {
  const uint64_t n = graph_.num_vertices();
  lo_ = n * config_.worker_id / config_.num_workers;
  hi_ = n * (config_.worker_id + 1) / config_.num_workers;
  // Worst case batch: every vertex of one owner gets a combined message.
  const uint64_t widest =
      (n + config_.num_workers - 1) / config_.num_workers + 1;
  max_batch_bytes_ = static_cast<uint32_t>(widest * 12 + 64);
}

MsgBspWorker::~MsgBspWorker() = default;

void MsgBspWorker::StartService() {
  inbox_ = std::make_unique<Inbox>(device_.network().sim());
  inbox_->acc.assign(std::max<uint64_t>(hi_ - lo_, 1), 0.0);

  rpc::RpcOptions opts;
  opts.buffer_size = max_batch_bytes_;
  opts.recv_buffers = 2 * config_.num_workers + 4;
  server_ = std::make_unique<rpc::RpcServer>(device_, kBspService, opts);

  const sim::CpuCostModel& cpu = device_.network().cpu_model();
  server_->RegisterHandler(1, [this, &cpu](rpc::Reader& req,
                                           rpc::Writer& resp) {
    uint32_t superstep = 0;
    double dangling = 0;
    uint64_t edge_count = 0;
    uint32_t count = 0;
    if (!req.U32(&superstep) || !req.F64(&dangling) ||
        !req.U64(&edge_count) || !req.U32(&count)) {
      return Status(ErrorCode::kInvalidArgument, "bad batch");
    }
    // The per-edge-message framework overhead: a message-passing engine
    // pays scheduling/lookup/synchronization work proportional to the
    // edge messages behind a batch (combiners shrink the wire bytes, not
    // the per-edge engine work — GraphLab synchronizes per replica).
    const auto framework_cost = static_cast<sim::Nanos>(
        static_cast<double>(edge_count) * config_.per_message_ns);
    sim::ChargeCpu(framework_cost);

    Inbox& in = *inbox_;
    if (superstep != in.superstep) {
      // Early batch from a peer already one superstep ahead; stash the
      // payload and re-apply when we advance.
      rpc::Writer copy;
      copy.U32(superstep);
      copy.F64(dangling);
      copy.U64(edge_count);
      copy.U32(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t v = 0;
        double val = 0;
        if (!req.U32(&v) || !req.F64(&val)) {
          return Status(ErrorCode::kInvalidArgument, "truncated batch");
        }
        copy.U32(v);
        copy.F64(val);
      }
      in.deferred.push_back(copy.Take());
      resp.Bool(true);
      return Status::Ok();
    }
    in.dangling += dangling;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t v = 0;
      double val = 0;
      if (!req.U32(&v) || !req.F64(&val)) {
        return Status(ErrorCode::kInvalidArgument, "truncated batch");
      }
      in.acc[v - lo_] += val;
    }
    messages_in_ += count;
    ++in.batches;
    in.ready.NotifyAll();
    resp.Bool(true);
    return Status::Ok();
  });
  server_->Start();
}

Status MsgBspWorker::SendBatches(
    uint32_t superstep, const std::vector<std::vector<std::byte>>& batches) {
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    if (w == config_.worker_id) continue;
    if (!peers_[w]) {
      rpc::RpcOptions opts;
      opts.buffer_size = max_batch_bytes_;
      opts.recv_buffers = 2 * config_.num_workers + 4;
      auto peer = rpc::RpcClient::Connect(
          device_, config_.worker_nodes[w], kBspService, opts);
      if (!peer.ok()) return peer.status();
      peers_[w] = std::move(peer).value();
    }
    (void)superstep;
    auto resp = peers_[w]->CallRaw(1, batches[w]);
    if (!resp.ok()) return resp.status();
  }
  return Status::Ok();
}

Result<std::vector<double>> MsgBspWorker::PageRank(uint32_t iterations,
                                                   double damping) {
  if (!inbox_) {
    return Result<std::vector<double>>(ErrorCode::kInvalidArgument,
                                       "call StartService() first");
  }
  const uint64_t n = graph_.num_vertices();
  const uint64_t cnt = hi_ - lo_;
  const uint32_t W = config_.num_workers;
  const double d = damping;
  const sim::CpuCostModel& cpu = device_.network().cpu_model();
  peers_.resize(W);

  std::vector<double> rank(std::max<uint64_t>(cnt, 1),
                           1.0 / static_cast<double>(n));
  // Combiner: contribution accumulated per global target vertex.
  std::vector<double> combined(n, 0.0);
  std::vector<uint32_t> hits(n, 0);

  // Inverse of the contiguous partition map lo(w) = n*w/W: the candidate
  // is within one of the true owner; nudge.
  auto owner_of = [&](uint64_t v) -> uint32_t {
    auto w = static_cast<uint32_t>(v * W / n);
    if (w >= W) w = W - 1;
    while (w + 1 < W && n * (w + 1) / W <= v) ++w;
    while (w > 0 && n * w / W > v) --w;
    return w;
  };

  Inbox& in = *inbox_;
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    // --- compute contributions and combine per target -----------------
    std::fill(combined.begin(), combined.end(), 0.0);
    std::fill(hits.begin(), hits.end(), 0);
    double dangling_local = 0;
    for (uint64_t i = 0; i < cnt; ++i) {
      const uint64_t v = lo_ + i;
      const uint64_t deg = graph_.out_degree(v);
      if (deg == 0) {
        dangling_local += rank[i];
        continue;
      }
      const double share = rank[i] / static_cast<double>(deg);
      const auto [lo_e, hi_e] = graph_.edge_range(v);
      for (uint64_t e = lo_e; e < hi_e; ++e) {
        combined[graph_.targets[e]] += share;
        ++hits[graph_.targets[e]];
      }
    }
    sim::ChargeCpu(sim::GraphEdgeCost(cpu, graph_.offsets[hi_] -
                                               graph_.offsets[lo_]) +
                   sim::ScanCost(cpu, n));

    // --- build batches per owner ---------------------------------------
    std::vector<std::vector<std::byte>> batches(W);
    {
      std::vector<rpc::Writer> writers(W);
      std::vector<uint32_t> counts(W, 0);
      std::vector<uint64_t> edge_counts(W, 0);
      std::vector<rpc::Writer> bodies(W);
      for (uint64_t v = 0; v < n; ++v) {
        if (hits[v] == 0) continue;
        const uint32_t w = owner_of(v);
        bodies[w].U32(static_cast<uint32_t>(v));
        bodies[w].F64(combined[v]);
        ++counts[w];
        edge_counts[w] += hits[v];
      }
      for (uint32_t w = 0; w < W; ++w) {
        writers[w].U32(iter);
        // Every batch carries the sender's full dangling mass; receivers
        // sum across the W batches of a superstep to get the global mass.
        writers[w].F64(dangling_local);
        writers[w].U64(edge_counts[w]);
        writers[w].U32(counts[w]);
        writers[w].AppendRaw(bodies[w].buffer());
        batches[w] = writers[w].Take();
      }
    }

    // Apply my own batch locally (no self-RPC).
    {
      rpc::Reader self(batches[config_.worker_id]);
      uint32_t s = 0, count = 0;
      double dang = 0;
      uint64_t edge_count = 0;
      if (!self.U32(&s) || !self.F64(&dang) || !self.U64(&edge_count) ||
          !self.U32(&count)) {
        return Result<std::vector<double>>(ErrorCode::kInternal,
                                           "malformed self batch header");
      }
      sim::ChargeCpu(static_cast<sim::Nanos>(
          static_cast<double>(edge_count) * config_.per_message_ns));
      in.dangling += dang;
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t v = 0;
        double val = 0;
        if (!self.U32(&v) || !self.F64(&val)) {
          return Result<std::vector<double>>(ErrorCode::kInternal,
                                             "malformed self batch entry");
        }
        in.acc[v - lo_] += val;
      }
      ++in.batches;
    }

    RSTORE_RETURN_IF_ERROR(SendBatches(iter, batches));

    // --- barrier: wait for all W batches of this superstep -------------
    in.ready.WaitUntil([&] { return in.batches >= W; });

    // --- apply ---------------------------------------------------------
    const double base = (1.0 - d) / static_cast<double>(n) +
                        d * in.dangling / static_cast<double>(n);
    for (uint64_t i = 0; i < cnt; ++i) {
      rank[i] = base + d * in.acc[i];
    }
    sim::ChargeCpu(sim::ScanCost(cpu, cnt * 8));

    // --- roll the inbox to the next superstep and replay early batches -
    in.superstep = iter + 1;
    in.batches = 0;
    in.dangling = 0;
    std::fill(in.acc.begin(), in.acc.end(), 0.0);
    auto deferred = std::move(in.deferred);
    in.deferred.clear();
    for (const auto& raw : deferred) {
      rpc::Reader r(raw);
      uint32_t s = 0, count = 0;
      double dang = 0;
      uint64_t edge_count = 0;
      if (!r.U32(&s) || !r.F64(&dang) || !r.U64(&edge_count) ||
          !r.U32(&count)) {
        return Result<std::vector<double>>(ErrorCode::kInternal,
                                           "malformed deferred batch header");
      }
      in.dangling += dang;
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t v = 0;
        double val = 0;
        if (!r.U32(&v) || !r.F64(&val)) {
          return Result<std::vector<double>>(ErrorCode::kInternal,
                                             "malformed deferred batch entry");
        }
        in.acc[v - lo_] += val;
      }
      messages_in_ += count;
      ++in.batches;
    }
  }
  return rank;
}

}  // namespace rstore::baselines
