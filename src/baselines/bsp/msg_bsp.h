// Baseline: message-passing BSP graph engine (GraphLab/Pregel-flavoured).
//
// The comparator for Carafe in experiment E4. Same partitioning, same
// vertex program, same per-edge compute cost — but per-iteration dataflow
// travels as point-to-point *messages*: each worker combines the
// contributions of its vertices per target, marshals (vertex, value)
// batches, and RPCs them to the target's owner, whose CPU pays a
// per-message framework overhead (scheduling, hash lookup, locking) on
// top of the transport's marshalling and handler costs. Carafe replaces
// all of that with one-sided reads of a shared contribution array.
//
// `per_message_ns` is the calibration knob: ~25 ns models a lean native
// engine (GraphLab-class), ~90 ns a heavier dataflow stack
// (Spark/GraphX-class). EXPERIMENTS.md discusses the calibration.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "carafe/graph.h"
#include "common/status.h"
#include "rpc/rpc.h"
#include "verbs/verbs.h"

namespace rstore::baselines {

inline constexpr uint32_t kBspService = 30;

struct MsgBspConfig {
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  // Node id of every worker, indexed by worker id (the "cluster map").
  std::vector<uint32_t> worker_nodes;
  // Receiver-side framework cost per vertex-message.
  double per_message_ns = 25.0;
};

class MsgBspWorker {
 public:
  // The worker keeps a reference to the full graph (the loading phase is
  // not part of the measured computation, mirroring Carafe's Init).
  MsgBspWorker(verbs::Device& device, const carafe::Graph& graph,
               MsgBspConfig config);
  ~MsgBspWorker();

  // Starts the inbound message service; call on every worker before any
  // computation starts.
  void StartService();

  // Synchronous PageRank. Returns this worker's rank slice; vertex v of
  // the slice is global vertex lo() + v.
  Result<std::vector<double>> PageRank(uint32_t iterations,
                                       double damping = 0.85);

  [[nodiscard]] uint64_t lo() const noexcept { return lo_; }
  [[nodiscard]] uint64_t hi() const noexcept { return hi_; }
  // Messages this worker received (for calibration reporting).
  [[nodiscard]] uint64_t messages_in() const noexcept {
    return messages_in_;
  }

 private:
  struct Inbox;

  Status SendBatches(uint32_t superstep,
                     const std::vector<std::vector<std::byte>>& batches);

  verbs::Device& device_;
  const carafe::Graph& graph_;
  MsgBspConfig config_;
  uint64_t lo_ = 0, hi_ = 0;

  std::unique_ptr<rpc::RpcServer> server_;
  std::unique_ptr<Inbox> inbox_;
  std::vector<std::unique_ptr<rpc::RpcClient>> peers_;  // by worker id
  uint64_t messages_in_ = 0;
  uint32_t max_batch_bytes_ = 0;
};

}  // namespace rstore::baselines
