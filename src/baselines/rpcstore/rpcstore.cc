#include "baselines/rpcstore/rpcstore.h"

#include <cstring>

#include "sim/cost_model.h"

namespace rstore::baselines {

RpcStoreServer::RpcStoreServer(verbs::Device& device, RpcStoreOptions options)
    : device_(device), options_(options) {}

void RpcStoreServer::Start() {
  store_.resize(options_.capacity);
  rpc::RpcOptions rpc_opts;
  rpc_opts.buffer_size = options_.max_io_bytes + 64;
  rpc_opts.recv_buffers = 8;
  rpc_ = std::make_unique<rpc::RpcServer>(device_, kRpcStoreService,
                                          rpc_opts);
  const sim::CpuCostModel& cpu = device_.network().cpu_model();

  rpc_->RegisterHandler(kGet, [this, &cpu](rpc::Reader& req,
                                           rpc::Writer& resp) {
    uint64_t offset = 0, length = 0;
    if (!req.U64(&offset) || !req.U64(&length)) {
      return Status(ErrorCode::kInvalidArgument, "bad get");
    }
    if (offset > store_.size() || length > store_.size() - offset) {
      return Status(ErrorCode::kOutOfRange, "get outside store");
    }
    // The server CPU moves the bytes: store -> response buffer.
    const sim::Nanos copy = sim::MemcpyCost(cpu, length);
    extra_cpu_ += copy;
    sim::ChargeCpu(copy);
    resp.Bytes({store_.data() + offset, length});
    return Status::Ok();
  });

  rpc_->RegisterHandler(kPut, [this, &cpu](rpc::Reader& req,
                                           rpc::Writer& resp) {
    uint64_t offset = 0;
    std::span<const std::byte> data;
    if (!req.U64(&offset) || !req.BytesView(&data)) {
      return Status(ErrorCode::kInvalidArgument, "bad put");
    }
    if (offset > store_.size() || data.size() > store_.size() - offset) {
      return Status(ErrorCode::kOutOfRange, "put outside store");
    }
    const sim::Nanos copy = sim::MemcpyCost(cpu, data.size());
    extra_cpu_ += copy;
    sim::ChargeCpu(copy);
    if (!data.empty()) {
      std::memcpy(store_.data() + offset, data.data(), data.size());
    }
    resp.Bool(true);
    return Status::Ok();
  });

  rpc_->Start();
}

Result<std::unique_ptr<RpcStoreClient>> RpcStoreClient::Connect(
    verbs::Device& device, uint32_t server_node, RpcStoreOptions options) {
  rpc::RpcOptions rpc_opts;
  rpc_opts.buffer_size = options.max_io_bytes + 64;
  rpc_opts.recv_buffers = 8;
  auto rpc = rpc::RpcClient::Connect(device, server_node, kRpcStoreService,
                                     rpc_opts);
  if (!rpc.ok()) return rpc.status();
  return std::unique_ptr<RpcStoreClient>(
      new RpcStoreClient(std::move(rpc).value()));
}

Status RpcStoreClient::Get(uint64_t offset, std::span<std::byte> dst) {
  rpc::Writer req;
  req.U64(offset);
  req.U64(dst.size());
  auto resp = rpc_->Call(kGet, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  std::span<const std::byte> data;
  if (!r.BytesView(&data) || data.size() != dst.size()) {
    return Status(ErrorCode::kInternal, "short get response");
  }
  if (!data.empty()) std::memcpy(dst.data(), data.data(), data.size());
  return Status::Ok();
}

Status RpcStoreClient::Put(uint64_t offset, std::span<const std::byte> src) {
  rpc::Writer req;
  req.U64(offset);
  req.Bytes(src);
  auto resp = rpc_->Call(kPut, req);
  return resp.status();
}

}  // namespace rstore::baselines
