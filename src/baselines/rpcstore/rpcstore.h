// Baseline: a two-sided DRAM store (RAMCloud-flavoured).
//
// Same storage semantics as an RStore region — a byte-addressable block
// of server DRAM — but every read and write is an RPC through the server
// CPU: request marshalling, handler dispatch, a memcpy into/out of the
// store, and a response. This is the architecture RStore's one-sided
// data path is measured against in E1 (latency vs size) and E6 (server
// CPU cost and throughput under load).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "rpc/rpc.h"
#include "verbs/verbs.h"

namespace rstore::baselines {

inline constexpr uint32_t kRpcStoreService = 20;

enum RpcStoreMethod : uint32_t {
  kGet = 1,
  kPut = 2,
};

struct RpcStoreOptions {
  uint64_t capacity = 64ULL << 20;
  // Must exceed the largest single IO plus framing.
  uint32_t max_io_bytes = 4ULL << 20;
};

// The server: donates DRAM like a memory server, but fronts it with a
// GET/PUT RPC service whose handlers run on its CPU.
class RpcStoreServer {
 public:
  RpcStoreServer(verbs::Device& device, RpcStoreOptions options = {});

  void Start();

  [[nodiscard]] uint64_t capacity() const noexcept {
    return options_.capacity;
  }
  // Server CPU nanoseconds burned on the data path — what one-sided
  // access avoids (E6's second series).
  [[nodiscard]] sim::Nanos cpu_time() const noexcept {
    return rpc_ ? rpc_->cpu_time() + extra_cpu_ : extra_cpu_;
  }
  [[nodiscard]] uint64_t ops() const noexcept {
    return rpc_ ? rpc_->calls_served() : 0;
  }

 private:
  verbs::Device& device_;
  RpcStoreOptions options_;
  std::vector<std::byte> store_;
  std::unique_ptr<rpc::RpcServer> rpc_;
  sim::Nanos extra_cpu_ = 0;
};

// The client: blocking byte-granular Get/Put against one server.
class RpcStoreClient {
 public:
  static Result<std::unique_ptr<RpcStoreClient>> Connect(
      verbs::Device& device, uint32_t server_node,
      RpcStoreOptions options = {});

  Status Get(uint64_t offset, std::span<std::byte> dst);
  Status Put(uint64_t offset, std::span<const std::byte> src);

 private:
  explicit RpcStoreClient(std::unique_ptr<rpc::RpcClient> rpc)
      : rpc_(std::move(rpc)) {}
  std::unique_ptr<rpc::RpcClient> rpc_;
};

}  // namespace rstore::baselines
