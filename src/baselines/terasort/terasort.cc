#include "baselines/terasort/terasort.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "sim/simulation.h"

namespace rstore::baselines {

using sort::kKeyBytes;
using sort::kRecordBytes;

struct TeraSortWorker::SpillState {
  explicit SpillState(sim::Simulation& s) : ready(s) {}
  bool map_done = false;
  // One "spill file" per reduce partition.
  std::vector<std::vector<std::byte>> partitions;
  sim::CondVar ready;
};

TeraSortWorker::TeraSortWorker(verbs::Device& device, TeraSortConfig config)
    : device_(device), config_(std::move(config)),
      disk_(device.network().sim(), config_.disk) {
  const uint64_t n = config_.total_records;
  rlo_ = n * config_.worker_id / config_.num_workers;
  rhi_ = n * (config_.worker_id + 1) / config_.num_workers;
}

TeraSortWorker::~TeraSortWorker() = default;

Status TeraSortWorker::GenerateInput() {
  const uint64_t count = rhi_ - rlo_;
  input_.resize(count * kRecordBytes);
  sort::GenerateRecords(config_.seed, rlo_, count, input_.data());
  sim::ChargeCpu(sim::ScanCost(device_.network().cpu_model(), input_.size()));
  disk_.Write(input_.size(), /*sequential=*/true);
  return Status::Ok();
}

void TeraSortWorker::StartService() {
  spill_ = std::make_unique<SpillState>(device_.network().sim());
  spill_->partitions.resize(config_.num_workers);

  rpc::RpcOptions opts;
  opts.buffer_size = config_.shuffle_chunk_bytes + 128;
  opts.recv_buffers = 2 * config_.num_workers + 4;
  server_ = std::make_unique<rpc::RpcServer>(device_, kTeraShuffleService,
                                             opts);
  // Method 1: fetch(reducer, offset, max) -> bytes of my spill for that
  // reducer. Blocks until the map phase has produced the spill.
  server_->RegisterHandler(1, [this](rpc::Reader& req, rpc::Writer& resp) {
    uint32_t reducer = 0;
    uint64_t offset = 0;
    uint32_t max_bytes = 0;
    if (!req.U32(&reducer) || !req.U64(&offset) || !req.U32(&max_bytes) ||
        reducer >= config_.num_workers) {
      return Status(ErrorCode::kInvalidArgument, "bad fetch");
    }
    spill_->ready.WaitUntil([&] { return spill_->map_done; });
    const std::vector<std::byte>& part = spill_->partitions[reducer];
    if (offset > part.size()) {
      return Status(ErrorCode::kOutOfRange, "fetch past spill end");
    }
    const uint64_t n =
        std::min<uint64_t>(max_bytes, part.size() - offset);
    // The mapper's disk re-reads the spill: seek on the first chunk of a
    // (mapper, reducer) stream, streaming after.
    disk_.Read(n, /*sequential=*/offset != 0);
    resp.U64(part.size());
    resp.Bytes({part.data() + offset, n});
    return Status::Ok();
  });
  server_->Start();
}

Result<TeraSortStats> TeraSortWorker::Sort() {
  if (!spill_) {
    return Result<TeraSortStats>(ErrorCode::kInvalidArgument,
                                 "call StartService() first");
  }
  const sim::CpuCostModel& cpu = device_.network().cpu_model();
  const uint32_t W = config_.num_workers;
  const uint64_t my_count = rhi_ - rlo_;
  TeraSortStats stats;
  const sim::Nanos t0 = sim::Now();

  // Task launch (framework overhead).
  sim::Sleep(config_.task_startup);

  // ---- splitters -------------------------------------------------------
  // TeraSort's InputSampler: sample the input stream; identical on every
  // worker because the stream is a pure function of the seed.
  const uint64_t n_samples =
      static_cast<uint64_t>(config_.samples_per_worker) * W;
  std::vector<std::array<std::byte, kKeyBytes>> sample_keys(n_samples);
  {
    std::array<std::byte, kRecordBytes> rec;
    for (uint64_t s = 0; s < n_samples; ++s) {
      const uint64_t idx = s * config_.total_records / n_samples;
      sort::GenerateRecord(config_.seed, idx, rec.data());
      std::memcpy(sample_keys[s].data(), rec.data(), kKeyBytes);
    }
    std::sort(sample_keys.begin(), sample_keys.end(),
              [](const auto& a, const auto& b) {
                return std::memcmp(a.data(), b.data(), kKeyBytes) < 0;
              });
    sim::ChargeCpu(sim::SortCost(cpu, n_samples) +
                   sim::ScanCost(cpu, n_samples * kRecordBytes));
  }
  std::vector<std::array<std::byte, kKeyBytes>> splitters(W - 1);
  for (uint32_t j = 0; j + 1 < W; ++j) {
    splitters[j] = sample_keys[(j + 1) * n_samples / W];
  }
  auto bucket_of = [&](const std::byte* key) -> uint32_t {
    uint32_t lo = 0, hi = W - 1;
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (std::memcmp(key, splitters[mid].data(), kKeyBytes) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  // ---- map: disk read, classify, spill per partition --------------------
  disk_.Read(my_count * kRecordBytes, /*sequential=*/true);
  for (uint64_t i = 0; i < my_count; ++i) {
    const std::byte* rec = input_.data() + i * kRecordBytes;
    auto& part = spill_->partitions[bucket_of(rec)];
    part.insert(part.end(), rec, rec + kRecordBytes);
  }
  sim::ChargeCpu(sim::ScanCost(cpu, my_count * kRecordBytes) +
                 sim::MemcpyCost(cpu, my_count * kRecordBytes));
  for (uint32_t d = 0; d < W; ++d) {
    if (!spill_->partitions[d].empty()) {
      disk_.Write(spill_->partitions[d].size(), /*sequential=*/false);
    }
  }
  spill_->map_done = true;
  spill_->ready.NotifyAll();
  stats.map_time = sim::Now() - t0;

  // ---- shuffle: pull my partition from every mapper ----------------------
  const sim::Nanos t_shuffle = sim::Now();
  output_.clear();
  rpc::RpcOptions opts;
  opts.buffer_size = config_.shuffle_chunk_bytes + 128;
  opts.recv_buffers = 2 * W + 4;
  for (uint32_t m = 0; m < W; ++m) {
    if (m == config_.worker_id) {
      // Local partition still comes off the local disk.
      spill_->ready.WaitUntil([&] { return spill_->map_done; });
      const auto& part = spill_->partitions[config_.worker_id];
      disk_.Read(part.size(), /*sequential=*/false);
      output_.insert(output_.end(), part.begin(), part.end());
      continue;
    }
    auto peer = rpc::RpcClient::Connect(
        device_, config_.worker_nodes[m], kTeraShuffleService, opts);
    if (!peer.ok()) return peer.status();
    uint64_t offset = 0;
    uint64_t spill_size = std::numeric_limits<uint64_t>::max();
    while (offset < spill_size) {
      rpc::Writer req;
      req.U32(config_.worker_id);
      req.U64(offset);
      req.U32(config_.shuffle_chunk_bytes);
      auto resp = (*peer)->Call(1, req);
      if (!resp.ok()) return resp.status();
      rpc::Reader r(*resp);
      std::span<const std::byte> data;
      if (!r.U64(&spill_size) || !r.BytesView(&data)) {
        return Result<TeraSortStats>(ErrorCode::kInternal,
                                     "bad fetch response");
      }
      output_.insert(output_.end(), data.begin(), data.end());
      offset += data.size();
      if (data.empty() && offset < spill_size) {
        return Result<TeraSortStats>(ErrorCode::kInternal, "stalled fetch");
      }
    }
  }
  stats.shuffle_time = sim::Now() - t_shuffle;

  // ---- reduce: sort and write output -------------------------------------
  const sim::Nanos t_reduce = sim::Now();
  const uint64_t out_count = output_.size() / kRecordBytes;
  stats.records_out = out_count;
  sort::SortRecords(output_.data(), out_count);
  sim::ChargeCpu(sim::SortCost(cpu, out_count) +
                 sim::MemcpyCost(cpu, output_.size()));
  disk_.Write(output_.size(), /*sequential=*/true);
  stats.reduce_time = sim::Now() - t_reduce;
  stats.total_time = sim::Now() - t0;
  return stats;
}

}  // namespace rstore::baselines
