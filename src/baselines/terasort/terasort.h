// Baseline: Hadoop-TeraSort-flavoured disk MapReduce sorter.
//
// The comparator for RSort in experiment E5. Structurally faithful to a
// MapReduce sort on 2014-class hardware:
//
//   map     read the input split from local disk, classify records by
//           splitter, spill one file per reduce partition back to disk
//   shuffle each reducer pulls its partition from every mapper: a disk
//           read on the mapper plus a chunked two-sided transfer through
//           both CPUs
//   reduce  sort the fetched partition and write the output to disk
//
// Every byte crosses the disk four times (input read, spill write,
// spill read, output write) and the network once through the RPC stack —
// versus RSort's single DRAM-to-DRAM one-sided pass. A per-worker task
// startup cost models framework/JVM launch. The data movement is real:
// outputs validate exactly like RSort's.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "rpc/rpc.h"
#include "rsort/records.h"
#include "sim/cost_model.h"
#include "verbs/verbs.h"

namespace rstore::baselines {

inline constexpr uint32_t kTeraShuffleService = 40;

struct TeraSortConfig {
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  uint64_t total_records = 0;
  uint64_t seed = 42;
  std::vector<uint32_t> worker_nodes;  // node id per worker
  // Hadoop data nodes of the period ran multi-disk JBODs; default models
  // a 2-disk node (aggregate ~300 MB/s read, ~250 MB/s write).
  sim::DiskCostModel disk{.read_bps = 2.4e9, .write_bps = 2.0e9};
  // Framework/task launch overhead per worker (JVM spin-up, scheduling).
  sim::Nanos task_startup = sim::Seconds(1.5);
  uint32_t samples_per_worker = 128;
  uint32_t shuffle_chunk_bytes = 1 << 20;
};

struct TeraSortStats {
  sim::Nanos map_time = 0;
  sim::Nanos shuffle_time = 0;
  sim::Nanos reduce_time = 0;
  sim::Nanos total_time = 0;
  uint64_t records_out = 0;
};

class TeraSortWorker {
 public:
  TeraSortWorker(verbs::Device& device, TeraSortConfig config);
  ~TeraSortWorker();

  // "TeraGen": materializes this worker's input split on its disk
  // (charged as a sequential disk write; bytes kept in host memory).
  Status GenerateInput();

  // Starts the shuffle service; call on every worker before Sort().
  void StartService();

  // Runs the full map/shuffle/reduce job on this worker.
  Result<TeraSortStats> Sort();

  // The sorted output partition (for validation).
  [[nodiscard]] const std::vector<std::byte>& output() const noexcept {
    return output_;
  }

 private:
  struct SpillState;

  verbs::Device& device_;
  TeraSortConfig config_;
  uint64_t rlo_ = 0, rhi_ = 0;

  sim::SimDisk disk_;
  std::vector<std::byte> input_;   // contents of the input split "file"
  std::unique_ptr<SpillState> spill_;
  std::unique_ptr<rpc::RpcServer> server_;
  std::vector<std::byte> output_;
};

}  // namespace rstore::baselines
