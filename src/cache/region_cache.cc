#include "cache/region_cache.h"

#include <algorithm>
#include <cstring>

namespace rstore::cache {

const char* ToString(CacheMode mode) noexcept {
  switch (mode) {
    case CacheMode::kNone:
      return "none";
    case CacheMode::kImmutable:
      return "immutable";
    case CacheMode::kEpoch:
      return "epoch";
  }
  return "?";
}

RegionCache::RegionCache(CacheConfig config, ArenaAllocator alloc)
    : config_(config), alloc_(std::move(alloc)) {
  if (config_.page_bytes == 0) config_.page_bytes = 64ULL << 10;
  if (config_.capacity_bytes < config_.page_bytes) {
    config_.capacity_bytes = config_.page_bytes;
  }
}

void RegionCache::LruPushFront(Frame* frame) noexcept {
  frame->lru_prev = nullptr;
  frame->lru_next = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev = frame;
  lru_head_ = frame;
  if (lru_tail_ == nullptr) lru_tail_ = frame;
}

void RegionCache::LruUnlink(Frame* frame) noexcept {
  if (frame->lru_prev != nullptr) {
    frame->lru_prev->lru_next = frame->lru_next;
  } else {
    lru_head_ = frame->lru_next;
  }
  if (frame->lru_next != nullptr) {
    frame->lru_next->lru_prev = frame->lru_prev;
  } else {
    lru_tail_ = frame->lru_prev;
  }
  frame->lru_prev = frame->lru_next = nullptr;
}

void RegionCache::Recycle(Frame* frame, bool counts_as_eviction) {
  index_.erase(PageKey{frame->region_id, frame->page});
  LruUnlink(frame);
  frame->resident = false;
  free_.push_back(frame);
  if (counts_as_eviction) {
    ++stats_.evictions;
  } else {
    ++stats_.invalidations;
  }
  if (on_evict_) on_evict_(frame->region_id, frame->page);
}

RegionCache::Frame* RegionCache::Find(uint64_t region_id, uint64_t page,
                                      uint64_t epoch) {
  auto it = index_.find(PageKey{region_id, page});
  if (it == index_.end() || it->second->epoch != epoch) return nullptr;
  Frame* frame = it->second;
  if (frame != lru_head_) {
    LruUnlink(frame);
    LruPushFront(frame);
  }
  return frame;
}

RegionCache::Frame* RegionCache::Acquire() {
  Frame* frame = nullptr;
  if (!free_.empty()) {
    frame = free_.back();
    free_.pop_back();
  } else if (allocated_pages_ * config_.page_bytes < config_.capacity_bytes) {
    // Grow the pool one arena at a time (up to 32 pages) so small budgets
    // do not over-allocate and big ones amortize registration.
    const uint64_t budget_pages = config_.capacity_bytes / config_.page_bytes;
    const uint64_t want =
        std::min<uint64_t>(32, budget_pages - allocated_pages_);
    std::byte* arena = alloc_(want * config_.page_bytes);
    if (arena == nullptr) return nullptr;
    allocated_pages_ += want;
    for (uint64_t i = 0; i < want; ++i) {
      frames_.push_back(std::make_unique<Frame>());
      frames_.back()->data = arena + i * config_.page_bytes;
      free_.push_back(frames_.back().get());
    }
    frame = free_.back();
    free_.pop_back();
  } else {
    // Budget exhausted: evict the coldest resident frame.
    if (lru_tail_ == nullptr) return nullptr;
    frame = lru_tail_;
    Recycle(frame, /*counts_as_eviction=*/true);
    free_.pop_back();  // Recycle pushed it; we take it right back
  }
  frame->pinned = true;
  frame->resident = false;
  return frame;
}

void RegionCache::Install(Frame* frame, uint64_t region_id, uint64_t page,
                          uint64_t epoch, uint32_t valid_bytes) {
  auto it = index_.find(PageKey{region_id, page});
  if (it != index_.end() && it->second != frame) {
    // A stale (or concurrently refilled) copy exists; the new fill wins.
    Recycle(it->second, /*counts_as_eviction=*/false);
  }
  frame->region_id = region_id;
  frame->page = page;
  frame->epoch = epoch;
  frame->valid_bytes = valid_bytes;
  frame->pinned = false;
  frame->resident = true;
  index_[PageKey{region_id, page}] = frame;
  LruPushFront(frame);
}

void RegionCache::Abandon(Frame* frame) {
  frame->pinned = false;
  frame->resident = false;
  free_.push_back(frame);
}

uint64_t RegionCache::ApplyWrite(uint64_t region_id, uint64_t epoch,
                                 uint64_t offset,
                                 std::span<const std::byte> src) {
  if (src.empty()) return 0;
  const uint64_t P = config_.page_bytes;
  uint64_t copied = 0;
  uint64_t cursor = offset;
  const std::byte* from = src.data();
  uint64_t remaining = src.size();
  while (remaining > 0) {
    const uint64_t page = cursor / P;
    const uint64_t in_page = cursor % P;
    const uint64_t chunk = std::min(remaining, P - in_page);
    auto it = index_.find(PageKey{region_id, page});
    if (it != index_.end()) {
      Frame* frame = it->second;
      const bool covers_frame =
          in_page == 0 && chunk >= frame->valid_bytes;
      if (frame->epoch == epoch || covers_frame) {
        const uint64_t n =
            std::min<uint64_t>(chunk, frame->valid_bytes > in_page
                                          ? frame->valid_bytes - in_page
                                          : 0);
        if (n > 0) {
          std::memcpy(frame->data + in_page, from, n);
          copied += n;
          ++stats_.write_updates;
        }
        frame->epoch = epoch;
        if (frame != lru_head_) {
          LruUnlink(frame);
          LruPushFront(frame);
        }
      } else {
        // Stale frame, partial overwrite: the untouched bytes would stay
        // stale, so the page cannot be trusted anymore.
        Recycle(frame, /*counts_as_eviction=*/false);
      }
    } else if (in_page == 0 && chunk == P && !free_.empty()) {
      // Write-allocate full pages when a frame is free anyway: the common
      // producer pattern (write your slice, read it back after a barrier)
      // then hits without ever fetching. Never evicts — a pure write
      // stream must not wash out the read-hot set.
      Frame* frame = free_.back();
      free_.pop_back();
      std::memcpy(frame->data, from, chunk);
      copied += chunk;
      ++stats_.write_updates;
      Install(frame, region_id, page, epoch, static_cast<uint32_t>(chunk));
    }
    cursor += chunk;
    from += chunk;
    remaining -= chunk;
  }
  return copied;
}

void RegionCache::DropPage(uint64_t region_id, uint64_t page) {
  auto it = index_.find(PageKey{region_id, page});
  if (it != index_.end()) Recycle(it->second, /*counts_as_eviction=*/false);
}

void RegionCache::DropRegion(uint64_t region_id) {
  // Drop in page order, not hash order: the evict observer feeds the
  // rcheck layer, and the free list decides future frame reuse — both
  // must be deterministic across runs.
  std::vector<Frame*> victims;
  // rdet:order-independent (collect, then sort)
  for (const auto& [key, frame] : index_) {
    if (key.region_id == region_id) victims.push_back(frame);
  }
  std::sort(victims.begin(), victims.end(),
            [](const Frame* a, const Frame* b) { return a->page < b->page; });
  for (Frame* frame : victims) {
    index_.erase(PageKey{frame->region_id, frame->page});
    LruUnlink(frame);
    frame->resident = false;
    free_.push_back(frame);
    ++stats_.invalidations;
    if (on_evict_) on_evict_(frame->region_id, frame->page);
  }
}

}  // namespace rstore::cache
