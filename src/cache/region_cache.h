// Client-side region cache: version-safe local DRAM caching for the
// one-sided data path.
//
// RStore's data path is already at the hardware floor per byte moved; the
// next win is *moving fewer bytes*. A RegionCache sits under
// MappedRegion::Read/ReadV and keeps recently fetched slab pages in local
// DRAM (pooled HugeBuffer arenas, registered once so fills can DMA
// straight into them). Whether a region may be cached — and what staleness
// its reader tolerates — is a per-region choice made at Rmap time:
//
//   CacheMode::kNone       today's behavior; every read goes remote.
//   CacheMode::kImmutable  write-once data (CSR topology, sealed sort
//                          partitions): pages never go stale, cache until
//                          evicted.
//   CacheMode::kEpoch      bulk-synchronous scratch: remote writers exist
//                          but only become visible at explicit epoch
//                          bumps (MappedRegion::BumpEpoch, called at
//                          barriers). Between bumps a reader sees the
//                          last fetch plus its *own* write-throughs.
//
// Consistency machinery is an epoch tag per frame: a frame whose tag
// differs from the region's current epoch is a miss (its storage is
// reused in place), so BumpEpoch is O(1) and never walks pages. Local
// writes go through to the servers unconditionally and additionally
// update (or, when they cover a whole page, populate) resident frames,
// stamping them with the current epoch. A frame stamped this epoch is
// therefore trusted on hit — which is exactly the Epoch contract: pages a
// client wrote itself this epoch must not be written remotely until the
// next bump (Carafe's disjoint per-worker slices satisfy this by
// construction).
//
// Cost honesty: the simulator charges virtual time for every byte a hit
// copies out of the cache (CacheCopyCost — local DRAM bandwidth, never
// free) and for every byte a fill copies from a frame to the caller, so
// cached runs remain comparable with uncached ones. Long miss runs
// (>= CacheConfig::bypass_bytes) stream directly into the caller's buffer
// and are not cached at all — the copy-in/copy-out tax on a byte used
// once would exceed the network time it saves, and a scan would evict the
// hot set (the classic scan-resistance argument).
//
// This class is a pure data structure: the client owns IO orchestration
// (what to fetch, where to charge) and calls in to find/acquire/install
// frames. It is not thread-safe by itself; the owning client serializes
// access (simulated threads on one node are cooperatively scheduled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace rstore::cache {

// Per-region consistency mode, chosen at Rmap time.
enum class CacheMode : uint8_t { kNone = 0, kImmutable, kEpoch };

[[nodiscard]] const char* ToString(CacheMode mode) noexcept;

struct CacheConfig {
  // Total byte budget for cached pages. Frames are carved from pooled
  // HugeBuffer arenas allocated lazily, so an idle cache costs nothing.
  uint64_t capacity_bytes = 8ULL << 20;
  // Cache granularity. Fills read whole pages (clamped at the region
  // tail), so small random reads trade fill amplification for hit rate.
  uint64_t page_bytes = 64ULL << 10;
  // A contiguous run of missing bytes at least this long streams directly
  // to the caller instead of being cached (scan resistance; also avoids
  // paying copy-out on bytes that are read once). 0 disables bypass.
  uint64_t bypass_bytes = 256ULL << 10;
};

struct CacheStats {
  uint64_t hits = 0;            // page lookups served locally
  uint64_t misses = 0;          // page lookups that went remote
  uint64_t fills = 0;           // pages fetched into frames
  uint64_t evictions = 0;       // frames recycled under budget pressure
  uint64_t invalidations = 0;   // frames dropped (unmap/free/grow/atomics)
  uint64_t write_updates = 0;   // write-throughs applied to resident pages
  uint64_t bypass_reads = 0;    // miss runs streamed around the cache
  uint64_t bytes_from_cache = 0;  // bytes served from frames (hits)
  uint64_t bytes_filled = 0;      // bytes fetched into frames
};

class RegionCache {
 public:
  // One cached page. `data` points into a pooled arena and holds
  // `valid_bytes` of region [page * page_bytes, ...) — short only at the
  // region tail. A pinned frame has a fill in flight: it is not indexed,
  // not evictable, and not visible to concurrent lookups.
  struct Frame {
    uint64_t region_id = 0;
    uint64_t page = 0;
    uint64_t epoch = 0;
    uint32_t valid_bytes = 0;
    bool pinned = false;
    bool resident = false;
    std::byte* data = nullptr;
    Frame* lru_prev = nullptr;
    Frame* lru_next = nullptr;
  };

  // Returns `bytes` of memory usable as a fill target (the client
  // registers it for one-sided IO), or nullptr when none is available.
  using ArenaAllocator = std::function<std::byte*(uint64_t bytes)>;

  // Called whenever a resident page leaves the cache — eviction, replace,
  // drop, stale write invalidation. Evictions are invisible to the owning
  // client otherwise; the rcheck layer needs them to retire the page's
  // consistency contract.
  using EvictObserver = std::function<void(uint64_t region_id, uint64_t page)>;

  RegionCache(CacheConfig config, ArenaAllocator alloc);
  RegionCache(const RegionCache&) = delete;
  RegionCache& operator=(const RegionCache&) = delete;

  [[nodiscard]] uint64_t page_bytes() const noexcept {
    return config_.page_bytes;
  }
  [[nodiscard]] uint64_t bypass_bytes() const noexcept {
    return config_.bypass_bytes;
  }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] size_t resident_frames() const noexcept {
    return index_.size();
  }
  void SetEvictObserver(EvictObserver fn) { on_evict_ = std::move(fn); }

  // Const residency peek: true when `page` is resident at exactly `epoch`.
  // Unlike Find, never touches the LRU — safe for observers that must not
  // perturb replacement.
  [[nodiscard]] bool Resident(uint64_t region_id, uint64_t page,
                              uint64_t epoch) const {
    auto it = index_.find(PageKey{region_id, page});
    return it != index_.end() && it->second->epoch == epoch;
  }

  // Read-side lookup. Returns the frame holding `page` of `region_id` at
  // exactly `epoch` (LRU-touched), or nullptr. A resident frame with a
  // stale epoch stays resident — a later Acquire may recycle it, and
  // Install of a fresh fill replaces it.
  Frame* Find(uint64_t region_id, uint64_t page, uint64_t epoch);

  // Grabs a frame for filling: free list first, then a new arena while
  // under budget, then the LRU victim. The frame comes back pinned and
  // unindexed; returns nullptr when every frame is pinned (caller falls
  // back to a direct read) or the allocator fails.
  Frame* Acquire();

  // Publishes a filled frame at (region_id, page, epoch); any previously
  // resident frame for that page is recycled. Unpins.
  void Install(Frame* frame, uint64_t region_id, uint64_t page,
               uint64_t epoch, uint32_t valid_bytes);

  // Returns an acquired frame whose fill failed to the free list.
  void Abandon(Frame* frame);

  // Write-through update: applies `src` at region byte `offset` to every
  // affected page. Current-epoch frames are updated in place; stale
  // frames are overwritten and re-stamped when the write covers all their
  // valid bytes, dropped otherwise; whole-page writes populate fresh
  // frames (write-allocate) when one is free without eviction. Returns
  // the number of bytes copied locally so the caller can charge CPU.
  uint64_t ApplyWrite(uint64_t region_id, uint64_t epoch, uint64_t offset,
                      std::span<const std::byte> src);

  // Drops every frame of one page (e.g. under a remote atomic).
  void DropPage(uint64_t region_id, uint64_t page);

  // Drops every frame of a region (Runmap/Rfree/Rgrow, mode changes).
  void DropRegion(uint64_t region_id);

  // Stat helpers for the owning client (it sees request geometry the
  // cache does not).
  void NoteHit(uint64_t bytes) noexcept {
    ++stats_.hits;
    stats_.bytes_from_cache += bytes;
  }
  void NoteMiss() noexcept { ++stats_.misses; }
  void NoteFill(uint64_t bytes) noexcept {
    ++stats_.fills;
    stats_.bytes_filled += bytes;
  }
  void NoteBypass() noexcept { ++stats_.bypass_reads; }

 private:
  struct PageKey {
    uint64_t region_id;
    uint64_t page;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const noexcept {
      // splitmix-style combine; region ids are small and monotonic.
      uint64_t x = k.region_id * 0x9e3779b97f4a7c15ULL ^ k.page;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };

  void LruPushFront(Frame* frame) noexcept;
  void LruUnlink(Frame* frame) noexcept;
  // Removes a resident frame from index + LRU and frees it.
  void Recycle(Frame* frame, bool counts_as_eviction);

  CacheConfig config_;
  ArenaAllocator alloc_;
  EvictObserver on_evict_;

  std::unordered_map<PageKey, Frame*, PageKeyHash> index_;
  std::vector<Frame*> free_;
  // All frames ever created (owned; arena storage owned by the client).
  std::vector<std::unique_ptr<Frame>> frames_;
  uint64_t allocated_pages_ = 0;

  // Intrusive LRU: head = most recent.
  Frame* lru_head_ = nullptr;
  Frame* lru_tail_ = nullptr;

  CacheStats stats_;
};

}  // namespace rstore::cache
