#include "carafe/engine.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/log.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::carafe {
namespace {

template <typename T>
std::span<std::byte> AsBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::byte*>(v.data()), v.size() * sizeof(T)};
}

}  // namespace

Worker::Worker(core::RStoreClient& client, std::string graph_name,
               WorkerConfig config)
    : client_(client), graph_name_(std::move(graph_name)),
      config_(config) {}

std::string Worker::Scratch(const std::string& what) const {
  return graph_name_ + "/" + config_.run_tag + "/" + what;
}

std::string Worker::Chan(const std::string& what, uint64_t seq) const {
  return Scratch(what) + "/" + std::to_string(seq);
}

Result<core::MappedRegion*> Worker::MapScratch(const std::string& name) {
  core::RmapOptions opts;
  opts.cache_mode = config_.cache ? cache::CacheMode::kEpoch
                                  : cache::CacheMode::kNone;
  return client_.Rmap(name, opts);
}

Status Worker::EnsureRegion(const std::string& name, uint64_t size) {
  Status st = client_.Ralloc(name, size);
  if (st.code() == ErrorCode::kAlreadyExists) return Status::Ok();
  return st;
}

Status Worker::Barrier(const std::string& name, uint64_t seq) {
  RSTORE_RETURN_IF_ERROR(client_.NotifyInc(Chan(name, seq)));
  return client_.WaitNotify(Chan(name, seq), config_.num_workers).status();
}

Result<uint64_t> Worker::ReduceSum(const std::string& name, uint64_t seq,
                                   uint64_t local_value) {
  // Contribute first, then arrive: once everyone arrived, the value
  // channel necessarily holds the complete sum.
  RSTORE_RETURN_IF_ERROR(
      client_.NotifyInc(Chan(name + "-val", seq), local_value));
  RSTORE_RETURN_IF_ERROR(client_.NotifyInc(Chan(name + "-arr", seq), 1));
  RSTORE_RETURN_IF_ERROR(
      client_.WaitNotify(Chan(name + "-arr", seq), config_.num_workers)
          .status());
  return client_.WaitNotify(Chan(name + "-val", seq), 0);
}

Status Worker::Init() {
  auto opened = OpenGraph(client_, graph_name_);
  if (!opened.ok()) return opened.status();
  graph_ = *opened;

  const uint64_t n = graph_.n;
  const uint32_t w = config_.worker_id;
  const uint32_t W = config_.num_workers;
  lo_ = n * w / W;
  hi_ = n * (w + 1) / W;
  const uint64_t cnt = hi_ - lo_;

  // Pull this partition's CSR slices. Each fetch is a single striped
  // one-sided read.
  auto fetch = [&](const std::string& region_name, uint64_t byte_off,
                   std::span<std::byte> dst) -> Status {
    if (dst.empty()) return Status::Ok();
    RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(dst));
    // Topology is write-once once loaded, so it may cache as kImmutable;
    // these bulk partition fetches mostly stream around the cache
    // (bypass), but later random topology reads would hit.
    core::RmapOptions opts;
    opts.cache_mode = config_.cache ? cache::CacheMode::kImmutable
                                    : cache::CacheMode::kNone;
    auto region = client_.Rmap(region_name, opts);
    if (!region.ok()) return region.status();
    return (*region)->Read(byte_off, dst);
  };

  out_offsets_.resize(cnt + 1);
  RSTORE_RETURN_IF_ERROR(fetch(GraphRegions::OutOffsets(graph_name_),
                               lo_ * 8, AsBytes(out_offsets_)));
  in_offsets_.resize(cnt + 1);
  RSTORE_RETURN_IF_ERROR(fetch(GraphRegions::InOffsets(graph_name_), lo_ * 8,
                               AsBytes(in_offsets_)));

  const uint64_t out_lo = out_offsets_.front();
  const uint64_t out_n = out_offsets_.back() - out_lo;
  out_targets_.resize(out_n);
  RSTORE_RETURN_IF_ERROR(fetch(GraphRegions::OutTargets(graph_name_),
                               out_lo * 4, AsBytes(out_targets_)));

  const uint64_t in_lo = in_offsets_.front();
  const uint64_t in_n = in_offsets_.back() - in_lo;
  in_targets_.resize(in_n);
  RSTORE_RETURN_IF_ERROR(fetch(GraphRegions::InTargets(graph_name_),
                               in_lo * 4, AsBytes(in_targets_)));
  if (graph_.weighted) {
    in_weights_.resize(in_n);
    RSTORE_RETURN_IF_ERROR(fetch(GraphRegions::InWeights(graph_name_),
                                 in_lo * 4, AsBytes(in_weights_)));
  }

  initialized_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// PageRank: pull over in-edges, contributions double-buffered in RStore.
// ---------------------------------------------------------------------------
Result<std::vector<double>> Worker::PageRank(const PageRankOptions& options) {
  if (!initialized_) {
    return Result<std::vector<double>>(ErrorCode::kInvalidArgument,
                                       "call Init() first");
  }
  const uint64_t n = graph_.n;
  const uint64_t cnt = hi_ - lo_;
  const uint32_t W = config_.num_workers;
  const double d = options.damping;
  const sim::CpuCostModel& cpu = client_.device().network().cpu_model();

  for (int b = 0; b < 2; ++b) {
    RSTORE_RETURN_IF_ERROR(
        EnsureRegion(Scratch("contrib" + std::to_string(b)), n * 8));
    RSTORE_RETURN_IF_ERROR(
        EnsureRegion(Scratch("dangling" + std::to_string(b)), W * 8));
  }
  RSTORE_RETURN_IF_ERROR(EnsureRegion(Scratch("rank"), n * 8));

  core::MappedRegion* contrib[2];
  core::MappedRegion* dangling[2];
  for (int b = 0; b < 2; ++b) {
    RSTORE_ASSIGN_OR_RETURN(contrib[b],
                            MapScratch(Scratch("contrib" +
                                               std::to_string(b))));
    RSTORE_ASSIGN_OR_RETURN(dangling[b],
                            MapScratch(Scratch("dangling" +
                                               std::to_string(b))));
  }
  core::MappedRegion* rank_region;
  RSTORE_ASSIGN_OR_RETURN(rank_region, client_.Rmap(Scratch("rank")));

  std::vector<double> rank(std::max<uint64_t>(cnt, 1),
                           1.0 / static_cast<double>(n));
  std::vector<double> contrib_slice(std::max<uint64_t>(cnt, 1));
  std::vector<double> contrib_full(n);
  std::vector<double> dangling_all(W);
  std::vector<double> dangling_mine(1);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(rank)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(contrib_slice)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(contrib_full)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(dangling_all)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(dangling_mine)));

  const uint64_t my_in_edges = in_targets_.size();

  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    obs::Telemetry* tel = client_.device().network().sim().telemetry();
    obs::ObsSpan step_span(tel, client_.device().node_id(), "app",
                           "pr.superstep");
    step_span.Arg("iteration", static_cast<double>(iter));
    if (tel != nullptr) {
      tel->metrics()
          .ForNode(client_.device().node_id())
          .GetCounter("carafe.supersteps")
          .Inc();
    }
    const int buf = static_cast<int>(iter & 1);
    if (config_.cache) {
      // New epoch for the buffer about to be rewritten — before the
      // local writes, so this worker's write-throughs stay trusted while
      // every other worker's slice becomes a miss.
      contrib[buf]->BumpEpoch();
      dangling[buf]->BumpEpoch();
    }

    // Publish contributions of my vertices for this iteration.
    dangling_mine[0] = 0;
    for (uint64_t v = 0; v < cnt; ++v) {
      const uint64_t deg = out_offsets_[v + 1] - out_offsets_[v];
      if (deg == 0) {
        contrib_slice[v] = 0;
        dangling_mine[0] += rank[v];
      } else {
        contrib_slice[v] = rank[v] / static_cast<double>(deg);
      }
    }
    sim::ChargeCpu(sim::ScanCost(cpu, cnt * 8));
    if (cnt > 0) {
      RSTORE_RETURN_IF_ERROR(contrib[buf]->Write(
          lo_ * 8, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(
                           contrib_slice.data()),
                       cnt * 8)));
    }
    RSTORE_RETURN_IF_ERROR(dangling[buf]->Write(
        config_.worker_id * 8, AsBytes(dangling_mine)));

    RSTORE_RETURN_IF_ERROR(Barrier("pr", iter));

    // Pull the full contribution array (a striped read across the whole
    // cluster) and the dangling mass, then apply the vertex program.
    RSTORE_RETURN_IF_ERROR(contrib[buf]->Read(0, AsBytes(contrib_full)));
    RSTORE_RETURN_IF_ERROR(dangling[buf]->Read(0, AsBytes(dangling_all)));
    double dangling_total = 0;
    for (const double x : dangling_all) dangling_total += x;
    const double base = (1.0 - d) / static_cast<double>(n) +
                        d * dangling_total / static_cast<double>(n);
    const uint64_t in_base = in_offsets_.front();
    for (uint64_t v = 0; v < cnt; ++v) {
      double sum = 0;
      for (uint64_t e = in_offsets_[v]; e < in_offsets_[v + 1]; ++e) {
        sum += contrib_full[in_targets_[e - in_base]];
      }
      rank[v] = base + d * sum;
    }
    sim::ChargeCpu(sim::GraphEdgeCost(cpu, my_in_edges) +
                   sim::ScanCost(cpu, cnt * 8));
  }

  // Assemble the global result through the shared rank region.
  if (cnt > 0) {
    RSTORE_RETURN_IF_ERROR(rank_region->Write(
        lo_ * 8, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(rank.data()),
                     cnt * 8)));
  }
  RSTORE_RETURN_IF_ERROR(Barrier("pr-done", 0));
  std::vector<double> result(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(result)));
  RSTORE_RETURN_IF_ERROR(rank_region->Read(0, AsBytes(result)));
  return result;
}

// ---------------------------------------------------------------------------
// BFS: level-synchronous, per-worker frontier bitmaps, double-buffered.
// ---------------------------------------------------------------------------
Result<std::vector<uint32_t>> Worker::Bfs(uint64_t source) {
  if (!initialized_) {
    return Result<std::vector<uint32_t>>(ErrorCode::kInvalidArgument,
                                         "call Init() first");
  }
  if (source >= graph_.n) {
    return Result<std::vector<uint32_t>>(ErrorCode::kOutOfRange,
                                         "source vertex out of range");
  }
  constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();
  const uint64_t n = graph_.n;
  const uint64_t cnt = hi_ - lo_;
  const uint32_t W = config_.num_workers;
  const sim::CpuCostModel& cpu = client_.device().network().cpu_model();

  for (int b = 0; b < 2; ++b) {
    RSTORE_RETURN_IF_ERROR(EnsureRegion(
        Scratch("bfs-next" + std::to_string(b)), static_cast<uint64_t>(W) * n));
  }
  RSTORE_RETURN_IF_ERROR(EnsureRegion(Scratch("bfs-dist"), n * 4));
  // BFS bitmaps stay uncached even when config_.cache is set: the merge
  // reads below touch one short slice per peer bitmap exactly once per
  // level, so page-granular fills would fetch far more than the slice
  // (fill amplification) with no reuse to pay it back.
  core::MappedRegion* next_region[2];
  for (int b = 0; b < 2; ++b) {
    RSTORE_ASSIGN_OR_RETURN(next_region[b],
                            client_.Rmap(Scratch("bfs-next" +
                                                 std::to_string(b))));
  }
  core::MappedRegion* dist_region;
  RSTORE_ASSIGN_OR_RETURN(dist_region, client_.Rmap(Scratch("bfs-dist")));

  std::vector<uint32_t> dist(std::max<uint64_t>(cnt, 1), kUnreached);
  std::vector<uint64_t> frontier;
  if (source >= lo_ && source < hi_) {
    dist[source - lo_] = 0;
    frontier.push_back(source);
  }

  std::vector<uint8_t> next_full(n);
  std::vector<uint8_t> merge(std::max<uint64_t>(W * cnt, 1));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(dist)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(next_full)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(merge)));

  const uint64_t out_base = out_offsets_.front();
  uint32_t level = 0;
  while (true) {
    const int buf = static_cast<int>(level & 1);

    // Expand my frontier into a full-width bitmap and publish it.
    std::fill(next_full.begin(), next_full.end(), 0);
    uint64_t expanded = 0;
    for (const uint64_t v : frontier) {
      const uint64_t i = v - lo_;
      for (uint64_t e = out_offsets_[i]; e < out_offsets_[i + 1]; ++e) {
        next_full[out_targets_[e - out_base]] = 1;
        ++expanded;
      }
    }
    sim::ChargeCpu(sim::GraphEdgeCost(cpu, expanded) +
                   sim::ScanCost(cpu, n));
    RSTORE_RETURN_IF_ERROR(next_region[buf]->Write(
        static_cast<uint64_t>(config_.worker_id) * n, AsBytes(next_full)));

    RSTORE_RETURN_IF_ERROR(Barrier("bfs", level));

    // Merge every worker's bitmap over my vertex range.
    if (cnt > 0) {
      for (uint32_t w2 = 0; w2 < W; ++w2) {
        RSTORE_RETURN_IF_ERROR(next_region[buf]->Read(
            static_cast<uint64_t>(w2) * n + lo_,
            std::span<std::byte>(
                reinterpret_cast<std::byte*>(merge.data()) + w2 * cnt,
                cnt)));
      }
    }
    frontier.clear();
    for (uint64_t i = 0; i < cnt; ++i) {
      if (dist[i] != kUnreached) continue;
      bool hit = false;
      for (uint32_t w2 = 0; w2 < W && !hit; ++w2) {
        hit = merge[w2 * cnt + i] != 0;
      }
      if (hit) {
        dist[i] = level + 1;
        frontier.push_back(lo_ + i);
      }
    }
    sim::ChargeCpu(sim::ScanCost(cpu, W * cnt));

    auto total = ReduceSum("bfs-new", level, frontier.size());
    if (!total.ok()) return total.status();
    if (*total == 0) break;
    ++level;
  }

  if (cnt > 0) {
    RSTORE_RETURN_IF_ERROR(dist_region->Write(
        lo_ * 4, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(dist.data()),
                     cnt * 4)));
  }
  RSTORE_RETURN_IF_ERROR(Barrier("bfs-done", 0));
  std::vector<uint32_t> result(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(result)));
  RSTORE_RETURN_IF_ERROR(dist_region->Read(0, AsBytes(result)));
  return result;
}

// ---------------------------------------------------------------------------
// Connected components: synchronous min-label propagation (symmetric
// graphs).
// ---------------------------------------------------------------------------
Result<std::vector<uint64_t>> Worker::Components() {
  if (!initialized_) {
    return Result<std::vector<uint64_t>>(ErrorCode::kInvalidArgument,
                                         "call Init() first");
  }
  const uint64_t n = graph_.n;
  const uint64_t cnt = hi_ - lo_;
  const sim::CpuCostModel& cpu = client_.device().network().cpu_model();

  for (int b = 0; b < 2; ++b) {
    RSTORE_RETURN_IF_ERROR(
        EnsureRegion(Scratch("label" + std::to_string(b)), n * 8));
  }
  RSTORE_RETURN_IF_ERROR(EnsureRegion(Scratch("cc"), n * 8));
  core::MappedRegion* label_region[2];
  for (int b = 0; b < 2; ++b) {
    RSTORE_ASSIGN_OR_RETURN(label_region[b],
                            MapScratch(Scratch("label" +
                                               std::to_string(b))));
  }
  core::MappedRegion* cc_region;
  RSTORE_ASSIGN_OR_RETURN(cc_region, client_.Rmap(Scratch("cc")));

  std::vector<uint64_t> label(std::max<uint64_t>(cnt, 1));
  for (uint64_t i = 0; i < cnt; ++i) label[i] = lo_ + i;
  std::vector<uint64_t> label_full(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(label)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(label_full)));

  const uint64_t in_base = in_offsets_.front();
  uint64_t iter = 0;
  while (true) {
    const int buf = static_cast<int>(iter & 1);
    if (config_.cache) label_region[buf]->BumpEpoch();
    if (cnt > 0) {
      RSTORE_RETURN_IF_ERROR(label_region[buf]->Write(
          lo_ * 8, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(label.data()),
                       cnt * 8)));
    }
    RSTORE_RETURN_IF_ERROR(Barrier("cc", iter));
    RSTORE_RETURN_IF_ERROR(label_region[buf]->Read(0, AsBytes(label_full)));

    uint64_t changes = 0;
    for (uint64_t i = 0; i < cnt; ++i) {
      uint64_t best = label[i];
      for (uint64_t e = in_offsets_[i]; e < in_offsets_[i + 1]; ++e) {
        best = std::min(best, label_full[in_targets_[e - in_base]]);
      }
      if (best < label[i]) {
        label[i] = best;
        ++changes;
      }
    }
    sim::ChargeCpu(sim::GraphEdgeCost(cpu, in_targets_.size()) +
                   sim::ScanCost(cpu, n * 8));

    auto total = ReduceSum("cc-new", iter, changes);
    if (!total.ok()) return total.status();
    if (*total == 0) break;
    ++iter;
  }

  if (cnt > 0) {
    RSTORE_RETURN_IF_ERROR(cc_region->Write(
        lo_ * 8, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(label.data()),
                     cnt * 8)));
  }
  RSTORE_RETURN_IF_ERROR(Barrier("cc-done", 0));
  std::vector<uint64_t> result(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(result)));
  RSTORE_RETURN_IF_ERROR(cc_region->Read(0, AsBytes(result)));
  return result;
}


// ---------------------------------------------------------------------------
// SSSP: synchronous Bellman-Ford over in-edges, distances double-buffered
// in RStore; terminates when a round relaxes nothing anywhere.
// ---------------------------------------------------------------------------
Result<std::vector<uint64_t>> Worker::Sssp(uint64_t source) {
  if (!initialized_) {
    return Result<std::vector<uint64_t>>(ErrorCode::kInvalidArgument,
                                         "call Init() first");
  }
  if (!graph_.weighted) {
    return Result<std::vector<uint64_t>>(
        ErrorCode::kInvalidArgument,
        "SSSP requires a weighted graph (use Bfs for unit weights)");
  }
  if (source >= graph_.n) {
    return Result<std::vector<uint64_t>>(ErrorCode::kOutOfRange,
                                         "source vertex out of range");
  }
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  const uint64_t n = graph_.n;
  const uint64_t cnt = hi_ - lo_;
  const sim::CpuCostModel& cpu = client_.device().network().cpu_model();

  for (int b = 0; b < 2; ++b) {
    RSTORE_RETURN_IF_ERROR(
        EnsureRegion(Scratch("dist" + std::to_string(b)), n * 8));
  }
  RSTORE_RETURN_IF_ERROR(EnsureRegion(Scratch("sssp"), n * 8));
  core::MappedRegion* dist_region[2];
  for (int b = 0; b < 2; ++b) {
    RSTORE_ASSIGN_OR_RETURN(dist_region[b],
                            MapScratch(Scratch("dist" +
                                               std::to_string(b))));
  }
  core::MappedRegion* result_region;
  RSTORE_ASSIGN_OR_RETURN(result_region, client_.Rmap(Scratch("sssp")));

  std::vector<uint64_t> dist(std::max<uint64_t>(cnt, 1), kInf);
  if (source >= lo_ && source < hi_) dist[source - lo_] = 0;
  std::vector<uint64_t> dist_full(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(dist)));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(dist_full)));

  const uint64_t in_base = in_offsets_.front();
  uint64_t round = 0;
  while (true) {
    const int buf = static_cast<int>(round & 1);
    if (config_.cache) dist_region[buf]->BumpEpoch();
    if (cnt > 0) {
      RSTORE_RETURN_IF_ERROR(dist_region[buf]->Write(
          lo_ * 8, std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(dist.data()),
                       cnt * 8)));
    }
    RSTORE_RETURN_IF_ERROR(Barrier("sssp", round));
    RSTORE_RETURN_IF_ERROR(dist_region[buf]->Read(0, AsBytes(dist_full)));

    uint64_t changes = 0;
    for (uint64_t i = 0; i < cnt; ++i) {
      uint64_t best = dist[i];
      for (uint64_t e = in_offsets_[i]; e < in_offsets_[i + 1]; ++e) {
        const uint64_t du = dist_full[in_targets_[e - in_base]];
        if (du == kInf) continue;
        const uint64_t cand = du + in_weights_[e - in_base];
        best = std::min(best, cand);
      }
      if (best < dist[i]) {
        dist[i] = best;
        ++changes;
      }
    }
    sim::ChargeCpu(sim::GraphEdgeCost(cpu, in_targets_.size()) +
                   sim::ScanCost(cpu, n * 8));

    auto total = ReduceSum("sssp-new", round, changes);
    if (!total.ok()) return total.status();
    if (*total == 0) break;
    ++round;
  }

  if (cnt > 0) {
    RSTORE_RETURN_IF_ERROR(result_region->Write(
        lo_ * 8, std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(dist.data()),
                     cnt * 8)));
  }
  RSTORE_RETURN_IF_ERROR(Barrier("sssp-done", 0));
  std::vector<uint64_t> result(n);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(result)));
  RSTORE_RETURN_IF_ERROR(result_region->Read(0, AsBytes(result)));
  return result;
}

}  // namespace rstore::carafe
