// Carafe: BSP graph computation over RStore.
//
// One Worker runs per compute node. Workers never exchange point-to-point
// messages; all cross-worker dataflow goes through shared RStore regions
// (contribution arrays, frontier bitmaps, label arrays) accessed with
// one-sided reads and writes, and supersteps are separated by barriers
// built on the master's notification channels. The graph structure is
// fetched once at Init (each worker pulls exactly its partition), so the
// per-iteration network traffic is only the algorithm's live state —
// this is the "low-latency graph access" the paper credits for Carafe's
// PageRank numbers.
//
// Algorithms: PageRank (pull-style over in-edges, double-buffered
// contributions), level-synchronous BFS (per-worker frontier bitmaps),
// connected components (min-label propagation; expects a symmetric
// graph), and weighted SSSP (synchronous Bellman-Ford). Each validates
// against the single-machine references in graph.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "carafe/graph.h"
#include "carafe/storage.h"
#include "common/status.h"
#include "core/client.h"

namespace rstore::carafe {

struct WorkerConfig {
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  // Distinguishes concurrent/successive runs on the same graph (scratch
  // regions and channels are namespaced by it).
  std::string run_tag = "run0";
  // Client-side region caching (cache/region_cache.h): topology regions
  // map kImmutable and double-buffered scratch maps kEpoch, with an
  // epoch bump at the start of every superstep. Workers write disjoint
  // slices between barriers, so the epoch contract holds by
  // construction. Off by default: virtual times are then bit-identical
  // to a build without the cache.
  bool cache = false;
};

struct PageRankOptions {
  uint32_t iterations = 20;
  double damping = 0.85;
};

class Worker {
 public:
  Worker(core::RStoreClient& client, std::string graph_name,
         WorkerConfig config);

  // Maps the graph regions and pulls this worker's partition (vertex
  // range, out-degrees, in-edges, out-edges) into local memory.
  Status Init();

  // Each returns the *full* result array (every worker assembles it from
  // the shared result region after the final barrier), so callers can
  // validate against the references regardless of which worker they ask.
  Result<std::vector<double>> PageRank(const PageRankOptions& options = {});
  Result<std::vector<uint32_t>> Bfs(uint64_t source);
  Result<std::vector<uint64_t>> Components();
  // Single-source shortest paths (requires a weighted graph); distributed
  // Bellman-Ford over the in-edge lists, one relaxation round per
  // superstep. Unreachable = UINT64_MAX.
  Result<std::vector<uint64_t>> Sssp(uint64_t source);

  [[nodiscard]] uint64_t vertex_lo() const noexcept { return lo_; }
  [[nodiscard]] uint64_t vertex_hi() const noexcept { return hi_; }
  [[nodiscard]] const StoredGraph& graph() const noexcept { return graph_; }

 private:
  // Region/channel names, namespaced by graph and run tag.
  [[nodiscard]] std::string Scratch(const std::string& what) const;
  [[nodiscard]] std::string Chan(const std::string& what,
                                 uint64_t seq) const;

  // Rmap for double-buffered scratch: kEpoch when caching is enabled.
  Result<core::MappedRegion*> MapScratch(const std::string& name);
  // Ralloc that treats kAlreadyExists as success (idempotent across
  // workers racing to create shared scratch).
  Status EnsureRegion(const std::string& name, uint64_t size);
  // Barrier over a notification channel: arrive, then wait for all.
  Status Barrier(const std::string& name, uint64_t seq);
  // Sum-reduce a per-worker uint64 through a pair of channels.
  Result<uint64_t> ReduceSum(const std::string& name, uint64_t seq,
                             uint64_t local_value);

  core::RStoreClient& client_;
  std::string graph_name_;
  WorkerConfig config_;
  StoredGraph graph_;

  uint64_t lo_ = 0, hi_ = 0;           // my vertex range [lo, hi)
  std::vector<uint64_t> out_offsets_;  // (cnt+1), rebased to my range
  std::vector<uint32_t> out_targets_;  // my out-edges
  std::vector<uint64_t> in_offsets_;   // (cnt+1)
  std::vector<uint32_t> in_targets_;   // my in-edges
  std::vector<uint32_t> in_weights_;   // parallel to in_targets_ (weighted)
  bool initialized_ = false;
};

}  // namespace rstore::carafe
