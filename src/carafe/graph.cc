#include "carafe/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <limits>
#include <numeric>

namespace rstore::carafe {
namespace {

// Builds CSR from an edge list (counting sort by source).
Graph FromEdges(uint64_t n, std::vector<std::pair<uint32_t, uint32_t>> edges) {
  Graph g;
  g.offsets.assign(n + 1, 0);
  for (const auto& [src, dst] : edges) g.offsets[src + 1]++;
  for (uint64_t v = 0; v < n; ++v) g.offsets[v + 1] += g.offsets[v];
  g.targets.resize(edges.size());
  std::vector<uint64_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (const auto& [src, dst] : edges) g.targets[cursor[src]++] = dst;
  return g;
}

}  // namespace

Graph UniformRandomGraph(uint64_t n, double avg_degree, uint64_t seed) {
  assert(n > 0 && n <= std::numeric_limits<uint32_t>::max());
  Rng rng(seed);
  const auto m = static_cast<uint64_t>(static_cast<double>(n) * avg_degree);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    edges.emplace_back(static_cast<uint32_t>(rng.NextBelow(n)),
                       static_cast<uint32_t>(rng.NextBelow(n)));
  }
  return FromEdges(n, std::move(edges));
}

Graph RmatGraph(uint32_t scale, double avg_degree, uint64_t seed) {
  assert(scale > 0 && scale < 32);
  const uint64_t n = 1ULL << scale;
  const auto m = static_cast<uint64_t>(static_cast<double>(n) * avg_degree);
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;  // Graph500
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint64_t src = 0, dst = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < kA) {
        // top-left quadrant: no bits set
      } else if (r < kA + kB) {
        dst |= 1;
      } else if (r < kA + kB + kC) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.emplace_back(static_cast<uint32_t>(src),
                       static_cast<uint32_t>(dst));
  }
  return FromEdges(n, std::move(edges));
}

Graph Transpose(const Graph& g) {
  const uint64_t n = g.num_vertices();
  Graph t;
  t.offsets.assign(n + 1, 0);
  for (const uint32_t dst : g.targets) t.offsets[dst + 1]++;
  for (uint64_t v = 0; v < n; ++v) t.offsets[v + 1] += t.offsets[v];
  t.targets.resize(g.num_edges());
  if (g.weighted()) t.weights.resize(g.num_edges());
  std::vector<uint64_t> cursor(t.offsets.begin(), t.offsets.end() - 1);
  for (uint64_t src = 0; src < n; ++src) {
    const auto [lo, hi] = g.edge_range(src);
    for (uint64_t e = lo; e < hi; ++e) {
      const uint64_t at = cursor[g.targets[e]]++;
      t.targets[at] = static_cast<uint32_t>(src);
      if (g.weighted()) t.weights[at] = g.weights[e];
    }
  }
  return t;
}

void AddRandomWeights(Graph& g, uint64_t seed, uint32_t max_weight) {
  Rng rng(seed);
  g.weights.resize(g.num_edges());
  for (auto& w : g.weights) {
    w = 1 + static_cast<uint32_t>(rng.NextBelow(max_weight));
  }
}

Graph MakeSymmetric(const Graph& g) {
  const uint64_t n = g.num_vertices();
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(2 * g.num_edges());
  for (uint64_t src = 0; src < n; ++src) {
    const auto [lo, hi] = g.edge_range(src);
    for (uint64_t e = lo; e < hi; ++e) {
      edges.emplace_back(static_cast<uint32_t>(src), g.targets[e]);
      edges.emplace_back(g.targets[e], static_cast<uint32_t>(src));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return FromEdges(n, std::move(edges));
}

std::vector<double> ReferencePageRank(const Graph& g, uint32_t iterations,
                                      double damping) {
  const uint64_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    double dangling = 0;
    for (uint64_t v = 0; v < n; ++v) {
      if (g.out_degree(v) == 0) dangling += rank[v];
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (uint64_t v = 0; v < n; ++v) {
      const uint64_t deg = g.out_degree(v);
      if (deg == 0) continue;
      const double share = damping * rank[v] / static_cast<double>(deg);
      const auto [lo, hi] = g.edge_range(v);
      for (uint64_t e = lo; e < hi; ++e) next[g.targets[e]] += share;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<uint32_t> ReferenceBfs(const Graph& g, uint64_t source) {
  const uint64_t n = g.num_vertices();
  std::vector<uint32_t> dist(n, std::numeric_limits<uint32_t>::max());
  std::deque<uint64_t> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const uint64_t v = frontier.front();
    frontier.pop_front();
    const auto [lo, hi] = g.edge_range(v);
    for (uint64_t e = lo; e < hi; ++e) {
      const uint32_t w = g.targets[e];
      if (dist[w] == std::numeric_limits<uint32_t>::max()) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ReferenceComponents(const Graph& g) {
  const uint64_t n = g.num_vertices();
  std::vector<uint64_t> label(n);
  std::iota(label.begin(), label.end(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t v = 0; v < n; ++v) {
      const auto [lo, hi] = g.edge_range(v);
      for (uint64_t e = lo; e < hi; ++e) {
        const uint32_t w = g.targets[e];
        if (label[w] < label[v]) {
          label[v] = label[w];
          changed = true;
        } else if (label[v] < label[w]) {
          label[w] = label[v];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<uint64_t> ReferenceSssp(const Graph& g, uint64_t source) {
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  const uint64_t n = g.num_vertices();
  std::vector<uint64_t> dist(n, kInf);
  dist[source] = 0;
  using Entry = std::pair<uint64_t, uint64_t>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;  // stale entry
    const auto [lo, hi] = g.edge_range(v);
    for (uint64_t e = lo; e < hi; ++e) {
      const uint64_t w = g.weighted() ? g.weights[e] : 1;
      const uint32_t to = g.targets[e];
      if (d + w < dist[to]) {
        dist[to] = d + w;
        pq.emplace(dist[to], to);
      }
    }
  }
  return dist;
}

}  // namespace rstore::carafe
