// Graph representation and deterministic generators for Carafe, the
// distributed graph-processing framework built on RStore (the paper's
// first application study).
//
// Graphs are CSR (offsets + targets). Generators cover the two workload
// shapes graph papers of the period evaluated on: uniform random
// (Erdős–Rényi-flavoured) and scale-free RMAT (Graph500 parameters), both
// a pure function of their seed. Reference single-machine algorithm
// implementations live here too; the distributed engine is validated
// against them bit-for-bit where the algorithm is deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rstore::carafe {

// Compressed sparse row directed graph. Vertices are [0, n); edge targets
// of vertex v are targets[offsets[v] .. offsets[v+1]). Weights are
// optional (empty = unweighted); when present, weights[e] belongs to
// edge targets[e].
struct Graph {
  std::vector<uint64_t> offsets;  // n + 1 entries
  std::vector<uint32_t> targets;  // m entries
  std::vector<uint32_t> weights;  // m entries or empty

  [[nodiscard]] bool weighted() const noexcept { return !weights.empty(); }

  [[nodiscard]] uint64_t num_vertices() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] uint64_t num_edges() const noexcept {
    return targets.size();
  }
  [[nodiscard]] uint64_t out_degree(uint64_t v) const {
    return offsets[v + 1] - offsets[v];
  }
  [[nodiscard]] std::pair<uint64_t, uint64_t> edge_range(uint64_t v) const {
    return {offsets[v], offsets[v + 1]};
  }
};

// Uniform random directed graph: each of n*avg_degree edges picks an
// independent (src, dst) pair. Self-loops allowed (harmless for the
// algorithms here); duplicates allowed, as in Graph500.
Graph UniformRandomGraph(uint64_t n, double avg_degree, uint64_t seed);

// RMAT (recursive matrix) scale-free generator with Graph500 parameters
// (a=0.57, b=0.19, c=0.19): 2^scale vertices, n*avg_degree edges.
Graph RmatGraph(uint32_t scale, double avg_degree, uint64_t seed);

// The transposed graph (in-edges become out-edges); used by pull-style
// vertex programs. Weights follow their edges.
Graph Transpose(const Graph& g);

// Assigns deterministic pseudo-random weights in [1, max_weight] to every
// edge of `g`.
void AddRandomWeights(Graph& g, uint64_t seed, uint32_t max_weight = 100);

// Adds the reverse of every edge (deduplicated), making the graph
// effectively undirected; used by connected components.
Graph MakeSymmetric(const Graph& g);

// --- single-machine reference implementations ---------------------------

// Standard damped PageRank, synchronous iterations, uniform init 1/n.
// Dangling mass is redistributed uniformly.
std::vector<double> ReferencePageRank(const Graph& g, uint32_t iterations,
                                      double damping = 0.85);

// Level-synchronous BFS from `source`; unreachable = UINT32_MAX.
std::vector<uint32_t> ReferenceBfs(const Graph& g, uint64_t source);

// Connected components by label propagation on a symmetric graph;
// returns the minimum-vertex-id label of each component.
std::vector<uint64_t> ReferenceComponents(const Graph& g);

// Single-source shortest paths on a weighted graph (Dijkstra);
// unreachable = UINT64_MAX. Unweighted graphs use weight 1 per edge.
std::vector<uint64_t> ReferenceSssp(const Graph& g, uint64_t source);

}  // namespace rstore::carafe
