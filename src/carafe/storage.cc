#include "carafe/storage.h"

#include <cstring>

namespace rstore::carafe {
namespace {

// Uploads a raw array as one region through a registered staging view.
// Registering the caller's array directly would pin application memory
// the client does not own past the call, so we stage through a pinned
// bounce buffer in chunks (setup-time cost, not data-path cost).
Status UploadArray(core::RStoreClient& client, const std::string& region_name,
                   const void* data, uint64_t bytes) {
  RSTORE_RETURN_IF_ERROR(client.Ralloc(region_name, bytes));
  auto region = client.Rmap(region_name);
  if (!region.ok()) return region.status();

  constexpr uint64_t kChunk = 8ULL << 20;
  auto staging = client.AllocBuffer(std::min(bytes, kChunk));
  if (!staging.ok()) return staging.status();

  const auto* src = static_cast<const std::byte*>(data);
  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t n = std::min(kChunk, bytes - off);
    std::memcpy(staging->begin(), src + off, n);
    sim::ChargeCpu(sim::MemcpyCost(
        client.device().network().cpu_model(), n));
    RSTORE_RETURN_IF_ERROR((*region)->Write(
        off, std::span<const std::byte>(staging->begin(), n)));
    off += n;
  }
  return Status::Ok();
}

}  // namespace

Status UploadGraph(core::RStoreClient& client, const std::string& name,
                   const Graph& graph) {
  const Graph transpose = Transpose(graph);
  const uint64_t n = graph.num_vertices();
  const uint64_t m = graph.num_edges();

  // Meta region first: n, m, m_in, weighted flag.
  const uint64_t meta[4] = {n, m, transpose.num_edges(),
                            graph.weighted() ? 1ULL : 0ULL};
  RSTORE_RETURN_IF_ERROR(
      UploadArray(client, GraphRegions::Meta(name), meta, sizeof(meta)));

  RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::OutOffsets(name),
                                     graph.offsets.data(),
                                     (n + 1) * sizeof(uint64_t)));
  if (m > 0) {
    RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::OutTargets(name),
                                       graph.targets.data(),
                                       m * sizeof(uint32_t)));
  }
  RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::InOffsets(name),
                                     transpose.offsets.data(),
                                     (n + 1) * sizeof(uint64_t)));
  if (transpose.num_edges() > 0) {
    RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::InTargets(name),
                                       transpose.targets.data(),
                                       transpose.num_edges() *
                                           sizeof(uint32_t)));
  }
  if (graph.weighted() && m > 0) {
    RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::OutWeights(name),
                                       graph.weights.data(),
                                       m * sizeof(uint32_t)));
    RSTORE_RETURN_IF_ERROR(UploadArray(client, GraphRegions::InWeights(name),
                                       transpose.weights.data(),
                                       transpose.num_edges() *
                                           sizeof(uint32_t)));
  }
  return Status::Ok();
}

Result<StoredGraph> OpenGraph(core::RStoreClient& client,
                              const std::string& name) {
  auto region = client.Rmap(GraphRegions::Meta(name));
  if (!region.ok()) return region.status();
  auto buf = client.AllocBuffer(4 * sizeof(uint64_t));
  if (!buf.ok()) return buf.status();
  RSTORE_RETURN_IF_ERROR((*region)->Read(0, buf->data));
  uint64_t meta[4];
  std::memcpy(meta, buf->begin(), sizeof(meta));
  return StoredGraph{name, meta[0], meta[1], meta[3] != 0};
}

Status DropGraph(core::RStoreClient& client, const std::string& name) {
  Status first;
  for (const std::string& region :
       {GraphRegions::Meta(name), GraphRegions::OutOffsets(name),
        GraphRegions::OutTargets(name), GraphRegions::InOffsets(name),
        GraphRegions::InTargets(name), GraphRegions::OutWeights(name),
        GraphRegions::InWeights(name)}) {
    Status st = client.Rfree(region);
    if (!st.ok() && st.code() != ErrorCode::kNotFound && first.ok()) {
      first = st;
    }
  }
  return first;
}

}  // namespace rstore::carafe
