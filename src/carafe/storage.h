// Graph storage layout on RStore.
//
// A graph named G occupies a family of regions, written once by a loader
// client and thereafter mapped read-only by every compute worker — graph
// *storage* is decoupled from graph *computation*, which is Carafe's
// design point: workers fetch exactly the partitions they need with
// one-sided reads at memory-like latency, and per-iteration state
// (PageRank contributions, BFS frontiers) flows through small shared
// regions instead of point-to-point messages.
//
//   G/meta         u64 n, u64 m (forward), u64 m_in (transpose), u64 weighted
//   G/out_offsets  (n+1) x u64     CSR of the forward graph
//   G/out_targets  m x u32
//   G/in_offsets   (n+1) x u64     CSR of the transpose
//   G/in_targets   m x u32
//   G/out_weights  m x u32        (weighted graphs only)
//   G/in_weights   m x u32        (weighted graphs only)
//
// Scratch regions (contribution buffers, frontiers, results) are created
// by the engine per run.
#pragma once

#include <string>

#include "carafe/graph.h"
#include "common/status.h"
#include "core/client.h"

namespace rstore::carafe {

struct StoredGraph {
  std::string name;
  uint64_t n = 0;
  uint64_t m = 0;
  bool weighted = false;
};

// Region names for a stored graph.
struct GraphRegions {
  static std::string Meta(const std::string& g) { return g + "/meta"; }
  static std::string OutOffsets(const std::string& g) {
    return g + "/out_offsets";
  }
  static std::string OutTargets(const std::string& g) {
    return g + "/out_targets";
  }
  static std::string InOffsets(const std::string& g) {
    return g + "/in_offsets";
  }
  static std::string InTargets(const std::string& g) {
    return g + "/in_targets";
  }
  static std::string OutWeights(const std::string& g) {
    return g + "/out_weights";
  }
  static std::string InWeights(const std::string& g) {
    return g + "/in_weights";
  }
};

// Allocates the region family and uploads the graph (and its transpose)
// through `client`. The caller's graph stays untouched.
Status UploadGraph(core::RStoreClient& client, const std::string& name,
                   const Graph& graph);

// Reads the metadata of a previously uploaded graph.
Result<StoredGraph> OpenGraph(core::RStoreClient& client,
                              const std::string& name);

// Frees every region of the family.
Status DropGraph(core::RStoreClient& client, const std::string& name);

}  // namespace rstore::carafe
