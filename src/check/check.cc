#include "check/check.h"

#include <algorithm>
#include <ostream>

namespace rstore::check {
namespace {

// Annotation scopes are per OS thread; simulated threads are real OS
// threads under the cooperative scheduler, so thread_local gives exactly
// per-sim-thread scoping.
thread_local int t_speculative = 0;
thread_local int t_sync_cell = 0;
thread_local const char* t_label = nullptr;

void JsonEscape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

namespace detail {
void PushSpeculative() noexcept { ++t_speculative; }
void PopSpeculative() noexcept { --t_speculative; }
void PushSyncCell() noexcept { ++t_sync_cell; }
void PopSyncCell() noexcept { --t_sync_cell; }
const char* SwapLabel(const char* label) noexcept {
  const char* prev = t_label;
  t_label = label;
  return prev;
}
const char* CurrentLabel() noexcept { return t_label; }
}  // namespace detail

std::string_view ToString(ViolationType t) noexcept {
  switch (t) {
    case ViolationType::kRace: return "race";
    case ViolationType::kUseAfterFree: return "use-after-free";
    case ViolationType::kUseAfterDereg: return "use-after-deregister";
    case ViolationType::kUseAfterUnmap: return "use-after-unmap";
    case ViolationType::kGrowRace: return "grow-race";
    case ViolationType::kCacheMode: return "cache-mode";
  }
  return "unknown";
}

std::string_view ToString(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kAtomic: return "atomic";
  }
  return "unknown";
}

Checker::Checker() { records_.reserve(1024); }
Checker::~Checker() = default;

Checker::Clock& Checker::NodeClock(uint32_t node) {
  if (clocks_.size() <= node) clocks_.resize(node + 1);
  Clock& c = clocks_[node];
  if (c.size() <= node) c.resize(node + 1, 0);
  return c;
}

uint64_t Checker::SelfTick(uint32_t node) {
  return ++NodeClock(node)[node];
}

void Checker::Join(Clock& dst, const Clock& src) {
  if (src.size() > dst.size()) dst.resize(src.size(), 0);
  for (size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

bool Checker::OrderedBefore(const Record& a, const Clock& post_clock) {
  return a.stamp != kPendingStamp && a.initiator < post_clock.size() &&
         post_clock[a.initiator] >= a.stamp;
}

bool Checker::Conflicts(AccessKind a, AccessKind b) {
  if (a == AccessKind::kRead && b == AccessKind::kRead) return false;
  if (a == AccessKind::kAtomic && b == AccessKind::kAtomic) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Scheduler edges
// ---------------------------------------------------------------------------
void Checker::OnThreadSlice(uint32_t node) { SelfTick(node); }
void Checker::OnCondNotify(uint32_t node) { SelfTick(node); }

// ---------------------------------------------------------------------------
// Interval sets
// ---------------------------------------------------------------------------
void Checker::IntervalAdd(IntervalSet& set, uint64_t lo, uint64_t hi) {
  if (lo >= hi) return;
  auto it = set.upper_bound(lo);
  if (it != set.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = set.erase(prev);
    }
  }
  while (it != set.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    it = set.erase(it);
  }
  set.emplace(lo, hi);
}

void Checker::IntervalRemove(IntervalSet& set, uint64_t lo, uint64_t hi) {
  if (lo >= hi) return;
  auto it = set.upper_bound(lo);
  if (it != set.begin()) --it;
  while (it != set.end() && it->first < hi) {
    const uint64_t cur_lo = it->first;
    const uint64_t cur_hi = it->second;
    if (cur_hi <= lo) {
      ++it;
      continue;
    }
    it = set.erase(it);
    if (cur_lo < lo) set.emplace(cur_lo, lo);
    if (cur_hi > hi) it = set.emplace(hi, cur_hi).first;
  }
}

bool Checker::IntervalOverlap(const IntervalSet& set, uint64_t lo,
                              uint64_t hi, uint64_t* out_lo,
                              uint64_t* out_hi) {
  auto it = set.upper_bound(lo);
  if (it != set.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) {
      *out_lo = lo;
      *out_hi = std::min(hi, prev->second);
      return true;
    }
  }
  if (it != set.end() && it->first < hi) {
    *out_lo = it->first;
    *out_hi = std::min(hi, it->second);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Verbs hooks
// ---------------------------------------------------------------------------
uint32_t Checker::OnPost(uint32_t initiator, uint32_t target, OpClass cls,
                         uint64_t remote_lo, uint64_t remote_hi,
                         const LocalRange* sges, uint32_t n_sges,
                         uint32_t expected) {
  if (t_speculative > 0) return 0;

  PendingOp op;
  op.initiator = initiator;
  op.target = target;
  op.cls = cls;
  op.remote_lo = remote_lo;
  op.remote_hi = remote_hi;
  op.post_vtime = NowVirtual();
  op.post_clock = NodeClock(initiator);
  op.label = t_label;
  op.expected = static_cast<uint8_t>(expected);
  op.sges.assign(sges, sges + n_sges);
  op.sync_cell = t_sync_cell > 0 && remote_hi - remote_lo == 8 &&
                 (cls == OpClass::kRemoteRead || cls == OpClass::kRemoteWrite);

  if (cls != OpClass::kMessage) {
    if (RangeEntry* e = FindRange(target, remote_lo)) {
      op.region_id = e->region_id;
      // Post through a mapping this client tore down with Runmap?
      auto uit = unmapped_.find(initiator);
      if (uit != unmapped_.end()) {
        auto rit = uit->second.find(op.region_id);
        if (rit != uit->second.end()) {
          Violation v;
          v.type = ViolationType::kUseAfterUnmap;
          v.target_node = target;
          FillRegionInfo(&v, target, remote_lo, remote_hi);
          v.a.node = initiator;
          v.a.vtime = rit->second;
          v.a.label = "Runmap";
          v.b = MakeOpEndpoint(op, remote_lo, remote_hi,
                               cls == OpClass::kRemoteRead
                                   ? AccessKind::kRead
                                   : AccessKind::kWrite);
          v.detail = "posted through a mapping the client unmapped";
          Report(std::move(v));
        }
      }
    }
  }

  // NIC-side local accesses: gather reads for outbound payloads, scatter
  // writes for inbound read/atomic results. The buffer belongs to the
  // hardware from post until completion, so the shadow window opens now.
  const AccessKind local_kind =
      (cls == OpClass::kRemoteRead || cls == OpClass::kRemoteAtomic)
          ? AccessKind::kWrite
          : AccessKind::kRead;
  for (const LocalRange& r : op.sges) {
    if (r.lo >= r.hi) continue;
    op.records.push_back(AddAndCheck(op, r.lo, r.hi, local_kind, false));
  }

  const uint32_t ref = next_ref_++;
  if (next_ref_ == 0) next_ref_ = 1;
  pending_.emplace(ref, std::move(op));
  return ref;
}

Checker::RangeEntry* Checker::FindRange(uint32_t node, uint64_t addr) {
  auto nit = ranges_.find(node);
  if (nit == ranges_.end()) return nullptr;
  auto& m = nit->second;
  auto it = m.upper_bound(addr);
  if (it == m.begin()) return nullptr;
  --it;
  if (addr >= it->second.hi) return nullptr;
  return &it->second;
}

void Checker::CheckLifetime(const PendingOp& op) {
  auto nit = ranges_.find(op.target);
  if (nit == ranges_.end()) return;
  auto& m = nit->second;
  auto it = m.upper_bound(op.remote_lo);
  if (it != m.begin()) --it;
  for (; it != m.end() && it->first < op.remote_hi; ++it) {
    const RangeEntry& e = it->second;
    if (e.hi <= op.remote_lo || !e.dead) continue;
    Violation v;
    v.type = ViolationType::kUseAfterFree;
    v.target_node = op.target;
    v.region_id = e.region_id;
    auto rit = regions_.find(e.region_id);
    if (rit != regions_.end()) v.region_name = rit->second.name;
    const uint64_t olo = std::max(op.remote_lo, it->first);
    const uint64_t ohi = std::min(op.remote_hi, e.hi);
    v.region_lo = olo - it->first + e.region_off;
    v.region_hi = ohi - it->first + e.region_off;
    v.a.node = op.target;
    v.a.vtime = e.dead_vtime;
    v.a.label = "Rfree";
    v.b = MakeOpEndpoint(op, op.remote_lo, op.remote_hi,
                         op.cls == OpClass::kRemoteRead ? AccessKind::kRead
                                                        : AccessKind::kWrite);
    v.detail = "one-sided access to a region after the master freed it";
    Report(std::move(v));
    return;  // one report per op
  }
}

void Checker::CheckCacheContract(const PendingOp& op) {
  auto nit = ranges_.find(op.target);
  if (nit == ranges_.end()) return;
  auto& m = nit->second;
  auto it = m.upper_bound(op.remote_lo);
  if (it != m.begin()) --it;
  for (; it != m.end() && it->first < op.remote_hi; ++it) {
    const RangeEntry& e = it->second;
    if (e.hi <= op.remote_lo || e.dead) continue;
    auto cit = cache_.find(e.region_id);
    if (cit == cache_.end()) continue;
    const uint64_t olo = std::max(op.remote_lo, it->first);
    const uint64_t ohi = std::min(op.remote_hi, e.hi);
    const uint64_t rlo = olo - it->first + e.region_off;
    const uint64_t rhi = ohi - it->first + e.region_off;
    auto check_set =
        [&](const std::unordered_map<uint32_t, IntervalSet>& sets,
            const char* contract, const char* holder_label,
            const char* why) {
          // Violation emission order is part of the deterministic run
          // output; visit holders in id order, not hash order.
          std::vector<uint32_t> holders;
          holders.reserve(sets.size());
          // rdet:order-independent (collect, then sort)
          for (const auto& [holder, set] : sets) holders.push_back(holder);
          std::sort(holders.begin(), holders.end());
          for (const uint32_t holder : holders) {
            const IntervalSet& set = sets.at(holder);
            if (holder == op.initiator) continue;
            uint64_t vlo = 0;
            uint64_t vhi = 0;
            if (!IntervalOverlap(set, rlo, rhi, &vlo, &vhi)) continue;
            Violation v;
            v.type = ViolationType::kCacheMode;
            v.target_node = op.target;
            v.region_id = e.region_id;
            auto rit = regions_.find(e.region_id);
            if (rit != regions_.end()) v.region_name = rit->second.name;
            v.region_lo = vlo;
            v.region_hi = vhi;
            v.a.node = holder;
            v.a.lo = vlo;
            v.a.hi = vhi;
            v.a.label = holder_label;
            v.b = MakeOpEndpoint(op, op.remote_lo, op.remote_hi,
                                 op.cls == OpClass::kRemoteAtomic
                                     ? AccessKind::kAtomic
                                     : AccessKind::kWrite);
            v.detail = std::string(contract) + ": " + why;
            Report(std::move(v));
          }
        };
    check_set(cit->second.write_through, "kEpoch",
              "cache.write_through",
              "another client wrote these bytes through its cache and "
              "has not bumped its epoch");
    check_set(cit->second.resident, "kImmutable", "cache.resident",
              "another client holds these bytes resident under an "
              "immutable mapping");
  }
}

void Checker::OnExecute(uint32_t ref) {
  auto it = pending_.find(ref);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  if (op.cls == OpClass::kMessage) return;

  CheckLifetime(op);
  if (op.cls == OpClass::kRemoteWrite || op.cls == OpClass::kRemoteAtomic) {
    CheckCacheContract(op);
  }

  AccessKind kind = op.cls == OpClass::kRemoteRead ? AccessKind::kRead
                                                   : AccessKind::kWrite;
  const bool synchronizes =
      op.cls == OpClass::kRemoteAtomic || op.sync_cell;
  if (synchronizes) {
    kind = AccessKind::kAtomic;
    Clock& cell = cells_[op.remote_lo];
    // Release: publish the initiator's post-time clock into the cell.
    if (op.cls == OpClass::kRemoteAtomic ||
        op.cls == OpClass::kRemoteWrite) {
      Join(cell, op.post_clock);
    }
    // Acquire: snapshot the cell; joined into the initiator at poll.
    if (op.cls == OpClass::kRemoteAtomic ||
        op.cls == OpClass::kRemoteRead) {
      op.acquired = cell;
    }
  }
  op.records.push_back(
      AddAndCheck(op, op.remote_lo, op.remote_hi, kind, true));
}

uint32_t Checker::AddAndCheck(const PendingOp& op, uint64_t lo, uint64_t hi,
                              AccessKind kind, bool remote) {
  const uint32_t idx = static_cast<uint32_t>(records_.size());

  // Gather distinct overlap candidates from every shadow page the range
  // touches (ranges spanning pages would otherwise be checked twice).
  uint32_t seen[kPageRing * 4];
  size_t n_seen = 0;
  for (uint64_t page = lo >> kPageShift; page <= (hi - 1) >> kPageShift;
       ++page) {
    auto pit = pages_.find(page);
    if (pit == pages_.end()) continue;
    for (uint32_t slot : pit->second.recs) {
      if (slot == 0) continue;
      const uint32_t cand = slot - 1;
      const Record& a = records_[cand];
      if (a.initiator == op.initiator) continue;  // same node never races
      if (a.hi <= lo || a.lo >= hi) continue;
      if (!Conflicts(a.kind, kind)) continue;
      bool dup = false;
      for (size_t i = 0; i < n_seen; ++i) dup = dup || seen[i] == cand;
      if (dup || n_seen == std::size(seen)) continue;
      seen[n_seen++] = cand;
    }
  }
  for (size_t i = 0; i < n_seen; ++i) {
    const Record& a = records_[seen[i]];
    if (OrderedBefore(a, op.post_clock)) continue;
    auto key = std::make_pair(seen[i], idx);
    if (!reported_pairs_.insert(key).second) continue;
    Violation v;
    v.type = ViolationType::kRace;
    v.target_node = remote ? op.target : op.initiator;
    FillRegionInfo(&v, v.target_node, std::max(lo, a.lo),
                   std::min(hi, a.hi));
    v.a = MakeEndpoint(a);
    v.b = MakeOpEndpoint(op, lo, hi, kind);
    v.b.remote = remote;
    v.detail = "no happens-before edge between the two accesses";
    Report(std::move(v));
  }

  Record rec;
  rec.lo = lo;
  rec.hi = hi;
  rec.vtime = NowVirtual();
  rec.initiator = op.initiator;
  rec.kind = kind;
  rec.remote = remote;
  rec.label = op.label;
  records_.push_back(rec);
  for (uint64_t page = lo >> kPageShift; page <= (hi - 1) >> kPageShift;
       ++page) {
    PageRing& ring = pages_[page];
    ring.recs[ring.pos] = idx + 1;
    ring.pos = static_cast<uint8_t>((ring.pos + 1) % kPageRing);
  }
  return idx;
}

void Checker::OnSettle(uint32_t ref, bool ok) {
  auto it = pending_.find(ref);
  if (it == pending_.end()) return;
  if (!ok) {
    pending_.erase(it);  // flushed / dropped: records stay pending
    return;
  }
  it->second.settled = true;
}

void Checker::OnObserve(uint32_t ref, uint32_t node, bool recv_side,
                        bool ok) {
  auto it = pending_.find(ref);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  if (!ok) {
    pending_.erase(it);
    return;
  }
  if (recv_side) {
    // Message edge: the receiver learns everything the sender knew when
    // it posted.
    Join(NodeClock(node), op.post_clock);
    SelfTick(node);
  } else {
    if (!op.acquired.empty()) Join(NodeClock(node), op.acquired);
    const uint64_t stamp = SelfTick(node);
    for (uint32_t r : op.records) records_[r].stamp = stamp;
  }
  if (++op.seen >= op.expected) pending_.erase(it);
}

void Checker::OnDeregister(uint32_t node, uint64_t lo, uint64_t hi) {
  // Violation emission order is part of the deterministic run output;
  // visit pending ops in ref order, not hash order.
  std::vector<uint32_t> refs;
  refs.reserve(pending_.size());
  // rdet:order-independent (collect, then sort)
  for (const auto& [ref, op] : pending_) {
    if (op.initiator == node && !op.settled) refs.push_back(ref);
  }
  std::sort(refs.begin(), refs.end());
  for (const uint32_t ref : refs) {
    const PendingOp& op = pending_.at(ref);
    for (const LocalRange& r : op.sges) {
      if (r.hi <= lo || r.lo >= hi) continue;
      Violation v;
      v.type = ViolationType::kUseAfterDereg;
      v.target_node = node;
      v.a = MakeOpEndpoint(op, r.lo, r.hi,
                           op.cls == OpClass::kRemoteRead
                               ? AccessKind::kWrite
                               : AccessKind::kRead);
      v.a.remote = false;
      v.b.node = node;
      v.b.vtime = NowVirtual();
      v.b.lo = lo;
      v.b.hi = hi;
      v.b.label = "DeregisterMemory";
      v.detail =
          "buffer deregistered while a posted op could still scatter or "
          "gather through it";
      Report(std::move(v));
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Region lifecycle
// ---------------------------------------------------------------------------
void Checker::OnRegionSlab(uint64_t region_id, std::string_view name,
                           uint64_t slab_size, uint32_t node, uint64_t lo,
                           uint64_t hi, uint64_t region_off) {
  (void)slab_size;
  auto& m = ranges_[node];
  // Slab reuse: evict stale (typically dead) ranges this slab overlaps.
  auto it = m.upper_bound(lo);
  if (it != m.begin()) --it;
  while (it != m.end() && it->first < hi) {
    if (it->second.hi > lo) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  RangeEntry e;
  e.hi = hi;
  e.region_id = region_id;
  e.region_off = region_off;
  m.emplace(lo, e);
  RegionMeta& meta = regions_[region_id];
  if (meta.name.empty()) meta.name = std::string(name);
  meta.slabs.emplace_back(node, lo);
}

void Checker::OnRegionFree(uint64_t region_id) {
  auto rit = regions_.find(region_id);
  if (rit == regions_.end()) return;
  rit->second.freed = true;
  const uint64_t now = NowVirtual();
  for (const auto& [node, lo] : rit->second.slabs) {
    auto nit = ranges_.find(node);
    if (nit == ranges_.end()) continue;
    auto it = nit->second.find(lo);
    if (it == nit->second.end() || it->second.region_id != region_id) {
      continue;  // slab already reused by a newer region
    }
    it->second.dead = true;
    it->second.dead_vtime = now;
  }
  // The contract state dies with the region.
  cache_.erase(region_id);
}

void Checker::OnRegionGrow(uint64_t region_id, uint32_t master_node) {
  auto rit = regions_.find(region_id);
  // Violation emission order is part of the deterministic run output;
  // visit pending ops in ref order, not hash order.
  std::vector<uint32_t> refs;
  refs.reserve(pending_.size());
  // rdet:order-independent (collect, then sort)
  for (const auto& [ref, op] : pending_) {
    if (op.region_id == region_id && !op.settled &&
        op.cls != OpClass::kMessage) {
      refs.push_back(ref);
    }
  }
  std::sort(refs.begin(), refs.end());
  for (const uint32_t ref : refs) {
    const PendingOp& op = pending_.at(ref);
    Violation v;
    v.type = ViolationType::kGrowRace;
    v.target_node = op.target;
    v.region_id = region_id;
    if (rit != regions_.end()) v.region_name = rit->second.name;
    v.a = MakeOpEndpoint(op, op.remote_lo, op.remote_hi,
                         op.cls == OpClass::kRemoteRead ? AccessKind::kRead
                                                        : AccessKind::kWrite);
    v.b.node = master_node;
    v.b.vtime = NowVirtual();
    v.b.label = "Rgrow";
    v.detail = "Rgrow processed while this op was still in flight "
               "against the region";
    Report(std::move(v));
  }
}

void Checker::OnMap(uint32_t node, uint64_t region_id) {
  auto it = unmapped_.find(node);
  if (it != unmapped_.end()) it->second.erase(region_id);
}

void Checker::OnUnmap(uint32_t node, uint64_t region_id) {
  unmapped_[node][region_id] = NowVirtual();
}

// ---------------------------------------------------------------------------
// Cache-mode contract
// ---------------------------------------------------------------------------
void Checker::OnCacheWriteThrough(uint32_t node, uint64_t region_id,
                                  uint64_t lo, uint64_t hi) {
  IntervalAdd(cache_[region_id].write_through[node], lo, hi);
}

void Checker::OnCacheResident(uint32_t node, uint64_t region_id,
                              uint64_t lo, uint64_t hi) {
  IntervalAdd(cache_[region_id].resident[node], lo, hi);
}

void Checker::OnCacheDrop(uint32_t node, uint64_t region_id, uint64_t lo,
                          uint64_t hi) {
  auto it = cache_.find(region_id);
  if (it == cache_.end()) return;
  auto wt = it->second.write_through.find(node);
  if (wt != it->second.write_through.end()) {
    IntervalRemove(wt->second, lo, hi);
  }
  auto res = it->second.resident.find(node);
  if (res != it->second.resident.end()) {
    IntervalRemove(res->second, lo, hi);
  }
}

void Checker::OnEpochBump(uint32_t node, uint64_t region_id) {
  auto it = cache_.find(region_id);
  if (it == cache_.end()) return;
  auto wt = it->second.write_through.find(node);
  if (wt != it->second.write_through.end()) wt->second.clear();
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------
Endpoint Checker::MakeEndpoint(const Record& r) const {
  Endpoint e;
  e.node = r.initiator;
  e.vtime = r.vtime;
  e.lo = r.lo;
  e.hi = r.hi;
  e.kind = r.kind;
  e.remote = r.remote;
  e.pending = r.stamp == kPendingStamp;
  if (r.label != nullptr) e.label = r.label;
  return e;
}

Endpoint Checker::MakeOpEndpoint(const PendingOp& op, uint64_t lo,
                                 uint64_t hi, AccessKind kind) const {
  Endpoint e;
  e.node = op.initiator;
  e.vtime = NowVirtual();
  e.lo = lo;
  e.hi = hi;
  e.kind = kind;
  e.remote = true;
  if (op.label != nullptr) e.label = op.label;
  return e;
}

void Checker::FillRegionInfo(Violation* v, uint32_t node, uint64_t lo,
                             uint64_t hi) {
  RangeEntry* e = FindRange(node, lo);
  if (e == nullptr) return;
  v->region_id = e->region_id;
  auto rit = regions_.find(e->region_id);
  if (rit != regions_.end()) v->region_name = rit->second.name;
  auto nit = ranges_.find(node);
  // Recover the range's base address to translate to region offsets.
  auto it = nit->second.upper_bound(lo);
  --it;
  v->region_lo = lo - it->first + e->region_off;
  v->region_hi = std::min(hi, e->hi) - it->first + e->region_off;
}

void Checker::Report(Violation v) { violations_.push_back(std::move(v)); }

namespace {
void PrintEndpoint(std::ostream& os, const char* tag, const Endpoint& e) {
  os << "  " << tag << ": node " << e.node << ' '
     << (e.remote ? "remote " : "local ") << ToString(e.kind) << " ["
     << e.lo << ", " << e.hi << ") at t=" << e.vtime << "ns";
  if (!e.label.empty()) os << " in " << e.label;
  if (e.pending) os << " (completion never observed)";
  os << '\n';
}
}  // namespace

void Checker::PrintReports(std::ostream& os) const {
  for (const Violation& v : violations_) {
    os << "rcheck: " << ToString(v.type) << " on node " << v.target_node;
    if (!v.region_name.empty()) {
      os << " region \"" << v.region_name << "\" bytes [" << v.region_lo
         << ", " << v.region_hi << ")";
    }
    os << '\n';
    PrintEndpoint(os, "A", v.a);
    PrintEndpoint(os, "B", v.b);
    if (!v.detail.empty()) os << "  " << v.detail << '\n';
  }
  os << "rcheck: " << violations_.size() << " violation(s)\n";
}

namespace {
void DumpEndpoint(std::ostream& os, const Endpoint& e) {
  os << "{\"node\":" << e.node << ",\"vtime\":" << e.vtime
     << ",\"lo\":" << e.lo << ",\"hi\":" << e.hi << ",\"kind\":\""
     << ToString(e.kind) << "\",\"remote\":" << (e.remote ? "true" : "false")
     << ",\"pending\":" << (e.pending ? "true" : "false") << ",\"label\":\"";
  JsonEscape(os, e.label);
  os << "\"}";
}
}  // namespace

void Checker::DumpJson(std::ostream& os) const {
  os << "{\"violations\":[";
  bool first = true;
  for (const Violation& v : violations_) {
    if (!first) os << ',';
    first = false;
    os << "{\"type\":\"" << ToString(v.type)
       << "\",\"target_node\":" << v.target_node
       << ",\"region_id\":" << v.region_id << ",\"region\":\"";
    JsonEscape(os, v.region_name);
    os << "\",\"region_lo\":" << v.region_lo
       << ",\"region_hi\":" << v.region_hi << ",\"a\":";
    DumpEndpoint(os, v.a);
    os << ",\"b\":";
    DumpEndpoint(os, v.b);
    os << ",\"detail\":\"";
    JsonEscape(os, v.detail);
    os << "\"}";
  }
  os << "]}\n";
}

}  // namespace rstore::check
