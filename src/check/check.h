// rcheck: happens-before race and access-lifetime checker for the
// one-sided data path.
//
// One-sided RDMA removes the server-side serialization point that would
// catch conflicting accesses, so write/write races on a shared region,
// reads overlapping an un-fenced remote write, and accesses after
// Rfree/DeregisterMemory/Runmap all complete *successfully* — on real
// hardware and in this simulator. The deterministic virtual-time
// scheduler gives us what hardware cannot: an exact global order of
// events to check a happens-before relation against.
//
// The algorithm is TSan's vector-clock race detection keyed to virtual
// time, with one load-bearing simplification: clocks are per simulated
// *node*, not per thread. Threads on one node are cooperatively
// scheduled and hand data between each other through ordinary memory,
// so intra-node ordering is implicit; the races worth finding are the
// cross-node ones the one-sided data path creates. Consequences:
//   - CondVar and scheduler hand-offs are intra-node and thus subsumed
//     by the node clock; the hooks only tick the node's own component
//     so stamps stay strictly monotone across blocking points.
//   - Two accesses issued by the same node never race by definition.
//
// Happens-before edges (see DESIGN.md for the full table):
//   - message edges: a verbs SEND (and RDMA-write-with-imm) carries the
//     sender's clock at post time; the receiver joins it when it polls
//     the receive completion. RPC request/reply pairs — and therefore
//     the master's notify channels — come free from this edge.
//   - completion edges: an initiator's records are stamped with its own
//     clock component when it *polls* the completion, not when the NIC
//     finishes. An un-fenced write (posted, never awaited) therefore
//     stays "pending" and races with any overlapping access.
//   - atomic edges: remote CAS/FAA on an 8-byte cell act as
//     release(post clock -> cell) at execute and acquire(cell -> node)
//     at completion poll. Annotated seqlock accesses (SyncCellScope)
//     get the same treatment.
//
// Every hook is synchronous, never schedules events, and never touches
// the RNG or the clock, so rcheck on cannot move virtual time; rcheck
// off is a single pointer compare at each hook site.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rstore::check {

class Checker;

// What a shadow access does to memory; atomic/atomic pairs never
// conflict, everything else conflicts unless both are reads.
enum class AccessKind : uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };

// Transport class of a posted work request, as seen by OnPost.
enum class OpClass : uint8_t {
  kMessage = 0,      // two-sided SEND: clock edge only, no shadow records
  kRemoteRead = 1,   // one-sided read of target memory
  kRemoteWrite = 2,  // one-sided write of target memory
  kRemoteAtomic = 3, // CAS / fetch-add on an 8-byte target cell
};

enum class ViolationType : uint8_t {
  kRace = 0,           // conflicting accesses with no happens-before edge
  kUseAfterFree = 1,   // access to a region after the master freed it
  kUseAfterDereg = 2,  // local buffer deregistered with the op in flight
  kUseAfterUnmap = 3,  // post through a mapping the client Runmap'd
  kGrowRace = 4,       // Rgrow while ops on the region were in flight
  kCacheMode = 5,      // remote write violating a declared cache contract
};

[[nodiscard]] std::string_view ToString(ViolationType t) noexcept;
[[nodiscard]] std::string_view ToString(AccessKind k) noexcept;

// One side of a violation: which node did what, to which bytes, when.
struct Endpoint {
  uint32_t node = 0;
  uint64_t vtime = 0;    // virtual time the access was recorded
  uint64_t lo = 0;       // absolute byte range [lo, hi)
  uint64_t hi = 0;
  AccessKind kind = AccessKind::kRead;
  bool remote = false;   // one-sided access to another node's memory
  bool pending = false;  // completion never observed (un-fenced)
  std::string label;     // op context, e.g. "client.write" / "kv.put"
};

struct Violation {
  ViolationType type = ViolationType::kRace;
  uint32_t target_node = 0;     // node owning the memory involved
  uint64_t region_id = 0;       // 0 when the bytes are not in a region
  std::string region_name;
  uint64_t region_lo = 0;       // region-relative overlap [lo, hi)
  uint64_t region_hi = 0;
  Endpoint a;                   // earlier / existing access
  Endpoint b;                   // later access that exposed the bug
  std::string detail;
};

// Local scatter/gather range of a posted work request.
struct LocalRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

class Checker {
 public:
  Checker();
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // Virtual-time source; installed by Simulation::AttachChecker.
  void SetClock(std::function<uint64_t()> now) { now_ = std::move(now); }

  // --- scheduler edges (src/sim) -----------------------------------
  // A thread slice started on `node`; ticks the node clock so stamps
  // taken on either side of a hand-off are distinguishable.
  void OnThreadSlice(uint32_t node);
  // A CondVar notify by a thread on `node`. Intra-node by construction
  // (per-node clocks), so this only ticks the node's own component.
  void OnCondNotify(uint32_t node);

  // --- verbs hooks (src/verbs) -------------------------------------
  // A work request was validated and queued. Returns a reference that
  // the transport threads through the wire op and the completion, or 0
  // when the access is not tracked (speculative scope). `expected`
  // is how many completion-poll observations retire the op (2 for
  // SEND / write-with-imm: sender CQ + receiver CQ; 1 otherwise).
  uint32_t OnPost(uint32_t initiator, uint32_t target, OpClass cls,
                  uint64_t remote_lo, uint64_t remote_hi,
                  const LocalRange* sges, uint32_t n_sges,
                  uint32_t expected);
  // The op touched target memory (runs at the target, in virtual-time
  // order): records the remote shadow access and runs race, lifetime
  // and cache-contract checks.
  void OnExecute(uint32_t ref);
  // The NIC finished the op (completion pushed): the buffers are no
  // longer in use by hardware even if the app never polls. ok=false
  // aborts the op (flush/retry-exceeded) without stamping.
  void OnSettle(uint32_t ref, bool ok);
  // The app polled the completion on `node`'s CQ. recv_side marks the
  // receiver's half of a SEND / write-with-imm (joins the sender's
  // post clock instead of stamping records).
  void OnObserve(uint32_t ref, uint32_t node, bool recv_side, bool ok);
  // A memory region was deregistered; any un-settled op still scattering
  // or gathering through [lo, hi) on `node` is a use-after-deregister.
  void OnDeregister(uint32_t node, uint64_t lo, uint64_t hi);

  // --- master region lifecycle (src/core) --------------------------
  // Registers one slab of a region (primary or replica). Overlapping
  // stale ranges from freed regions are evicted (slab reuse).
  void OnRegionSlab(uint64_t region_id, std::string_view name,
                    uint64_t slab_size, uint32_t node, uint64_t lo,
                    uint64_t hi, uint64_t region_off);
  // Marks every slab of the region dead; later accesses that land on a
  // dead range report use-after-Rfree.
  void OnRegionFree(uint64_t region_id);
  // Called when the master grows a region, before the new slabs are
  // registered: any op still in flight against the region races the
  // grow.
  void OnRegionGrow(uint64_t region_id, uint32_t master_node);

  // --- client mapping lifecycle (src/core) -------------------------
  void OnMap(uint32_t node, uint64_t region_id);
  void OnUnmap(uint32_t node, uint64_t region_id);

  // --- cache-mode contract (src/cache via src/core) ----------------
  // Region-relative byte ranges. A kEpoch client wrote through its
  // cache: until it bumps the epoch, no *other* node may write these
  // bytes remotely.
  void OnCacheWriteThrough(uint32_t node, uint64_t region_id,
                           uint64_t lo, uint64_t hi);
  // A kImmutable client filled these bytes into its cache: no other
  // node may ever write them remotely while they stay resident.
  void OnCacheResident(uint32_t node, uint64_t region_id, uint64_t lo,
                       uint64_t hi);
  // The client's cache dropped/evicted these bytes: both contracts end.
  void OnCacheDrop(uint32_t node, uint64_t region_id, uint64_t lo,
                   uint64_t hi);
  // The kEpoch client bumped its epoch: its write-through set clears.
  void OnEpochBump(uint32_t node, uint64_t region_id);

  // --- results -----------------------------------------------------
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] size_t violation_count() const noexcept {
    return violations_.size();
  }
  // Human-readable two-endpoint reports, one block per violation.
  void PrintReports(std::ostream& os) const;
  // Machine-readable dump consumed by tools/rcheck_report.
  void DumpJson(std::ostream& os) const;

 private:
  using Clock = std::vector<uint64_t>;
  // Merged, half-open [lo, hi) intervals.
  using IntervalSet = std::map<uint64_t, uint64_t>;

  static constexpr uint64_t kPendingStamp = ~uint64_t{0};
  static constexpr uint64_t kPageShift = 16;  // 64 KiB shadow pages
  static constexpr size_t kPageRing = 8;

  struct Record {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint64_t stamp = kPendingStamp;  // initiator clock component at poll
    uint64_t vtime = 0;
    uint32_t initiator = 0;
    AccessKind kind = AccessKind::kRead;
    bool remote = false;
    const char* label = nullptr;
  };

  struct PendingOp {
    Clock post_clock;
    Clock acquired;                 // atomic acquire snapshot at execute
    std::vector<LocalRange> sges;
    std::vector<uint32_t> records;  // shadow records to stamp at poll
    uint64_t remote_lo = 0;
    uint64_t remote_hi = 0;
    uint64_t region_id = 0;
    uint64_t post_vtime = 0;
    uint32_t initiator = 0;
    uint32_t target = 0;
    OpClass cls = OpClass::kMessage;
    const char* label = nullptr;
    bool sync_cell = false;
    bool settled = false;
    uint8_t expected = 1;
    uint8_t seen = 0;
  };

  struct PageRing {
    std::array<uint32_t, kPageRing> recs{};  // record index + 1; 0 empty
    uint8_t pos = 0;
  };

  struct RangeEntry {
    uint64_t hi = 0;
    uint64_t region_id = 0;
    uint64_t region_off = 0;  // region-relative offset of this range's lo
    bool dead = false;
    uint64_t dead_vtime = 0;
  };

  struct RegionMeta {
    std::string name;
    std::vector<std::pair<uint32_t, uint64_t>> slabs;  // (node, lo)
    bool freed = false;
  };

  struct CacheState {
    std::unordered_map<uint32_t, IntervalSet> write_through;  // kEpoch
    std::unordered_map<uint32_t, IntervalSet> resident;       // kImmutable
  };

  [[nodiscard]] uint64_t NowVirtual() const { return now_ ? now_() : 0; }
  Clock& NodeClock(uint32_t node);
  uint64_t SelfTick(uint32_t node);
  static void Join(Clock& dst, const Clock& src);
  [[nodiscard]] static bool OrderedBefore(const Record& a,
                                          const Clock& post_clock);
  [[nodiscard]] static bool Conflicts(AccessKind a, AccessKind b);

  // Records the access, races it against overlapping shadow records,
  // and returns the new record's index.
  uint32_t AddAndCheck(const PendingOp& op, uint64_t lo, uint64_t hi,
                       AccessKind kind, bool remote);
  void CheckLifetime(const PendingOp& op);
  void CheckCacheContract(const PendingOp& op);
  // Resolves (node, addr) to a region range entry, or nullptr.
  RangeEntry* FindRange(uint32_t node, uint64_t addr);
  Endpoint MakeEndpoint(const Record& r) const;
  Endpoint MakeOpEndpoint(const PendingOp& op, uint64_t lo, uint64_t hi,
                          AccessKind kind) const;
  void FillRegionInfo(Violation* v, uint32_t node, uint64_t lo,
                      uint64_t hi);
  void Report(Violation v);

  static void IntervalAdd(IntervalSet& set, uint64_t lo, uint64_t hi);
  static void IntervalRemove(IntervalSet& set, uint64_t lo, uint64_t hi);
  [[nodiscard]] static bool IntervalOverlap(const IntervalSet& set,
                                            uint64_t lo, uint64_t hi,
                                            uint64_t* out_lo,
                                            uint64_t* out_hi);

  std::function<uint64_t()> now_;
  std::vector<Clock> clocks_;                       // per node
  std::unordered_map<uint32_t, PendingOp> pending_; // by ref
  uint32_t next_ref_ = 1;
  std::vector<Record> records_;
  std::unordered_map<uint64_t, PageRing> pages_;    // by addr >> kPageShift
  std::unordered_map<uint64_t, Clock> cells_;       // atomic cells, by addr
  // node -> range lo -> entry; addresses are process-unique, the node key
  // is kept for attribution in reports.
  std::unordered_map<uint32_t, std::map<uint64_t, RangeEntry>> ranges_;
  std::unordered_map<uint64_t, RegionMeta> regions_;
  // node -> region id -> unmap virtual time
  std::unordered_map<uint32_t, std::map<uint64_t, uint64_t>> unmapped_;
  std::unordered_map<uint64_t, CacheState> cache_;
  std::set<std::pair<uint32_t, uint32_t>> reported_pairs_;
  std::vector<Violation> violations_;
};

namespace detail {
void PushSpeculative() noexcept;
void PopSpeculative() noexcept;
void PushSyncCell() noexcept;
void PopSyncCell() noexcept;
const char* SwapLabel(const char* label) noexcept;
[[nodiscard]] const char* CurrentLabel() noexcept;
}  // namespace detail

// Accesses posted inside this scope are neither recorded nor checked —
// the caller revalidates them (TSan's ignore_reads analogue). Used for
// the KV seqlock's optimistic full-slot read.
class SpeculativeScope {
 public:
  explicit SpeculativeScope(const Checker* c) : on_(c != nullptr) {
    if (on_) detail::PushSpeculative();
  }
  ~SpeculativeScope() {
    if (on_) detail::PopSpeculative();
  }
  SpeculativeScope(const SpeculativeScope&) = delete;
  SpeculativeScope& operator=(const SpeculativeScope&) = delete;

 private:
  bool on_;
};

// Exactly-8-byte reads/writes posted inside this scope are treated as
// acquire loads / release stores on the target cell, the way a remote
// CAS is. Used for the KV seqlock's version word.
class SyncCellScope {
 public:
  explicit SyncCellScope(const Checker* c) : on_(c != nullptr) {
    if (on_) detail::PushSyncCell();
  }
  ~SyncCellScope() {
    if (on_) detail::PopSyncCell();
  }
  SyncCellScope(const SyncCellScope&) = delete;
  SyncCellScope& operator=(const SyncCellScope&) = delete;

 private:
  bool on_;
};

// Names the operation for violation reports ("client.write", "kv.put");
// mirrors the ObsSpan name of the surrounding telemetry span. `label`
// must outlive the scope (string literals in practice). Outermost scope
// wins: a "kv.put" that issues a "client.write" internally reports as
// kv.put — the highest-level name is the one a report reader can act on.
class OpLabelScope {
 public:
  OpLabelScope(const Checker* c, const char* label)
      : on_(c != nullptr && detail::CurrentLabel() == nullptr) {
    if (on_) prev_ = detail::SwapLabel(label);
  }
  ~OpLabelScope() {
    if (on_) detail::SwapLabel(prev_);
  }
  OpLabelScope(const OpLabelScope&) = delete;
  OpLabelScope& operator=(const OpLabelScope&) = delete;

 private:
  bool on_;
  const char* prev_ = nullptr;
};

}  // namespace rstore::check
