#include "check/lin.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace rstore::check {
namespace {

// Per-key search budget: states visited before giving up. Exhaustion is
// reported as "inconclusive", never as a violation, preserving zero
// false positives.
constexpr uint64_t kStateBudget = 1u << 20;
// Cheaper budget for minimization re-checks; an inconclusive trial just
// keeps the op in the core.
constexpr uint64_t kMinimizeStateBudget = 1u << 16;
constexpr size_t kMinimizeChecks = 256;

enum class KeyVerdict { kOk, kViolation, kInconclusive };

struct MemoKey {
  std::vector<uint64_t> words;
  uint64_t reg;
  bool operator==(const MemoKey& o) const {
    return reg == o.reg && words == o.words;
  }
};

struct MemoHash {
  size_t operator()(const MemoKey& k) const noexcept {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : k.words) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    h ^= k.reg;
    h *= 0x100000001b3ULL;
    return static_cast<size_t>(h);
  }
};

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

std::string DescribeOp(const LinOp& op) {
  std::string s = std::string(ToString(op.kind)) + "(digest=" +
                  Hex(op.digest) + ") by client " +
                  std::to_string(op.client) + " [" +
                  std::to_string(op.inv_ns) + "ns, " +
                  (op.pending ? std::string("pending")
                              : std::to_string(op.resp_ns) + "ns") +
                  "]";
  return s;
}

// Wing–Gong search over one key's subhistory (sorted by inv_ns).
// Pending reads must already be dropped by the caller (they are no-ops:
// legal to never linearize, and linearizing them changes nothing).
KeyVerdict CheckKey(const std::vector<LinOp>& h, uint64_t init,
                    uint64_t state_budget, LinChecker::Stats* stats,
                    std::string* detail_out) {
  const size_t n = h.size();
  size_t completed = 0;
  for (const LinOp& op : h) {
    if (!op.pending) ++completed;
  }
  if (completed == 0) return KeyVerdict::kOk;

  std::vector<uint64_t> lin_words((n + 63) / 64, 0);
  auto is_lin = [&lin_words](size_t i) {
    return ((lin_words[i >> 6] >> (i & 63)) & 1u) != 0;
  };
  auto set_lin = [&lin_words](size_t i) {
    lin_words[i >> 6] |= uint64_t{1} << (i & 63);
  };
  auto clear_lin = [&lin_words](size_t i) {
    lin_words[i >> 6] &= ~(uint64_t{1} << (i & 63));
  };

  uint64_t reg = init;
  size_t lin_completed = 0;
  size_t prefix = 0;  // ops before this index are all linearized
  uint64_t states = 0;
  std::unordered_set<MemoKey, MemoHash> memo;

  struct Frame {
    std::vector<uint32_t> cands;
    uint32_t next = 0;
    uint32_t chosen = UINT32_MAX;
    uint64_t saved_reg = 0;
    size_t saved_prefix = 0;
  };
  std::vector<Frame> stack;
  stack.reserve(n + 1);

  size_t best_progress = 0;
  std::string best_detail;

  for (;;) {
    // Arrive at the current (linearized-set, reg) state.
    if (lin_completed == completed) return KeyVerdict::kOk;
    if (++states > state_budget) return KeyVerdict::kInconclusive;
    if (stats != nullptr) ++stats->states_explored;

    Frame f;
    f.saved_reg = reg;
    f.saved_prefix = prefix;
    while (prefix < n && is_lin(prefix)) ++prefix;

    if (!memo.insert(MemoKey{lin_words, reg}).second) {
      if (stats != nullptr) ++stats->memo_hits;
      // Known-dead state: empty candidate list forces a backtrack.
    } else {
      // The frontier: unlinearized ops that no unlinearized op must
      // precede, i.e. inv <= min resp over unlinearized ops. Scanning in
      // inv order can stop once inv exceeds the running min resp (later
      // ops have resp >= inv and cannot lower it).
      uint64_t min_resp = kLinNever;
      std::vector<uint32_t> window;
      for (size_t i = prefix; i < n; ++i) {
        if (is_lin(i)) continue;
        if (h[i].inv_ns > min_resp) break;
        window.push_back(static_cast<uint32_t>(i));
        min_resp = std::min(min_resp, h[i].resp_ns);
      }
      // A minimal completed read returning the current register value
      // linearizes immediately, without branching: moving such a read to
      // the front of any witness order preserves both real-time edges
      // (nothing must precede a frontier op) and every later op's view
      // (reads do not change state). If the search fails after taking
      // it, the state is unsatisfiable outright.
      uint32_t greedy_read = UINT32_MAX;
      for (uint32_t i : window) {
        if (h[i].inv_ns > min_resp) continue;
        if (h[i].kind == LinOpKind::kRead && h[i].digest == reg) {
          greedy_read = i;
          break;
        }
      }
      if (greedy_read != UINT32_MAX) {
        f.cands.push_back(greedy_read);
        if (stats != nullptr) ++stats->greedy_reads;
      } else {
        for (uint32_t i : window) {
          if (h[i].inv_ns > min_resp) continue;
          if (h[i].kind == LinOpKind::kRead && h[i].digest != reg) {
            continue;  // cannot linearize here; maybe after a write
          }
          f.cands.push_back(i);
        }
        if (f.cands.empty() && lin_completed >= best_progress) {
          best_progress = lin_completed;
          std::string d = "stuck with register=" + Hex(reg) + " after " +
                          std::to_string(lin_completed) + "/" +
                          std::to_string(completed) +
                          " completed ops linearized; frontier:";
          size_t listed = 0;
          for (uint32_t i : window) {
            if (h[i].inv_ns > min_resp || listed == 3) break;
            d += "\n      blocked " + DescribeOp(h[i]);
            ++listed;
          }
          best_detail = std::move(d);
        }
      }
    }
    stack.push_back(std::move(f));

    // Advance: undo exhausted frames until one yields a fresh choice.
    bool descended = false;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.chosen != UINT32_MAX) {
        clear_lin(top.chosen);
        if (!h[top.chosen].pending) --lin_completed;
        reg = top.saved_reg;
        prefix = top.saved_prefix;
        top.chosen = UINT32_MAX;
      }
      if (top.next < top.cands.size()) {
        const uint32_t i = top.cands[top.next++];
        top.chosen = i;
        set_lin(i);
        if (!h[i].pending) ++lin_completed;
        if (h[i].kind == LinOpKind::kWrite) reg = h[i].digest;
        descended = true;
        break;
      }
      reg = top.saved_reg;
      prefix = top.saved_prefix;
      stack.pop_back();
    }
    if (!descended) {
      if (detail_out != nullptr) *detail_out = std::move(best_detail);
      return KeyVerdict::kViolation;
    }
  }
}

// Shrinks a violating subhistory to a small unsatisfiable core. Removing
// ops only relaxes constraints, so any subset that still fails is a
// genuine counterexample. Chunked ddmin first (for large histories),
// then a single-op greedy pass; bounded by kMinimizeChecks re-checks.
std::vector<LinOp> Minimize(std::vector<LinOp> cur, uint64_t init) {
  size_t checks = kMinimizeChecks;
  auto still_fails = [&](const std::vector<LinOp>& trial) {
    LinChecker::Stats scratch;
    return CheckKey(trial, init, kMinimizeStateBudget, &scratch, nullptr) ==
           KeyVerdict::kViolation;
  };

  size_t gran = 2;
  while (cur.size() > 8 && gran <= cur.size() && checks > 0) {
    const size_t chunk = std::max<size_t>(1, cur.size() / gran);
    bool removed = false;
    for (size_t start = 0; start < cur.size() && checks > 0; start += chunk) {
      std::vector<LinOp> trial;
      trial.reserve(cur.size());
      for (size_t i = 0; i < cur.size(); ++i) {
        if (i < start || i >= start + chunk) trial.push_back(cur[i]);
      }
      if (trial.empty()) continue;
      --checks;
      if (still_fails(trial)) {
        cur = std::move(trial);
        removed = true;
        break;
      }
    }
    if (removed) {
      gran = std::max<size_t>(2, gran - 1);
    } else {
      gran *= 2;
    }
  }

  bool improved = true;
  while (improved && checks > 0) {
    improved = false;
    for (size_t i = 0; i < cur.size() && checks > 0; ++i) {
      std::vector<LinOp> trial = cur;
      trial.erase(trial.begin() + static_cast<ptrdiff_t>(i));
      --checks;
      if (still_fails(trial)) {
        cur = std::move(trial);
        improved = true;
        break;
      }
    }
  }
  return cur;
}

void EscapeJson(const std::string& in, std::ostream& os) {
  for (char c : in) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* ToString(LinOpKind kind) noexcept {
  return kind == LinOpKind::kRead ? "read" : "write";
}

LinChecker::LinChecker() = default;
LinChecker::~LinChecker() = default;

uint64_t LinChecker::Digest(const void* data, size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h == kLinAbsent ? 1 : h;
}

void LinChecker::RecordInit(uint64_t key, uint64_t digest) {
  assert(!finalized_);
  if (finalized_) return;
  inits_.emplace_back(key, digest);
}

void LinChecker::RecordOp(uint32_t client, LinOpKind kind, uint64_t key,
                          uint64_t digest, uint64_t inv_ns,
                          uint64_t resp_ns) {
  assert(!finalized_);
  if (finalized_) return;
  LinOp op;
  op.id = ops_.size();
  op.client = client;
  op.kind = kind;
  op.key = key;
  op.digest = digest;
  op.inv_ns = inv_ns;
  op.resp_ns = resp_ns;
  ops_.push_back(op);
}

void LinChecker::RecordPending(uint32_t client, LinOpKind kind, uint64_t key,
                               uint64_t digest, uint64_t inv_ns) {
  assert(!finalized_);
  if (finalized_) return;
  LinOp op;
  op.id = ops_.size();
  op.client = client;
  op.kind = kind;
  op.key = key;
  op.digest = digest;
  op.inv_ns = inv_ns;
  op.resp_ns = kLinNever;
  op.pending = true;
  ops_.push_back(op);
}

void LinChecker::Finalize() {
  if (finalized_) return;
  finalized_ = true;

  std::unordered_map<uint64_t, uint64_t> init;
  for (const auto& [key, digest] : inits_) init[key] = digest;

  std::unordered_map<uint64_t, std::vector<LinOp>> by_key;
  for (const LinOp& op : ops_) {
    // Pending reads are no-ops: legal to never linearize, and
    // linearizing one changes no state. Drop them up front.
    if (op.pending && op.kind == LinOpKind::kRead) continue;
    by_key[op.key].push_back(op);
  }

  std::vector<uint64_t> keys;
  keys.reserve(by_key.size());
  // rdet:order-independent (collect, then sort)
  for (const auto& [key, ops] : by_key) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  for (uint64_t key : keys) {
    std::vector<LinOp>& h = by_key[key];
    std::stable_sort(h.begin(), h.end(), [](const LinOp& a, const LinOp& b) {
      if (a.inv_ns != b.inv_ns) return a.inv_ns < b.inv_ns;
      return a.id < b.id;
    });
    const auto it = init.find(key);
    const uint64_t iv = it == init.end() ? kLinAbsent : it->second;
    ++stats_.keys_checked;
    std::string detail;
    const KeyVerdict verdict = CheckKey(h, iv, kStateBudget, &stats_, &detail);
    if (verdict == KeyVerdict::kInconclusive) {
      ++stats_.keys_inconclusive;
      continue;
    }
    if (verdict == KeyVerdict::kOk) continue;
    LinViolation v;
    v.key = key;
    v.history_ops = h.size();
    v.ops = Minimize(h, iv);
    v.detail = std::move(detail);
    violations_.push_back(std::move(v));
  }
}

void LinChecker::PrintReports(std::ostream& os) const {
  for (const LinViolation& v : violations_) {
    os << "[rlin] key " << Hex(v.key) << ": " << v.history_ops
       << "-op history is not linearizable; minimized core has "
       << v.ops.size() << " ops\n";
    if (!v.detail.empty()) os << "    " << v.detail << "\n";
    for (const LinOp& op : v.ops) {
      os << "    #" << op.id << " " << DescribeOp(op) << "\n";
    }
  }
  if (!violations_.empty()) {
    os << "[rlin] " << violations_.size() << " violation(s) over "
       << ops_.size() << " ops, " << stats_.keys_checked << " keys\n";
  }
}

void LinChecker::DumpJson(std::ostream& os) const {
  os << "{\n  \"tool\": \"rlin\",\n";
  os << "  \"ops\": " << ops_.size() << ",\n";
  os << "  \"keys\": " << stats_.keys_checked << ",\n";
  os << "  \"violation_count\": " << violations_.size() << ",\n";
  os << "  \"stats\": {\"states\": " << stats_.states_explored
     << ", \"memo_hits\": " << stats_.memo_hits
     << ", \"greedy_reads\": " << stats_.greedy_reads
     << ", \"keys_inconclusive\": " << stats_.keys_inconclusive << "},\n";
  os << "  \"violations\": [";
  bool first_v = true;
  for (const LinViolation& v : violations_) {
    if (!first_v) os << ",";
    first_v = false;
    os << "\n    {\"key\": \"" << Hex(v.key)
       << "\", \"history_ops\": " << v.history_ops << ", \"detail\": \"";
    EscapeJson(v.detail, os);
    os << "\", \"ops\": [";
    bool first_o = true;
    for (const LinOp& op : v.ops) {
      if (!first_o) os << ",";
      first_o = false;
      os << "\n      {\"id\": " << op.id << ", \"client\": " << op.client
         << ", \"kind\": \"" << ToString(op.kind) << "\", \"digest\": \""
         << Hex(op.digest) << "\", \"inv_ns\": " << op.inv_ns
         << ", \"resp_ns\": ";
      if (op.pending) {
        os << "null";
      } else {
        os << op.resp_ns;
      }
      os << ", \"pending\": " << (op.pending ? "true" : "false") << "}";
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace rstore::check
