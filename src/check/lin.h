// rlin — per-key linearizability checking of KV operation histories.
//
// LinChecker records one entry per completed Get/Put/Delete (and per
// engine read/update/insert/rmw): op kind, 64-bit key id, a 64-bit FNV-1a
// digest of the value, and the op's virtual-time interval
// [invocation, response]. The invocation is taken at the coordinated-
// omission anchor (intended send time) where one exists, the response at
// completion. Widening an interval can only ADD legal linearization
// orders, so anchoring at intended-send keeps the checker sound (zero
// false positives) at the cost of possibly masking violations that an
// exact-send anchor would expose; the capture sites note where this
// applies.
//
// Finalize() checks each per-key subhistory independently
// (P-compositionality: a KV history is linearizable iff every per-key
// subhistory is linearizable as a single register) using Wing–Gong
// search: repeatedly pick a *minimal* pending-frontier op — one no
// uncompleted-before op must precede — apply it to the register, and
// backtrack on dead ends, memoizing (linearized-set, register) states so
// revisits cut off. Two properties make 10k-session E13 histories check
// in seconds: a minimal read that returns the current register value can
// be linearized immediately without branching (moving such a read earlier
// in any witness order keeps it valid), and reads dominate the workloads.
//
// Failed writes whose payload may have reached memory are recorded as
// *pending*: they have no response edge and may linearize at any point
// after invocation or never (the "infinitely concurrent" rule).
//
// Zero probe effect contract (same as rcheck/rtrace): recording is pure
// host-side computation — no simulator events, RNG draws, or cost-model
// charges — so virtual time is bit-identical with the checker on or off.
// Recording is not thread-safe; the simulator serializes dispatch while
// a checker is attached (legacy mode is already cooperative).
//
// Key ids: the load engine records its dense integer key ids directly;
// the KvStore client path records StableHash64(key bytes). The two key
// spaces must not be mixed against the same table in one simulation (no
// current workload does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rstore::check {

enum class LinOpKind : uint8_t { kRead = 0, kWrite = 1 };

// Digest value meaning "key absent". Real digests are never 0.
inline constexpr uint64_t kLinAbsent = 0;
// Response timestamp for pending (possibly-effective, never-acked) ops.
inline constexpr uint64_t kLinNever = ~uint64_t{0};

struct LinOp {
  uint64_t id = 0;       // record order; stable for one schedule
  uint64_t key = 0;
  uint64_t digest = kLinAbsent;  // write: value written; read: value seen
  uint64_t inv_ns = 0;
  uint64_t resp_ns = kLinNever;
  uint32_t client = 0;
  LinOpKind kind = LinOpKind::kRead;
  bool pending = false;  // no response: may have taken effect, or never
};

struct LinViolation {
  uint64_t key = 0;
  size_t history_ops = 0;    // size of the key's full subhistory
  std::vector<LinOp> ops;    // minimized counterexample core
  std::string detail;
};

const char* ToString(LinOpKind kind) noexcept;

class LinChecker {
 public:
  LinChecker();
  ~LinChecker();
  LinChecker(const LinChecker&) = delete;
  LinChecker& operator=(const LinChecker&) = delete;

  // FNV-1a 64 over raw bytes; remaps 0 so it never collides with
  // kLinAbsent.
  static uint64_t Digest(const void* data, size_t len) noexcept;

  // --- recording (serialized by the simulator; pure host computation) ---

  // Declares the register value a key holds before the first recorded op
  // (e.g. preloaded table contents). Un-declared keys start absent.
  void RecordInit(uint64_t key, uint64_t digest);

  // A completed op: interval [inv_ns, resp_ns], digest per kind
  // (kLinAbsent = not found / delete).
  void RecordOp(uint32_t client, LinOpKind kind, uint64_t key,
                uint64_t digest, uint64_t inv_ns, uint64_t resp_ns);

  // A failed op whose effect may or may not have landed (e.g. a Put whose
  // payload write was posted before the error). May linearize at any
  // point >= inv_ns, or never.
  void RecordPending(uint32_t client, LinOpKind kind, uint64_t key,
                     uint64_t digest, uint64_t inv_ns);

  // --- checking ---

  struct Stats {
    uint64_t states_explored = 0;
    uint64_t memo_hits = 0;
    uint64_t greedy_reads = 0;   // reads linearized without branching
    uint64_t keys_checked = 0;
    uint64_t keys_inconclusive = 0;  // state budget exhausted (never a
                                     // violation; reported separately)
  };

  // Runs the per-key search. Idempotent; recording after Finalize is an
  // error (asserted in debug builds, ignored otherwise).
  void Finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] const std::vector<LinViolation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] size_t violation_count() const noexcept {
    return violations_.size();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] size_t op_count() const noexcept { return ops_.size(); }
  [[nodiscard]] const std::vector<LinOp>& history() const noexcept {
    return ops_;
  }

  // Human-readable report (one block per violation); no output if clean.
  void PrintReports(std::ostream& os) const;
  // Machine-readable dump: 64-bit fields (key, digest) emit as hex
  // strings so obs/json.h (double numbers) round-trips them exactly.
  void DumpJson(std::ostream& os) const;

 private:
  std::vector<LinOp> ops_;
  std::vector<std::pair<uint64_t, uint64_t>> inits_;  // (key, digest)
  std::vector<LinViolation> violations_;
  Stats stats_;
  bool finalized_ = false;
};

}  // namespace rstore::check
