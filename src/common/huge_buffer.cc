#include "common/huge_buffer.h"

#include <cstring>
#include <mutex>
#include <new>
#include <unordered_map>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace rstore::common {
namespace {

constexpr size_t kHugePageBytes = 2ULL << 20;

// Only mmap allocations big enough to hold at least one huge page;
// smaller buffers gain nothing and would fragment the address space.
constexpr size_t kMmapThreshold = kHugePageBytes;

// Released mappings are retained (up to a cap) and handed back to later
// same-size allocations. Server arenas and pinned client buffers are
// allocated in a handful of repeating sizes, so pooling converts the
// dominant cost of a fresh arena — one minor fault per 4 KiB page on
// first touch — into a single streaming memset over warm pages. The pool
// is process-wide and mutex-guarded: simulated threads are cooperative,
// but they are real OS threads.
constexpr size_t kPoolCapBytes = 1ULL << 30;

std::mutex& PoolMu() {
  static std::mutex mu;
  return mu;
}
std::unordered_multimap<size_t, void*>& Pool() {
  static std::unordered_multimap<size_t, void*> pool;
  return pool;
}
size_t g_pool_bytes = 0;

void* PoolTake(size_t rounded) {
  std::lock_guard<std::mutex> lock(PoolMu());
  auto& pool = Pool();
  auto it = pool.find(rounded);
  if (it == pool.end()) return nullptr;
  void* p = it->second;
  pool.erase(it);
  g_pool_bytes -= rounded;
  return p;
}

// True if the mapping was retained; false means the caller must unmap.
bool PoolPut(void* p, size_t rounded) {
  std::lock_guard<std::mutex> lock(PoolMu());
  if (g_pool_bytes + rounded > kPoolCapBytes) return false;
  Pool().emplace(rounded, p);
  g_pool_bytes += rounded;
  return true;
}

}  // namespace

HugeBuffer::HugeBuffer(size_t size) : size_(size) {
  if (size == 0) return;
#if defined(__linux__)
  if (size >= kMmapThreshold) {
    const size_t rounded =
        (size + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    if (void* reused = PoolTake(rounded)) {
      // Reused mappings are already faulted in; restoring the zero-fill
      // guarantee with one memset pass is far cheaper than taking a minor
      // fault per 4 KiB page on a fresh mapping.
      std::memset(reused, 0, size);
      data_ = static_cast<std::byte*>(reused);
      mapped_bytes_ = rounded;
      return;
    }
    void* p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
#if defined(MADV_HUGEPAGE)
      // Advisory: first touch proceeds with 4 KiB pages if THP is off.
      (void)::madvise(p, rounded, MADV_HUGEPAGE);
#endif
      data_ = static_cast<std::byte*>(p);
      mapped_bytes_ = rounded;
      return;
    }
  }
#endif
  data_ = static_cast<std::byte*>(::operator new(size));
  std::memset(data_, 0, size);
}

HugeBuffer::~HugeBuffer() { Release(); }

void HugeBuffer::Release() noexcept {
  if (data_ == nullptr) return;
#if defined(__linux__)
  if (mapped_bytes_ != 0) {
    if (!PoolPut(data_, mapped_bytes_)) (void)::munmap(data_, mapped_bytes_);
    data_ = nullptr;
    mapped_bytes_ = 0;
    return;
  }
#endif
  ::operator delete(data_);
  data_ = nullptr;
}

}  // namespace rstore::common
