// HugeBuffer: a large, zero-initialised byte buffer backed by huge pages
// when the host offers them.
//
// The simulated cluster's data plane is dominated by a handful of very
// large allocations — memory-server slab arenas and client DMA buffers,
// hundreds of megabytes per cluster. Backing those with ordinary heap
// pages makes first-touch cost the top line of any wall-clock profile:
// one minor fault per 4 KiB page, hundreds of thousands of faults per
// cluster construction. Mapping them with mmap + MADV_HUGEPAGE lets the
// kernel satisfy first touch with 2 MiB pages (512x fewer faults) and
// keeps TLB pressure down for the memcpy-heavy data path.
//
// Semantics match std::vector<std::byte>(size): zero-initialised (mmap
// anonymous memory is zero-filled on demand), fixed size, released on
// destruction. Falls back to operator new on non-Linux hosts or when
// mmap fails.
#pragma once

#include <cstddef>
#include <utility>

namespace rstore::common {

class HugeBuffer {
 public:
  HugeBuffer() = default;
  explicit HugeBuffer(size_t size);
  ~HugeBuffer();

  HugeBuffer(HugeBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        mapped_bytes_(std::exchange(o.mapped_bytes_, 0)) {}
  HugeBuffer& operator=(HugeBuffer&& o) noexcept {
    if (this != &o) {
      Release();
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      mapped_bytes_ = std::exchange(o.mapped_bytes_, 0);
    }
    return *this;
  }
  HugeBuffer(const HugeBuffer&) = delete;
  HugeBuffer& operator=(const HugeBuffer&) = delete;

  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  [[nodiscard]] size_t size() const noexcept { return size_; }

 private:
  void Release() noexcept;

  std::byte* data_ = nullptr;
  size_t size_ = 0;
  // Bytes handed to mmap (0 when the operator-new fallback was used).
  size_t mapped_bytes_ = 0;
};

}  // namespace rstore::common
