#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace rstore {
namespace {

LogLevel g_level = LogLevel::kInfo;
std::function<uint64_t()> g_now;  // virtual-time source, optional
std::function<void(LogLevel)> g_emit_hook;
// Atomic: partitions of the parallel scheduler emit concurrently, and the
// per-level counts must stay exact (tests assert "no warnings" on them).
std::atomic<uint64_t> g_emit_counts[4] = {};
std::mutex g_emit_mu;  // keeps concurrently-emitted lines whole on stderr

const char* LevelTag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

uint64_t NowNanos() {
  if (g_now) return g_now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // Host-process fallback for log timestamps when no virtual-time
          // source is installed; never feeds simulation state.
          // NOLINTNEXTLINE(rdet-wallclock)
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level = level; }

void SetTimestampSource(std::function<uint64_t()> now_nanos) {
  g_now = std::move(now_nanos);
}

uint64_t LogEmitCount(LogLevel level) noexcept {
  return g_emit_counts[static_cast<int>(level)].load(
      std::memory_order_relaxed);
}

void ResetLogEmitCounts() noexcept {
  for (auto& c : g_emit_counts) c.store(0, std::memory_order_relaxed);
}

void SetLogEmitHook(std::function<void(LogLevel)> hook) {
  g_emit_hook = std::move(hook);
}

namespace log_internal {

LogLevel GlobalLevel() noexcept { return g_level; }

void Emit(LogLevel level, const std::string& message) {
  g_emit_counts[static_cast<int>(level)].fetch_add(1,
                                                   std::memory_order_relaxed);
  if (g_emit_hook) g_emit_hook(level);
  const uint64_t t = NowNanos();
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s %9.3fms] %s\n", LevelTag(level),
               static_cast<double>(t) / 1e6, message.c_str());
}

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ':' << line << "] ";
}

LogLine::~LogLine() { Emit(level_, stream_.str()); }

}  // namespace log_internal
}  // namespace rstore
