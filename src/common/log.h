// Minimal leveled logger. Simulation-aware: when a simulation is active the
// log lines are stamped with virtual time (injected via SetTimestampSource)
// so traces read in cluster order. Emit-safe under the partitioned
// scheduler: per-level counts are atomic and the stderr write is
// serialized; level/hook/timestamp configuration is still set-up-only
// (install before the run starts).
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace rstore {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace log_internal {

LogLevel GlobalLevel() noexcept;
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

// Sets the minimum level that is emitted (default: kInfo; tests lower it).
void SetLogLevel(LogLevel level) noexcept;

// Installs a virtual-clock source; pass nullptr to revert to wall time.
void SetTimestampSource(std::function<uint64_t()> now_nanos);

// Cumulative count of lines emitted at `level` (lines filtered out by the
// global level are not counted). Always on — lets tests and benches
// assert "no warnings" without scraping stderr.
[[nodiscard]] uint64_t LogEmitCount(LogLevel level) noexcept;
void ResetLogEmitCounts() noexcept;

// Observer invoked on every emitted line, after the level filter. The
// simulator routes this into the telemetry registry (a counter per level,
// attributed to the emitting node); pass nullptr to uninstall.
void SetLogEmitHook(std::function<void(LogLevel)> hook);

#define RSTORE_LOG(level)                                               \
  if (static_cast<int>(level) <                                         \
      static_cast<int>(::rstore::log_internal::GlobalLevel())) {        \
  } else                                                                \
    ::rstore::log_internal::LogLine(level, __FILE__, __LINE__)

#define LOG_DEBUG RSTORE_LOG(::rstore::LogLevel::kDebug)
#define LOG_INFO RSTORE_LOG(::rstore::LogLevel::kInfo)
#define LOG_WARN RSTORE_LOG(::rstore::LogLevel::kWarn)
#define LOG_ERROR RSTORE_LOG(::rstore::LogLevel::kError)

}  // namespace rstore
