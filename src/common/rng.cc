#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace rstore {
namespace {

inline uint64_t SplitMix64(uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Reseed(uint64_t seed) noexcept {
  uint64_t x = seed;
  for (auto& w : s_) w = SplitMix64(x);
}

uint64_t Rng::Next() noexcept {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's method: multiply-shift with rejection of the biased low zone.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) noexcept {
  const auto span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const uint64_t draw = (span == 0) ? Next() : NextBelow(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::NextDouble() noexcept {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Rng::Fill(void* dst, size_t n) noexcept {
  auto* p = static_cast<unsigned char*>(dst);
  while (n >= sizeof(uint64_t)) {
    const uint64_t v = Next();
    std::memcpy(p, &v, sizeof(v));
    p += sizeof(v);
    n -= sizeof(v);
  }
  if (n > 0) {
    const uint64_t v = Next();
    std::memcpy(p, &v, n);
  }
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed), cdf_(n) {
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  double acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc / total;
  }
  if (n > 0) cdf_[n - 1] = 1.0;  // guard against FP drift
}

uint64_t ZipfGenerator::Next() noexcept {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

uint64_t ZipfGenerator::n() const noexcept { return cdf_.size(); }

uint64_t StableHash64(std::string_view s) noexcept {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace rstore
