// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the repository (workload generation, graph
// synthesis, sampling splitters, scheduler tie-breaking jitter) draws from
// an explicitly seeded Rng so that tests and benchmarks are exactly
// reproducible run-to-run. We implement xoshiro256** (public domain,
// Blackman & Vigna) rather than relying on std::mt19937 so the bit stream
// is stable across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace rstore {

class Rng {
 public:
  // Seeds the four 64-bit words of state via SplitMix64, per the xoshiro
  // authors' recommendation. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { Reseed(seed); }

  void Reseed(uint64_t seed) noexcept;

  // Uniform over the full 64-bit range.
  uint64_t Next() noexcept;

  // Uniform in [0, bound). bound == 0 returns 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextBelow(uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double NextDouble() noexcept;

  // Bernoulli trial.
  bool NextBool(double p_true) noexcept { return NextDouble() < p_true; }

  // Fills `n` bytes at `dst` with pseudo-random data.
  void Fill(void* dst, size_t n) noexcept;

  // Derives an independent child stream; used to give each simulated node
  // its own generator from a single experiment seed.
  Rng Fork() noexcept { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

  // UniformRandomBitGenerator interface so the Rng composes with
  // std::shuffle and <algorithm>.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() noexcept { return Next(); }

 private:
  uint64_t s_[4];
};

// Stable 64-bit hash for strings (FNV-1a); used to derive per-entity seeds
// from names so that, e.g., region contents are a pure function of
// (experiment seed, region name).
uint64_t StableHash64(std::string_view s) noexcept;

// Zipf-distributed key picker over [0, n): item i has probability
// proportional to 1/(i+1)^theta. Exact sampling via a precomputed CDF and
// binary search — n is bounded in our workloads, so O(n) memory is fine.
// theta ~0.99 is the YCSB default skew.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  // Draws one key in [0, n).
  uint64_t Next() noexcept;

  [[nodiscard]] uint64_t n() const noexcept;

 private:
  Rng rng_;
  std::vector<double> cdf_;  // cdf_[i] = P(key <= i)
};

}  // namespace rstore
