// SmallFn: a move-only callable wrapper with inline small-buffer storage.
//
// The simulator's hot path (one entry in the event heap, two callbacks on
// every fabric message) used to carry std::function, whose small-object
// buffer in common implementations is 16 bytes and whose copyability
// requirement forbids move-only captures. Simulator callbacks routinely
// capture {object pointer, pooled-message pointer, a couple of scalars},
// so SmallFn gives them a larger inline buffer (no heap allocation when
// the callable fits), accepts move-only captures, and falls back to the
// heap for oversized callables instead of failing to compile — keeping
// cold paths (error handling, connection setup) unconstrained.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rstore::common {

template <typename Signature, size_t InlineBytes = 48>
class SmallFn;

template <typename R, typename... Args, size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      manage_ = &ManageInline<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      manage_ = &ManageHeap<Fn>;
    }
    invoke_ = &Invoke<Fn>;
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) {
    return invoke_(Target(), std::forward<Args>(args)...);
  }

  void Reset() noexcept {
    if (manage_ != nullptr) {
      manage_(this, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
      heap_ = nullptr;
    }
  }

 private:
  using InvokeFn = R (*)(void*, Args&&...);
  // dst == nullptr: destroy self. dst != nullptr: move self into dst's
  // storage (dst's invoke_/manage_ are copied by MoveFrom).
  using ManageFn = void (*)(SmallFn*, SmallFn*);

  [[nodiscard]] void* Target() noexcept {
    return heap_ != nullptr ? heap_ : static_cast<void*>(buf_);
  }

  template <typename Fn>
  static R Invoke(void* target, Args&&... args) {
    return (*static_cast<Fn*>(target))(std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void ManageInline(SmallFn* self, SmallFn* dst) {
    auto* obj = std::launder(reinterpret_cast<Fn*>(self->buf_));
    if (dst != nullptr) {
      ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*obj));
    }
    obj->~Fn();
  }

  template <typename Fn>
  static void ManageHeap(SmallFn* self, SmallFn* dst) {
    if (dst != nullptr) {
      dst->heap_ = self->heap_;
      self->heap_ = nullptr;
    } else {
      delete static_cast<Fn*>(self->heap_);
    }
  }

  void MoveFrom(SmallFn& other) noexcept {
    if (other.manage_ == nullptr) return;
    other.manage_(&other, this);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  void* heap_ = nullptr;
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace rstore::common
