#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace rstore {

void SummaryStats::Add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double SummaryStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram(double growth)
    : growth_(growth), log_growth_(std::log(growth)) {
  assert(growth > 1.0);
}

size_t LatencyHistogram::BucketFor(uint64_t value) const {
  if (value <= 1) return 0;
  return static_cast<size_t>(std::log(static_cast<double>(value)) /
                             log_growth_);
}

uint64_t LatencyHistogram::BucketLow(size_t bucket) const {
  return static_cast<uint64_t>(
      std::exp(static_cast<double>(bucket) * log_growth_));
}

void LatencyHistogram::Add(uint64_t value_ns) {
  const size_t b = BucketFor(value_ns);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
  sum_ += static_cast<double>(value_ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (growth_ == other.growth_) {
    // Same bucket boundaries: bucket-wise addition is lossless.
    if (other.buckets_.size() > buckets_.size()) {
      buckets_.resize(other.buckets_.size(), 0);
    }
    for (size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  } else {
    // Different growth factors: re-bucket each of other's buckets at its
    // midpoint (clamped to other's observed range, so a sparse histogram
    // cannot smear counts past its own extremes).
    for (size_t i = 0; i < other.buckets_.size(); ++i) {
      const uint64_t n = other.buckets_[i];
      if (n == 0) continue;
      const uint64_t mid =
          std::clamp((other.BucketLow(i) + other.BucketLow(i + 1)) / 2,
                     other.min_, other.max_);
      const size_t b = BucketFor(mid);
      if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
      buckets_[b] += n;
    }
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `count_` ordered samples.
  const auto rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] > rank) {
      // Interpolate within the bucket: samples are assumed uniform, so
      // the k-th of n bucket samples sits at fraction (k + 0.5) / n.
      const auto lo = static_cast<double>(BucketLow(b));
      const auto hi = static_cast<double>(BucketLow(b + 1));
      const double frac = (static_cast<double>(rank - seen) + 0.5) /
                          static_cast<double>(buckets_[b]);
      const auto v = static_cast<uint64_t>(lo + frac * (hi - lo));
      return std::clamp(v, min_, max_);
    }
    seen += buckets_[b];
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu p50=%s p90=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                FormatDuration(Quantile(0.50)).c_str(),
                FormatDuration(Quantile(0.90)).c_str(),
                FormatDuration(Quantile(0.99)).c_str(),
                FormatDuration(max()).c_str());
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t u = 0;
  while (v >= 1024.0 && u + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[u]);
  }
  return buf;
}

std::string FormatGbps(double bits_per_second) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f Gb/s", bits_per_second / 1e9);
  return buf;
}

std::string FormatDuration(uint64_t nanos) {
  char buf[48];
  const double v = static_cast<double>(nanos);
  if (nanos < 1'000ULL) {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(nanos));
  } else if (nanos < 1'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f us", v / 1e3);
  } else if (nanos < 1'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", v / 1e9);
  }
  return buf;
}

}  // namespace rstore
