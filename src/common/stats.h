// Small statistics toolkit used by benchmarks and tests: streaming summary
// statistics and a log-scaled latency histogram with quantile queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rstore {

// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory.
class SummaryStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Latency histogram with geometric buckets: value v lands in bucket
// floor(log(v)/log(growth)). Supports approximate quantiles with bounded
// relative error (= growth - 1 per bucket). Values are in arbitrary units;
// the simulator records nanoseconds.
class LatencyHistogram {
 public:
  // growth must be > 1; default 1.04 gives ~4% relative quantile error.
  explicit LatencyHistogram(double growth = 1.04);

  void Add(uint64_t value_ns);
  // Merges `other` into this histogram. Equal growth factors merge
  // bucket-wise (lossless); differing growths re-bucket `other`'s counts
  // at their bucket midpoints, which preserves count/sum exactly and
  // quantiles to within the coarser histogram's relative error.
  void Merge(const LatencyHistogram& other);

  [[nodiscard]] double growth() const noexcept { return growth_; }
  [[nodiscard]] uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] uint64_t max() const noexcept { return count_ ? max_ : 0; }

  // Approximate q-quantile, q in [0, 1]. Returns 0 on an empty histogram.
  // Interpolates linearly within the selected bucket by the quantile's
  // rank among that bucket's samples, clamped to the observed extremes.
  [[nodiscard]] uint64_t Quantile(double q) const;

  // "p50=... p99=... max=..." one-liner for bench output.
  [[nodiscard]] std::string Summary() const;

 private:
  [[nodiscard]] size_t BucketFor(uint64_t value) const;
  [[nodiscard]] uint64_t BucketLow(size_t bucket) const;

  double growth_;
  double log_growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

// Formats a byte count as a human-readable string ("4.0 KiB", "705 Gb/s"
// style helpers live here so bench output is consistent).
std::string FormatBytes(uint64_t bytes);
// Formats bits-per-second as "Gb/s" with two decimals.
std::string FormatGbps(double bits_per_second);
// Formats nanoseconds adaptively (ns / us / ms / s).
std::string FormatDuration(uint64_t nanos);

}  // namespace rstore
