#include "common/status.h"

namespace rstore {

std::string_view ToString(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimedOut: return "TIMED_OUT";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(rstore::ToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rstore
