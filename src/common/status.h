// Lightweight Status / Result<T> error-handling vocabulary used across the
// whole code base. Follows the Core Guidelines preference for explicit,
// value-based error channels on expected failures (E.2, E.3): exceptions are
// reserved for programming errors; anticipated failures (remote access
// violations, allocation exhaustion, lost connections) travel as values.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rstore {

// Error taxonomy shared by every layer (verbs completions, RPC outcomes,
// RStore client results). Kept deliberately small; the message string
// carries specifics.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,    // caller bug or malformed request
  kNotFound,           // unknown region / key / node
  kAlreadyExists,      // namespace collision on ralloc
  kOutOfMemory,        // cluster cannot satisfy an allocation
  kPermissionDenied,   // rkey / access-flag violation
  kOutOfRange,         // offset/length outside a region or MR
  kUnavailable,        // peer down, QP not connected, lease expired
  kTimedOut,           // waited past a deadline
  kAborted,            // operation cancelled (e.g. region freed mid-map)
  kInternal,           // invariant violation on the remote side
};

std::string_view ToString(ErrorCode code) noexcept;

// Status: success or (code, message).
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  // Human-readable one-liner, e.g. "PERMISSION_DENIED: bad rkey 0x2a".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T>: either a value or an error Status. A minimal std::expected
// stand-in (we target C++20; std::expected is C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: lets `return value;` and `return status;`
  // both work inside functions returning Result<T>.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "cannot construct Result<T> from an OK status without a value");
  }
  Result(ErrorCode code, std::string message)
      : rep_(Status(code, std::move(message))) {}

  [[nodiscard]] bool ok() const noexcept { return rep_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  // Status view: Ok when a value is present.
  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }
  [[nodiscard]] ErrorCode code() const noexcept {
    return ok() ? ErrorCode::kOk : std::get<Status>(rep_).code();
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// RETURN_IF_ERROR(expr): early-return the Status of a failing expression.
#define RSTORE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    if (auto _st = (expr); !_st.ok()) return _st;     \
  } while (0)

// ASSIGN_OR_RETURN-style helper (two-level paste so __LINE__ expands).
#define RSTORE_CONCAT_INNER(a, b) a##b
#define RSTORE_CONCAT(a, b) RSTORE_CONCAT_INNER(a, b)
#define RSTORE_ASSIGN_OR_RETURN(lhs, expr)                            \
  RSTORE_ASSIGN_OR_RETURN_IMPL(lhs, expr,                             \
                               RSTORE_CONCAT(_rstore_res_, __LINE__))
#define RSTORE_ASSIGN_OR_RETURN_IMPL(lhs, expr, tmp) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace rstore
