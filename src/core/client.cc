#include "core/client.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "check/check.h"
#include "common/log.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::core {

namespace {
// Attaches the client node's fabric-time deltas (egress queueing, wire
// serialization, propagation + ingress wait) accumulated while a span
// was open. The counters are per-node, so concurrent client threads on
// the same node fold into one another's breakdown — fine for traces,
// which show the per-message fabric.msg spans alongside.
class FabricBreakdown {
 public:
  FabricBreakdown(obs::ObsSpan& span, obs::Counter* queue, obs::Counter* ser,
                  obs::Counter* wire)
      : span_(span), queue_(queue), ser_(ser), wire_(wire) {
    if (span_.active() && queue_ != nullptr) {
      queue0_ = queue_->value();
      ser0_ = ser_->value();
      wire0_ = wire_->value();
    }
  }
  ~FabricBreakdown() {
    if (span_.active() && queue_ != nullptr) {
      span_.Arg("fabric_queue_ns",
                static_cast<double>(queue_->value() - queue0_));
      span_.Arg("fabric_serialization_ns",
                static_cast<double>(ser_->value() - ser0_));
      span_.Arg("fabric_wire_ns", static_cast<double>(wire_->value() - wire0_));
    }
  }
  FabricBreakdown(const FabricBreakdown&) = delete;
  FabricBreakdown& operator=(const FabricBreakdown&) = delete;

 private:
  obs::ObsSpan& span_;
  obs::Counter* queue_;
  obs::Counter* ser_;
  obs::Counter* wire_;
  uint64_t queue0_ = 0;
  uint64_t ser0_ = 0;
  uint64_t wire0_ = 0;
};
}  // namespace

// Shared completion state of one logical IO (possibly many work
// requests, all carrying io_id as their wr_id). `sealed` flips once the
// last WR is posted; only then can completed==expected mean "done" —
// backpressure drains completions while posting is still in progress.
struct IoFuture::State {
  explicit State(sim::Simulation& s, uint64_t id) : io_id(id), cv(s) {}
  const uint64_t io_id;
  uint32_t expected = 0;
  uint32_t completed = 0;
  bool sealed = false;
  Status first_error;
  bool failed = false;
  sim::CondVar cv;

  [[nodiscard]] bool done() const noexcept {
    return sealed && completed >= expected;
  }
};

Status IoFuture::Wait() {
  if (!state_) return Status(ErrorCode::kInvalidArgument, "empty IoFuture");
  return client_->WaitFuture(state_);
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------
RStoreClient::RStoreClient(verbs::Device& device, uint32_t master_node,
                           ClientOptions options)
    : device_(device), master_node_(master_node), options_(options) {}

Result<std::unique_ptr<RStoreClient>> RStoreClient::Connect(
    verbs::Device& device, uint32_t master_node, ClientOptions options) {
  auto client = std::unique_ptr<RStoreClient>(
      new RStoreClient(device, master_node, options));

  rpc::RpcOptions rpc_opts;
  rpc_opts.call_timeout = options.control_timeout;
  auto master = rpc::RpcClient::Connect(device, master_node, kMasterService,
                                        rpc_opts);
  if (!master.ok()) return master.status();
  client->master_ = std::move(master).value();

  client->pd_ = &device.CreatePd();
  client->data_cq_ = &device.CreateCq();

  // Scratch slots for atomic results.
  constexpr uint32_t kAtomicSlots = 256;
  client->atomic_arena_.resize(kAtomicSlots * 8);
  auto mr = client->pd_->RegisterMemory(client->atomic_arena_.data(),
                                        client->atomic_arena_.size(),
                                        verbs::kLocalWrite);
  if (!mr.ok()) return mr.status();
  client->atomic_mr_ = *mr;
  for (uint32_t i = 0; i < kAtomicSlots; ++i) {
    client->free_atomic_slots_.push_back(i);
  }
  return client;
}

RStoreClient::~RStoreClient() {
  for (auto& [node, conn] : connections_) {
    if (conn.qp != nullptr) conn.qp->Close();
  }
  for (auto& [addr, mr] : pinned_) (void)pd_->DeregisterMemory(mr);
  if (atomic_mr_ != nullptr) (void)pd_->DeregisterMemory(atomic_mr_);
}

// ---------------------------------------------------------------------------
// Telemetry plumbing
// ---------------------------------------------------------------------------
obs::Telemetry* RStoreClient::ObsTelemetry() {
  obs::Telemetry* tel = device_.network().sim().telemetry();
  if (tel != obs_owner_) {
    obs_owner_ = tel;
    if (tel == nullptr) {
      obs_ops_ = obs_bytes_read_ = obs_bytes_written_ = nullptr;
      obs_fab_queue_ = obs_fab_ser_ = obs_fab_wire_ = nullptr;
      obs_wc_egress_ = obs_wc_wire_ = obs_wc_server_ = obs_wc_ack_ = nullptr;
    } else {
      obs::NodeMetrics& m = tel->metrics().ForNode(device_.node_id());
      obs_ops_ = &m.GetCounter("client.data_ops");
      obs_bytes_read_ = &m.GetCounter("client.bytes_read");
      obs_bytes_written_ = &m.GetCounter("client.bytes_written");
      obs_fab_queue_ = &m.GetCounter("fabric.queue_ns");
      obs_fab_ser_ = &m.GetCounter("fabric.serialization_ns");
      obs_fab_wire_ = &m.GetCounter("fabric.wire_ns");
      obs_wc_egress_ = &m.GetCounter("client.wc_egress_ns");
      obs_wc_wire_ = &m.GetCounter("client.wc_wire_ns");
      obs_wc_server_ = &m.GetCounter("client.wc_server_ns");
      obs_wc_ack_ = &m.GetCounter("client.wc_ack_ns");
    }
  }
  return tel;
}

RStoreClient::CacheModeObs& RStoreClient::ObsForCacheMode(
    cache::CacheMode mode) {
  CacheModeObs& co = cache_obs_[static_cast<size_t>(mode)];
  obs::Telemetry* tel = ObsTelemetry();
  if (co.owner != tel) {
    co.owner = tel;
    if (tel == nullptr) {
      co.hits = co.misses = co.fills = co.bypass = co.invalidations = nullptr;
    } else {
      obs::NodeMetrics& m = tel->metrics().ForNode(device_.node_id());
      const std::string prefix = std::string("cache.") + cache::ToString(mode);
      co.hits = &m.GetCounter(prefix + ".hits");
      co.misses = &m.GetCounter(prefix + ".misses");
      co.fills = &m.GetCounter(prefix + ".fills");
      co.bypass = &m.GetCounter(prefix + ".bypass");
      co.invalidations = &m.GetCounter(prefix + ".invalidations");
    }
  }
  return co;
}

// ---------------------------------------------------------------------------
// Control path
// ---------------------------------------------------------------------------
Result<std::vector<std::byte>> RStoreClient::CallMaster(
    uint32_t method, const rpc::Writer& req) {
  ++control_calls_;
  return master_->Call(method, req);
}

Status RStoreClient::Ralloc(const std::string& name, uint64_t size,
                            uint32_t copies) {
  rpc::Writer req;
  req.Str(name);
  req.U64(size);
  req.U32(copies);
  return CallMaster(kAlloc, req).status();
}

Result<MappedRegion*> RStoreClient::Rmap(const std::string& name,
                                         bool allow_degraded, bool fresh) {
  // Mode-preserving overload: remapping through the short form keeps
  // whatever cache mode the mapping was created with.
  RmapOptions options;
  options.allow_degraded = allow_degraded;
  options.fresh = fresh;
  auto it = mappings_.find(name);
  if (it != mappings_.end()) options.cache_mode = it->second->cache_mode_;
  return Rmap(name, options);
}

Result<MappedRegion*> RStoreClient::Rmap(const std::string& name,
                                         const RmapOptions& options) {
  if (!options.fresh) {
    auto it = mappings_.find(name);
    if (it != mappings_.end()) {
      ++map_cache_hits_;
      MappedRegion* region = it->second.get();
      if (region->cache_mode_ != options.cache_mode) {
        // Mode change: pages cached under the old contract are dropped.
        DropCachedRegion(region->desc_.id, region->cache_mode_);
        region->cache_mode_ = options.cache_mode;
      }
      return region;
    }
  }
  rpc::Writer req;
  req.Str(name);
  req.Bool(options.allow_degraded);
  auto resp = CallMaster(kMap, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  RegionDesc desc;
  if (!RegionDesc::Decode(r, &desc)) {
    return Result<MappedRegion*>(ErrorCode::kInternal,
                                 "malformed map response");
  }
  // A fresh remap may have moved slabs (healing); anything cached under
  // the previous mapping of this region is stale.
  {
    auto prev = mappings_.find(name);
    DropCachedRegion(desc.id, prev != mappings_.end()
                                  ? prev->second->cache_mode_
                                  : cache::CacheMode::kNone);
  }
  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(*this, std::move(desc)));
  region->cache_mode_ = options.cache_mode;
  MappedRegion* raw = region.get();
  mappings_[name] = std::move(region);
  if (check::Checker* ck = device_.network().sim().checker(); ck != nullptr) {
    ck->OnMap(device_.node_id(), raw->desc_.id);
  }
  return raw;
}

Status RStoreClient::Rgrow(const std::string& name, uint64_t new_size) {
  rpc::Writer req;
  req.Str(name);
  req.U64(new_size);
  auto resp = CallMaster(kGrow, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  RegionDesc desc;
  if (!RegionDesc::Decode(r, &desc)) {
    return Status(ErrorCode::kInternal, "malformed grow response");
  }
  // Growth may append slabs on servers already holding cached pages and
  // changes the tail page's valid length; drop the region's cache state
  // before refreshing the mapping.
  auto it = mappings_.find(name);
  DropCachedRegion(desc.id, it != mappings_.end()
                                ? it->second->cache_mode_
                                : cache::CacheMode::kNone);
  // Refresh the cached mapping in place so existing MappedRegion
  // pointers observe the new size.
  if (it != mappings_.end()) {
    it->second->desc_ = std::move(desc);
  }
  return Status::Ok();
}

Status RStoreClient::Runmap(const std::string& name) {
  auto it = mappings_.find(name);
  if (it == mappings_.end()) {
    return Status(ErrorCode::kNotFound, "'" + name + "' is not mapped");
  }
  DropCachedRegion(it->second->desc_.id, it->second->cache_mode_);
  if (check::Checker* ck = device_.network().sim().checker(); ck != nullptr) {
    ck->OnUnmap(device_.node_id(), it->second->desc_.id);
  }
  mappings_.erase(it);
  return Status::Ok();
}

Status RStoreClient::Rfree(const std::string& name) {
  auto it = mappings_.find(name);
  if (it != mappings_.end()) {
    DropCachedRegion(it->second->desc_.id, it->second->cache_mode_);
    mappings_.erase(it);
  }
  rpc::Writer req;
  req.Str(name);
  return CallMaster(kFree, req).status();
}

Result<ClusterStat> RStoreClient::Stat() {
  auto resp = CallMaster(kStat, rpc::Writer{});
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  ClusterStat stat;
  if (!ClusterStat::Decode(r, &stat)) {
    return Result<ClusterStat>(ErrorCode::kInternal, "malformed stat");
  }
  return stat;
}

Status RStoreClient::RegisterBuffer(std::span<std::byte> buffer) {
  if (buffer.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty buffer");
  }
  // Evict registrations that overlap the new range: they necessarily
  // refer to freed buffers whose addresses the allocator reused (live
  // application buffers cannot overlap).
  last_pinned_ = nullptr;  // may be about to evict the cached entry
  const auto a = reinterpret_cast<uintptr_t>(buffer.data());
  const uintptr_t b = a + buffer.size();
  auto it = pinned_.lower_bound(a);
  if (it != pinned_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second->length() > a) {
      (void)pd_->DeregisterMemory(prev->second);
      pinned_.erase(prev);
    }
  }
  while (it != pinned_.end() && it->first < b) {
    (void)pd_->DeregisterMemory(it->second);
    it = pinned_.erase(it);
  }

  auto mr = pd_->RegisterMemory(buffer.data(), buffer.size(),
                                verbs::kLocalWrite);
  if (!mr.ok()) return mr.status();
  pinned_.emplace(a, *mr);
  return Status::Ok();
}

Status RStoreClient::UnregisterBuffer(std::span<std::byte> buffer) {
  const auto a = reinterpret_cast<uintptr_t>(buffer.data());
  auto it = pinned_.find(a);
  if (it == pinned_.end()) {
    return Status(ErrorCode::kNotFound, "buffer was not registered");
  }
  if (last_pinned_ == it->second) last_pinned_ = nullptr;
  (void)pd_->DeregisterMemory(it->second);
  pinned_.erase(it);
  return Status::Ok();
}

Result<PinnedBuffer> RStoreClient::AllocBuffer(size_t bytes) {
  common::HugeBuffer storage(bytes);
  std::span<std::byte> span(storage.data(), storage.size());
  RSTORE_RETURN_IF_ERROR(RegisterBuffer(span));
  owned_buffers_.push_back(std::move(storage));
  return PinnedBuffer{span};
}

verbs::MemoryRegion* RStoreClient::FindPinned(const std::byte* addr,
                                              uint64_t len) const {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  if (last_pinned_ != nullptr && last_pinned_->Covers(a, len)) {
    return last_pinned_;
  }
  auto it = pinned_.upper_bound(a);
  if (it == pinned_.begin()) return nullptr;
  --it;
  verbs::MemoryRegion* mr = it->second;
  if (!mr->Covers(a, len)) return nullptr;
  last_pinned_ = mr;
  return mr;
}

Status RStoreClient::NotifyInc(const std::string& channel, uint64_t delta) {
  rpc::Writer req;
  req.Str(channel);
  req.U64(delta);
  return CallMaster(kNotifyInc, req).status();
}

Result<uint64_t> RStoreClient::WaitNotify(const std::string& channel,
                                          uint64_t target) {
  rpc::Writer req;
  req.Str(channel);
  req.U64(target);
  auto resp = CallMaster(kWaitNotify, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  uint64_t value = 0;
  if (!r.U64(&value)) {
    return Result<uint64_t>(ErrorCode::kInternal, "malformed wait response");
  }
  return value;
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------
Result<RStoreClient::Connection*> RStoreClient::ConnectionTo(
    uint32_t server_node) {
  if (server_node == last_conn_node_ && last_conn_ != nullptr &&
      last_conn_->healthy) {
    return last_conn_;
  }
  auto it = connections_.find(server_node);
  if (it != connections_.end() && it->second.healthy) {
    last_conn_node_ = server_node;
    last_conn_ = &it->second;
    return &it->second;
  }
  // (Re)connect: data QPs share the client's data CQ for send-side
  // completions; the receive side is unused (one-sided traffic only).
  auto qp = device_.network().Connect(device_, server_node, kDataService, {},
                                      data_cq_, nullptr);
  if (!qp.ok()) return qp.status();
  Connection conn{*qp, true};
  auto [pos, unused] = connections_.insert_or_assign(server_node, conn);
  (void)unused;
  last_conn_node_ = server_node;
  last_conn_ = &pos->second;  // map nodes are address-stable
  return &pos->second;
}

Result<IoFuture> RStoreClient::SubmitIo(const RegionDesc& desc,
                                        uint64_t offset, std::byte* buffer,
                                        uint64_t length, bool is_read) {
  obs::ObsSpan span(ObsTelemetry(), device_.node_id(), "client", "io.post");
  span.Arg("bytes", static_cast<double>(length));
  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  IoFuture future(state, this);
  std::vector<Fragment> frags = std::move(frag_scratch_);
  frags.clear();
  Status st = CollectFragments(desc, offset, buffer, length, is_read, frags);
  if (st.ok()) st = PostCoalesced(state, frags, is_read);
  frag_scratch_ = std::move(frags);
  SealIo(state);
  if (!st.ok()) return st;
  return future;
}

Result<IoFuture> RStoreClient::SubmitVector(const RegionDesc& desc,
                                            std::span<const IoVec> segments,
                                            bool is_read) {
  obs::ObsSpan span(ObsTelemetry(), device_.node_id(), "client", "io.post");
  span.Arg("segments", static_cast<double>(segments.size()));
  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  IoFuture future(state, this);
  std::vector<Fragment> frags = std::move(frag_scratch_);
  frags.clear();
  Status st;
  for (const IoVec& seg : segments) {
    st = CollectFragments(desc, seg.offset, seg.local, seg.length, is_read,
                          frags);
    if (!st.ok()) break;
  }
  if (st.ok()) st = PostCoalesced(state, frags, is_read);
  frag_scratch_ = std::move(frags);
  SealIo(state);
  if (!st.ok()) return st;
  return future;
}

Status RStoreClient::CollectFragments(const RegionDesc& desc, uint64_t offset,
                                      std::byte* buffer, uint64_t length,
                                      bool is_read,
                                      std::vector<Fragment>& out) {
  if (offset > desc.size || length > desc.size - offset) {
    return Status(ErrorCode::kOutOfRange,
                  "IO past end of region '" + desc.name + "'");
  }
  if (length == 0) return Status::Ok();

  verbs::MemoryRegion* pinned = FindPinned(buffer, length);
  if (pinned == nullptr) {
    return Status(
        ErrorCode::kInvalidArgument,
        "IO buffer is not registered (call RegisterBuffer/AllocBuffer)");
  }
  const uint32_t lkey = pinned->lkey();

  ++data_ops_;
  if (is_read) {
    bytes_read_ += length;
  } else {
    bytes_written_ += length;
  }
  if (ObsTelemetry() != nullptr) {
    obs_ops_->Inc();
    (is_read ? obs_bytes_read_ : obs_bytes_written_)->Inc(length);
  }

  uint64_t cursor = offset;
  uint64_t remaining = length;
  std::byte* local = buffer;
  while (remaining > 0) {
    const uint64_t slab_idx = cursor / desc.slab_size;
    const uint64_t in_slab = cursor % desc.slab_size;
    const uint64_t frag = std::min(remaining, desc.slab_size - in_slab);
    const SlabLocation& slab = desc.slabs.at(slab_idx);

    // Reads hit the primary copy; writes fan out to every copy so
    // replicas stay byte-identical.
    out.push_back(Fragment{slab.server_node, slab.rkey,
                           slab.remote_addr + in_slab, local, frag, lkey});
    if (!is_read) {
      for (const auto& replica : desc.replicas) {
        const SlabLocation& r = replica.at(slab_idx);
        out.push_back(Fragment{r.server_node, r.rkey, r.remote_addr + in_slab,
                               local, frag, lkey});
      }
    }

    cursor += frag;
    local += frag;
    remaining -= frag;
  }
  return Status::Ok();
}

Status RStoreClient::PostCoalesced(const std::shared_ptr<IoFuture::State>& state,
                                   std::span<const Fragment> frags,
                                   bool is_read) {
  if (frags.empty()) return Status::Ok();
  const verbs::Opcode opcode =
      is_read ? verbs::Opcode::kRdmaRead : verbs::Opcode::kRdmaWrite;

  std::vector<verbs::SendWr> wrs = std::move(wr_scratch_);
  std::vector<uint32_t> wr_server = std::move(wr_server_scratch_);
  wrs.clear();
  wr_server.clear();

  // Coalesce: a fragment extending the remote range of an earlier WR to
  // the same server (same rkey, remote-contiguous) merges into it —
  // growing the last SGE when the local side is contiguous too, else
  // adding an SGE. Everything else opens a new WR. WR count per IO is
  // typically the number of distinct servers touched.
  for (const Fragment& f : frags) {
    verbs::SendWr* open = nullptr;
    for (size_t i = wrs.size(); i-- > 0;) {
      if (wr_server[i] == f.server_node) {
        open = &wrs[i];
        break;
      }
    }
    if (open != nullptr && open->rkey == f.rkey &&
        open->remote_addr + open->total_length() == f.remote_addr &&
        f.length <= UINT32_MAX) {
      verbs::Sge& tail = open->last_sge();
      if (tail.lkey == f.lkey && tail.addr + tail.length == f.local &&
          static_cast<uint64_t>(tail.length) + f.length <= UINT32_MAX) {
        tail.length += static_cast<uint32_t>(f.length);
        continue;
      }
      if (open->AppendSge(
              {f.local, static_cast<uint32_t>(f.length), f.lkey})) {
        continue;
      }
    }
    wrs.push_back(verbs::SendWr{
        .wr_id = state->io_id,
        .opcode = opcode,
        .local = {f.local, static_cast<uint32_t>(f.length), f.lkey},
        .remote_addr = f.remote_addr,
        .rkey = f.rkey,
    });
    wr_server.push_back(f.server_node);
  }

  // Post one doorbell chain per server (in first-use order), splitting
  // chains that would not fit the send queue.
  constexpr size_t kMaxChain = 32;
  constexpr uint32_t kPosted = UINT32_MAX;
  Status st;
  for (size_t start = 0; start < wrs.size() && st.ok(); ++start) {
    const uint32_t server = wr_server[start];
    if (server == kPosted) continue;
    auto conn = ConnectionTo(server);
    if (!conn.ok()) {
      st = conn.status();
      break;
    }
    verbs::SendWr* head = nullptr;
    verbs::SendWr* tail = nullptr;
    uint32_t chain = 0;
    for (size_t j = start; j < wrs.size(); ++j) {
      if (wr_server[j] != server) continue;
      wr_server[j] = kPosted;
      wrs[j].next = nullptr;
      if (tail != nullptr) {
        tail->next = &wrs[j];
      } else {
        head = &wrs[j];
      }
      tail = &wrs[j];
      ++chain;
      if (chain == kMaxChain) {
        st = PostChain(*conn, state, *head, chain);
        if (!st.ok()) break;
        head = tail = nullptr;
        chain = 0;
      }
    }
    if (st.ok() && head != nullptr) st = PostChain(*conn, state, *head, chain);
  }

  wr_scratch_ = std::move(wrs);
  wr_server_scratch_ = std::move(wr_server);
  return st;
}

Status RStoreClient::PostChain(Connection* conn,
                               const std::shared_ptr<IoFuture::State>& state,
                               const verbs::SendWr& head, uint32_t count) {
  // Backpressure: when the send queue fills, drain completions and retry.
  Status posted = conn->qp->PostSend(head);
  while (!posted.ok() && posted.code() == ErrorCode::kOutOfMemory) {
    PumpData(options_.io_timeout);
    posted = conn->qp->PostSend(head);
  }
  if (!posted.ok()) {
    conn->healthy = false;
    return posted;
  }
  if (state->expected == 0) pending_io_.emplace(state->io_id, state);
  state->expected += count;
  return Status::Ok();
}

void RStoreClient::SealIo(const std::shared_ptr<IoFuture::State>& state) {
  state->sealed = true;
  // Backpressure pumping may have drained every completion before the
  // seal; reap the pending entry here, since PumpData no longer can.
  if (state->expected > 0 && state->completed >= state->expected) {
    pending_io_.erase(state->io_id);
    state->cv.NotifyAll();
  }
}

void RStoreClient::PumpData(sim::Nanos timeout, size_t min_entries) {
  std::vector<verbs::WorkCompletion> wcs = std::move(wc_scratch_);
  wcs.clear();
  data_cq_->WaitPollInto(wcs, min_entries, SIZE_MAX, timeout);
  // One logical IO produces runs of completions with the same wr_id;
  // remember the previous lookup instead of searching the map per entry.
  uint64_t cached_id = 0;
  std::shared_ptr<IoFuture::State> cached;
  for (const auto& wc : wcs) {
    std::shared_ptr<IoFuture::State> state;
    if (cached != nullptr && wc.wr_id == cached_id) {
      state = cached;
    } else {
      auto it = pending_io_.find(wc.wr_id);
      if (it == pending_io_.end()) continue;  // e.g. reaped atomics
      state = it->second;
      cached_id = wc.wr_id;
      cached = state;
    }
    state->completed += 1;
    if (obs_wc_egress_ != nullptr && wc.stamps.posted != 0) {
      // Decompose the completion's dwell by its wire stamps (clamped
      // monotone: loopback steps never enter the port model and leave the
      // intermediate stamps zero).
      const auto& st = wc.stamps;
      const sim::Nanos tx = std::max(st.tx_start, st.posted);
      const sim::Nanos fb = std::max(st.first_bit, tx);
      const sim::Nanos ex = std::max(st.executed, fb);
      const sim::Nanos pu = std::max(st.pushed, ex);
      obs_wc_egress_->Inc(static_cast<uint64_t>(tx - st.posted));
      obs_wc_wire_->Inc(static_cast<uint64_t>(fb - tx));
      obs_wc_server_->Inc(static_cast<uint64_t>(ex - fb));
      obs_wc_ack_->Inc(static_cast<uint64_t>(pu - ex));
    }
    if (!wc.ok() && !state->failed) {
      state->failed = true;
      state->first_error =
          Status(wc.status == verbs::WcStatus::kRemAccessErr
                     ? ErrorCode::kPermissionDenied
                     : ErrorCode::kUnavailable,
                 std::string("data path error: ") +
                     std::string(verbs::ToString(wc.status)));
      // Mark the connection unhealthy so the next IO reconnects.
      for (auto& [node, conn] : connections_) {
        if (conn.qp != nullptr && conn.qp->qp_num() == wc.qp_num) {
          conn.healthy = false;
        }
      }
    }
    if (state->done()) {
      pending_io_.erase(state->io_id);
      state->cv.NotifyAll();
    }
  }
  wc_scratch_ = std::move(wcs);
}

Status RStoreClient::WaitFuture(const std::shared_ptr<IoFuture::State>& state) {
  obs::ObsSpan span(ObsTelemetry(), device_.node_id(), "client", "io.wait");
  const sim::Nanos deadline = sim::Now() + options_.io_timeout;
  while (!state->done()) {
    if (sim::Now() >= deadline) {
      return Status(ErrorCode::kTimedOut, "IO did not complete in time");
    }
    if (!pumping_) {
      pumping_ = true;
      // Wake threshold: this future needs `expected - completed` more
      // completions, so let that many accumulate before waking (one
      // thread wake per IO instead of one per fragment). Completions for
      // other IOs sharing the CQ only make the wake earlier, never later.
      const size_t remaining =
          state->expected > state->completed
              ? static_cast<size_t>(state->expected - state->completed)
              : 1;
      PumpData(deadline - sim::Now(), remaining);
      pumping_ = false;
      // Hand the pump to another waiter if we are done but others wait.
      if (!pending_io_.empty()) {
        pending_io_.begin()->second->cv.NotifyAll();
      }
    } else {
      (void)state->cv.WaitFor(deadline - sim::Now());
    }
  }
  return state->failed ? state->first_error : Status::Ok();
}

Result<uint64_t> RStoreClient::SubmitAtomic(MappedRegion& region,
                                            uint64_t offset, verbs::Opcode op,
                                            uint64_t compare,
                                            uint64_t swap_or_add) {
  check::OpLabelScope label(device_.network().sim().checker(),
                            "client.atomic");
  const RegionDesc& desc = region.desc_;
  if (offset % 8 != 0 || offset + 8 > desc.size) {
    return Result<uint64_t>(ErrorCode::kInvalidArgument,
                            "atomic offset must be 8-aligned and in range");
  }
  if (desc.copies > 1) {
    return Result<uint64_t>(
        ErrorCode::kInvalidArgument,
        "remote atomics are not defined on replicated regions");
  }
  const uint64_t slab_idx = offset / desc.slab_size;
  const uint64_t in_slab = offset % desc.slab_size;
  const SlabLocation& slab = desc.slabs.at(slab_idx);

  auto conn = ConnectionTo(slab.server_node);
  if (!conn.ok()) return conn.status();

  if (free_atomic_slots_.empty()) {
    return Result<uint64_t>(ErrorCode::kOutOfMemory,
                            "too many outstanding atomics");
  }
  const uint32_t slot = free_atomic_slots_.back();
  free_atomic_slots_.pop_back();
  std::byte* result = atomic_arena_.data() + slot * 8;

  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  Status posted = (*conn)->qp->PostSend(verbs::SendWr{
      .wr_id = state->io_id,
      .opcode = op,
      .local = {result, 8, atomic_mr_->lkey()},
      .remote_addr = slab.remote_addr + in_slab,
      .rkey = slab.rkey,
      .compare = compare,
      .swap_or_add = swap_or_add,
  });
  if (!posted.ok()) {
    free_atomic_slots_.push_back(slot);
    (*conn)->healthy = false;
    return posted;
  }
  state->expected = 1;
  state->sealed = true;
  pending_io_.emplace(state->io_id, state);
  Status st = WaitFuture(state);
  uint64_t old = 0;
  std::memcpy(&old, result, 8);
  free_atomic_slots_.push_back(slot);
  // A remote atomic mutates bytes under any cached copy regardless of
  // mode; drop the affected page so the next read refetches it.
  if (region.cache_mode_ != cache::CacheMode::kNone && cache_ != nullptr) {
    cache_->DropPage(desc.id, offset / cache_->page_bytes());
    CacheModeObs& co = ObsForCacheMode(region.cache_mode_);
    if (co.invalidations != nullptr) co.invalidations->Inc();
  }
  if (!st.ok()) return st;
  return old;
}

// ---------------------------------------------------------------------------
// Region cache
// ---------------------------------------------------------------------------
cache::RegionCache* RStoreClient::EnsureCache() {
  if (cache_ == nullptr) {
    cache_ = std::make_unique<cache::RegionCache>(
        options_.cache, [this](uint64_t bytes) -> std::byte* {
          // Arenas come from AllocBuffer so frames live in registered
          // memory and fills can DMA straight into them.
          auto buf = AllocBuffer(bytes);
          if (!buf.ok()) return nullptr;
          return buf->begin();
        });
    // Evictions happen inside the cache (LRU pressure, stale-write
    // invalidation) where the client cannot see them; forward each one so
    // the checker retires the page's consistency contract.
    cache_->SetEvictObserver([this](uint64_t region_id, uint64_t page) {
      if (check::Checker* ck = device_.network().sim().checker();
          ck != nullptr) {
        const uint64_t pb = cache_->page_bytes();
        ck->OnCacheDrop(device_.node_id(), region_id, page * pb,
                        (page + 1) * pb);
      }
    });
  }
  return cache_.get();
}

void RStoreClient::DropCachedRegion(uint64_t region_id,
                                    cache::CacheMode mode) {
  if (cache_ == nullptr) return;
  cache_->DropRegion(region_id);
  if (mode != cache::CacheMode::kNone) {
    CacheModeObs& co = ObsForCacheMode(mode);
    if (co.invalidations != nullptr) co.invalidations->Inc();
  }
}

const cache::CacheStats& RStoreClient::cache_stats() const noexcept {
  static const cache::CacheStats kZero{};
  return cache_ != nullptr ? cache_->stats() : kZero;
}

IoFuture RStoreClient::CompletedFuture() {
  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  state->sealed = true;  // expected == completed == 0: done on arrival
  return IoFuture(state, this);
}

Status RStoreClient::CachedRead(MappedRegion& region,
                                std::span<const IoVec> segments) {
  const RegionDesc& desc = region.desc_;
  // Same contract as the uncached path: bounds-checked, registered
  // buffers only — even for segments the cache could serve, so a request
  // never starts failing when its pages happen to fall out of cache.
  for (const IoVec& seg : segments) {
    if (seg.offset > desc.size || seg.length > desc.size - seg.offset) {
      return Status(ErrorCode::kOutOfRange,
                    "IO past end of region '" + desc.name + "'");
    }
    if (seg.length != 0 && FindPinned(seg.local, seg.length) == nullptr) {
      return Status(
          ErrorCode::kInvalidArgument,
          "IO buffer is not registered (call RegisterBuffer/AllocBuffer)");
    }
  }
  obs::ObsSpan span(ObsTelemetry(), device_.node_id(), "cache", "cache.read");
  CacheModeObs& co = ObsForCacheMode(region.cache_mode_);
  cache::RegionCache* cache = EnsureCache();
  const uint64_t page_bytes = cache->page_bytes();
  const uint64_t bypass = cache->bypass_bytes();
  const uint64_t epoch = region.cache_epoch_;
  const uint64_t id = desc.id;

  // Copies deferred until a fill lands, and the fills themselves
  // (installed only after the vectored read succeeds).
  struct CopyOut {
    cache::RegionCache::Frame* frame;
    uint64_t frame_off;
    std::byte* dst;
    uint64_t length;
  };
  struct Fill {
    cache::RegionCache::Frame* frame;
    uint64_t page;
    uint32_t valid;
  };
  std::vector<CopyOut> copies;
  std::vector<Fill> fills;
  // Pages this op is already fetching (overlapping segments), so each
  // page is fetched at most once per call.
  std::unordered_map<uint64_t, cache::RegionCache::Frame*> filling;

  std::vector<IoVec> remote = std::move(cache_io_scratch_);
  remote.clear();
  uint64_t local_bytes = 0;  // bytes memcpy'd between frames and caller

  // A run of consecutive missing pages within one segment, buffered so
  // the flush can weigh the run's total length against the bypass
  // threshold before committing to frame fills.
  struct MissRange {
    uint64_t page;
    uint64_t in_page;  // offset of the wanted bytes within the page
    uint64_t length;   // wanted bytes (<= page_bytes - in_page)
    std::byte* dst;
  };
  std::vector<MissRange> run;

  auto flush_run = [&] {
    if (run.empty()) return;
    uint64_t run_bytes = 0;
    for (const MissRange& m : run) run_bytes += m.length;
    if (bypass != 0 && run_bytes >= bypass) {
      // Stream the run straight into the caller's buffer, uncached: the
      // copy-in/copy-out tax on bytes used once exceeds the network time
      // saved, and a scan would evict the hot set. Runs never span
      // segments, so the remote range is contiguous.
      remote.push_back(IoVec{
          run.front().page * page_bytes + run.front().in_page,
          run.front().dst, run_bytes});
      cache->NoteBypass();
      if (co.bypass != nullptr) co.bypass->Inc();
      for (size_t i = 0; i < run.size(); ++i) cache->NoteMiss();
      if (co.misses != nullptr) co.misses->Inc(run.size());
      run.clear();
      return;
    }
    for (const MissRange& m : run) {
      cache->NoteMiss();
      if (co.misses != nullptr) co.misses->Inc();
      cache::RegionCache::Frame* frame = cache->Acquire();
      if (frame == nullptr) {
        // Every frame is pinned or the arena allocator failed: read the
        // wanted bytes directly, uncached.
        remote.push_back(
            IoVec{m.page * page_bytes + m.in_page, m.dst, m.length});
        continue;
      }
      const uint32_t valid = static_cast<uint32_t>(
          std::min<uint64_t>(page_bytes, desc.size - m.page * page_bytes));
      remote.push_back(IoVec{m.page * page_bytes, frame->data, valid});
      fills.push_back(Fill{frame, m.page, valid});
      filling.emplace(m.page, frame);
      copies.push_back(CopyOut{frame, m.in_page, m.dst, m.length});
    }
    run.clear();
  };

  for (const IoVec& seg : segments) {
    uint64_t cursor = seg.offset;
    uint64_t remaining = seg.length;
    std::byte* dst = seg.local;
    while (remaining > 0) {
      const uint64_t page = cursor / page_bytes;
      const uint64_t in_page = cursor % page_bytes;
      const uint64_t take = std::min(remaining, page_bytes - in_page);
      cache::RegionCache::Frame* frame = cache->Find(id, page, epoch);
      // A frame short of the requested range (tail page cached before the
      // region grew) cannot serve the hit; Rgrow drops such frames, so
      // this is a defensive miss, not an expected path.
      if (frame != nullptr && in_page + take <= frame->valid_bytes) {
        flush_run();
        std::memcpy(dst, frame->data + in_page, take);
        local_bytes += take;
        cache->NoteHit(take);
        if (co.hits != nullptr) co.hits->Inc();
      } else if (auto it = filling.find(page); it != filling.end()) {
        flush_run();
        copies.push_back(CopyOut{it->second, in_page, dst, take});
        cache->NoteHit(take);  // shares the in-flight fill
        if (co.hits != nullptr) co.hits->Inc();
      } else {
        run.push_back(MissRange{page, in_page, take, dst});
      }
      cursor += take;
      dst += take;
      remaining -= take;
    }
    flush_run();
  }

  Status st = Status::Ok();
  if (!remote.empty()) {
    auto future = SubmitVector(desc, remote, /*is_read=*/true);
    st = future.ok() ? future->Wait() : future.status();
  }
  cache_io_scratch_ = std::move(remote);
  if (!st.ok()) {
    for (const Fill& f : fills) cache->Abandon(f.frame);
    return st;
  }
  check::Checker* ck = device_.network().sim().checker();
  for (const Fill& f : fills) {
    cache->Install(f.frame, id, f.page, epoch, f.valid);
    cache->NoteFill(f.valid);
    // Immutable regions promise nobody writes cached bytes; register the
    // freshly resident range so a later remote write trips the contract.
    // Epoch-mode read fills stay unregistered: serving stale bytes until
    // the next BumpEpoch is legal there.
    if (ck != nullptr && region.cache_mode_ == cache::CacheMode::kImmutable) {
      const uint64_t pb = cache->page_bytes();
      ck->OnCacheResident(device_.node_id(), id, f.page * pb,
                          f.page * pb + f.valid);
    }
  }
  if (co.fills != nullptr) co.fills->Inc(fills.size());
  for (const CopyOut& c : copies) {
    std::memcpy(c.dst, c.frame->data + c.frame_off, c.length);
    local_bytes += c.length;
  }
  // Locally copied bytes are never free: local DRAM bandwidth, one
  // charge per logical op.
  if (local_bytes > 0) {
    sim::ChargeCpu(
        sim::CacheCopyCost(device_.network().cpu_model(), local_bytes));
  }
  span.Arg("mode", cache::ToString(region.cache_mode_));
  span.Arg("segments", static_cast<double>(segments.size()));
  span.Arg("local_bytes", static_cast<double>(local_bytes));
  return Status::Ok();
}

void RStoreClient::CacheApplyWrite(MappedRegion& region, uint64_t offset,
                                   std::span<const std::byte> src) {
  if (region.cache_mode_ == cache::CacheMode::kNone || src.empty()) return;
  cache::RegionCache* cache = EnsureCache();
  const uint64_t copied =
      cache->ApplyWrite(region.desc_.id, region.cache_epoch_, offset, src);
  if (copied > 0) {
    sim::ChargeCpu(
        sim::CacheCopyCost(device_.network().cpu_model(), copied));
  }
  if (check::Checker* ck = device_.network().sim().checker(); ck != nullptr) {
    // Register the written bytes that landed in still-resident frames.
    // Epoch mode: the local copy now mirrors the remote write-through, so
    // a concurrent remote writer would silently diverge it — that is the
    // contract rcheck enforces. Pages the cache dropped (stale partial
    // overwrite) carry no promise and are skipped via the Resident peek.
    const uint64_t pb = cache->page_bytes();
    const uint64_t end = offset + src.size();
    for (uint64_t page = offset / pb; page * pb < end; ++page) {
      if (!cache->Resident(region.desc_.id, page, region.cache_epoch_)) {
        continue;
      }
      const uint64_t lo = std::max(offset, page * pb);
      const uint64_t hi = std::min(end, (page + 1) * pb);
      if (region.cache_mode_ == cache::CacheMode::kEpoch) {
        ck->OnCacheWriteThrough(device_.node_id(), region.desc_.id, lo, hi);
      } else {
        ck->OnCacheResident(device_.node_id(), region.desc_.id, lo, hi);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MappedRegion forwarding
// ---------------------------------------------------------------------------
void MappedRegion::BumpEpoch() noexcept {
  ++cache_epoch_;
  if (check::Checker* ck = client_.device_.network().sim().checker();
      ck != nullptr) {
    ck->OnEpochBump(client_.device_.node_id(), desc_.id);
  }
}

Status MappedRegion::Read(uint64_t offset, std::span<std::byte> dst) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.read");
  obs::ObsSpan span(client_.ObsTelemetry(), client_.device_.node_id(),
                    "client", "client.read");
  span.Arg("bytes", static_cast<double>(dst.size()));
  FabricBreakdown breakdown(span, client_.obs_fab_queue_,
                            client_.obs_fab_ser_, client_.obs_fab_wire_);
  if (cache_mode_ != cache::CacheMode::kNone) {
    const IoVec seg{offset, dst.data(), dst.size()};
    return client_.CachedRead(*this, std::span<const IoVec>(&seg, 1));
  }
  auto future = client_.SubmitIo(desc_, offset, dst.data(), dst.size(),
                                 /*is_read=*/true);
  if (!future.ok()) return future.status();
  return future->Wait();
}

Status MappedRegion::Write(uint64_t offset, std::span<const std::byte> src) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.write");
  obs::ObsSpan span(client_.ObsTelemetry(), client_.device_.node_id(),
                    "client", "client.write");
  span.Arg("bytes", static_cast<double>(src.size()));
  FabricBreakdown breakdown(span, client_.obs_fab_queue_,
                            client_.obs_fab_ser_, client_.obs_fab_wire_);
  // One-sided writes read the source buffer; it stays logically const.
  auto future = client_.SubmitIo(desc_, offset,
                                 const_cast<std::byte*>(src.data()),
                                 src.size(), /*is_read=*/false);
  if (!future.ok()) return future.status();
  Status st = future->Wait();
  // Write-through: the remote copy is authoritative, so the local update
  // happens only once the write is known durable.
  if (st.ok()) client_.CacheApplyWrite(*this, offset, src);
  return st;
}

// ReadAsync intentionally bypasses the cache: the caller's buffer is not
// filled until the future completes, so there is no moment at which a
// consistent local copy could be taken without blocking the post path.
Result<IoFuture> MappedRegion::ReadAsync(uint64_t offset,
                                         std::span<std::byte> dst) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.read_async");
  return client_.SubmitIo(desc_, offset, dst.data(), dst.size(), true);
}

Result<IoFuture> MappedRegion::WriteAsync(uint64_t offset,
                                          std::span<const std::byte> src) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.write_async");
  auto future = client_.SubmitIo(desc_, offset,
                                 const_cast<std::byte*>(src.data()),
                                 src.size(), false);
  // Applied at post time: if the write later fails the connection is
  // marked unhealthy and remote state is undefined anyway.
  if (future.ok()) client_.CacheApplyWrite(*this, offset, src);
  return future;
}

Result<IoFuture> MappedRegion::ReadV(std::span<const IoVec> segments) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.readv");
  obs::ObsSpan span(client_.ObsTelemetry(), client_.device_.node_id(),
                    "client", "client.readv");
  span.Arg("segments", static_cast<double>(segments.size()));
  if (cache_mode_ != cache::CacheMode::kNone) {
    RSTORE_RETURN_IF_ERROR(client_.CachedRead(*this, segments));
    return client_.CompletedFuture();
  }
  return client_.SubmitVector(desc_, segments, /*is_read=*/true);
}

Result<IoFuture> MappedRegion::WriteV(std::span<const IoVec> segments) {
  check::OpLabelScope label(client_.device_.network().sim().checker(),
                            "client.writev");
  auto future = client_.SubmitVector(desc_, segments, /*is_read=*/false);
  if (future.ok() && cache_mode_ != cache::CacheMode::kNone) {
    for (const IoVec& seg : segments) {
      client_.CacheApplyWrite(
          *this, seg.offset,
          std::span<const std::byte>(seg.local, seg.length));
    }
  }
  return future;
}

Result<RemoteSpan> MappedRegion::Resolve(uint64_t offset,
                                         uint64_t length) const {
  if (offset > desc_.size || length > desc_.size - offset) {
    return Result<RemoteSpan>(ErrorCode::kInvalidArgument,
                              "range past end of region '" + desc_.name + "'");
  }
  const uint64_t slab_idx = offset / desc_.slab_size;
  const uint64_t in_slab = offset % desc_.slab_size;
  if (length > desc_.slab_size - in_slab) {
    return Result<RemoteSpan>(
        ErrorCode::kInvalidArgument,
        "range crosses a slab boundary in region '" + desc_.name + "'");
  }
  const SlabLocation& slab = desc_.slabs.at(slab_idx);
  return RemoteSpan{slab.server_node, slab.rkey, slab.remote_addr + in_slab};
}

Result<uint64_t> MappedRegion::FetchAdd(uint64_t offset, uint64_t delta) {
  return client_.SubmitAtomic(*this, offset, verbs::Opcode::kFetchAdd, 0,
                              delta);
}

Result<uint64_t> MappedRegion::CompareSwap(uint64_t offset, uint64_t expected,
                                           uint64_t desired) {
  return client_.SubmitAtomic(*this, offset, verbs::Opcode::kCompareSwap,
                              expected, desired);
}

}  // namespace rstore::core
