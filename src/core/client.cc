#include "core/client.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.h"
#include "sim/simulation.h"

namespace rstore::core {

// Shared completion state of one logical IO (possibly many work
// requests, all carrying io_id as their wr_id). `sealed` flips once the
// last WR is posted; only then can completed==expected mean "done" —
// backpressure drains completions while posting is still in progress.
struct IoFuture::State {
  explicit State(sim::Simulation& s, uint64_t id) : io_id(id), cv(s) {}
  const uint64_t io_id;
  uint32_t expected = 0;
  uint32_t completed = 0;
  bool sealed = false;
  Status first_error;
  bool failed = false;
  sim::CondVar cv;

  [[nodiscard]] bool done() const noexcept {
    return sealed && completed >= expected;
  }
};

Status IoFuture::Wait() {
  if (!state_) return Status(ErrorCode::kInvalidArgument, "empty IoFuture");
  return client_->WaitFuture(state_);
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------
RStoreClient::RStoreClient(verbs::Device& device, uint32_t master_node,
                           ClientOptions options)
    : device_(device), master_node_(master_node), options_(options) {}

Result<std::unique_ptr<RStoreClient>> RStoreClient::Connect(
    verbs::Device& device, uint32_t master_node, ClientOptions options) {
  auto client = std::unique_ptr<RStoreClient>(
      new RStoreClient(device, master_node, options));

  rpc::RpcOptions rpc_opts;
  rpc_opts.call_timeout = options.control_timeout;
  auto master = rpc::RpcClient::Connect(device, master_node, kMasterService,
                                        rpc_opts);
  if (!master.ok()) return master.status();
  client->master_ = std::move(master).value();

  client->pd_ = &device.CreatePd();
  client->data_cq_ = &device.CreateCq();

  // Scratch slots for atomic results.
  constexpr uint32_t kAtomicSlots = 256;
  client->atomic_arena_.resize(kAtomicSlots * 8);
  auto mr = client->pd_->RegisterMemory(client->atomic_arena_.data(),
                                        client->atomic_arena_.size(),
                                        verbs::kLocalWrite);
  if (!mr.ok()) return mr.status();
  client->atomic_mr_ = *mr;
  for (uint32_t i = 0; i < kAtomicSlots; ++i) {
    client->free_atomic_slots_.push_back(i);
  }
  return client;
}

RStoreClient::~RStoreClient() {
  for (auto& [node, conn] : connections_) {
    if (conn.qp != nullptr) conn.qp->Close();
  }
  for (auto& [addr, mr] : pinned_) (void)pd_->DeregisterMemory(mr);
  if (atomic_mr_ != nullptr) (void)pd_->DeregisterMemory(atomic_mr_);
}

// ---------------------------------------------------------------------------
// Control path
// ---------------------------------------------------------------------------
Result<std::vector<std::byte>> RStoreClient::CallMaster(
    uint32_t method, const rpc::Writer& req) {
  ++control_calls_;
  return master_->Call(method, req);
}

Status RStoreClient::Ralloc(const std::string& name, uint64_t size,
                            uint32_t copies) {
  rpc::Writer req;
  req.Str(name);
  req.U64(size);
  req.U32(copies);
  return CallMaster(kAlloc, req).status();
}

Result<MappedRegion*> RStoreClient::Rmap(const std::string& name,
                                         bool allow_degraded, bool fresh) {
  if (!fresh) {
    auto it = mappings_.find(name);
    if (it != mappings_.end()) {
      ++map_cache_hits_;
      return it->second.get();
    }
  }
  rpc::Writer req;
  req.Str(name);
  req.Bool(allow_degraded);
  auto resp = CallMaster(kMap, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  RegionDesc desc;
  if (!RegionDesc::Decode(r, &desc)) {
    return Result<MappedRegion*>(ErrorCode::kInternal,
                                 "malformed map response");
  }
  auto region = std::unique_ptr<MappedRegion>(
      new MappedRegion(*this, std::move(desc)));
  MappedRegion* raw = region.get();
  mappings_[name] = std::move(region);
  return raw;
}

Status RStoreClient::Rgrow(const std::string& name, uint64_t new_size) {
  rpc::Writer req;
  req.Str(name);
  req.U64(new_size);
  auto resp = CallMaster(kGrow, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  RegionDesc desc;
  if (!RegionDesc::Decode(r, &desc)) {
    return Status(ErrorCode::kInternal, "malformed grow response");
  }
  // Refresh the cached mapping in place so existing MappedRegion
  // pointers observe the new size.
  auto it = mappings_.find(name);
  if (it != mappings_.end()) {
    it->second->desc_ = std::move(desc);
  }
  return Status::Ok();
}

Status RStoreClient::Runmap(const std::string& name) {
  return mappings_.erase(name) > 0
             ? Status::Ok()
             : Status(ErrorCode::kNotFound, "'" + name + "' is not mapped");
}

Status RStoreClient::Rfree(const std::string& name) {
  mappings_.erase(name);
  rpc::Writer req;
  req.Str(name);
  return CallMaster(kFree, req).status();
}

Result<ClusterStat> RStoreClient::Stat() {
  auto resp = CallMaster(kStat, rpc::Writer{});
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  ClusterStat stat;
  if (!ClusterStat::Decode(r, &stat)) {
    return Result<ClusterStat>(ErrorCode::kInternal, "malformed stat");
  }
  return stat;
}

Status RStoreClient::RegisterBuffer(std::span<std::byte> buffer) {
  if (buffer.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty buffer");
  }
  // Evict registrations that overlap the new range: they necessarily
  // refer to freed buffers whose addresses the allocator reused (live
  // application buffers cannot overlap).
  last_pinned_ = nullptr;  // may be about to evict the cached entry
  const auto a = reinterpret_cast<uintptr_t>(buffer.data());
  const uintptr_t b = a + buffer.size();
  auto it = pinned_.lower_bound(a);
  if (it != pinned_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second->length() > a) {
      (void)pd_->DeregisterMemory(prev->second);
      pinned_.erase(prev);
    }
  }
  while (it != pinned_.end() && it->first < b) {
    (void)pd_->DeregisterMemory(it->second);
    it = pinned_.erase(it);
  }

  auto mr = pd_->RegisterMemory(buffer.data(), buffer.size(),
                                verbs::kLocalWrite);
  if (!mr.ok()) return mr.status();
  pinned_.emplace(a, *mr);
  return Status::Ok();
}

Status RStoreClient::UnregisterBuffer(std::span<std::byte> buffer) {
  const auto a = reinterpret_cast<uintptr_t>(buffer.data());
  auto it = pinned_.find(a);
  if (it == pinned_.end()) {
    return Status(ErrorCode::kNotFound, "buffer was not registered");
  }
  if (last_pinned_ == it->second) last_pinned_ = nullptr;
  (void)pd_->DeregisterMemory(it->second);
  pinned_.erase(it);
  return Status::Ok();
}

Result<PinnedBuffer> RStoreClient::AllocBuffer(size_t bytes) {
  common::HugeBuffer storage(bytes);
  std::span<std::byte> span(storage.data(), storage.size());
  RSTORE_RETURN_IF_ERROR(RegisterBuffer(span));
  owned_buffers_.push_back(std::move(storage));
  return PinnedBuffer{span};
}

verbs::MemoryRegion* RStoreClient::FindPinned(const std::byte* addr,
                                              uint64_t len) const {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  if (last_pinned_ != nullptr && last_pinned_->Covers(a, len)) {
    return last_pinned_;
  }
  auto it = pinned_.upper_bound(a);
  if (it == pinned_.begin()) return nullptr;
  --it;
  verbs::MemoryRegion* mr = it->second;
  if (!mr->Covers(a, len)) return nullptr;
  last_pinned_ = mr;
  return mr;
}

Status RStoreClient::NotifyInc(const std::string& channel, uint64_t delta) {
  rpc::Writer req;
  req.Str(channel);
  req.U64(delta);
  return CallMaster(kNotifyInc, req).status();
}

Result<uint64_t> RStoreClient::WaitNotify(const std::string& channel,
                                          uint64_t target) {
  rpc::Writer req;
  req.Str(channel);
  req.U64(target);
  auto resp = CallMaster(kWaitNotify, req);
  if (!resp.ok()) return resp.status();
  rpc::Reader r(*resp);
  uint64_t value = 0;
  if (!r.U64(&value)) {
    return Result<uint64_t>(ErrorCode::kInternal, "malformed wait response");
  }
  return value;
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------
Result<RStoreClient::Connection*> RStoreClient::ConnectionTo(
    uint32_t server_node) {
  if (server_node == last_conn_node_ && last_conn_ != nullptr &&
      last_conn_->healthy) {
    return last_conn_;
  }
  auto it = connections_.find(server_node);
  if (it != connections_.end() && it->second.healthy) {
    last_conn_node_ = server_node;
    last_conn_ = &it->second;
    return &it->second;
  }
  // (Re)connect: data QPs share the client's data CQ for send-side
  // completions; the receive side is unused (one-sided traffic only).
  auto qp = device_.network().Connect(device_, server_node, kDataService, {},
                                      data_cq_, nullptr);
  if (!qp.ok()) return qp.status();
  Connection conn{*qp, true};
  auto [pos, unused] = connections_.insert_or_assign(server_node, conn);
  (void)unused;
  last_conn_node_ = server_node;
  last_conn_ = &pos->second;  // map nodes are address-stable
  return &pos->second;
}

Result<IoFuture> RStoreClient::SubmitIo(const RegionDesc& desc,
                                        uint64_t offset, std::byte* buffer,
                                        uint64_t length, bool is_read) {
  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  IoFuture future(state, this);
  std::vector<Fragment> frags = std::move(frag_scratch_);
  frags.clear();
  Status st = CollectFragments(desc, offset, buffer, length, is_read, frags);
  if (st.ok()) st = PostCoalesced(state, frags, is_read);
  frag_scratch_ = std::move(frags);
  SealIo(state);
  if (!st.ok()) return st;
  return future;
}

Result<IoFuture> RStoreClient::SubmitVector(const RegionDesc& desc,
                                            std::span<const IoVec> segments,
                                            bool is_read) {
  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  IoFuture future(state, this);
  std::vector<Fragment> frags = std::move(frag_scratch_);
  frags.clear();
  Status st;
  for (const IoVec& seg : segments) {
    st = CollectFragments(desc, seg.offset, seg.local, seg.length, is_read,
                          frags);
    if (!st.ok()) break;
  }
  if (st.ok()) st = PostCoalesced(state, frags, is_read);
  frag_scratch_ = std::move(frags);
  SealIo(state);
  if (!st.ok()) return st;
  return future;
}

Status RStoreClient::CollectFragments(const RegionDesc& desc, uint64_t offset,
                                      std::byte* buffer, uint64_t length,
                                      bool is_read,
                                      std::vector<Fragment>& out) {
  if (offset > desc.size || length > desc.size - offset) {
    return Status(ErrorCode::kOutOfRange,
                  "IO past end of region '" + desc.name + "'");
  }
  if (length == 0) return Status::Ok();

  verbs::MemoryRegion* pinned = FindPinned(buffer, length);
  if (pinned == nullptr) {
    return Status(
        ErrorCode::kInvalidArgument,
        "IO buffer is not registered (call RegisterBuffer/AllocBuffer)");
  }
  const uint32_t lkey = pinned->lkey();

  ++data_ops_;
  if (is_read) {
    bytes_read_ += length;
  } else {
    bytes_written_ += length;
  }

  uint64_t cursor = offset;
  uint64_t remaining = length;
  std::byte* local = buffer;
  while (remaining > 0) {
    const uint64_t slab_idx = cursor / desc.slab_size;
    const uint64_t in_slab = cursor % desc.slab_size;
    const uint64_t frag = std::min(remaining, desc.slab_size - in_slab);
    const SlabLocation& slab = desc.slabs.at(slab_idx);

    // Reads hit the primary copy; writes fan out to every copy so
    // replicas stay byte-identical.
    out.push_back(Fragment{slab.server_node, slab.rkey,
                           slab.remote_addr + in_slab, local, frag, lkey});
    if (!is_read) {
      for (const auto& replica : desc.replicas) {
        const SlabLocation& r = replica.at(slab_idx);
        out.push_back(Fragment{r.server_node, r.rkey, r.remote_addr + in_slab,
                               local, frag, lkey});
      }
    }

    cursor += frag;
    local += frag;
    remaining -= frag;
  }
  return Status::Ok();
}

Status RStoreClient::PostCoalesced(const std::shared_ptr<IoFuture::State>& state,
                                   std::span<const Fragment> frags,
                                   bool is_read) {
  if (frags.empty()) return Status::Ok();
  const verbs::Opcode opcode =
      is_read ? verbs::Opcode::kRdmaRead : verbs::Opcode::kRdmaWrite;

  std::vector<verbs::SendWr> wrs = std::move(wr_scratch_);
  std::vector<uint32_t> wr_server = std::move(wr_server_scratch_);
  wrs.clear();
  wr_server.clear();

  // Coalesce: a fragment extending the remote range of an earlier WR to
  // the same server (same rkey, remote-contiguous) merges into it —
  // growing the last SGE when the local side is contiguous too, else
  // adding an SGE. Everything else opens a new WR. WR count per IO is
  // typically the number of distinct servers touched.
  for (const Fragment& f : frags) {
    verbs::SendWr* open = nullptr;
    for (size_t i = wrs.size(); i-- > 0;) {
      if (wr_server[i] == f.server_node) {
        open = &wrs[i];
        break;
      }
    }
    if (open != nullptr && open->rkey == f.rkey &&
        open->remote_addr + open->total_length() == f.remote_addr &&
        f.length <= UINT32_MAX) {
      verbs::Sge& tail = open->last_sge();
      if (tail.lkey == f.lkey && tail.addr + tail.length == f.local &&
          static_cast<uint64_t>(tail.length) + f.length <= UINT32_MAX) {
        tail.length += static_cast<uint32_t>(f.length);
        continue;
      }
      if (open->AppendSge(
              {f.local, static_cast<uint32_t>(f.length), f.lkey})) {
        continue;
      }
    }
    wrs.push_back(verbs::SendWr{
        .wr_id = state->io_id,
        .opcode = opcode,
        .local = {f.local, static_cast<uint32_t>(f.length), f.lkey},
        .remote_addr = f.remote_addr,
        .rkey = f.rkey,
    });
    wr_server.push_back(f.server_node);
  }

  // Post one doorbell chain per server (in first-use order), splitting
  // chains that would not fit the send queue.
  constexpr size_t kMaxChain = 32;
  constexpr uint32_t kPosted = UINT32_MAX;
  Status st;
  for (size_t start = 0; start < wrs.size() && st.ok(); ++start) {
    const uint32_t server = wr_server[start];
    if (server == kPosted) continue;
    auto conn = ConnectionTo(server);
    if (!conn.ok()) {
      st = conn.status();
      break;
    }
    verbs::SendWr* head = nullptr;
    verbs::SendWr* tail = nullptr;
    uint32_t chain = 0;
    for (size_t j = start; j < wrs.size(); ++j) {
      if (wr_server[j] != server) continue;
      wr_server[j] = kPosted;
      wrs[j].next = nullptr;
      if (tail != nullptr) {
        tail->next = &wrs[j];
      } else {
        head = &wrs[j];
      }
      tail = &wrs[j];
      ++chain;
      if (chain == kMaxChain) {
        st = PostChain(*conn, state, *head, chain);
        if (!st.ok()) break;
        head = tail = nullptr;
        chain = 0;
      }
    }
    if (st.ok() && head != nullptr) st = PostChain(*conn, state, *head, chain);
  }

  wr_scratch_ = std::move(wrs);
  wr_server_scratch_ = std::move(wr_server);
  return st;
}

Status RStoreClient::PostChain(Connection* conn,
                               const std::shared_ptr<IoFuture::State>& state,
                               const verbs::SendWr& head, uint32_t count) {
  // Backpressure: when the send queue fills, drain completions and retry.
  Status posted = conn->qp->PostSend(head);
  while (!posted.ok() && posted.code() == ErrorCode::kOutOfMemory) {
    PumpData(options_.io_timeout);
    posted = conn->qp->PostSend(head);
  }
  if (!posted.ok()) {
    conn->healthy = false;
    return posted;
  }
  if (state->expected == 0) pending_io_.emplace(state->io_id, state);
  state->expected += count;
  return Status::Ok();
}

void RStoreClient::SealIo(const std::shared_ptr<IoFuture::State>& state) {
  state->sealed = true;
  // Backpressure pumping may have drained every completion before the
  // seal; reap the pending entry here, since PumpData no longer can.
  if (state->expected > 0 && state->completed >= state->expected) {
    pending_io_.erase(state->io_id);
    state->cv.NotifyAll();
  }
}

void RStoreClient::PumpData(sim::Nanos timeout, size_t min_entries) {
  std::vector<verbs::WorkCompletion> wcs = std::move(wc_scratch_);
  wcs.clear();
  data_cq_->WaitPollInto(wcs, min_entries, SIZE_MAX, timeout);
  // One logical IO produces runs of completions with the same wr_id;
  // remember the previous lookup instead of searching the map per entry.
  uint64_t cached_id = 0;
  std::shared_ptr<IoFuture::State> cached;
  for (const auto& wc : wcs) {
    std::shared_ptr<IoFuture::State> state;
    if (cached != nullptr && wc.wr_id == cached_id) {
      state = cached;
    } else {
      auto it = pending_io_.find(wc.wr_id);
      if (it == pending_io_.end()) continue;  // e.g. reaped atomics
      state = it->second;
      cached_id = wc.wr_id;
      cached = state;
    }
    state->completed += 1;
    if (!wc.ok() && !state->failed) {
      state->failed = true;
      state->first_error =
          Status(wc.status == verbs::WcStatus::kRemAccessErr
                     ? ErrorCode::kPermissionDenied
                     : ErrorCode::kUnavailable,
                 std::string("data path error: ") +
                     std::string(verbs::ToString(wc.status)));
      // Mark the connection unhealthy so the next IO reconnects.
      for (auto& [node, conn] : connections_) {
        if (conn.qp != nullptr && conn.qp->qp_num() == wc.qp_num) {
          conn.healthy = false;
        }
      }
    }
    if (state->done()) {
      pending_io_.erase(state->io_id);
      state->cv.NotifyAll();
    }
  }
  wc_scratch_ = std::move(wcs);
}

Status RStoreClient::WaitFuture(const std::shared_ptr<IoFuture::State>& state) {
  const sim::Nanos deadline = sim::Now() + options_.io_timeout;
  while (!state->done()) {
    if (sim::Now() >= deadline) {
      return Status(ErrorCode::kTimedOut, "IO did not complete in time");
    }
    if (!pumping_) {
      pumping_ = true;
      // Wake threshold: this future needs `expected - completed` more
      // completions, so let that many accumulate before waking (one
      // thread wake per IO instead of one per fragment). Completions for
      // other IOs sharing the CQ only make the wake earlier, never later.
      const size_t remaining =
          state->expected > state->completed
              ? static_cast<size_t>(state->expected - state->completed)
              : 1;
      PumpData(deadline - sim::Now(), remaining);
      pumping_ = false;
      // Hand the pump to another waiter if we are done but others wait.
      if (!pending_io_.empty()) {
        pending_io_.begin()->second->cv.NotifyAll();
      }
    } else {
      (void)state->cv.WaitFor(deadline - sim::Now());
    }
  }
  return state->failed ? state->first_error : Status::Ok();
}

Result<uint64_t> RStoreClient::SubmitAtomic(const RegionDesc& desc,
                                            uint64_t offset, verbs::Opcode op,
                                            uint64_t compare,
                                            uint64_t swap_or_add) {
  if (offset % 8 != 0 || offset + 8 > desc.size) {
    return Result<uint64_t>(ErrorCode::kInvalidArgument,
                            "atomic offset must be 8-aligned and in range");
  }
  if (desc.copies > 1) {
    return Result<uint64_t>(
        ErrorCode::kInvalidArgument,
        "remote atomics are not defined on replicated regions");
  }
  const uint64_t slab_idx = offset / desc.slab_size;
  const uint64_t in_slab = offset % desc.slab_size;
  const SlabLocation& slab = desc.slabs.at(slab_idx);

  auto conn = ConnectionTo(slab.server_node);
  if (!conn.ok()) return conn.status();

  if (free_atomic_slots_.empty()) {
    return Result<uint64_t>(ErrorCode::kOutOfMemory,
                            "too many outstanding atomics");
  }
  const uint32_t slot = free_atomic_slots_.back();
  free_atomic_slots_.pop_back();
  std::byte* result = atomic_arena_.data() + slot * 8;

  auto state = std::make_shared<IoFuture::State>(device_.network().sim(),
                                                 next_wr_id_++);
  Status posted = (*conn)->qp->PostSend(verbs::SendWr{
      .wr_id = state->io_id,
      .opcode = op,
      .local = {result, 8, atomic_mr_->lkey()},
      .remote_addr = slab.remote_addr + in_slab,
      .rkey = slab.rkey,
      .compare = compare,
      .swap_or_add = swap_or_add,
  });
  if (!posted.ok()) {
    free_atomic_slots_.push_back(slot);
    (*conn)->healthy = false;
    return posted;
  }
  state->expected = 1;
  state->sealed = true;
  pending_io_.emplace(state->io_id, state);
  Status st = WaitFuture(state);
  uint64_t old = 0;
  std::memcpy(&old, result, 8);
  free_atomic_slots_.push_back(slot);
  if (!st.ok()) return st;
  return old;
}

// ---------------------------------------------------------------------------
// MappedRegion forwarding
// ---------------------------------------------------------------------------
Status MappedRegion::Read(uint64_t offset, std::span<std::byte> dst) {
  auto future = client_.SubmitIo(desc_, offset, dst.data(), dst.size(),
                                 /*is_read=*/true);
  if (!future.ok()) return future.status();
  return future->Wait();
}

Status MappedRegion::Write(uint64_t offset, std::span<const std::byte> src) {
  // One-sided writes read the source buffer; it stays logically const.
  auto future = client_.SubmitIo(desc_, offset,
                                 const_cast<std::byte*>(src.data()),
                                 src.size(), /*is_read=*/false);
  if (!future.ok()) return future.status();
  return future->Wait();
}

Result<IoFuture> MappedRegion::ReadAsync(uint64_t offset,
                                         std::span<std::byte> dst) {
  return client_.SubmitIo(desc_, offset, dst.data(), dst.size(), true);
}

Result<IoFuture> MappedRegion::WriteAsync(uint64_t offset,
                                          std::span<const std::byte> src) {
  return client_.SubmitIo(desc_, offset, const_cast<std::byte*>(src.data()),
                          src.size(), false);
}

Result<IoFuture> MappedRegion::ReadV(std::span<const IoVec> segments) {
  return client_.SubmitVector(desc_, segments, /*is_read=*/true);
}

Result<IoFuture> MappedRegion::WriteV(std::span<const IoVec> segments) {
  return client_.SubmitVector(desc_, segments, /*is_read=*/false);
}

Result<uint64_t> MappedRegion::FetchAdd(uint64_t offset, uint64_t delta) {
  return client_.SubmitAtomic(desc_, offset, verbs::Opcode::kFetchAdd, 0,
                              delta);
}

Result<uint64_t> MappedRegion::CompareSwap(uint64_t offset, uint64_t expected,
                                           uint64_t desired) {
  return client_.SubmitAtomic(desc_, offset, verbs::Opcode::kCompareSwap,
                              expected, desired);
}

}  // namespace rstore::core
