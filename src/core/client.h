// RStore client: the memory-like API.
//
// The client embodies the paper's separation philosophy:
//
//   control path (through the master, milliseconds, infrequent):
//     Ralloc(name, size, copies)  create a named (optionally replicated)
//                                 distributed region
//     Rmap(name)               fetch its slab table; cached thereafter
//     Rgrow(name, new_size)    extend a region in place
//     Rfree(name)              tear it down
//     RegisterBuffer(...)      pin local IO buffers (verbs registration)
//     NotifyInc / WaitNotify   cross-client synchronization
//
//   data path (one-sided RDMA to memory servers, microseconds, hot):
//     MappedRegion::Read / Write          sync, any offset/length
//     MappedRegion::ReadAsync/WriteAsync  overlapped, IoFuture to wait
//     MappedRegion::ReadV / WriteV        vectored scatter/gather
//     MappedRegion::FetchAdd/CompareSwap  8-byte remote atomics
//
// After Rmap returns, a read or write never contacts the master: the
// client splits the byte range over the slab table, posts one-sided
// verbs to each memory server involved (connections are created lazily
// and cached), and waits for completions. No server CPU runs on its
// behalf — that is what "direct access" means.
//
// Local buffers used for IO must lie inside a region previously pinned
// with RegisterBuffer (or obtained from AllocBuffer); this mirrors real
// RDMA, where unregistered memory cannot be DMA'd.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/region_cache.h"
#include "common/huge_buffer.h"
#include "common/status.h"
#include "core/types.h"
#include "rpc/rpc.h"
#include "verbs/verbs.h"

namespace rstore::obs {
class Counter;
class Telemetry;
}  // namespace rstore::obs

namespace rstore::core {

class RStoreClient;

struct ClientOptions {
  // Control-path RPC sizing and timeout (WaitNotify long-polls, so this
  // bounds the longest barrier an application may wait on).
  sim::Nanos control_timeout = sim::Seconds(600);
  // Data-path IO deadline.
  sim::Nanos io_timeout = sim::Seconds(60);
  // Region-cache sizing (see cache/region_cache.h). The cache itself is
  // built lazily, the first time a region is mapped with a CacheMode
  // other than kNone; until then these are inert.
  cache::CacheConfig cache;
};

// Per-Rmap knobs. The cache mode is a property of *this client's* mapping
// of the region, chosen here because map time is when the application
// knows what the region holds (write-once topology vs. mutable scratch).
struct RmapOptions {
  bool allow_degraded = false;
  bool fresh = false;
  cache::CacheMode cache_mode = cache::CacheMode::kNone;
};

// Completion handle for asynchronous IO. Wait() is idempotent; the
// future may outlive the client call scope (shared state) but not the
// client itself.
class IoFuture {
 public:
  IoFuture() = default;
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  // Blocks until every fragment of the IO completed; returns the first
  // error if any fragment failed.
  [[nodiscard]] Status Wait();

 private:
  friend class RStoreClient;
  struct State;
  explicit IoFuture(std::shared_ptr<State> state, RStoreClient* client)
      : state_(std::move(state)), client_(client) {}
  std::shared_ptr<State> state_;
  RStoreClient* client_ = nullptr;
};

// One segment of a vectored IO: `length` bytes at region offset `offset`
// moving to/from `local`.
struct IoVec {
  uint64_t offset = 0;
  std::byte* local = nullptr;
  uint64_t length = 0;
};

// The one-sided target of a contiguous region range: everything needed to
// post a verbs WR at it directly (see MappedRegion::Resolve).
struct RemoteSpan {
  uint32_t server_node = 0;
  uint32_t rkey = 0;
  uint64_t remote_addr = 0;
};

// A mapped distributed region. Obtained from RStoreClient::Rmap; owned by
// the client (pointers stay valid until Runmap/Rfree or client teardown).
class MappedRegion {
 public:
  [[nodiscard]] const RegionDesc& desc() const noexcept { return desc_; }
  [[nodiscard]] uint64_t size() const noexcept { return desc_.size; }
  [[nodiscard]] const std::string& name() const noexcept {
    return desc_.name;
  }

  // Synchronous byte-granular IO at any offset.
  [[nodiscard]] Status Read(uint64_t offset, std::span<std::byte> dst);
  [[nodiscard]] Status Write(uint64_t offset, std::span<const std::byte> src);

  // Overlapped IO: returns once the work is posted.
  [[nodiscard]] Result<IoFuture> ReadAsync(uint64_t offset,
                                         std::span<std::byte> dst);
  [[nodiscard]] Result<IoFuture> WriteAsync(uint64_t offset,
                                          std::span<const std::byte> src);

  // Vectored IO: every segment posted at once, one future for the lot —
  // the natural shape for scattered accesses (slot tables, per-worker
  // slices) where per-segment round trips would dominate.
  [[nodiscard]] Result<IoFuture> ReadV(std::span<const IoVec> segments);
  [[nodiscard]] Result<IoFuture> WriteV(std::span<const IoVec> segments);

  // Resolves a byte range that lies entirely inside one slab to its
  // one-sided target (primary copy). This is the escape hatch for
  // dataplanes that manage their own QPs — the session multiplexer in
  // src/load posts raw verbs against the returned span — and fails with
  // kInvalidArgument when the range crosses a slab boundary or falls
  // outside the region.
  [[nodiscard]] Result<RemoteSpan> Resolve(uint64_t offset,
                                           uint64_t length) const;

  // Remote 8-byte atomics (offset must be 8-aligned). Return the value
  // observed at the memory server before the operation.
  [[nodiscard]] Result<uint64_t> FetchAdd(uint64_t offset, uint64_t delta);
  [[nodiscard]] Result<uint64_t> CompareSwap(uint64_t offset,
                                             uint64_t expected,
                                             uint64_t desired);

  // ---------------- client-side caching --------------------------------
  // Mode chosen at Rmap time (RmapOptions::cache_mode). kNone = every
  // read goes remote (the default and today's behavior).
  [[nodiscard]] cache::CacheMode cache_mode() const noexcept {
    return cache_mode_;
  }
  // Epoch-mode invalidation: O(1) — advances this mapping's epoch so
  // every cached page of the region becomes a miss. Call at barriers
  // (before the local writes of the new epoch, so write-throughs are
  // stamped fresh). Harmless no-op on uncached mappings.
  void BumpEpoch() noexcept;
  [[nodiscard]] uint64_t cache_epoch() const noexcept { return cache_epoch_; }

 private:
  friend class RStoreClient;
  MappedRegion(RStoreClient& client, RegionDesc desc)
      : client_(client), desc_(std::move(desc)) {}

  RStoreClient& client_;
  RegionDesc desc_;
  cache::CacheMode cache_mode_ = cache::CacheMode::kNone;
  uint64_t cache_epoch_ = 0;
};

// A registered local buffer owned by the client (AllocBuffer).
struct PinnedBuffer {
  std::span<std::byte> data;

  [[nodiscard]] std::byte* begin() const noexcept { return data.data(); }
  [[nodiscard]] size_t size() const noexcept { return data.size(); }
};

class RStoreClient {
 public:
  // Connects the control path to the master; blocks the calling thread.
  [[nodiscard]] static Result<std::unique_ptr<RStoreClient>> Connect(
      verbs::Device& device, uint32_t master_node, ClientOptions options = {});

  ~RStoreClient();
  RStoreClient(const RStoreClient&) = delete;
  RStoreClient& operator=(const RStoreClient&) = delete;

  // ---------------- control path --------------------------------------
  // Allocates a named region. `copies` > 1 replicates every slab on that
  // many distinct servers: writes fan out to all copies; reads hit the
  // primary, and the master promotes a live replica to primary at map
  // time when servers fail (see Rmap(fresh) for recovery).
  [[nodiscard]] Status Ralloc(const std::string& name, uint64_t size,
                              uint32_t copies = 1);
  // Cached after the first call; `fresh` forces a master round trip
  // (used to pick up healed/re-located regions).
  [[nodiscard]] Result<MappedRegion*> Rmap(const std::string& name,
                                           bool allow_degraded = false,
                                           bool fresh = false);
  // Full-option variant; chooses the mapping's cache mode. Remapping an
  // already-mapped region with a different mode applies the new mode and
  // drops any pages cached under the old one.
  [[nodiscard]] Result<MappedRegion*> Rmap(const std::string& name,
                                           const RmapOptions& options);
  // Grows an (unreplicated) region to `new_size` bytes in place; existing
  // data is untouched. The local mapping is refreshed on success; other
  // clients pick the growth up at their next fresh Rmap.
  [[nodiscard]] Status Rgrow(const std::string& name, uint64_t new_size);
  // Drops the local mapping (cache entry); remote region unaffected.
  [[nodiscard]] Status Runmap(const std::string& name);
  // Frees the region cluster-wide (and unmaps locally).
  [[nodiscard]] Status Rfree(const std::string& name);
  [[nodiscard]] Result<ClusterStat> Stat();

  // Pins an application buffer for one-sided IO. Registration is a
  // control-path operation: do it at setup, not per IO. Re-registering a
  // range that overlaps a previous registration evicts the old one (the
  // old buffer was necessarily freed; allocators reuse addresses).
  [[nodiscard]] Status RegisterBuffer(std::span<std::byte> buffer);
  // Unpins a buffer previously passed to RegisterBuffer (same start).
  [[nodiscard]] Status UnregisterBuffer(std::span<std::byte> buffer);
  // Allocates and pins a buffer owned by the client.
  [[nodiscard]] Result<PinnedBuffer> AllocBuffer(size_t bytes);

  // ---------------- synchronization ------------------------------------
  // Named monotonic counters hosted by the master.
  [[nodiscard]] Status NotifyInc(const std::string& channel,
                                 uint64_t delta = 1);
  // Blocks until the channel value reaches `target`; returns the value.
  [[nodiscard]] Result<uint64_t> WaitNotify(const std::string& channel,
                                            uint64_t target);

  // ---------------- statistics ----------------------------------------
  [[nodiscard]] uint64_t bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] uint64_t data_ops() const noexcept { return data_ops_; }
  [[nodiscard]] uint64_t control_calls() const noexcept {
    return control_calls_;
  }
  [[nodiscard]] uint64_t map_cache_hits() const noexcept {
    return map_cache_hits_;
  }
  // Region-cache counters (all-zero until a region maps with caching).
  [[nodiscard]] const cache::CacheStats& cache_stats() const noexcept;

  [[nodiscard]] verbs::Device& device() noexcept { return device_; }

 private:
  friend class MappedRegion;
  friend class IoFuture;

  struct Connection {
    verbs::QueuePair* qp = nullptr;
    bool healthy = false;
  };

  // One slab-resolved piece of a logical IO, before coalescing.
  struct Fragment {
    uint32_t server_node;
    uint32_t rkey;
    uint64_t remote_addr;
    std::byte* local;
    uint64_t length;
    uint32_t lkey;
  };

  RStoreClient(verbs::Device& device, uint32_t master_node,
               ClientOptions options);

  // Data-path engine. A logical IO (one SubmitIo / SubmitVector call)
  // resolves to fragments, which are coalesced into multi-SGE work
  // requests and posted as one doorbell chain per memory server. All WRs
  // of the IO share one wr_id (the state's io_id).
  Result<IoFuture> SubmitIo(const RegionDesc& desc, uint64_t offset,
                            std::byte* buffer, uint64_t length, bool is_read);
  Result<IoFuture> SubmitVector(const RegionDesc& desc,
                                std::span<const IoVec> segments,
                                bool is_read);
  // Splits one byte range over the slab table into `out` (primary copy
  // first, then replicas when writing).
  Status CollectFragments(const RegionDesc& desc, uint64_t offset,
                          std::byte* buffer, uint64_t length, bool is_read,
                          std::vector<Fragment>& out);
  // Coalesces `frags` (merging slab-adjacent ranges into multi-SGE WRs)
  // and posts one chained doorbell per server involved.
  Status PostCoalesced(const std::shared_ptr<IoFuture::State>& state,
                       std::span<const Fragment> frags, bool is_read);
  Status PostChain(Connection* conn,
                   const std::shared_ptr<IoFuture::State>& state,
                   const verbs::SendWr& head, uint32_t count);
  // Marks the IO fully posted and reaps it if completions already drained.
  void SealIo(const std::shared_ptr<IoFuture::State>& state);
  Result<uint64_t> SubmitAtomic(MappedRegion& region, uint64_t offset,
                                verbs::Opcode op, uint64_t compare,
                                uint64_t swap_or_add);
  // Read-through cache path (region.cache_mode() != kNone): serves hits
  // from cache frames, batches page fills and bypass runs into one
  // vectored read, and charges modeled copy cost for every locally
  // copied byte. Used by MappedRegion::Read and ReadV.
  Status CachedRead(MappedRegion& region, std::span<const IoVec> segments);
  // Write-through local update for cached mappings (before the remote
  // write is posted); charges copy cost for bytes applied.
  void CacheApplyWrite(MappedRegion& region, uint64_t offset,
                       std::span<const std::byte> src);
  // Lazily constructs the region cache (arena allocation + registration).
  cache::RegionCache* EnsureCache();
  // An already-completed future, for vectored reads served by the cache.
  IoFuture CompletedFuture();
  // Drops cached pages of a region id (grow/unmap/free/mode change).
  // `mode` is the mode the pages were cached under, when the caller
  // knows it — used only to attribute the invalidation in telemetry.
  void DropCachedRegion(uint64_t region_id,
                        cache::CacheMode mode = cache::CacheMode::kNone);
  Result<Connection*> ConnectionTo(uint32_t server_node);
  // Finds the registration covering [addr, addr+len); null if none.
  [[nodiscard]] verbs::MemoryRegion* FindPinned(const std::byte* addr,
                                                uint64_t len) const;
  // Drains ready data-path completions into the pending-IO table,
  // blocking until at least `min_entries` are ready (or timeout).
  void PumpData(sim::Nanos timeout, size_t min_entries = 1);
  Status WaitFuture(const std::shared_ptr<IoFuture::State>& state);

  Result<std::vector<std::byte>> CallMaster(uint32_t method,
                                            const rpc::Writer& req);

  verbs::Device& device_;
  uint32_t master_node_;
  ClientOptions options_;

  std::unique_ptr<rpc::RpcClient> master_;
  verbs::ProtectionDomain* pd_ = nullptr;
  verbs::CompletionQueue* data_cq_ = nullptr;

  std::map<std::string, std::unique_ptr<MappedRegion>> mappings_;
  std::map<uint32_t, Connection> connections_;  // by server node
  // Pinned local buffers, keyed by start address for range lookup.
  std::map<uintptr_t, verbs::MemoryRegion*> pinned_;
  // Huge-page backed (see common/huge_buffer.h): these are the client's
  // DMA staging areas, typically many megabytes each.
  std::vector<common::HugeBuffer> owned_buffers_;

  // Last-hit caches: IO fragment streams hit the same server and the
  // same pinned buffer run after run, so remember the previous answer
  // before searching the maps (map entries are address-stable).
  uint32_t last_conn_node_ = UINT32_MAX;
  Connection* last_conn_ = nullptr;
  mutable verbs::MemoryRegion* last_pinned_ = nullptr;

  // Reusable data-path scratch. Moved out while in use and moved back
  // after, so a second thread entering the data path while the first is
  // blocked in PumpData transparently falls back to fresh vectors.
  std::vector<Fragment> frag_scratch_;
  std::vector<verbs::SendWr> wr_scratch_;
  std::vector<uint32_t> wr_server_scratch_;
  std::vector<verbs::WorkCompletion> wc_scratch_;

  // Scratch slots for atomic results (registered, 8 bytes each).
  std::vector<std::byte> atomic_arena_;
  verbs::MemoryRegion* atomic_mr_ = nullptr;
  std::vector<uint32_t> free_atomic_slots_;

  std::unordered_map<uint64_t, std::shared_ptr<IoFuture::State>> pending_io_;
  uint64_t next_wr_id_ = 1;
  bool pumping_ = false;

  // Client-side region cache (see cache/region_cache.h). Null until the
  // first Rmap with a cache mode; arenas come from owned_buffers_ via
  // AllocBuffer so fills DMA into registered memory.
  std::unique_ptr<cache::RegionCache> cache_;
  // Scratch for CachedRead (same move-out discipline as frag_scratch_).
  std::vector<IoVec> cache_io_scratch_;

  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t data_ops_ = 0;
  uint64_t control_calls_ = 0;
  uint64_t map_cache_hits_ = 0;

  // Telemetry instruments (see obs/trace.h), resolved lazily against the
  // simulation's attached obs::Telemetry. All pointers are null while
  // detached, so the instrumented paths cost one pointer compare. The
  // fabric.* counters alias the fabric's own instruments for this node
  // (same registry names) and feed the per-span latency breakdown.
  obs::Telemetry* ObsTelemetry();
  struct CacheModeObs {
    obs::Telemetry* owner = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* fills = nullptr;
    obs::Counter* bypass = nullptr;
    obs::Counter* invalidations = nullptr;
  };
  CacheModeObs& ObsForCacheMode(cache::CacheMode mode);
  obs::Telemetry* obs_owner_ = nullptr;
  obs::Counter* obs_ops_ = nullptr;
  obs::Counter* obs_bytes_read_ = nullptr;
  obs::Counter* obs_bytes_written_ = nullptr;
  obs::Counter* obs_fab_queue_ = nullptr;
  obs::Counter* obs_fab_ser_ = nullptr;
  obs::Counter* obs_fab_wire_ = nullptr;
  // Wire-stamp legs of polled data-path completions (see verbs::WireStamps):
  // NIC egress queueing, wire propagation, remote execution, ack return.
  obs::Counter* obs_wc_egress_ = nullptr;
  obs::Counter* obs_wc_wire_ = nullptr;
  obs::Counter* obs_wc_server_ = nullptr;
  obs::Counter* obs_wc_ack_ = nullptr;
  CacheModeObs cache_obs_[3];  // indexed by cache::CacheMode
};

}  // namespace rstore::core
