// TestCluster: one-call assembly of a simulated RStore deployment.
//
// Builds the node layout the paper's testbed used — one master, N memory
// servers, M client machines — on a fresh simulation, starts the master
// and memory servers, and provides helpers to run client workloads once
// the cluster is ready. Tests, benchmarks, and examples all start here.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/master.h"
#include "core/memory_server.h"
#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore::core {

struct ClusterConfig {
  uint32_t memory_servers = 4;
  uint32_t client_nodes = 1;
  uint64_t server_capacity = 64ULL << 20;  // DRAM donated per server
  MasterOptions master;
  sim::NicConfig nic;
  sim::CpuCostModel cpu;
  uint64_t seed = 1;
  // Host threads for the partitioned scheduler: 0 = legacy single-loop
  // scheduler (or RSTORE_HOST_THREADS from the environment), >= 1 =
  // partitioned event loops (1 per node) dispatched by this many host
  // worker threads. Virtual time is identical for every value >= 1.
  uint32_t host_threads = 0;
  // Optional observability sink (caller-owned, may outlive the cluster).
  // Attaching it never changes virtual time — see Simulation's
  // AttachTelemetry contract.
  obs::Telemetry* telemetry = nullptr;
};

class TestCluster {
 public:
  explicit TestCluster(ClusterConfig config = {})
      : config_(config),
        sim_(sim::SimConfig{.seed = config.seed,
                            .host_threads = config.host_threads}),
        net_(sim_, config.nic, config.cpu) {
    if (config.telemetry != nullptr) sim_.AttachTelemetry(config.telemetry);
    master_node_ = &sim_.AddNode("master");
    master_ = std::make_unique<Master>(net_.AddDevice(*master_node_),
                                       config.master);
    master_->Start();
    for (uint32_t i = 0; i < config.memory_servers; ++i) {
      sim::Node& node = sim_.AddNode("mem" + std::to_string(i));
      MemoryServerOptions opts;
      opts.capacity = config.server_capacity;
      servers_.push_back(std::make_unique<MemoryServer>(
          net_.AddDevice(node), master_node_->id(), opts));
      server_nodes_.push_back(&node);
      servers_.back()->Start();
    }
    for (uint32_t i = 0; i < config.client_nodes; ++i) {
      sim::Node& node = sim_.AddNode("client" + std::to_string(i));
      net_.AddDevice(node);
      client_nodes_.push_back(&node);
    }
  }

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] verbs::Network& net() noexcept { return net_; }
  [[nodiscard]] Master& master() noexcept { return *master_; }
  [[nodiscard]] uint32_t master_node_id() const noexcept {
    return master_node_->id();
  }
  [[nodiscard]] MemoryServer& server(size_t i) { return *servers_.at(i); }
  [[nodiscard]] sim::Node& server_node(size_t i) {
    return *server_nodes_.at(i);
  }
  [[nodiscard]] sim::Node& client_node(size_t i) {
    return *client_nodes_.at(i);
  }
  [[nodiscard]] size_t server_count() const noexcept {
    return servers_.size();
  }

  // Spawns `fn` as a client program on client node `i`. The body runs in
  // simulated time once sim().Run() is driven. When the last spawned
  // client program finishes, the simulation is stopped — otherwise the
  // cluster's background services (heartbeats, lease sweeps) would keep
  // the event loop alive forever.
  void SpawnClient(size_t i, std::function<void(RStoreClient&)> fn,
                   ClientOptions options = {}) {
    ++clients_spawned_;
    sim::Node& node = *client_nodes_.at(i);
    verbs::Device& dev = net_.device(node.id());
    node.Spawn("client-app", [this, &dev, fn = std::move(fn), options] {
      WaitForServers();
      {
        auto client = RStoreClient::Connect(dev, master_node_->id(), options);
        if (client.ok()) fn(**client);
      }
      // clients_done_ is atomic: client programs finish on their own
      // partitions. clients_spawned_ is fixed before the run starts.
      if (clients_done_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          clients_spawned_) {
        sim_.RequestStop();
      }
    });
  }

  // Blocks (in simulated time) until every memory server holds a lease.
  void WaitForServers() {
    while (master_->live_servers() < servers_.size()) {
      sim::Sleep(sim::Millis(1));
    }
  }

  // Convenience: spawn one client, run the simulation to quiescence.
  void RunClient(std::function<void(RStoreClient&)> fn,
                 ClientOptions options = {}) {
    SpawnClient(0, std::move(fn), options);
    sim_.Run();
  }

 private:
  ClusterConfig config_;
  sim::Simulation sim_;
  verbs::Network net_;
  sim::Node* master_node_;
  std::unique_ptr<Master> master_;
  std::vector<std::unique_ptr<MemoryServer>> servers_;
  std::vector<sim::Node*> server_nodes_;
  std::vector<sim::Node*> client_nodes_;
  size_t clients_spawned_ = 0;
  std::atomic<size_t> clients_done_{0};
};

}  // namespace rstore::core
