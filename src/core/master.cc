#include "core/master.h"

#include <algorithm>

#include "check/check.h"
#include "common/log.h"
#include "common/rng.h"

namespace rstore::core {

Master::Master(verbs::Device& device, MasterOptions options)
    : device_(device), options_(options) {}

void Master::Start() {
  rpc_ = std::make_unique<rpc::RpcServer>(device_, kMasterService);
  auto bind = [this](Status (Master::*fn)(rpc::Reader&, rpc::Writer&)) {
    return [this, fn](rpc::Reader& req, rpc::Writer& resp) {
      return (this->*fn)(req, resp);
    };
  };
  rpc_->RegisterHandler(kRegisterServer, "register", bind(&Master::HandleRegister));
  rpc_->RegisterHandler(kHeartbeat, "heartbeat", bind(&Master::HandleHeartbeat));
  rpc_->RegisterHandler(kAlloc, "ralloc", bind(&Master::HandleAlloc));
  rpc_->RegisterHandler(kMap, "rmap", bind(&Master::HandleMap));
  rpc_->RegisterHandler(kFree, "rfree", bind(&Master::HandleFree));
  rpc_->RegisterHandler(kStat, "rstat", bind(&Master::HandleStat));
  rpc_->RegisterHandler(kNotifyInc, "notify_inc", bind(&Master::HandleNotifyInc));
  rpc_->RegisterHandler(kWaitNotify, "wait_notify", bind(&Master::HandleWaitNotify));
  rpc_->RegisterHandler(kListRegions, "list_regions", bind(&Master::HandleListRegions));
  rpc_->RegisterHandler(kGrow, "rgrow", bind(&Master::HandleGrow));
  rpc_->Start();

  device_.node().Spawn("master-lease-sweeper", [this] {
    while (true) {
      sim::Sleep(options_.sweep_interval);
      SweepLeases();
    }
  });

  sim::Simulation& sim = device_.network().sim();
  if (sim.partitioned()) {
    // Publish cross-partition introspection snapshots at every epoch
    // barrier (no partition is dispatching there, so reading the tables
    // is race-free). Any state change is at least one fabric latency —
    // i.e. at least one epoch — older than any remote observer's
    // knowledge of it, so observers never see a *staler* value than the
    // messages they have received imply.
    sim.AtEpochBarrier([this] {
      published_live_servers_.store(CountLiveServers(),
                                    std::memory_order_relaxed);
      published_free_slabs_.store(CountFreeSlabs(), std::memory_order_relaxed);
    });
  }
}

uint32_t Master::CountLiveServers() const {
  uint32_t n = 0;
  for (const auto& [id, s] : servers_) n += s.alive ? 1 : 0;
  return n;
}

uint64_t Master::CountFreeSlabs() const {
  uint64_t n = 0;
  for (const auto& [id, s] : servers_) {
    if (s.alive) n += s.free_slabs.size();
  }
  return n;
}

uint32_t Master::live_servers() const {
  sim::Simulation& sim = device_.network().sim();
  if (sim.partitioned() && !sim.InContextOfNode(device_.node_id())) {
    return published_live_servers_.load(std::memory_order_relaxed);
  }
  return CountLiveServers();
}

uint64_t Master::free_slabs() const {
  sim::Simulation& sim = device_.network().sim();
  if (sim.partitioned() && !sim.InContextOfNode(device_.node_id())) {
    return published_free_slabs_.load(std::memory_order_relaxed);
  }
  return CountFreeSlabs();
}

// ----------------------------------------------------------- registration
Status Master::HandleRegister(rpc::Reader& req, rpc::Writer& resp) {
  ServerInfo info;
  if (!req.U32(&info.node) || !req.U64(&info.base_addr) ||
      !req.U32(&info.rkey) || !req.U64(&info.capacity)) {
    return Status(ErrorCode::kInvalidArgument, "bad register request");
  }
  info.last_heartbeat = sim::Now();
  const auto n_slabs =
      static_cast<uint32_t>(info.capacity / options_.slab_size);
  if (n_slabs == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "donated capacity smaller than one slab");
  }
  // Slabs still referenced by existing regions (a re-registration after a
  // transient lease loss) must not be offered again: the degraded regions
  // still name them.
  std::vector<bool> in_use(n_slabs, false);
  auto mark = [&](const SlabLocation& slab) {
    if (slab.server_node == info.node && slab.rkey == info.rkey &&
        slab.remote_addr >= info.base_addr) {
      const uint64_t idx =
          (slab.remote_addr - info.base_addr) / options_.slab_size;
      if (idx < n_slabs) in_use[idx] = true;
    }
  };
  for (const auto& [rname, region] : regions_) {
    for (const SlabLocation& slab : region.desc.slabs) mark(slab);
    for (const auto& replica : region.desc.replicas) {
      for (const SlabLocation& slab : replica) mark(slab);
    }
  }
  info.free_slabs.reserve(n_slabs);
  // LIFO order: lowest slab on top so allocations are address-ordered.
  for (uint32_t i = n_slabs; i-- > 0;) {
    if (!in_use[i]) info.free_slabs.push_back(i);
  }

  const uint32_t node = info.node;
  auto [it, inserted] = servers_.insert_or_assign(node, std::move(info));
  (void)it;
  LOG_INFO << "master: server " << node << " registered, "
           << n_slabs << " slabs" << (inserted ? "" : " (re-registration)");

  // A re-registration with unchanged keys (transient partition, not a
  // restart) heals regions that were only degraded because of this
  // server: un-degrade any region whose slabs all live on healthy
  // servers under their original rkeys.
  for (auto& [rname, region] : regions_) {
    if (!region.degraded) continue;
    auto live = [&](const SlabLocation& slab) {
      auto sit = servers_.find(slab.server_node);
      return sit != servers_.end() && sit->second.alive &&
             sit->second.rkey == slab.rkey;
    };
    bool healthy = std::all_of(region.desc.slabs.begin(),
                               region.desc.slabs.end(), live);
    for (const auto& replica : region.desc.replicas) {
      healthy = healthy && std::all_of(replica.begin(), replica.end(), live);
    }
    if (healthy) region.degraded = false;
  }
  resp.U64(options_.slab_size);
  return Status::Ok();
}

Status Master::HandleHeartbeat(rpc::Reader& req, rpc::Writer& resp) {
  uint32_t node = 0;
  if (!req.U32(&node)) {
    return Status(ErrorCode::kInvalidArgument, "bad heartbeat");
  }
  auto it = servers_.find(node);
  if (it == servers_.end()) {
    return Status(ErrorCode::kNotFound, "server never registered");
  }
  if (!it->second.alive) {
    // Lease already revoked; the server must re-register (its slabs were
    // reclaimed and may be promised to other regions).
    return Status(ErrorCode::kUnavailable, "lease expired; re-register");
  }
  it->second.last_heartbeat = sim::Now();
  resp.Bool(true);
  return Status::Ok();
}

void Master::SweepLeases() {
  const sim::Nanos now = sim::Now();
  for (auto& [node, server] : servers_) {
    if (!server.alive) continue;
    if (now - server.last_heartbeat <= options_.lease_timeout) continue;
    server.alive = false;
    server.free_slabs.clear();
    LOG_WARN << "master: server " << node << " lost its lease";
    // Degrade every region with any copy on the dead server (replicated
    // regions may still be fully readable; HandleMap decides).
    for (auto& [name, region] : regions_) {
      auto on_dead = [&](const SlabLocation& slab) {
        return slab.server_node == node;
      };
      bool hit = std::any_of(region.desc.slabs.begin(),
                             region.desc.slabs.end(), on_dead);
      for (const auto& replica : region.desc.replicas) {
        hit = hit || std::any_of(replica.begin(), replica.end(), on_dead);
      }
      if (hit) region.degraded = true;
    }
  }
}

// -------------------------------------------------------------- allocation
Status Master::HandleAlloc(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  uint64_t size = 0;
  uint32_t copies = 1;
  if (!req.Str(&name) || !req.U64(&size) || !req.U32(&copies) ||
      name.empty() || size == 0 || copies == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad alloc request");
  }
  const uint64_t n_slabs =
      (size + options_.slab_size - 1) / options_.slab_size;
  // Charge the per-slab bookkeeping *before* touching shared state:
  // ChargeCpu yields, and the slab selection below must not interleave
  // with another client's allocation.
  sim::ChargeCpu(n_slabs * copies * options_.alloc_per_slab_cost);
  if (regions_.contains(name)) {
    return Status(ErrorCode::kAlreadyExists, "region '" + name + "' exists");
  }

  // Live servers, most free slabs first; stable by node id for
  // determinism.
  std::vector<ServerInfo*> ranked;
  for (auto& [node, server] : servers_) {
    if (server.alive && !server.free_slabs.empty()) {
      ranked.push_back(&server);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ServerInfo* a, const ServerInfo* b) {
              if (a->free_slabs.size() != b->free_slabs.size()) {
                return a->free_slabs.size() > b->free_slabs.size();
              }
              return a->node < b->node;
            });
  if (copies > live_servers()) {
    return Status(ErrorCode::kInvalidArgument,
                  "replication factor " + std::to_string(copies) +
                      " exceeds live servers (" +
                      std::to_string(live_servers()) + ")");
  }
  uint64_t available = 0;
  for (const ServerInfo* s : ranked) available += s->free_slabs.size();
  if (available < n_slabs * copies) {
    return Status(ErrorCode::kOutOfMemory,
                  "need " + std::to_string(n_slabs * copies) +
                      " slabs, have " + std::to_string(available));
  }

  RegionInfo region;
  region.desc.id = next_region_id_++;
  region.desc.name = name;
  region.desc.size = size;
  region.desc.slab_size = options_.slab_size;
  region.desc.copies = copies;
  region.desc.slabs.reserve(n_slabs);
  region.desc.replicas.assign(copies - 1, {});
  for (auto& r : region.desc.replicas) r.reserve(n_slabs);

  auto take_slab = [&](ServerInfo* s) {
    const uint32_t slab_idx = s->free_slabs.back();
    s->free_slabs.pop_back();
    return SlabLocation{s->node,
                        s->base_addr + slab_idx * options_.slab_size,
                        s->rkey};
  };
  auto undo = [&](const SlabLocation& slab) {
    ServerInfo& s = servers_.at(slab.server_node);
    s.free_slabs.push_back(static_cast<uint32_t>(
        (slab.remote_addr - s.base_addr) / options_.slab_size));
  };

  // Slab placement per the configured policy; the copies of one slab
  // always land on distinct servers. The policy picks where the scan for
  // each slab's servers starts:
  //   kStripe: round-robin — consecutive stripes hit different machines.
  //   kPack:   first server (in ranked order) that still has free slabs,
  //            so a region concentrates on as few machines as possible.
  //   kRandom: seeded uniform pick per slab.
  Rng placement_rng(options_.placement_seed ^ region.desc.id);
  size_t cursor = 0;
  for (uint64_t i = 0; i < n_slabs; ++i) {
    size_t start = cursor;
    switch (options_.placement) {
      case PlacementPolicy::kStripe:
        break;
      case PlacementPolicy::kPack:
        start = 0;
        while (start < ranked.size() && ranked[start]->free_slabs.empty()) {
          ++start;
        }
        break;
      case PlacementPolicy::kRandom:
        start = placement_rng.NextBelow(ranked.size());
        break;
    }
    std::vector<ServerInfo*> chosen;
    for (size_t probes = 0;
         probes < ranked.size() && chosen.size() < copies; ++probes) {
      ServerInfo* s = ranked[(start + probes) % ranked.size()];
      if (s->free_slabs.empty()) continue;
      if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) {
        continue;
      }
      if (chosen.empty()) cursor = (start + probes + 1) % ranked.size();
      chosen.push_back(s);
    }
    if (chosen.size() < copies) {
      // Roll back: free slabs cannot host `copies` distinct placements.
      for (const SlabLocation& slab : region.desc.slabs) undo(slab);
      for (const auto& r : region.desc.replicas) {
        for (const SlabLocation& slab : r) undo(slab);
      }
      return Status(ErrorCode::kOutOfMemory,
                    "cannot place " + std::to_string(copies) +
                        " distinct copies of every slab");
    }
    region.desc.slabs.push_back(take_slab(chosen[0]));
    for (uint32_t r = 1; r < copies; ++r) {
      region.desc.replicas[r - 1].push_back(take_slab(chosen[r]));
    }
  }

  if (check::Checker* ck = device_.network().sim().checker(); ck != nullptr) {
    auto track = [&](const std::vector<SlabLocation>& slabs) {
      for (size_t i = 0; i < slabs.size(); ++i) {
        ck->OnRegionSlab(region.desc.id, name, options_.slab_size,
                         slabs[i].server_node, slabs[i].remote_addr,
                         slabs[i].remote_addr + options_.slab_size,
                         i * options_.slab_size);
      }
    };
    track(region.desc.slabs);
    for (const auto& replica : region.desc.replicas) track(replica);
  }
  region.desc.Encode(resp);
  regions_.emplace(name, std::move(region));
  return Status::Ok();
}

bool Master::SlabLive(const SlabLocation& slab) const {
  auto it = servers_.find(slab.server_node);
  return it != servers_.end() && it->second.alive &&
         it->second.rkey == slab.rkey;
}

Status Master::HandleMap(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  bool allow_degraded = false;
  if (!req.Str(&name) || !req.Bool(&allow_degraded)) {
    return Status(ErrorCode::kInvalidArgument, "bad map request");
  }
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status(ErrorCode::kNotFound, "region '" + name + "' not found");
  }
  RegionDesc& desc = it->second.desc;

  // Failover promotion: ensure every slab's primary copy is live when any
  // live copy exists. The promotion is persistent — later maps (and other
  // clients) see the new primary.
  bool some_slab_dark = false;
  for (size_t i = 0; i < desc.slabs.size(); ++i) {
    if (SlabLive(desc.slabs[i])) continue;
    bool promoted = false;
    for (auto& replica : desc.replicas) {
      if (SlabLive(replica[i])) {
        std::swap(desc.slabs[i], replica[i]);
        promoted = true;
        break;
      }
    }
    if (!promoted) some_slab_dark = true;
  }
  if (some_slab_dark && !allow_degraded) {
    return Status(ErrorCode::kUnavailable,
                  "region '" + name +
                      "' has slabs with no live copy (server lost)");
  }
  desc.Encode(resp);
  return Status::Ok();
}

Status Master::HandleFree(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  if (!req.Str(&name)) {
    return Status(ErrorCode::kInvalidArgument, "bad free request");
  }
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status(ErrorCode::kNotFound, "region '" + name + "' not found");
  }
  // Return every copy's slabs to their (still-leased) servers.
  auto give_back = [&](const SlabLocation& slab) {
    auto sit = servers_.find(slab.server_node);
    if (sit == servers_.end() || !sit->second.alive ||
        sit->second.rkey != slab.rkey) {
      return;  // server gone or re-registered: its slabs were reclaimed
    }
    const auto idx = static_cast<uint32_t>(
        (slab.remote_addr - sit->second.base_addr) / options_.slab_size);
    sit->second.free_slabs.push_back(idx);
  };
  for (const SlabLocation& slab : it->second.desc.slabs) give_back(slab);
  for (const auto& replica : it->second.desc.replicas) {
    for (const SlabLocation& slab : replica) give_back(slab);
  }
  if (check::Checker* ck = device_.network().sim().checker(); ck != nullptr) {
    ck->OnRegionFree(it->second.desc.id);
  }
  regions_.erase(it);
  resp.Bool(true);
  return Status::Ok();
}

Status Master::HandleStat(rpc::Reader& req, rpc::Writer& resp) {
  (void)req;
  ClusterStat stat;
  for (const auto& [node, s] : servers_) {
    if (!s.alive) continue;
    ++stat.live_servers;
    const uint64_t slabs = s.capacity / options_.slab_size;
    stat.total_bytes += slabs * options_.slab_size;
    stat.free_bytes += s.free_slabs.size() * options_.slab_size;
  }
  stat.regions = static_cast<uint32_t>(regions_.size());
  stat.Encode(resp);
  return Status::Ok();
}

Status Master::HandleListRegions(rpc::Reader& req, rpc::Writer& resp) {
  (void)req;
  resp.U32(static_cast<uint32_t>(regions_.size()));
  for (const auto& [name, region] : regions_) {
    resp.Str(name);
    resp.U64(region.desc.size);
    resp.Bool(region.degraded);
  }
  return Status::Ok();
}


// Appends slabs to an existing region so it covers `new_size` bytes.
// Only unreplicated regions can grow (the replica placement invariants
// would otherwise need a rebalance pass). Existing data is untouched;
// clients observe the growth at their next fresh rmap.
Status Master::HandleGrow(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  uint64_t new_size = 0;
  if (!req.Str(&name) || !req.U64(&new_size) || new_size == 0) {
    return Status(ErrorCode::kInvalidArgument, "bad grow request");
  }
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status(ErrorCode::kNotFound, "region '" + name + "' not found");
  }
  RegionDesc& desc = it->second.desc;
  if (desc.copies > 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "replicated regions cannot grow");
  }
  if (new_size < desc.size) {
    return Status(ErrorCode::kInvalidArgument,
                  "grow cannot shrink a region");
  }
  const uint64_t want_slabs =
      (new_size + options_.slab_size - 1) / options_.slab_size;
  const uint64_t have_slabs = desc.slabs.size();
  const uint64_t add = want_slabs > have_slabs ? want_slabs - have_slabs : 0;
  sim::ChargeCpu(add * options_.alloc_per_slab_cost);

  std::vector<ServerInfo*> ranked;
  for (auto& [node, server] : servers_) {
    if (server.alive && !server.free_slabs.empty()) ranked.push_back(&server);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ServerInfo* a, const ServerInfo* b) {
              if (a->free_slabs.size() != b->free_slabs.size()) {
                return a->free_slabs.size() > b->free_slabs.size();
              }
              return a->node < b->node;
            });
  uint64_t available = 0;
  for (const ServerInfo* s : ranked) available += s->free_slabs.size();
  if (available < add) {
    return Status(ErrorCode::kOutOfMemory,
                  "need " + std::to_string(add) + " more slabs, have " +
                      std::to_string(available));
  }
  check::Checker* ck = device_.network().sim().checker();
  if (ck != nullptr) {
    // Grow races are judged before the new slabs exist: any data-path op
    // still in flight against the region overlaps the metadata change.
    ck->OnRegionGrow(desc.id, device_.node_id());
  }
  size_t cursor = 0;
  for (uint64_t i = 0; i < add; ++i) {
    for (size_t probes = 0; probes <= ranked.size(); ++probes) {
      ServerInfo* s = ranked[cursor % ranked.size()];
      ++cursor;
      if (s->free_slabs.empty()) continue;
      const uint32_t slab_idx = s->free_slabs.back();
      s->free_slabs.pop_back();
      desc.slabs.push_back(SlabLocation{
          s->node, s->base_addr + slab_idx * options_.slab_size, s->rkey});
      break;
    }
  }
  if (ck != nullptr) {
    for (uint64_t i = have_slabs; i < desc.slabs.size(); ++i) {
      ck->OnRegionSlab(desc.id, name, options_.slab_size,
                       desc.slabs[i].server_node, desc.slabs[i].remote_addr,
                       desc.slabs[i].remote_addr + options_.slab_size,
                       i * options_.slab_size);
    }
  }
  desc.size = new_size;
  desc.Encode(resp);
  return Status::Ok();
}

// ------------------------------------------------------------ notifications
Master::NotifyChannel& Master::Channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(name, std::make_unique<NotifyChannel>(
                                device_.network().sim()))
             .first;
  }
  return *it->second;
}

Status Master::HandleNotifyInc(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  uint64_t delta = 0;
  if (!req.Str(&name) || !req.U64(&delta)) {
    return Status(ErrorCode::kInvalidArgument, "bad notify request");
  }
  NotifyChannel& ch = Channel(name);
  ch.value += delta;
  ch.cv.NotifyAll();
  resp.U64(ch.value);
  return Status::Ok();
}

Status Master::HandleWaitNotify(rpc::Reader& req, rpc::Writer& resp) {
  std::string name;
  uint64_t target = 0;
  if (!req.Str(&name) || !req.U64(&target)) {
    return Status(ErrorCode::kInvalidArgument, "bad wait request");
  }
  NotifyChannel& ch = Channel(name);
  // Long poll: blocks this connection's service thread until the channel
  // reaches the target. Each client has its own connection, so other
  // clients' control traffic is unaffected.
  ch.cv.WaitUntil([&] { return ch.value >= target; });
  resp.U64(ch.value);
  return Status::Ok();
}

}  // namespace rstore::core
