// RStore master: the control-path authority.
//
// The master owns cluster metadata and nothing else — it is deliberately
// off the data path. It tracks memory servers (registration + heartbeat
// leases), carves their donated DRAM into fixed-size slabs, allocates
// named distributed regions across servers, answers map requests with
// slab location tables, and hosts the notification service applications
// use for cross-client synchronization (BSP barriers, producer/consumer
// handoff).
//
// Allocation policy: slabs for a region are taken from live servers in
// most-free-first order, round-robin across servers so consecutive
// stripes land on different machines — this is what turns N servers into
// N ports of aggregate bandwidth (experiment E3).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "rpc/rpc.h"
#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore::core {

// How the master places a region's slabs across servers.
enum class PlacementPolicy : uint8_t {
  kStripe,  // round-robin across servers: consecutive slabs on different
            // machines — maximizes aggregate bandwidth (the default, and
            // what the paper's bandwidth numbers rely on)
  kPack,    // fill one server before touching the next — minimizes the
            // number of machines a region touches (fewer QPs, better
            // locality, worse parallel bandwidth)
  kRandom,  // uniform random server per slab (seeded, deterministic)
};

struct MasterOptions {
  // Striping granularity; region allocations are rounded up to slabs.
  uint64_t slab_size = 16ULL << 20;
  PlacementPolicy placement = PlacementPolicy::kStripe;
  // Seed for kRandom placement.
  uint64_t placement_seed = 42;
  // A server missing heartbeats for this long loses its lease and its
  // slabs; regions with slabs there become degraded.
  sim::Nanos lease_timeout = sim::Millis(300);
  // CPU charged per slab when allocating a region: models the per-slab
  // registration/bookkeeping work the control path performs so the data
  // path never has to (drives the E2 separation curve).
  sim::Nanos alloc_per_slab_cost = sim::Micros(2);
  // How often the lease sweeper runs.
  sim::Nanos sweep_interval = sim::Millis(100);
};

class Master {
 public:
  Master(verbs::Device& device, MasterOptions options = {});

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  // Spawns the RPC service and the lease sweeper on the master's node.
  void Start();

  // --- introspection for tests & benches -----------------------------
  // Under the partitioned scheduler, callers on other partitions (client
  // polling loops, test bodies running as client programs) get an
  // epoch-granularity snapshot published at the barrier — a pure function
  // of virtual time, so polls stay deterministic across host-thread
  // counts. The master's own partition and post-run callers read the live
  // tables directly, as before.
  [[nodiscard]] uint32_t live_servers() const;
  [[nodiscard]] uint64_t free_slabs() const;
  [[nodiscard]] size_t region_count() const noexcept {
    return regions_.size();
  }
  [[nodiscard]] uint64_t control_calls() const noexcept {
    return rpc_ ? rpc_->calls_served() : 0;
  }
  [[nodiscard]] const MasterOptions& options() const noexcept {
    return options_;
  }

 private:
  struct ServerInfo {
    uint32_t node = 0;
    uint64_t base_addr = 0;
    uint32_t rkey = 0;
    uint64_t capacity = 0;
    sim::Nanos last_heartbeat = 0;
    bool alive = true;
    std::vector<uint32_t> free_slabs;  // slab indices within the arena
  };

  struct RegionInfo {
    RegionDesc desc;
    bool degraded = false;  // a hosting server lost its lease
  };

  struct NotifyChannel {
    explicit NotifyChannel(sim::Simulation& s) : cv(s) {}
    uint64_t value = 0;
    sim::CondVar cv;
  };

  // RPC handlers (run on per-connection master threads).
  Status HandleRegister(rpc::Reader& req, rpc::Writer& resp);
  Status HandleHeartbeat(rpc::Reader& req, rpc::Writer& resp);
  Status HandleAlloc(rpc::Reader& req, rpc::Writer& resp);
  Status HandleMap(rpc::Reader& req, rpc::Writer& resp);
  Status HandleFree(rpc::Reader& req, rpc::Writer& resp);
  Status HandleStat(rpc::Reader& req, rpc::Writer& resp);
  Status HandleNotifyInc(rpc::Reader& req, rpc::Writer& resp);
  Status HandleWaitNotify(rpc::Reader& req, rpc::Writer& resp);
  Status HandleListRegions(rpc::Reader& req, rpc::Writer& resp);
  Status HandleGrow(rpc::Reader& req, rpc::Writer& resp);

  void SweepLeases();
  NotifyChannel& Channel(const std::string& name);
  // True when the slab's server holds a live lease under the slab's rkey.
  [[nodiscard]] bool SlabLive(const SlabLocation& slab) const;
  [[nodiscard]] uint32_t CountLiveServers() const;
  [[nodiscard]] uint64_t CountFreeSlabs() const;

  verbs::Device& device_;
  MasterOptions options_;
  std::unique_ptr<rpc::RpcServer> rpc_;

  std::map<uint32_t, ServerInfo> servers_;  // by node id
  std::map<std::string, RegionInfo> regions_;
  std::unordered_map<std::string, std::unique_ptr<NotifyChannel>> channels_;
  uint64_t next_region_id_ = 1;
  // Epoch-barrier snapshots for cross-partition introspection (see the
  // public accessors).
  std::atomic<uint32_t> published_live_servers_{0};
  std::atomic<uint64_t> published_free_slabs_{0};
};

}  // namespace rstore::core
