#include "core/memory_server.h"

#include "common/log.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace rstore::core {

MemoryServer::MemoryServer(verbs::Device& device, uint32_t master_node,
                           MemoryServerOptions options)
    : device_(device), master_node_(master_node), options_(options) {}

void MemoryServer::Start() {
  // Donate the arena: allocate, register for one-sided access.
  arena_ = common::HugeBuffer(options_.capacity);
  verbs::ProtectionDomain& pd = device_.CreatePd();
  auto mr = pd.RegisterMemory(
      arena_.data(), arena_.size(),
      verbs::kLocalWrite | verbs::kRemoteRead | verbs::kRemoteWrite |
          verbs::kRemoteAtomic);
  if (!mr.ok()) {
    LOG_ERROR << "memory server: arena registration failed: " << mr.status();
    return;
  }
  arena_mr_ = *mr;

  // Data-plane acceptor: accept client QPs and forget about them — all
  // traffic on them is one-sided.
  verbs::Network& net = device_.network();
  net.Listen(device_, kDataService);
  device_.node().Spawn("mem-accept", [this] {
    auto& listener = device_.network().Listen(device_, kDataService);
    while (true) {
      auto qp = listener.Accept();
      if (!qp.ok()) return;
    }
  });

  device_.node().Spawn("mem-register", [this] { RegistrationLoop(); });
}

void MemoryServer::RegistrationLoop() {
  while (true) {
    auto client = rpc::RpcClient::Connect(device_, master_node_,
                                          kMasterService);
    if (!client.ok()) {
      LOG_WARN << "memory server " << device_.node_id()
               << ": master unreachable, retrying";
      sim::Sleep(sim::Millis(100));
      continue;
    }
    master_ = std::move(client).value();

    rpc::Writer reg;
    reg.U32(device_.node_id());
    reg.U64(arena_mr_->remote_addr());
    reg.U32(arena_mr_->rkey());
    reg.U64(options_.capacity);
    auto resp = master_->Call(kRegisterServer, reg);
    if (!resp.ok()) {
      LOG_WARN << "memory server " << device_.node_id()
               << ": registration failed: " << resp.status();
      sim::Sleep(sim::Millis(100));
      continue;
    }
    registered_ = true;
    LOG_DEBUG << "memory server " << device_.node_id() << " registered";

    // Heartbeat until the master revokes the lease or goes away; then
    // fall out and re-register.
    while (true) {
      sim::Sleep(options_.heartbeat_interval);
      rpc::Writer hb;
      hb.U32(device_.node_id());
      auto beat = master_->Call(kHeartbeat, hb);
      if (obs::Telemetry* tel = device_.network().sim().telemetry()) {
        tel->metrics()
            .ForNode(device_.node_id())
            .GetCounter("server.heartbeats")
            .Inc();
      }
      if (!beat.ok()) {
        LOG_WARN << "memory server " << device_.node_id()
                 << ": heartbeat failed (" << beat.status()
                 << "), re-registering";
        registered_ = false;
        break;
      }
    }
  }
}

}  // namespace rstore::core
