// RStore memory server: donates DRAM and then gets out of the way.
//
// A memory server registers a slab arena with the master and accepts data
// queue pairs from clients — and that is all. Its CPU never touches the
// data path: reads and writes land as one-sided RDMA against the
// registered arena. This asymmetry (stateful master, dumb-but-fast
// memory servers, smart clients) is the paper's architecture.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/huge_buffer.h"
#include "common/status.h"
#include "core/types.h"
#include "rpc/rpc.h"
#include "verbs/verbs.h"

namespace rstore::core {

struct MemoryServerOptions {
  // Bytes of DRAM donated to the store.
  uint64_t capacity = 256ULL << 20;
  // Heartbeat period; must stay well under the master's lease timeout.
  sim::Nanos heartbeat_interval = sim::Millis(50);
};

class MemoryServer {
 public:
  MemoryServer(verbs::Device& device, uint32_t master_node,
               MemoryServerOptions options = {});

  MemoryServer(const MemoryServer&) = delete;
  MemoryServer& operator=(const MemoryServer&) = delete;

  // Spawns the server threads: data-QP acceptor, master registration and
  // heartbeat loop. Returns after spawning (registration happens on the
  // server's own thread in simulated time).
  void Start();

  // True once the master has acknowledged registration.
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] uint64_t capacity() const noexcept {
    return options_.capacity;
  }
  // The arena is interesting to tests (peeking at what clients wrote).
  [[nodiscard]] const std::byte* arena() const noexcept {
    return arena_.data();
  }
  [[nodiscard]] uint32_t arena_rkey() const noexcept {
    return arena_mr_ ? arena_mr_->rkey() : 0;
  }

 private:
  void RegistrationLoop();

  verbs::Device& device_;
  uint32_t master_node_;
  MemoryServerOptions options_;

  // Huge-page backed: the arena is the store's entire data plane, and
  // 4 KiB first-touch faults on it dominate cluster start-up otherwise.
  common::HugeBuffer arena_;
  verbs::MemoryRegion* arena_mr_ = nullptr;
  std::unique_ptr<rpc::RpcClient> master_;
  bool registered_ = false;
};

}  // namespace rstore::core
