#include "core/types.h"

namespace rstore::core {

namespace {

void EncodeSlabs(rpc::Writer& w, const std::vector<SlabLocation>& slabs) {
  w.U32(static_cast<uint32_t>(slabs.size()));
  for (const SlabLocation& s : slabs) {
    w.U32(s.server_node);
    w.U64(s.remote_addr);
    w.U32(s.rkey);
  }
}

bool DecodeSlabs(rpc::Reader& r, std::vector<SlabLocation>* out) {
  uint32_t n = 0;
  if (!r.U32(&n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SlabLocation s;
    if (!r.U32(&s.server_node) || !r.U64(&s.remote_addr) || !r.U32(&s.rkey)) {
      return false;
    }
    out->push_back(s);
  }
  return true;
}

}  // namespace

void RegionDesc::Encode(rpc::Writer& w) const {
  w.U64(id);
  w.Str(name);
  w.U64(size);
  w.U64(slab_size);
  w.U32(copies);
  EncodeSlabs(w, slabs);
  for (const auto& copy : replicas) EncodeSlabs(w, copy);
}

bool RegionDesc::Decode(rpc::Reader& r, RegionDesc* out) {
  if (!r.U64(&out->id) || !r.Str(&out->name) || !r.U64(&out->size) ||
      !r.U64(&out->slab_size) || !r.U32(&out->copies)) {
    return false;
  }
  if (out->copies == 0) return false;
  if (!DecodeSlabs(r, &out->slabs)) return false;
  out->replicas.clear();
  out->replicas.resize(out->copies - 1);
  for (auto& copy : out->replicas) {
    if (!DecodeSlabs(r, &copy)) return false;
    if (copy.size() != out->slabs.size()) return false;
  }
  return true;
}

void ClusterStat::Encode(rpc::Writer& w) const {
  w.U32(live_servers);
  w.U64(total_bytes);
  w.U64(free_bytes);
  w.U32(regions);
}

bool ClusterStat::Decode(rpc::Reader& r, ClusterStat* out) {
  return r.U32(&out->live_servers) && r.U64(&out->total_bytes) &&
         r.U64(&out->free_bytes) && r.U32(&out->regions);
}

}  // namespace rstore::core
