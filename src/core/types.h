// Shared vocabulary of the RStore control protocol.
//
// RStore extends RDMA's separation philosophy to the cluster: *control*
// operations (allocate, map, free, synchronize) go through a master over
// two-sided RPC and are allowed to be slow and infrequent; *data*
// operations (read, write, atomics) go directly to memory servers over
// one-sided RDMA carrying no per-IO metadata traffic. The structures here
// are what the control path hands to the data path: a region described as
// an ordered list of slabs, each slab a (server, remote address, rkey)
// triple the client can hit with one-sided verbs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/wire.h"

namespace rstore::core {

// Control-protocol method ids (master RPC service).
enum Method : uint32_t {
  kRegisterServer = 1,
  kHeartbeat = 2,
  kAlloc = 3,
  kMap = 4,
  kFree = 5,
  kStat = 6,
  kNotifyInc = 7,
  kWaitNotify = 8,
  kListRegions = 9,
  kGrow = 10,
};

// Well-known verbs service ids.
inline constexpr uint32_t kMasterService = 1;      // master RPC
inline constexpr uint32_t kDataService = 2;        // memory-server data QPs

// One slab of a distributed memory region: `slab_size` bytes of donated
// DRAM on one memory server, addressable with one-sided verbs.
struct SlabLocation {
  uint32_t server_node = 0;  // node id of the memory server
  uint64_t remote_addr = 0;  // base VA of the slab on that server
  uint32_t rkey = 0;         // rkey of the covering memory region

  friend bool operator==(const SlabLocation&, const SlabLocation&) = default;
};

// A mapped region descriptor — everything a client needs to run the data
// path without ever talking to the master again.
//
// Replication (an extension beyond the paper, in the spirit of its
// future-work discussion): a region may carry `copies` > 1, in which
// case every slab has `copies` placements on distinct servers. `slabs`
// holds the *primary* copy of each slab — reads go there — and
// `replicas[r]` holds the (r+2)-th copy of every slab; writes fan out to
// all copies. The master reorders copies at map time so the primary is
// always a live server when one exists.
struct RegionDesc {
  uint64_t id = 0;
  std::string name;
  uint64_t size = 0;       // bytes visible to the application
  uint64_t slab_size = 0;  // striping granularity
  uint32_t copies = 1;     // total placements per slab (1 = unreplicated)
  std::vector<SlabLocation> slabs;  // primary copy, ceil(size/slab_size)
  // replicas[r][i] = copy r+2 of slab i; outer size = copies - 1.
  std::vector<std::vector<SlabLocation>> replicas;

  [[nodiscard]] uint64_t slab_count() const noexcept { return slabs.size(); }

  void Encode(rpc::Writer& w) const;
  [[nodiscard]] static bool Decode(rpc::Reader& r, RegionDesc* out);
};

// Cluster statistics returned by kStat.
struct ClusterStat {
  uint32_t live_servers = 0;
  uint64_t total_bytes = 0;
  uint64_t free_bytes = 0;
  uint32_t regions = 0;

  void Encode(rpc::Writer& w) const;
  [[nodiscard]] static bool Decode(rpc::Reader& r, ClusterStat* out);
};

}  // namespace rstore::core
