#include "explore/explorer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "check/check.h"
#include "check/lin.h"
#include "sim/simulation.h"

namespace rstore::explore {

void RunContext::Attach(sim::Simulation& sim) const {
  if (policy != nullptr) sim.AttachPolicy(policy);
  if (checker != nullptr) sim.AttachChecker(checker);
  if (lin != nullptr) sim.AttachLinChecker(lin);
}

std::string Explorer::SignatureOf(const check::Violation& v) {
  std::string s(check::ToString(v.type));
  s += "@node";
  s += std::to_string(v.target_node);
  s += ':';
  s += v.region_name.empty() ? "-" : v.region_name;
  s += ":[";
  s += std::to_string(v.region_lo);
  s += ',';
  s += std::to_string(v.region_hi);
  s += "):a=n";
  s += std::to_string(v.a.node);
  s += '/';
  s += check::ToString(v.a.kind);
  s += ":b=n";
  s += std::to_string(v.b.node);
  s += '/';
  s += check::ToString(v.b.kind);
  return s;
}

std::string Explorer::SignatureOf(const check::LinViolation& v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v.key);
  return std::string("lin@key") + buf;
}

namespace {

RunOutcome RunWith(const Workload& workload, SchedulePolicy& policy,
                   uint64_t run_index) {
  check::Checker checker;
  check::LinChecker lin;
  RunOutcome out;
  RunContext ctx;
  ctx.policy = &policy;
  ctx.checker = &checker;
  ctx.lin = &lin;
  ctx.out_final_vtime = &out.final_vtime;
  ctx.out_events = &out.events;
  workload(ctx);
  lin.Finalize();
  out.run_index = run_index;
  out.seed = policy.seed();
  out.choices = policy.choices();
  out.divergences = policy.divergences();
  out.lin_violation_count = lin.violation_count();
  out.violation_count = checker.violation_count() + lin.violation_count();
  out.violation_sigs.reserve(out.violation_count);
  for (const check::Violation& v : checker.violations()) {
    out.violation_sigs.push_back(Explorer::SignatureOf(v));
  }
  for (const check::LinViolation& v : lin.violations()) {
    out.violation_sigs.push_back(Explorer::SignatureOf(v));
  }
  if (out.violation_count > 0) {
    std::ostringstream text;
    checker.PrintReports(text);
    lin.PrintReports(text);
    out.report_text = text.str();
    std::ostringstream json;
    checker.DumpJson(json);
    out.report_json = json.str();
  }
  if (lin.violation_count() > 0) {
    std::ostringstream json;
    lin.DumpJson(json);
    out.lin_report_json = json.str();
  }
  out.trace = policy.Trace();
  return out;
}

}  // namespace

ExploreReport Explorer::Explore(const Workload& workload) const {
  ExploreSpec spec;
  spec.policy = opts_.policy;
  spec.seed = opts_.seed;
  spec.runs = opts_.runs;
  spec.pct_depth = opts_.pct_depth;
  spec.max_delay_ns = opts_.max_delay_ns;

  ExploreReport report;
  for (uint32_t i = 0; i < opts_.runs; ++i) {
    auto policy = spec.Instantiate(i);
    if (policy == nullptr) break;  // unknown policy name
    RunOutcome outcome = RunWith(workload, *policy, i);
    ++report.runs_executed;
    report.total_choices += outcome.choices;
    if (outcome.violation_count == 0) continue;
    report.violation_found = true;
    report.violating = std::move(outcome);
    if (opts_.minimize) {
      report.minimized =
          Minimize(workload, report.violating.trace,
                   report.violating.violation_sigs, opts_.minimize_budget,
                   &report.minimize_replays);
    } else {
      report.minimized = report.violating.trace;
    }
    break;
  }
  return report;
}

RunOutcome Explorer::Replay(const Workload& workload,
                            const DecisionTrace& trace) {
  ReplayPolicy policy(trace);
  RunOutcome out = RunWith(workload, policy, 0);
  // Keep the replayed trace self-describing for saved minimized files.
  out.trace.workload = trace.workload;
  return out;
}

DecisionTrace Explorer::Minimize(const Workload& workload,
                                 const DecisionTrace& trace,
                                 const std::vector<std::string>& target_sigs,
                                 uint64_t budget, uint64_t* replays_used) {
  uint64_t used = 0;
  if (replays_used != nullptr) *replays_used = 0;
  if (target_sigs.empty()) return trace;  // nothing to reproduce

  const auto reproduces = [&](const DecisionTrace& candidate) {
    ++used;
    const RunOutcome outcome = Replay(workload, candidate);
    return std::all_of(
        target_sigs.begin(), target_sigs.end(), [&](const std::string& sig) {
          return std::find(outcome.violation_sigs.begin(),
                           outcome.violation_sigs.end(),
                           sig) != outcome.violation_sigs.end();
        });
  };

  DecisionTrace best = trace;
  bool improved = true;
  while (improved && used < budget) {
    improved = false;
    for (size_t i = 0; i < best.entries.size() && used < budget;) {
      DecisionTrace candidate = best;
      candidate.entries.erase(candidate.entries.begin() +
                              static_cast<ptrdiff_t>(i));
      if (reproduces(candidate)) {
        best = std::move(candidate);
        improved = true;
      } else {
        ++i;
      }
    }
  }
  if (replays_used != nullptr) *replays_used = used;
  return best;
}

}  // namespace rstore::explore
