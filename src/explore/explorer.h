// The search driver: runs a workload repeatedly under different schedule
// policies with two oracles attached — rcheck (happens-before memory
// contract) and rlin (per-key linearizability of the KV history) —
// records each schedule as a replayable DecisionTrace, and greedily
// minimizes the first violating trace to the smallest schedule that
// still reproduces the violation.
//
// A Workload is any callable that builds a sim::Simulation, calls
// RunContext::Attach on it *before* spawning work, and runs to completion.
// The same callable is invoked once per explored schedule, so it must be
// re-entrant in the ordinary sense (fresh simulation per call).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/policy.h"

namespace rstore::check {
class Checker;
class LinChecker;
struct LinViolation;
struct Violation;
}  // namespace rstore::check
namespace rstore::sim {
class Simulation;
}

namespace rstore::explore {

// What the driver injects into one workload run. Workloads should also fill
// the out_* fields (when non-null) right after sim.Run() returns, so
// determinism tests can compare final virtual times across schedules.
struct RunContext {
  SchedulePolicy* policy = nullptr;
  check::Checker* checker = nullptr;
  check::LinChecker* lin = nullptr;  // second oracle: linearizability
  uint64_t* out_final_vtime = nullptr;
  uint64_t* out_events = nullptr;

  // Attaches policy and checkers (those that are non-null) to `sim`.
  void Attach(sim::Simulation& sim) const;
};

using Workload = std::function<void(const RunContext&)>;

// Everything observed in one run of one schedule.
struct RunOutcome {
  uint64_t run_index = 0;
  uint64_t seed = 0;
  uint64_t choices = 0;
  uint64_t divergences = 0;
  uint64_t final_vtime = 0;
  uint64_t events = 0;
  size_t violation_count = 0;      // rcheck + rlin violations combined
  size_t lin_violation_count = 0;  // rlin's share of violation_count
  std::vector<std::string> violation_sigs;  // stable ids, see SignatureOf
  std::string report_text;      // Print output of both checkers
  std::string report_json;      // Checker::DumpJson output (rcheck)
  std::string lin_report_json;  // LinChecker::DumpJson counterexample
  DecisionTrace trace;
};

struct ExploreOptions {
  std::string policy = "random";
  uint64_t seed = 1;
  uint32_t runs = 16;
  uint32_t pct_depth = 3;
  uint64_t max_delay_ns = 2000;
  bool minimize = true;
  uint64_t minimize_budget = 256;  // max replays spent minimizing
};

struct ExploreReport {
  uint32_t runs_executed = 0;
  uint64_t total_choices = 0;
  bool violation_found = false;
  RunOutcome violating;     // meaningful only when violation_found
  DecisionTrace minimized;  // == violating.trace when minimization is off
  uint64_t minimize_replays = 0;
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions opts) : opts_(std::move(opts)) {}

  // Runs up to opts.runs schedules (derived seeds seed, seed+1, ...),
  // stopping at the first rcheck violation, which is then minimized.
  [[nodiscard]] ExploreReport Explore(const Workload& workload) const;

  // Replays one recorded schedule under a fresh checker.
  [[nodiscard]] static RunOutcome Replay(const Workload& workload,
                                         const DecisionTrace& trace);

  // Greedy delta-debugging over trace entries: repeatedly drop entries whose
  // removal still reproduces every signature in `target_sigs`, to a fixed
  // point or until `budget` replays are spent. Returns the reduced trace.
  [[nodiscard]] static DecisionTrace Minimize(
      const Workload& workload, const DecisionTrace& trace,
      const std::vector<std::string>& target_sigs, uint64_t budget,
      uint64_t* replays_used);

  // Schedule-independent identity of a violation: type, nodes, region and
  // endpoint kinds — deliberately not virtual times, which legitimately
  // shift as the trace shrinks.
  [[nodiscard]] static std::string SignatureOf(const check::Violation& v);
  // Same contract for a linearizability violation: the key alone (op
  // counts and vtimes shift as the trace shrinks).
  [[nodiscard]] static std::string SignatureOf(const check::LinViolation& v);

 private:
  ExploreOptions opts_;
};

}  // namespace rstore::explore
