// Schedule-exploration policies for the deterministic simulator.
//
// The discrete-event scheduler in src/sim is deterministic: every run of a
// workload produces the same interleaving, so rcheck (src/check) only ever
// observes one schedule. A SchedulePolicy turns each point where the
// scheduler makes an arbitrary-but-fixed choice into a pluggable decision:
//
//   kEventTieBreak      which of several events at the same virtual instant
//                       dispatches next (baseline: FIFO by scheduling seq)
//   kWaiterWake         which blocked CondVar waiter a NotifyOne wakes
//                       (baseline: longest-waiting, deque front)
//   kEgressArbitration  which destination queue a NIC egress port serves
//                       next (baseline: round-robin scan order)
//   kCompletionSlot     where a new completion lands relative to held
//                       entries of *other* QPs in a completion queue
//                       (baseline: append; per-QP CQE order is never broken)
//   kFabricDelay        bounded extra wire latency for one message, in ns
//                       (baseline: 0; per-(src,dst) FIFO is preserved)
//   kCompletionDelay    bounded hold-back before a CQ hands entries to
//                       pollers, in ns (baseline: 0)
//
// Every decision is assigned a global ordinal and (when it deviates from the
// baseline pick of 0) recorded into a DecisionTrace, which is enough to
// replay the exact schedule later: ReplayPolicy answers recorded ordinals
// with the recorded pick and everything else with the baseline choice. A
// trace is therefore also the unit of minimization — dropping an entry
// yields a strictly-more-baseline schedule that either still reproduces the
// violation or is discarded.
//
// Policies must be deterministic functions of (seed, decision stream): the
// simulator consults them on a single scheduler thread, in a fixed order, so
// same seed => same schedule, which is what makes traces replayable.
#pragma once

#include <charconv>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace rstore::explore {

enum class DecisionKind : uint8_t {
  kEventTieBreak = 0,
  kWaiterWake = 1,
  kEgressArbitration = 2,
  kCompletionSlot = 3,
  kFabricDelay = 4,
  kCompletionDelay = 5,
};

[[nodiscard]] constexpr std::string_view ToString(DecisionKind kind) noexcept {
  switch (kind) {
    case DecisionKind::kEventTieBreak:
      return "event_tie_break";
    case DecisionKind::kWaiterWake:
      return "waiter_wake";
    case DecisionKind::kEgressArbitration:
      return "egress_arbitration";
    case DecisionKind::kCompletionSlot:
      return "completion_slot";
    case DecisionKind::kFabricDelay:
      return "fabric_delay";
    case DecisionKind::kCompletionDelay:
      return "completion_delay";
  }
  return "unknown";
}

// Lane id passed for candidates that have no owning node (plain callbacks in
// the event tie-break, for example). PCT treats each lane as a schedulable
// entity with its own priority.
inline constexpr uint32_t kNoLane = ~0u;

// One non-baseline decision. Decisions that picked the baseline alternative
// (0) are not recorded; replay reconstructs them implicitly.
struct TraceEntry {
  uint64_t ordinal = 0;  // global decision index within the run
  DecisionKind kind = DecisionKind::kEventTieBreak;
  uint64_t n = 0;     // number of alternatives (0 for delay decisions)
  uint64_t pick = 0;  // chosen alternative, or delay in ns
  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

// A replayable schedule: the policy identity plus every decision that
// deviated from baseline. Serialized to JSON by explore/trace_json.h.
struct DecisionTrace {
  std::string policy;
  uint64_t seed = 0;
  uint32_t pct_depth = 0;
  std::string workload;  // optional: CLI workload name for self-describing files
  uint64_t total_choices = 0;
  std::vector<TraceEntry> entries;
};

// Fault-injection bounds. A policy that perturbs draws a Bernoulli trial per
// delay decision (delay_permille / 1000) and, on success, a uniform delay in
// [1, max_*_ns]. Zero bounds disable the corresponding injection.
struct PerturbConfig {
  uint64_t max_fabric_delay_ns = 0;
  uint64_t max_completion_delay_ns = 0;
  uint32_t delay_permille = 250;
};

// Base class: owns the ordinal counter and the trace recording; concrete
// policies only implement Choose(). Pick 0 is always the baseline choice.
class SchedulePolicy {
 public:
  SchedulePolicy() = default;
  virtual ~SchedulePolicy() = default;
  SchedulePolicy(const SchedulePolicy&) = delete;
  SchedulePolicy& operator=(const SchedulePolicy&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual uint64_t seed() const noexcept { return 0; }
  [[nodiscard]] virtual uint32_t pct_depth() const noexcept { return 0; }

  // Scheduler-facing entry points. `lanes[i]` names the node that owns
  // alternative i (kNoLane if none); the return value indexes alternatives.
  [[nodiscard]] uint32_t PickEvent(const uint32_t* lanes, uint32_t n) {
    return PickAmong(DecisionKind::kEventTieBreak, lanes, n);
  }
  [[nodiscard]] uint32_t PickWaiter(const uint32_t* lanes, uint32_t n) {
    return PickAmong(DecisionKind::kWaiterWake, lanes, n);
  }
  [[nodiscard]] uint32_t PickEgressDst(const uint32_t* lanes, uint32_t n) {
    return PickAmong(DecisionKind::kEgressArbitration, lanes, n);
  }
  // n alternatives: slot 0 appends (baseline), slot k>0 inserts the new
  // completion k places before the queue tail.
  [[nodiscard]] uint32_t PickCompletionSlot(uint32_t n) {
    return PickAmong(DecisionKind::kCompletionSlot, nullptr, n);
  }
  // Extra nanoseconds to add; 0 means no perturbation.
  [[nodiscard]] uint64_t FabricDelayNs() {
    return Decide(DecisionKind::kFabricDelay, nullptr, 0);
  }
  [[nodiscard]] uint64_t CompletionDelayNs() {
    return Decide(DecisionKind::kCompletionDelay, nullptr, 0);
  }

  [[nodiscard]] uint64_t choices() const noexcept { return choices_; }
  [[nodiscard]] uint64_t divergences() const noexcept { return divergences_; }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] DecisionTrace Trace() const {
    DecisionTrace t;
    t.policy = std::string(name());
    t.seed = seed();
    t.pct_depth = pct_depth();
    t.total_choices = choices_;
    t.entries = entries_;
    return t;
  }

 protected:
  // Return the chosen alternative for this decision. `lanes` is null for
  // slot/delay decisions. Out-of-range picks are clamped to baseline (0).
  virtual uint64_t Choose(uint64_t ordinal, DecisionKind kind,
                          const uint32_t* lanes, uint64_t n) = 0;
  void CountDivergence() noexcept { ++divergences_; }

 private:
  [[nodiscard]] uint32_t PickAmong(DecisionKind kind, const uint32_t* lanes,
                                   uint32_t n) {
    if (n < 2) return 0;  // nothing to decide; no ordinal consumed
    const uint64_t pick = Decide(kind, lanes, n);
    return pick < n ? static_cast<uint32_t>(pick) : 0;
  }
  uint64_t Decide(DecisionKind kind, const uint32_t* lanes, uint64_t n) {
    const uint64_t ordinal = choices_++;
    const uint64_t pick = Choose(ordinal, kind, lanes, n);
    if (pick != 0) entries_.push_back(TraceEntry{ordinal, kind, n, pick});
    return pick;
  }

  uint64_t choices_ = 0;
  uint64_t divergences_ = 0;
  std::vector<TraceEntry> entries_;
};

// Always picks the baseline alternative — bit-identical to running with no
// policy attached (the scheduler's fast paths and this policy agree on every
// decision by construction; explore_test pins that).
class BaselinePolicy final : public SchedulePolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "baseline";
  }

 protected:
  uint64_t Choose(uint64_t /*ordinal*/, DecisionKind /*kind*/,
                  const uint32_t* /*lanes*/, uint64_t /*n*/) override {
    return 0;
  }
};

// Uniform random walk over the schedule space, plus Bernoulli fault
// injection. Cheap, surprisingly effective for shallow bugs.
class RandomWalkPolicy final : public SchedulePolicy {
 public:
  explicit RandomWalkPolicy(uint64_t seed, PerturbConfig perturb = {})
      : rng_(seed), seed_(seed), perturb_(perturb) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }
  [[nodiscard]] uint64_t seed() const noexcept override { return seed_; }

 protected:
  uint64_t Choose(uint64_t /*ordinal*/, DecisionKind kind,
                  const uint32_t* /*lanes*/, uint64_t n) override {
    switch (kind) {
      case DecisionKind::kFabricDelay:
        return DrawDelay(perturb_.max_fabric_delay_ns);
      case DecisionKind::kCompletionDelay:
        return DrawDelay(perturb_.max_completion_delay_ns);
      default:
        return n > 1 ? rng_.NextBelow(n) : 0;
    }
  }

 private:
  uint64_t DrawDelay(uint64_t max_ns) {
    if (max_ns == 0) return 0;
    if (rng_.NextBelow(1000) >= perturb_.delay_permille) return 0;
    return 1 + rng_.NextBelow(max_ns);
  }

  Rng rng_;
  uint64_t seed_;
  PerturbConfig perturb_;
};

// PCT-style priority scheduling (Burckhardt et al., "A Randomized Scheduler
// with Probabilistic Guarantees of Finding Bugs"). Each lane gets a random
// high priority on first sight; every pick takes the highest-priority
// candidate lane; at d-1 pre-sampled decision ordinals the winning lane is
// demoted below every other priority ever issued. For a bug of depth d this
// finds it with probability >= 1/(n * k^(d-1)) per run.
class PctPolicy final : public SchedulePolicy {
 public:
  PctPolicy(uint64_t seed, uint32_t depth, PerturbConfig perturb = {},
            uint64_t horizon = 16384)
      : rng_(seed), seed_(seed), depth_(depth), perturb_(perturb) {
    const uint32_t change_points = depth > 0 ? depth - 1 : 0;
    for (uint32_t i = 0; i < change_points; ++i) {
      change_points_.insert(rng_.NextBelow(horizon));
    }
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "pct";
  }
  [[nodiscard]] uint64_t seed() const noexcept override { return seed_; }
  [[nodiscard]] uint32_t pct_depth() const noexcept override { return depth_; }

 protected:
  uint64_t Choose(uint64_t ordinal, DecisionKind kind, const uint32_t* lanes,
                  uint64_t n) override {
    switch (kind) {
      case DecisionKind::kFabricDelay:
        return DrawDelay(perturb_.max_fabric_delay_ns);
      case DecisionKind::kCompletionDelay:
        return DrawDelay(perturb_.max_completion_delay_ns);
      case DecisionKind::kCompletionSlot:
        return 0;  // slot choice has no lane; leave CQ order to delays
      default:
        break;
    }
    if (lanes == nullptr || n == 0) return 0;
    uint64_t best = 0;
    for (uint64_t i = 1; i < n; ++i) {
      if (PriorityOf(lanes[i]) > PriorityOf(lanes[best])) best = i;
    }
    if (change_points_.find(ordinal) != change_points_.end()) {
      // Demotions hand out strictly decreasing values below every initial
      // priority, so a demoted lane stays demoted until re-demoted lanes
      // accumulate beneath it.
      priority_[lanes[best]] = low_water_--;
    }
    return best;
  }

 private:
  uint64_t PriorityOf(uint32_t lane) {
    auto [it, inserted] = priority_.try_emplace(lane, 0);
    if (inserted) {
      // Initial priorities live in [2^62, 2^63); demotions count down from
      // 2^62 - 1, so they sort below every initial priority.
      it->second = (rng_.Next() >> 2) + (uint64_t{1} << 62);
    }
    return it->second;
  }
  uint64_t DrawDelay(uint64_t max_ns) {
    if (max_ns == 0) return 0;
    if (rng_.NextBelow(1000) >= perturb_.delay_permille) return 0;
    return 1 + rng_.NextBelow(max_ns);
  }

  Rng rng_;
  uint64_t seed_;
  uint32_t depth_;
  PerturbConfig perturb_;
  std::unordered_map<uint32_t, uint64_t> priority_;
  std::unordered_set<uint64_t> change_points_;
  uint64_t low_water_ = (uint64_t{1} << 62) - 1;
};

// Replays a recorded DecisionTrace: recorded ordinals answer with the
// recorded pick, everything else with baseline 0. A kind/n mismatch at a
// recorded ordinal means the schedule diverged (the workload changed, or the
// trace came from a different binary); the divergence is counted and the
// baseline pick used, so replay degrades gracefully instead of wedging.
class ReplayPolicy final : public SchedulePolicy {
 public:
  explicit ReplayPolicy(DecisionTrace trace) : trace_(std::move(trace)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "replay";
  }
  [[nodiscard]] uint64_t seed() const noexcept override { return trace_.seed; }
  [[nodiscard]] uint32_t pct_depth() const noexcept override {
    return trace_.pct_depth;
  }

 protected:
  uint64_t Choose(uint64_t ordinal, DecisionKind kind,
                  const uint32_t* /*lanes*/, uint64_t n) override {
    // Ordinals are consumed in increasing order; skip (and count) any
    // recorded decisions whose ordinal was never reached as recorded.
    while (next_ < trace_.entries.size() &&
           trace_.entries[next_].ordinal < ordinal) {
      ++next_;
      CountDivergence();
    }
    if (next_ >= trace_.entries.size() ||
        trace_.entries[next_].ordinal != ordinal) {
      return 0;
    }
    const TraceEntry& e = trace_.entries[next_++];
    if (e.kind != kind || e.n != n) {
      CountDivergence();
      return 0;
    }
    return e.pick;
  }

 private:
  DecisionTrace trace_;
  size_t next_ = 0;
};

// Parsed form of the user-facing exploration spec, shared by the
// RSTORE_EXPLORE env variable, the bench --explore flag, and the rexplore
// CLI:  <policy>[:<seed>[:<runs>[:<max_delay_ns>]]]  where <policy> is
// baseline | random | pct | pct<d>. Successive simulator instances cycle
// through `runs` derived seeds (seed, seed+1, ...), so one bench invocation
// explores `runs` distinct schedules.
struct ExploreSpec {
  std::string policy = "baseline";
  uint64_t seed = 1;
  uint32_t runs = 1;
  uint32_t pct_depth = 3;
  uint64_t max_delay_ns = 2000;

  [[nodiscard]] uint64_t SeedFor(uint64_t run_index) const noexcept {
    return seed + (runs > 1 ? run_index % runs : 0);
  }

  [[nodiscard]] static bool Parse(std::string_view text, ExploreSpec* out) {
    ExploreSpec spec;
    std::vector<std::string_view> parts;
    while (!text.empty()) {
      const size_t colon = text.find(':');
      parts.push_back(text.substr(0, colon));
      if (colon == std::string_view::npos) break;
      text.remove_prefix(colon + 1);
    }
    if (parts.empty() || parts[0].empty()) return false;
    std::string_view pol = parts[0];
    if (pol == "baseline" || pol == "random" || pol == "pct") {
      spec.policy = std::string(pol);
    } else if (pol.substr(0, 3) == "pct") {
      uint32_t depth = 0;
      if (!ParseInt(pol.substr(3), &depth) || depth == 0) return false;
      spec.policy = "pct";
      spec.pct_depth = depth;
    } else {
      return false;
    }
    if (parts.size() > 1 && !ParseInt(parts[1], &spec.seed)) return false;
    if (parts.size() > 2 && !ParseInt(parts[2], &spec.runs)) return false;
    if (parts.size() > 3 && !ParseInt(parts[3], &spec.max_delay_ns)) {
      return false;
    }
    if (parts.size() > 4 || spec.runs == 0) return false;
    *out = spec;
    return true;
  }

  [[nodiscard]] std::unique_ptr<SchedulePolicy> Instantiate(
      uint64_t run_index) const {
    const uint64_t s = SeedFor(run_index);
    const PerturbConfig perturb{max_delay_ns, max_delay_ns, 250};
    if (policy == "baseline") return std::make_unique<BaselinePolicy>();
    if (policy == "random") {
      return std::make_unique<RandomWalkPolicy>(s, perturb);
    }
    if (policy == "pct") {
      return std::make_unique<PctPolicy>(s, pct_depth, perturb);
    }
    return nullptr;
  }

 private:
  template <typename T>
  [[nodiscard]] static bool ParseInt(std::string_view s, T* out) {
    if (s.empty()) return false;
    T value{};
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc() || ptr != s.data() + s.size()) return false;
    *out = value;
    return true;
  }
};

}  // namespace rstore::explore
