// JSON serialization for DecisionTrace, the replayable schedule format
// written next to rcheck reports and consumed by tools/rexplore.
//
// The format is a single object:
//   {"policy":"pct","seed":"7","pct_depth":3,"workload":"race-unfenced",
//    "total_choices":412,
//    "entries":[{"ordinal":18,"kind":4,"n":0,"pick":61772}, ...]}
//
// `seed` is serialized as a decimal *string*: the dependency-free reader in
// obs/trace_check.h parses numbers as doubles, which silently round above
// 2^53, and seeds use all 64 bits. Everything else fits comfortably.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>

#include "common/status.h"
#include "explore/policy.h"
#include "obs/metrics.h"      // AppendJsonString
#include "obs/trace_check.h"  // dependency-free ParseJson

namespace rstore::explore {

[[nodiscard]] inline std::string ToJson(const DecisionTrace& trace) {
  std::string out;
  out.reserve(128 + trace.entries.size() * 48);
  out += "{\"policy\":";
  obs::AppendJsonString(out, trace.policy);
  out += ",\"seed\":\"";
  out += std::to_string(trace.seed);
  out += "\",\"pct_depth\":";
  out += std::to_string(trace.pct_depth);
  if (!trace.workload.empty()) {
    out += ",\"workload\":";
    obs::AppendJsonString(out, trace.workload);
  }
  out += ",\"total_choices\":";
  out += std::to_string(trace.total_choices);
  out += ",\"entries\":[";
  bool first = true;
  for (const TraceEntry& e : trace.entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"ordinal\":";
    out += std::to_string(e.ordinal);
    out += ",\"kind\":";
    out += std::to_string(static_cast<unsigned>(e.kind));
    out += ",\"n\":";
    out += std::to_string(e.n);
    out += ",\"pick\":";
    out += std::to_string(e.pick);
    out += '}';
  }
  out += "]}\n";
  return out;
}

namespace trace_json_detail {

[[nodiscard]] inline bool ReadU64(const obs::JsonValue* v, uint64_t* out) {
  if (v == nullptr) return false;
  if (v->Is(obs::JsonValue::Type::kNumber)) {
    if (v->number < 0) return false;
    *out = static_cast<uint64_t>(v->number);
    return true;
  }
  if (v->Is(obs::JsonValue::Type::kString)) {
    uint64_t value = 0;
    const std::string& s = v->str;
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return true;
  }
  return false;
}

}  // namespace trace_json_detail

[[nodiscard]] inline Result<DecisionTrace> TraceFromJson(
    std::string_view text) {
  auto parsed = obs::ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const obs::JsonValue& root = *parsed;
  if (!root.Is(obs::JsonValue::Type::kObject)) {
    return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                 "trace root is not an object");
  }
  DecisionTrace trace;
  const obs::JsonValue* policy = root.Find("policy");
  if (policy == nullptr || !policy->Is(obs::JsonValue::Type::kString)) {
    return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                 "trace missing string field 'policy'");
  }
  trace.policy = policy->str;
  if (!trace_json_detail::ReadU64(root.Find("seed"), &trace.seed)) {
    return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                 "trace missing field 'seed'");
  }
  uint64_t depth = 0;
  if (trace_json_detail::ReadU64(root.Find("pct_depth"), &depth)) {
    trace.pct_depth = static_cast<uint32_t>(depth);
  }
  if (const obs::JsonValue* w = root.Find("workload");
      w != nullptr && w->Is(obs::JsonValue::Type::kString)) {
    trace.workload = w->str;
  }
  (void)trace_json_detail::ReadU64(root.Find("total_choices"),
                                   &trace.total_choices);
  const obs::JsonValue* entries = root.Find("entries");
  if (entries == nullptr || !entries->Is(obs::JsonValue::Type::kArray)) {
    return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                 "trace missing array field 'entries'");
  }
  trace.entries.reserve(entries->array.size());
  for (const obs::JsonValue& item : entries->array) {
    if (!item.Is(obs::JsonValue::Type::kObject)) {
      return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                   "trace entry is not an object");
    }
    TraceEntry e;
    uint64_t kind = 0;
    if (!trace_json_detail::ReadU64(item.Find("ordinal"), &e.ordinal) ||
        !trace_json_detail::ReadU64(item.Find("kind"), &kind) ||
        !trace_json_detail::ReadU64(item.Find("n"), &e.n) ||
        !trace_json_detail::ReadU64(item.Find("pick"), &e.pick)) {
      return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                   "trace entry missing ordinal/kind/n/pick");
    }
    if (kind > static_cast<uint64_t>(DecisionKind::kCompletionDelay)) {
      return Result<DecisionTrace>(ErrorCode::kInvalidArgument,
                                   "trace entry has unknown decision kind");
    }
    e.kind = static_cast<DecisionKind>(kind);
    trace.entries.push_back(e);
  }
  // ReplayPolicy consumes entries in ordinal order; tolerate shuffled files.
  std::sort(trace.entries.begin(), trace.entries.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.ordinal < b.ordinal;
            });
  return trace;
}

}  // namespace rstore::explore
