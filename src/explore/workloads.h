// Built-in verbs-level workloads for tools/rexplore, tests, and the CI
// exploration job. Each is a self-contained cluster run (fresh
// sim::Simulation per invocation) that attaches the explorer's policy and
// checker before any work starts.
//
// Three flavours:
//   fenced-handoff   writer RDMA-WRITEs a block, *waits for the write
//                    completion*, then FetchAdds a flag cell; reader polls
//                    the flag with FetchAdd(+0) and RDMA-READs the block.
//                    Correct under every legal schedule — the zero-false-
//                    positive workload the CI exploration job sweeps.
//   race-unfenced    same shape, but the completion wait has a deadline:
//                    if the write completion misses it (which only happens
//                    under explore-injected delay), the writer releases the
//                    flag while the write is still pending — the classic
//                    un-fenced one-sided publish bug. The baseline schedule
//                    is always fenced; only exploration flips it.
//   atomic-counter   three clients FetchAdd one shared cell concurrently;
//                    atomics never conflict, so any report is a checker
//                    false positive.
//   stale-cached-read  a reader caches a value cell without any version
//                    check, then answers a later GET from the cache when
//                    the revalidation read misses a 40 us deadline — an
//                    intentionally un-versioned cached read. The baseline
//                    revalidation always beats the deadline; only an
//                    explore-injected delay (max_delay_ns >= 40000) flips
//                    it, and the rlin oracle catches the stale answer as
//                    a per-key linearizability violation.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "check/lin.h"
#include "explore/explorer.h"
#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore::explore {

namespace workload_detail {

// Workloads run outside any test framework (the CLI, the CI job), so a
// failed precondition aborts loudly instead of silently exploring garbage.
inline void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "rexplore workload invariant failed: %s\n", what);
    std::abort();
  }
}

// The write/publish/read handoff described above. `fenced` selects whether
// the writer's completion wait is unbounded (always correct) or bounded by
// a 40 us deadline the baseline schedule meets with ~3x slack (the
// un-fenced publish only triggers under injected delay).
inline void RunHandoff(const RunContext& ctx, bool fenced) {
  constexpr uint64_t kDataBytes = 64 * 1024;
  constexpr uint32_t kService = 17;

  sim::Simulation sim;
  ctx.Attach(sim);
  verbs::Network net(sim);
  sim::Node& server = sim.AddNode("server");
  sim::Node& writer = sim.AddNode("writer");
  sim::Node& reader = sim.AddNode("reader");
  verbs::Device& server_dev = net.AddDevice(server);
  verbs::Device& writer_dev = net.AddDevice(writer);
  verbs::Device& reader_dev = net.AddDevice(reader);

  // Server memory: the data block, then an 8-byte flag cell.
  std::vector<std::byte> region(kDataBytes + 8);
  verbs::ProtectionDomain& server_pd = server_dev.CreatePd();
  auto server_mr = server_pd.RegisterMemory(
      region.data(), region.size(),
      verbs::kLocalWrite | verbs::kRemoteRead | verbs::kRemoteWrite |
          verbs::kRemoteAtomic);
  Require(server_mr.ok(), "server MR registration");
  const uint64_t data_addr = (*server_mr)->remote_addr();
  const uint64_t flag_addr = data_addr + kDataBytes;
  const uint32_t rkey = (*server_mr)->rkey();

  server.Spawn("accept", [&net, &server_dev] {
    for (int i = 0; i < 2; ++i) {
      auto qp = net.Listen(server_dev, kService).Accept();
      Require(qp.ok(), "server accept");
    }
  });

  writer.Spawn("writer", [&net, &writer_dev, &server, data_addr, flag_addr,
                          rkey, fenced] {
    auto qp = net.Connect(writer_dev, server.id(), kService);
    Require(qp.ok(), "writer connect");
    verbs::QueuePair& q = **qp;
    verbs::ProtectionDomain& pd = writer_dev.CreatePd();
    std::vector<std::byte> src(kDataBytes, std::byte{0xAB});
    auto src_mr = pd.RegisterMemory(src.data(), src.size(),
                                    verbs::kLocalWrite);
    Require(src_mr.ok(), "writer src MR");
    std::vector<std::byte> faa_result(8);
    auto faa_mr = pd.RegisterMemory(faa_result.data(), faa_result.size(),
                                    verbs::kLocalWrite);
    Require(faa_mr.ok(), "writer FAA MR");

    Require(q.PostSend({.wr_id = 1,
                        .opcode = verbs::Opcode::kRdmaWrite,
                        .local = {src.data(), kDataBytes, (*src_mr)->lkey()},
                        .remote_addr = data_addr,
                        .rkey = rkey})
                .ok(),
            "writer post WRITE");
    // Publish fence. The fenced variant waits however long the write
    // takes; the un-fenced variant gives up after a deadline the baseline
    // completion beats easily (~12 us) — so only an explore-injected
    // delay can flip this branch, and when it does the FetchAdd below
    // releases the flag while the write is still in flight.
    size_t outstanding = 1;
    auto wc = q.send_cq().WaitOne(fenced ? sim::kNever : sim::Micros(40));
    if (wc.ok()) {
      Require(wc->ok(), "writer WRITE completion status");
      outstanding = 0;
    }
    Require(q.PostSend({.wr_id = 2,
                        .opcode = verbs::Opcode::kFetchAdd,
                        .local = {faa_result.data(), 8, (*faa_mr)->lkey()},
                        .remote_addr = flag_addr,
                        .rkey = rkey,
                        .swap_or_add = 1})
                .ok(),
            "writer post FAA");
    outstanding += 1;
    while (outstanding > 0) {
      auto c = q.send_cq().WaitOne();
      Require(c.ok(), "writer drain completion");
      --outstanding;
    }
  });

  reader.Spawn("reader", [&net, &reader_dev, &server, data_addr, flag_addr,
                          rkey] {
    auto qp = net.Connect(reader_dev, server.id(), kService);
    Require(qp.ok(), "reader connect");
    verbs::QueuePair& q = **qp;
    verbs::ProtectionDomain& pd = reader_dev.CreatePd();
    std::vector<std::byte> dst(kDataBytes);
    auto dst_mr = pd.RegisterMemory(dst.data(), dst.size(),
                                    verbs::kLocalWrite);
    Require(dst_mr.ok(), "reader dst MR");
    std::vector<std::byte> faa_result(8);
    auto faa_mr = pd.RegisterMemory(faa_result.data(), faa_result.size(),
                                    verbs::kLocalWrite);
    Require(faa_mr.ok(), "reader FAA MR");

    // Acquire-poll the flag with FetchAdd(+0) until the writer releases.
    while (true) {
      Require(q.PostSend({.wr_id = 10,
                          .opcode = verbs::Opcode::kFetchAdd,
                          .local = {faa_result.data(), 8, (*faa_mr)->lkey()},
                          .remote_addr = flag_addr,
                          .rkey = rkey,
                          .swap_or_add = 0})
                  .ok(),
              "reader post FAA poll");
      auto c = q.send_cq().WaitOne();
      Require(c.ok() && c->ok(), "reader FAA completion");
      uint64_t flag = 0;
      std::memcpy(&flag, faa_result.data(), sizeof(flag));
      if (flag >= 1) break;
      sim::Sleep(sim::Micros(2));
    }
    Require(q.PostSend({.wr_id = 11,
                        .opcode = verbs::Opcode::kRdmaRead,
                        .local = {dst.data(), kDataBytes, (*dst_mr)->lkey()},
                        .remote_addr = data_addr,
                        .rkey = rkey})
                .ok(),
            "reader post READ");
    auto c = q.send_cq().WaitOne();
    Require(c.ok(), "reader READ completion");
  });

  sim.Run();
  if (ctx.out_final_vtime != nullptr) *ctx.out_final_vtime = sim.NowNanos();
  if (ctx.out_events != nullptr) *ctx.out_events = sim.events_processed();
}

inline void RunAtomicCounter(const RunContext& ctx) {
  constexpr uint32_t kService = 23;
  constexpr int kClients = 3;
  constexpr int kAddsPerClient = 8;

  sim::Simulation sim;
  ctx.Attach(sim);
  verbs::Network net(sim);
  sim::Node& server = sim.AddNode("server");
  verbs::Device& server_dev = net.AddDevice(server);

  std::vector<std::byte> cell(8);
  verbs::ProtectionDomain& server_pd = server_dev.CreatePd();
  auto server_mr = server_pd.RegisterMemory(
      cell.data(), cell.size(), verbs::kLocalWrite | verbs::kRemoteAtomic);
  Require(server_mr.ok(), "server MR registration");
  const uint64_t cell_addr = (*server_mr)->remote_addr();
  const uint32_t rkey = (*server_mr)->rkey();

  server.Spawn("accept", [&net, &server_dev] {
    for (int i = 0; i < kClients; ++i) {
      auto qp = net.Listen(server_dev, kService).Accept();
      Require(qp.ok(), "server accept");
    }
  });

  for (int c = 0; c < kClients; ++c) {
    sim::Node& client = sim.AddNode("client" + std::to_string(c));
    verbs::Device& dev = net.AddDevice(client);
    client.Spawn("adder", [&net, &dev, &server, cell_addr, rkey] {
      auto qp = net.Connect(dev, server.id(), kService);
      Require(qp.ok(), "client connect");
      verbs::QueuePair& q = **qp;
      verbs::ProtectionDomain& pd = dev.CreatePd();
      std::vector<std::byte> result(8);
      auto mr = pd.RegisterMemory(result.data(), result.size(),
                                  verbs::kLocalWrite);
      Require(mr.ok(), "client MR");
      for (int i = 0; i < kAddsPerClient; ++i) {
        Require(q.PostSend({.wr_id = static_cast<uint64_t>(i),
                            .opcode = verbs::Opcode::kFetchAdd,
                            .local = {result.data(), 8, (*mr)->lkey()},
                            .remote_addr = cell_addr,
                            .rkey = rkey,
                            .swap_or_add = 1})
                    .ok(),
                "client post FAA");
        auto wc = q.send_cq().WaitOne();
        Require(wc.ok() && wc->ok(), "client FAA completion");
      }
    });
  }

  sim.Run();
  uint64_t total = 0;
  std::memcpy(&total, cell.data(), sizeof(total));
  Require(total == static_cast<uint64_t>(kClients) * kAddsPerClient,
          "atomic counter total");
  if (ctx.out_final_vtime != nullptr) *ctx.out_final_vtime = sim.NowNanos();
  if (ctx.out_events != nullptr) *ctx.out_events = sim.events_processed();
}

// The planted rlin bug: a client-side cache with no version check. The
// reader READs the value cell once and keeps the bytes; after the writer
// publishes a new value, the reader "revalidates" with a second READ but
// only waits 40 us for it — on a miss it answers from the stale cache.
// The baseline completion beats the deadline with ~3x slack, so the stale
// branch is reachable only under explore-injected delay (max_delay_ns >=
// 40000). When it fires, the recorded history on kStaleKey is
//   read(v0), write(v1), read(v0 with inv after write's resp)
// which is per-key unsatisfiable — rlin reports it, and the signature
// (the key alone) is schedule-independent, so replay and minimization
// reproduce it deterministically.
inline void RunStaleCachedRead(const RunContext& ctx) {
  constexpr uint64_t kValBytes = 64;
  constexpr uint32_t kService = 29;
  constexpr uint64_t kStaleKey = 0x57a1e;
  constexpr uint32_t kReaderClient = 1;
  constexpr uint32_t kWriterClient = 2;

  sim::Simulation sim;
  ctx.Attach(sim);
  verbs::Network net(sim);
  sim::Node& server = sim.AddNode("server");
  sim::Node& writer = sim.AddNode("writer");
  sim::Node& reader = sim.AddNode("reader");
  verbs::Device& server_dev = net.AddDevice(server);
  verbs::Device& writer_dev = net.AddDevice(writer);
  verbs::Device& reader_dev = net.AddDevice(reader);

  // Server memory: the value cell, a ready flag (reader -> writer: "my
  // cache is warm"), and a publish flag (writer -> reader: "v1 is out").
  std::vector<std::byte> region(kValBytes + 16, std::byte{0x11});
  std::memset(region.data() + kValBytes, 0, 16);
  verbs::ProtectionDomain& server_pd = server_dev.CreatePd();
  auto server_mr = server_pd.RegisterMemory(
      region.data(), region.size(),
      verbs::kLocalWrite | verbs::kRemoteRead | verbs::kRemoteWrite |
          verbs::kRemoteAtomic);
  Require(server_mr.ok(), "server MR registration");
  const uint64_t val_addr = (*server_mr)->remote_addr();
  const uint64_t ready_addr = val_addr + kValBytes;
  const uint64_t publish_addr = val_addr + kValBytes + 8;
  const uint32_t rkey = (*server_mr)->rkey();
  if (ctx.lin != nullptr) {
    ctx.lin->RecordInit(kStaleKey, check::LinChecker::Digest(region.data(),
                                                             kValBytes));
  }

  server.Spawn("accept", [&net, &server_dev] {
    for (int i = 0; i < 2; ++i) {
      auto qp = net.Listen(server_dev, kService).Accept();
      Require(qp.ok(), "server accept");
    }
  });

  // Polls `flag_addr` with FetchAdd(+0) until it is >= 1.
  const auto await_flag = [](verbs::QueuePair& q, std::byte* faa_result,
                             uint32_t faa_lkey, uint64_t flag_addr,
                             uint32_t remote_key) {
    while (true) {
      Require(q.PostSend({.wr_id = 90,
                          .opcode = verbs::Opcode::kFetchAdd,
                          .local = {faa_result, 8, faa_lkey},
                          .remote_addr = flag_addr,
                          .rkey = remote_key,
                          .swap_or_add = 0})
                  .ok(),
              "flag poll post");
      auto c = q.send_cq().WaitOne();
      Require(c.ok() && c->ok(), "flag poll completion");
      uint64_t flag = 0;
      std::memcpy(&flag, faa_result, sizeof(flag));
      if (flag >= 1) break;
      sim::Sleep(sim::Micros(2));
    }
  };

  writer.Spawn("writer", [&net, &writer_dev, &server, &sim, &ctx, &await_flag,
                          val_addr, ready_addr, publish_addr, rkey] {
    auto qp = net.Connect(writer_dev, server.id(), kService);
    Require(qp.ok(), "writer connect");
    verbs::QueuePair& q = **qp;
    verbs::ProtectionDomain& pd = writer_dev.CreatePd();
    std::vector<std::byte> src(kValBytes, std::byte{0x22});
    auto src_mr =
        pd.RegisterMemory(src.data(), src.size(), verbs::kLocalWrite);
    Require(src_mr.ok(), "writer src MR");
    std::vector<std::byte> faa_result(8);
    auto faa_mr = pd.RegisterMemory(faa_result.data(), faa_result.size(),
                                    verbs::kLocalWrite);
    Require(faa_mr.ok(), "writer FAA MR");

    // Wait until the reader's cache is warm, so the stale copy is always
    // v0 and the planted violation is deterministic given the schedule.
    await_flag(q, faa_result.data(), (*faa_mr)->lkey(), ready_addr, rkey);

    const uint64_t inv = sim.NowNanos();
    Require(q.PostSend({.wr_id = 1,
                        .opcode = verbs::Opcode::kRdmaWrite,
                        .local = {src.data(), kValBytes, (*src_mr)->lkey()},
                        .remote_addr = val_addr,
                        .rkey = rkey})
                .ok(),
            "writer post WRITE");
    // Correctly fenced: the publish flag is released only after the write
    // completion. The bug in this workload is on the reader's side.
    auto wc = q.send_cq().WaitOne();
    Require(wc.ok() && wc->ok(), "writer WRITE completion");
    if (ctx.lin != nullptr) {
      ctx.lin->RecordOp(kWriterClient, check::LinOpKind::kWrite, kStaleKey,
                        check::LinChecker::Digest(src.data(), kValBytes), inv,
                        sim.NowNanos());
    }
    Require(q.PostSend({.wr_id = 2,
                        .opcode = verbs::Opcode::kFetchAdd,
                        .local = {faa_result.data(), 8, (*faa_mr)->lkey()},
                        .remote_addr = publish_addr,
                        .rkey = rkey,
                        .swap_or_add = 1})
                .ok(),
            "writer post publish FAA");
    auto pc = q.send_cq().WaitOne();
    Require(pc.ok() && pc->ok(), "writer publish completion");
  });

  reader.Spawn("reader", [&net, &reader_dev, &server, &sim, &ctx, &await_flag,
                          val_addr, ready_addr, publish_addr, rkey] {
    auto qp = net.Connect(reader_dev, server.id(), kService);
    Require(qp.ok(), "reader connect");
    verbs::QueuePair& q = **qp;
    verbs::ProtectionDomain& pd = reader_dev.CreatePd();
    std::vector<std::byte> dst(kValBytes);
    auto dst_mr =
        pd.RegisterMemory(dst.data(), dst.size(), verbs::kLocalWrite);
    Require(dst_mr.ok(), "reader dst MR");
    std::vector<std::byte> faa_result(8);
    auto faa_mr = pd.RegisterMemory(faa_result.data(), faa_result.size(),
                                    verbs::kLocalWrite);
    Require(faa_mr.ok(), "reader FAA MR");

    // Warm the cache: one READ, keep the bytes. No version, no epoch —
    // nothing that would let the revalidation below detect staleness.
    uint64_t inv = sim.NowNanos();
    Require(q.PostSend({.wr_id = 10,
                        .opcode = verbs::Opcode::kRdmaRead,
                        .local = {dst.data(), kValBytes, (*dst_mr)->lkey()},
                        .remote_addr = val_addr,
                        .rkey = rkey})
                .ok(),
            "reader post warm READ");
    auto wc = q.send_cq().WaitOne();
    Require(wc.ok() && wc->ok(), "reader warm READ completion");
    std::vector<std::byte> cache(dst);
    if (ctx.lin != nullptr) {
      ctx.lin->RecordOp(kReaderClient, check::LinOpKind::kRead, kStaleKey,
                        check::LinChecker::Digest(cache.data(), kValBytes),
                        inv, sim.NowNanos());
    }
    // Tell the writer the cache is warm, then wait for its publish.
    Require(q.PostSend({.wr_id = 11,
                        .opcode = verbs::Opcode::kFetchAdd,
                        .local = {faa_result.data(), 8, (*faa_mr)->lkey()},
                        .remote_addr = ready_addr,
                        .rkey = rkey,
                        .swap_or_add = 1})
                .ok(),
            "reader post ready FAA");
    auto rc = q.send_cq().WaitOne();
    Require(rc.ok() && rc->ok(), "reader ready completion");
    await_flag(q, faa_result.data(), (*faa_mr)->lkey(), publish_addr, rkey);

    // Serve a GET: revalidate with a fresh READ, but only wait 40 us for
    // it. On a miss, answer from the (now stale) cache. This is the
    // planted bug — the cached bytes carry no version to check against.
    inv = sim.NowNanos();
    Require(q.PostSend({.wr_id = 12,
                        .opcode = verbs::Opcode::kRdmaRead,
                        .local = {dst.data(), kValBytes, (*dst_mr)->lkey()},
                        .remote_addr = val_addr,
                        .rkey = rkey})
                .ok(),
            "reader post revalidate READ");
    auto fresh = q.send_cq().WaitOne(sim::Micros(40));
    const std::byte* answer = nullptr;
    if (fresh.ok()) {
      Require(fresh->ok(), "reader revalidate READ status");
      answer = dst.data();
    } else {
      answer = cache.data();  // stale, un-versioned answer
    }
    if (ctx.lin != nullptr) {
      ctx.lin->RecordOp(kReaderClient, check::LinOpKind::kRead, kStaleKey,
                        check::LinChecker::Digest(answer, kValBytes), inv,
                        sim.NowNanos());
    }
    if (!fresh.ok()) {
      // Drain the late completion so the run ends with an empty CQ.
      auto late = q.send_cq().WaitOne();
      Require(late.ok(), "reader drain late completion");
    }
  });

  sim.Run();
  if (ctx.out_final_vtime != nullptr) *ctx.out_final_vtime = sim.NowNanos();
  if (ctx.out_events != nullptr) *ctx.out_events = sim.events_processed();
}

}  // namespace workload_detail

struct NamedWorkload {
  std::string_view name;
  std::string_view description;
  Workload workload;
};

[[nodiscard]] inline std::vector<NamedWorkload> BuiltinWorkloads() {
  return {
      {"fenced-handoff",
       "write -> completion fence -> atomic release -> remote read; "
       "race-free under every legal schedule",
       [](const RunContext& ctx) {
         workload_detail::RunHandoff(ctx, /*fenced=*/true);
       }},
      {"race-unfenced",
       "fence is skipped when the WRITE completion misses a 40us deadline: "
       "a schedule-dependent un-fenced publish race",
       [](const RunContext& ctx) {
         workload_detail::RunHandoff(ctx, /*fenced=*/false);
       }},
      {"atomic-counter",
       "three clients FetchAdd one shared cell; atomics never conflict",
       [](const RunContext& ctx) {
         workload_detail::RunAtomicCounter(ctx);
       }},
      {"stale-cached-read",
       "reader answers a GET from an un-versioned cache when revalidation "
       "misses a 40us deadline; rlin catches the stale read (needs "
       "max-delay >= 40000)",
       [](const RunContext& ctx) {
         workload_detail::RunStaleCachedRead(ctx);
       }},
  };
}

[[nodiscard]] inline const NamedWorkload* FindWorkload(
    const std::vector<NamedWorkload>& all, std::string_view name) {
  for (const NamedWorkload& w : all) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace rstore::explore
