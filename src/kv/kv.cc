#include "kv/kv.h"

#include <cstring>

#include "check/check.h"
#include "check/lin.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::kv {
namespace {

// Per-operation telemetry: bumps a call counter and records the op's
// virtual-time latency on destruction. Inert when no Telemetry is
// attached to the simulation.
struct OpObs {
  OpObs(core::RStoreClient& client, const char* counter, const char* timer)
      : tel(client.device().network().sim().telemetry()) {
    if (tel != nullptr) {
      node = client.device().node_id();
      obs::NodeMetrics& m = tel->metrics().ForNode(node);
      calls = &m.GetCounter(counter);
      latency = &m.GetTimer(timer);
      t0 = tel->NowNs();
    }
  }
  ~OpObs() {
    if (tel != nullptr) {
      calls->Inc();
      latency->Record(tel->NowNs() - t0);
    }
  }
  OpObs(const OpObs&) = delete;
  OpObs& operator=(const OpObs&) = delete;

  obs::Telemetry* tel;
  uint32_t node = 0;
  obs::Counter* calls = nullptr;
  obs::Timer* latency = nullptr;
  uint64_t t0 = 0;
};

// Slot layout lives in kv.h (SlotLayout) so other dataplanes can speak
// the same bytes; these aliases keep the implementation terse.
constexpr uint64_t kVersionOff = SlotLayout::kVersionOff;
constexpr uint64_t kKeyLenOff = SlotLayout::kKeyLenOff;
constexpr uint64_t kValLenOff = SlotLayout::kValLenOff;
constexpr uint64_t kPayloadOff = SlotLayout::kPayloadOff;

}  // namespace

uint64_t SlotLayout::HomeSlot(std::string_view key,
                              uint64_t buckets) noexcept {
  return StableHash64(key) % buckets;
}

void SlotLayout::Compose(std::byte* dst, uint32_t slot_bytes,
                         uint64_t version, std::string_view key,
                         std::span<const std::byte> value) noexcept {
  std::memset(dst, 0, slot_bytes);
  const auto key_len = static_cast<uint16_t>(key.size());
  const auto val_len = static_cast<uint32_t>(value.size());
  std::memcpy(dst + kVersionOff, &version, 8);
  std::memcpy(dst + kKeyLenOff, &key_len, 2);
  std::memcpy(dst + kValLenOff, &val_len, 4);
  std::memcpy(dst + kPayloadOff, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(dst + kPayloadOff + key.size(), value.data(), value.size());
  }
}

KvStore::KvStore(core::RStoreClient& client, core::MappedRegion* region,
                 KvOptions options)
    : client_(client), region_(region), options_(options) {}

Result<std::unique_ptr<KvStore>> KvStore::Create(core::RStoreClient& client,
                                                 const std::string& name,
                                                 KvOptions options) {
  if (options.buckets == 0 || options.slot_bytes <= kSlotHeader ||
      options.max_probe == 0) {
    return Result<std::unique_ptr<KvStore>>(ErrorCode::kInvalidArgument,
                                            "bad table geometry");
  }
  const uint64_t bytes =
      kHeaderBytes + options.buckets * options.slot_bytes;
  RSTORE_RETURN_IF_ERROR(client.Ralloc(name, bytes));
  auto region = client.Rmap(name);
  if (!region.ok()) return region.status();

  // Header: magic, buckets, slot_bytes, max_probe. Slots rely on the
  // arena being zero-initialized (version 0 = never used).
  auto hdr = client.AllocBuffer(kHeaderBytes);
  if (!hdr.ok()) return hdr.status();
  std::memset(hdr->begin(), 0, kHeaderBytes);
  std::memcpy(hdr->begin(), &kMagic, 8);
  std::memcpy(hdr->begin() + 8, &options.buckets, 8);
  std::memcpy(hdr->begin() + 16, &options.slot_bytes, 4);
  std::memcpy(hdr->begin() + 20, &options.max_probe, 4);
  RSTORE_RETURN_IF_ERROR((*region)->Write(0, hdr->data));

  auto store = std::unique_ptr<KvStore>(
      new KvStore(client, *region, options));
  RSTORE_ASSIGN_OR_RETURN(store->scratch_,
                          client.AllocBuffer(options.slot_bytes));
  RSTORE_ASSIGN_OR_RETURN(store->write_buf_,
                          client.AllocBuffer(options.slot_bytes));
  RSTORE_ASSIGN_OR_RETURN(store->version_buf_, client.AllocBuffer(8));
  return store;
}

Result<std::unique_ptr<KvStore>> KvStore::Open(core::RStoreClient& client,
                                               const std::string& name,
                                               uint32_t cache_slots) {
  auto region = client.Rmap(name);
  if (!region.ok()) return region.status();
  auto hdr = client.AllocBuffer(kHeaderBytes);
  if (!hdr.ok()) return hdr.status();
  RSTORE_RETURN_IF_ERROR((*region)->Read(0, hdr->data));
  uint64_t magic = 0;
  KvOptions options;
  std::memcpy(&magic, hdr->begin(), 8);
  if (magic != kMagic) {
    return Result<std::unique_ptr<KvStore>>(
        ErrorCode::kInvalidArgument,
        "region '" + name + "' does not hold an RKV table");
  }
  std::memcpy(&options.buckets, hdr->begin() + 8, 8);
  std::memcpy(&options.slot_bytes, hdr->begin() + 16, 4);
  std::memcpy(&options.max_probe, hdr->begin() + 20, 4);
  options.cache_slots = cache_slots;  // client-local, not table geometry

  auto store = std::unique_ptr<KvStore>(
      new KvStore(client, *region, options));
  RSTORE_ASSIGN_OR_RETURN(store->scratch_,
                          client.AllocBuffer(options.slot_bytes));
  RSTORE_ASSIGN_OR_RETURN(store->write_buf_,
                          client.AllocBuffer(options.slot_bytes));
  RSTORE_ASSIGN_OR_RETURN(store->version_buf_, client.AllocBuffer(8));
  return store;
}

KvStore::SlotView KvStore::Parse(const std::byte* slot) const {
  SlotView view{};
  std::memcpy(&view.version, slot + kVersionOff, 8);
  std::memcpy(&view.key_len, slot + kKeyLenOff, 2);
  std::memcpy(&view.val_len, slot + kValLenOff, 4);
  view.key = slot + kPayloadOff;
  view.value = slot + kPayloadOff + view.key_len;
  return view;
}

void KvStore::CacheStore(uint64_t slot, uint64_t version,
                         const std::byte* bytes) {
  auto it = slot_cache_.find(slot);
  if (it == slot_cache_.end()) {
    if (slot_cache_.size() >= options_.cache_slots) {
      const uint64_t victim = slot_lru_.back();
      slot_lru_.pop_back();
      slot_cache_.erase(victim);
    }
    slot_lru_.push_front(slot);
    it = slot_cache_.emplace(slot, CachedSlot{}).first;
    it->second.lru = slot_lru_.begin();
    it->second.bytes.resize(options_.slot_bytes);
  } else if (it->second.lru != slot_lru_.begin()) {
    slot_lru_.splice(slot_lru_.begin(), slot_lru_, it->second.lru);
  }
  it->second.version = version;
  std::memcpy(it->second.bytes.data(), bytes, options_.slot_bytes);
  // Populating the cache copies a slot locally; never free.
  sim::ChargeCpu(sim::CacheCopyCost(client_.device().network().cpu_model(),
                                    options_.slot_bytes));
}

void KvStore::CacheErase(uint64_t slot) {
  auto it = slot_cache_.find(slot);
  if (it == slot_cache_.end()) return;
  slot_lru_.erase(it->second.lru);
  slot_cache_.erase(it);
  ++stats_.cache_invalidations;
}

Result<uint64_t> KvStore::ReadSlot(uint64_t slot, std::byte* dst) {
  ++stats_.probe_reads;
  // Seqlock readers never take the lock: the payload read may observe a
  // concurrent writer's bytes and is discarded when the version moved.
  // Racy by design, so every read in here is speculative for rcheck.
  check::SpeculativeScope spec(
      client_.device().network().sim().checker());
  if (options_.cache_slots > 0) {
    auto it = slot_cache_.find(slot);
    if (it != slot_cache_.end()) {
      // Validate-on-hit: one 8-byte read of the seqlock word. Unchanged
      // and even means the remote slot is byte-identical to the cached
      // image (every writer bumps the version), so serving the cached
      // bytes is indistinguishable from a full read that validated.
      RSTORE_RETURN_IF_ERROR(region_->Read(
          SlotOffset(slot) + kVersionOff,
          std::span<std::byte>(version_buf_.begin(), 8)));
      uint64_t current = 0;
      std::memcpy(&current, version_buf_.begin(), 8);
      if (current == it->second.version && current % 2 == 0) {
        ++stats_.cache_hits;
        std::memcpy(dst, it->second.bytes.data(), options_.slot_bytes);
        sim::ChargeCpu(sim::CacheCopyCost(
            client_.device().network().cpu_model(), options_.slot_bytes));
        if (it->second.lru != slot_lru_.begin()) {
          slot_lru_.splice(slot_lru_.begin(), slot_lru_, it->second.lru);
        }
        return current;
      }
      // Stale (a writer moved the version): drop and fall through.
      CacheErase(slot);
    }
    ++stats_.cache_misses;
  }
  RSTORE_RETURN_IF_ERROR(region_->Read(
      SlotOffset(slot), std::span<std::byte>(dst, options_.slot_bytes)));
  uint64_t version = 0;
  std::memcpy(&version, dst + kVersionOff, 8);
  // Seqlock validation: re-read the version word; if it moved (or was
  // odd), a writer raced us and the payload may be torn.
  RSTORE_RETURN_IF_ERROR(region_->Read(
      SlotOffset(slot) + kVersionOff,
      std::span<std::byte>(version_buf_.begin(), 8)));
  uint64_t check = 0;
  std::memcpy(&check, version_buf_.begin(), 8);
  if (version % 2 == 1 || check != version) {
    ++stats_.version_retries;
    return Result<uint64_t>(ErrorCode::kAborted, "slot is being written");
  }
  if (options_.cache_slots > 0) CacheStore(slot, version, dst);
  return version;
}

Status KvStore::ReadSlotRaw(uint64_t slot, std::byte* dst) {
  ++stats_.probe_reads;
  // Callers hold the slot seqlock, which freezes the payload but not the
  // version cell — contending writers keep CASing it while they probe.
  // Reading from key_len onward stays clear of that cell, so the payload
  // read is genuinely race-free (and rcheck verifies it stays that way).
  // No caller consumes the version word from a raw read; zero it so
  // Parse() stays deterministic.
  std::memset(dst, 0, kKeyLenOff);
  return region_->Read(
      SlotOffset(slot) + kKeyLenOff,
      std::span<std::byte>(dst + kKeyLenOff,
                           options_.slot_bytes - kKeyLenOff));
}

Result<uint64_t> KvStore::LockSlot(uint64_t slot) {
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    {
      // Optimistic peek at the version word before the CAS; a concurrent
      // unlock write is expected and resolved by the CAS itself.
      check::SpeculativeScope spec(
          client_.device().network().sim().checker());
      RSTORE_RETURN_IF_ERROR(region_->Read(
          SlotOffset(slot) + kVersionOff,
          std::span<std::byte>(version_buf_.begin(), 8)));
    }
    uint64_t current = 0;
    std::memcpy(&current, version_buf_.begin(), 8);
    if (current % 2 == 1) {
      ++stats_.version_retries;
      sim::Sleep(sim::Micros(5));
      continue;
    }
    auto old = region_->CompareSwap(SlotOffset(slot) + kVersionOff, current,
                                    current + 1);
    if (!old.ok()) return old.status();
    if (*old == current) return current + 1;  // we hold the lock
    ++stats_.version_retries;
  }
  return Result<uint64_t>(ErrorCode::kAborted,
                          "could not take slot seqlock (hot contention)");
}

Status KvStore::UnlockSlot(uint64_t slot, uint64_t locked_version) {
  const uint64_t released = locked_version + 1;  // odd -> next even
  std::memcpy(version_buf_.begin(), &released, 8);
  // The version word is the slot's seqlock: this 8-byte store is the
  // release half of the LockSlot CAS acquire, so rcheck treats it as a
  // synchronization cell rather than a plain data write.
  check::SyncCellScope sync(client_.device().network().sim().checker());
  return region_->Write(SlotOffset(slot) + kVersionOff,
                        std::span<const std::byte>(version_buf_.begin(), 8));
}

// rlin history capture (see check/lin.h): each public op wrapper records
// one (kind, key-hash, value-digest, [inv, resp]) entry with a
// LinChecker when one is attached to the simulation. Pure host-side
// observation — no simulator events, RNG draws, or cost charges — so
// virtual time is bit-identical with the checker on or off; with no
// checker attached the wrappers cost one pointer compare.
Result<std::vector<std::byte>> KvStore::Get(std::string_view key) {
  check::LinChecker* lin = client_.device().network().sim().lin();
  if (lin == nullptr) return GetImpl(key);
  const auto inv =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  Result<std::vector<std::byte>> r = GetImpl(key);
  const auto resp =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  const uint64_t k = StableHash64(key);
  if (r.ok()) {
    lin->RecordOp(client_.device().node_id(), check::LinOpKind::kRead, k,
                  check::LinChecker::Digest(r->data(), r->size()), inv, resp);
  } else if (r.code() == ErrorCode::kNotFound) {
    lin->RecordOp(client_.device().node_id(), check::LinOpKind::kRead, k,
                  check::kLinAbsent, inv, resp);
  }
  // Other errors (seqlock contention, transport) returned no answer:
  // reads are no-ops, legal to drop.
  return r;
}

Status KvStore::Put(std::string_view key, std::span<const std::byte> value) {
  check::LinChecker* lin = client_.device().network().sim().lin();
  if (lin == nullptr) return PutImpl(key, value);
  const auto inv =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  lin_wrote_payload_ = false;
  const Status st = PutImpl(key, value);
  const auto resp =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  const uint64_t k = StableHash64(key);
  const uint64_t digest = check::LinChecker::Digest(value.data(), value.size());
  if (st.ok()) {
    lin->RecordOp(client_.device().node_id(), check::LinOpKind::kWrite, k,
                  digest, inv, resp);
  } else if (lin_wrote_payload_) {
    // The payload write was posted before the failure: the value may or
    // may not be visible. Pending = may linearize any time >= inv, or
    // never.
    lin->RecordPending(client_.device().node_id(), check::LinOpKind::kWrite,
                       k, digest, inv);
  }
  return st;
}

Status KvStore::Delete(std::string_view key) {
  check::LinChecker* lin = client_.device().network().sim().lin();
  if (lin == nullptr) return DeleteImpl(key);
  const auto inv =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  lin_wrote_payload_ = false;
  const Status st = DeleteImpl(key);
  const auto resp =
      static_cast<uint64_t>(client_.device().network().sim().NowNanos());
  const uint64_t k = StableHash64(key);
  if (st.ok()) {
    // Delete is a write of "absent".
    lin->RecordOp(client_.device().node_id(), check::LinOpKind::kWrite, k,
                  check::kLinAbsent, inv, resp);
  } else if (st.code() == ErrorCode::kNotFound) {
    // Observed no mapping for the key — semantically a read of absent.
    lin->RecordOp(client_.device().node_id(), check::LinOpKind::kRead, k,
                  check::kLinAbsent, inv, resp);
  } else if (lin_wrote_payload_) {
    lin->RecordPending(client_.device().node_id(), check::LinOpKind::kWrite,
                       k, check::kLinAbsent, inv);
  }
  return st;
}

Result<std::vector<std::byte>> KvStore::GetImpl(std::string_view key) {
  ++stats_.gets;
  check::OpLabelScope label(client_.device().network().sim().checker(),
                            "kv.get");
  OpObs obs(client_, "kv.gets", "kv.get_ns");
  obs::ObsSpan span(obs.tel, obs.node, "app", "kv.get");
  const uint64_t home = StableHash64(key) % options_.buckets;
  if (span.active()) {
    // Server attribution: the home slot's owner serves (almost) every
    // probe of this op, so rtrace flows and kv spans agree on the target.
    span.Arg("home_slot", static_cast<double>(home));
    if (auto sp = region_->Resolve(SlotOffset(home) + kVersionOff, 8);
        sp.ok()) {
      span.Arg("server_node", static_cast<double>(sp->server_node));
    }
  }
  for (uint32_t probe = 0; probe < options_.max_probe; ++probe) {
    const uint64_t slot = (home + probe) % options_.buckets;
    Result<uint64_t> version(0ULL);
    // Retry transient seqlock conflicts on this slot.
    for (int attempt = 0; attempt < 64; ++attempt) {
      version = ReadSlot(slot, scratch_.begin());
      if (version.ok() || version.code() != ErrorCode::kAborted) break;
      sim::Sleep(sim::Micros(5));
    }
    if (!version.ok()) return version.status();
    const SlotView view = Parse(scratch_.begin());
    if (view.version == 0 && view.key_len == 0) {
      return Result<std::vector<std::byte>>(ErrorCode::kNotFound,
                                            "key not found");
    }
    if (view.key_len == key.size() &&
        std::memcmp(view.key, key.data(), key.size()) == 0) {
      return std::vector<std::byte>(view.value, view.value + view.val_len);
    }
    // Tombstone or other key: keep probing.
  }
  return Result<std::vector<std::byte>>(ErrorCode::kNotFound,
                                        "key not found (probe window)");
}

Status KvStore::PutImpl(std::string_view key,
                        std::span<const std::byte> value) {
  ++stats_.puts;
  check::OpLabelScope label(client_.device().network().sim().checker(),
                            "kv.put");
  OpObs obs(client_, "kv.puts", "kv.put_ns");
  obs::ObsSpan span(obs.tel, obs.node, "app", "kv.put");
  if (key.empty() ||
      kSlotHeader + key.size() + value.size() > options_.slot_bytes) {
    return Status(ErrorCode::kInvalidArgument,
                  "key/value exceed slot capacity");
  }
  const uint64_t home = StableHash64(key) % options_.buckets;
  if (span.active()) {
    span.Arg("home_slot", static_cast<double>(home));
    if (auto sp = region_->Resolve(SlotOffset(home) + kVersionOff, 8);
        sp.ok()) {
      span.Arg("server_node", static_cast<double>(sp->server_node));
    }
  }
  // Pass 1: find the key (overwrite) or the first reusable slot.
  int64_t target = -1;
  for (uint32_t probe = 0; probe < options_.max_probe; ++probe) {
    const uint64_t slot = (home + probe) % options_.buckets;
    auto version = ReadSlot(slot, scratch_.begin());
    if (!version.ok() && version.code() == ErrorCode::kAborted) {
      // A writer is on this slot; it is occupied — remember nothing,
      // keep probing (if it held our key we will fail below and the
      // caller retries, as in any lock-free structure).
      continue;
    }
    if (!version.ok()) return version.status();
    const SlotView view = Parse(scratch_.begin());
    if (view.key_len == key.size() &&
        std::memcmp(view.key, key.data(), key.size()) == 0) {
      target = static_cast<int64_t>(slot);  // overwrite in place
      break;
    }
    if (target < 0 && (view.key_len == 0)) {
      target = static_cast<int64_t>(slot);  // empty or tombstone
      if (view.version == 0) break;         // end of chain anyway
    }
  }
  if (target < 0) {
    return Status(ErrorCode::kOutOfMemory, "probe window full");
  }

  const auto slot = static_cast<uint64_t>(target);
  RSTORE_ASSIGN_OR_RETURN(const uint64_t locked, LockSlot(slot));
  // Re-check under the lock: between the probe and the CAS another
  // client may have claimed this slot for a different key.
  RSTORE_RETURN_IF_ERROR(ReadSlotRaw(slot, scratch_.begin()));
  {
    const SlotView now = Parse(scratch_.begin());
    const bool ours = now.key_len == key.size() &&
                      std::memcmp(now.key, key.data(), key.size()) == 0;
    const bool reusable = now.key_len == 0;
    if (!ours && !reusable) {
      (void)UnlockSlot(slot, locked);
      return Status(ErrorCode::kAborted,
                    "slot claimed concurrently; retry the put");
    }
  }
  // Compose the payload (everything after the version word) and write it
  // while the lock is held, then release by bumping the version.
  std::byte* out = write_buf_.begin();
  std::memset(out, 0, kSlotHeader);
  const auto key_len = static_cast<uint16_t>(key.size());
  const auto val_len = static_cast<uint32_t>(value.size());
  std::memcpy(out + kKeyLenOff, &key_len, 2);
  std::memcpy(out + kValLenOff, &val_len, 4);
  std::memcpy(out + kPayloadOff, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(out + kPayloadOff + key.size(), value.data(), value.size());
  }
  lin_wrote_payload_ = true;
  Status wrote = region_->Write(
      SlotOffset(slot) + kKeyLenOff,
      std::span<const std::byte>(out + kKeyLenOff,
                                 kSlotHeader - kKeyLenOff + key.size() +
                                     value.size()));
  if (!wrote.ok()) {
    (void)UnlockSlot(slot, locked);
    return wrote;
  }
  Status unlocked = UnlockSlot(slot, locked);
  if (unlocked.ok() && options_.cache_slots > 0) {
    // scratch_ still holds the slot as read under the lock; grafting the
    // bytes just written plus the released version yields the exact
    // remote image, so the next GET of this key hits.
    const uint64_t released = locked + 1;
    std::memcpy(scratch_.begin() + kVersionOff, &released, 8);
    std::memcpy(scratch_.begin() + kKeyLenOff, out + kKeyLenOff,
                kSlotHeader - kKeyLenOff + key.size() + value.size());
    CacheStore(slot, released, scratch_.begin());
  }
  return unlocked;
}

Status KvStore::DeleteImpl(std::string_view key) {
  ++stats_.deletes;
  check::OpLabelScope label(client_.device().network().sim().checker(),
                            "kv.delete");
  const uint64_t home = StableHash64(key) % options_.buckets;
  for (uint32_t probe = 0; probe < options_.max_probe; ++probe) {
    const uint64_t slot = (home + probe) % options_.buckets;
    auto version = ReadSlot(slot, scratch_.begin());
    if (!version.ok() && version.code() == ErrorCode::kAborted) continue;
    if (!version.ok()) return version.status();
    const SlotView view = Parse(scratch_.begin());
    if (view.version == 0 && view.key_len == 0) break;  // end of chain
    if (view.key_len != key.size() ||
        std::memcmp(view.key, key.data(), key.size()) != 0) {
      continue;
    }
    RSTORE_ASSIGN_OR_RETURN(const uint64_t locked, LockSlot(slot));
    // Re-check under the lock: the slot may have been rewritten.
    RSTORE_RETURN_IF_ERROR(ReadSlotRaw(slot, scratch_.begin()));
    const SlotView now = Parse(scratch_.begin());
    const bool still_ours =
        now.key_len == key.size() &&
        std::memcmp(now.key, key.data(), key.size()) == 0;
    if (!still_ours) {
      (void)UnlockSlot(slot, locked);
      return Status(ErrorCode::kNotFound, "key vanished during delete");
    }
    // Tombstone: key_len = 0 (version stays > 0 so probes continue past).
    std::byte* out = write_buf_.begin();
    std::memset(out, 0, 16);
    lin_wrote_payload_ = true;
    Status wrote = region_->Write(
        SlotOffset(slot) + kKeyLenOff,
        std::span<const std::byte>(out, 8));  // clears key_len + val_len
    if (!wrote.ok()) {
      (void)UnlockSlot(slot, locked);
      return wrote;
    }
    CacheErase(slot);
    return UnlockSlot(slot, locked);
  }
  return Status(ErrorCode::kNotFound, "key not found");
}

}  // namespace rstore::kv
