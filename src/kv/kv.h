// RKV: a key-value store built entirely on the RStore memory-like API —
// the kind of client-side data structure the paper's abstract positions
// RStore for ("a DRAM-based data store ... unique memory-like API").
//
// Design (Pilaf/FaRM-flavoured, all client-side):
//   * one RStore region holds a fixed-size open-addressing hash table;
//     slot i lives at a fixed byte offset, so every operation translates
//     to one-sided IO against computable addresses;
//   * each slot is guarded by an RDMA seqlock: an 8-byte version word
//     that writers take odd via remote compare-and-swap and release even
//     (+2) after the payload write. Readers validate that the version
//     was even and unchanged around the payload read, so torn reads
//     retry instead of returning garbage;
//   * collisions use linear probing with tombstones; an all-zero slot
//     terminates a probe chain.
//
// Every client maps the region once and then operates with no master
// involvement: GET costs one slot read (plus a version validate), PUT a
// CAS + two writes. Multiple clients on multiple machines can operate
// concurrently on the same table.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/client.h"

namespace rstore::kv {

// The on-region table format, public so other dataplanes (the open-loop
// load engine in src/load composes slot IO with raw verbs, the bulk
// loader composes whole table images locally) speak exactly the byte
// layout KvStore reads and writes. Offsets are within one slot:
//   0  u64 version   even = stable, odd = writer holds the seqlock;
//                    0 with key_len 0 = never used (ends probe chains)
//   8  u16 key_len   0 with version > 0 = tombstone
//  10  u16 (pad)
//  12  u32 val_len
//  16  (pad to 24)
//  24  key bytes, then value bytes
// The region starts with a 64-byte header: magic, buckets, slot_bytes,
// max_probe (see KvStore::Create).
struct SlotLayout {
  static constexpr uint64_t kMagic = 0x524b563144424d53ULL;  // "RKV1DBMS"
  static constexpr uint64_t kHeaderBytes = 64;
  static constexpr uint32_t kSlotHeader = 24;
  static constexpr uint64_t kVersionOff = 0;
  static constexpr uint64_t kKeyLenOff = 8;
  static constexpr uint64_t kValLenOff = 12;
  static constexpr uint64_t kPayloadOff = 24;

  // Byte offset of `slot` within the region.
  [[nodiscard]] static constexpr uint64_t SlotOffset(
      uint64_t slot, uint32_t slot_bytes) noexcept {
    return kHeaderBytes + slot * slot_bytes;
  }
  // Home slot of a key (the probe chain starts here).
  [[nodiscard]] static uint64_t HomeSlot(std::string_view key,
                                         uint64_t buckets) noexcept;
  // Composes a stable slot image (even `version`, key, value) into
  // `dst[0, slot_bytes)`. Requires key+value to fit the slot.
  static void Compose(std::byte* dst, uint32_t slot_bytes, uint64_t version,
                      std::string_view key,
                      std::span<const std::byte> value) noexcept;
};

struct KvOptions {
  uint64_t buckets = 4096;   // slots in the table (fixed at create time)
  uint32_t slot_bytes = 256; // per-slot storage incl. 24-byte header
  uint32_t max_probe = 16;   // linear-probe window before "table full"
  // Client-local slot cache (0 = off; not part of the table geometry).
  // A cached slot is validated on every hit with one 8-byte remote read
  // of its seqlock word: version unchanged and even means the cached
  // payload is byte-identical to the remote slot, so a hot GET costs one
  // tiny read instead of a slot-sized read plus a validate read — and
  // linearizability is untouched because the validate is exactly the
  // seqlock check an uncached read performs.
  uint32_t cache_slots = 0;
};

struct KvStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t probe_reads = 0;     // slot reads issued (≥ ops)
  uint64_t version_retries = 0; // seqlock conflicts observed
  uint64_t cache_hits = 0;      // slot reads served locally (validated)
  uint64_t cache_misses = 0;    // lookups that fell back to a full read
  uint64_t cache_invalidations = 0;  // entries dropped (delete/stale)
};

class KvStore {
 public:
  // Creates a new table in a fresh region named `name`.
  static Result<std::unique_ptr<KvStore>> Create(core::RStoreClient& client,
                                                 const std::string& name,
                                                 KvOptions options = {});
  // Opens an existing table (reads its header from the region).
  // `cache_slots` is this client's local slot-cache size; the table
  // geometry always comes from the header.
  static Result<std::unique_ptr<KvStore>> Open(core::RStoreClient& client,
                                               const std::string& name,
                                               uint32_t cache_slots = 0);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Returns the value, or kNotFound.
  Result<std::vector<std::byte>> Get(std::string_view key);
  // Inserts or overwrites. Fails with kOutOfMemory when the probe window
  // is full, kInvalidArgument when key+value exceed the slot.
  Status Put(std::string_view key, std::span<const std::byte> value);
  Status Put(std::string_view key, std::string_view value) {
    return Put(key, std::span<const std::byte>(
                        reinterpret_cast<const std::byte*>(value.data()),
                        value.size()));
  }
  // Removes the key; kNotFound if absent.
  Status Delete(std::string_view key);

  [[nodiscard]] const KvStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const KvOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] uint32_t max_value_bytes() const noexcept {
    return options_.slot_bytes - kSlotHeader;
  }

 private:
  static constexpr uint64_t kMagic = SlotLayout::kMagic;
  static constexpr uint64_t kHeaderBytes = SlotLayout::kHeaderBytes;
  static constexpr uint32_t kSlotHeader = SlotLayout::kSlotHeader;

  KvStore(core::RStoreClient& client, core::MappedRegion* region,
          KvOptions options);

  [[nodiscard]] uint64_t SlotOffset(uint64_t slot) const noexcept {
    return kHeaderBytes + slot * options_.slot_bytes;
  }
  // Reads slot into scratch; returns its version word. Fails with
  // kAborted when the slot's seqlock indicates a concurrent writer.
  // Serves from the slot cache (validate-on-hit) when one is configured.
  Result<uint64_t> ReadSlot(uint64_t slot, std::byte* dst);
  // Unvalidated slot read, for re-checks while holding the seqlock.
  Status ReadSlotRaw(uint64_t slot, std::byte* dst);
  // Takes the slot's seqlock (even -> odd). Retries while writers hold
  // it; fails after too many conflicts.
  Result<uint64_t> LockSlot(uint64_t slot);
  Status UnlockSlot(uint64_t slot, uint64_t locked_version);

  struct SlotView {
    uint64_t version;
    uint16_t key_len;
    uint32_t val_len;
    const std::byte* key;
    const std::byte* value;
  };
  [[nodiscard]] SlotView Parse(const std::byte* slot) const;

  // Op bodies; the public wrappers add rlin history capture (observe-only,
  // see check/lin.h) around them when the simulation has a LinChecker.
  Result<std::vector<std::byte>> GetImpl(std::string_view key);
  Status PutImpl(std::string_view key, std::span<const std::byte> value);
  Status DeleteImpl(std::string_view key);

  // Slot-cache bookkeeping (only active when options_.cache_slots > 0).
  struct CachedSlot {
    uint64_t version = 0;
    std::vector<std::byte> bytes;  // full slot image at `version`
    std::list<uint64_t>::iterator lru;
  };
  // Upserts the cache entry for `slot` (LRU-evicting at capacity).
  void CacheStore(uint64_t slot, uint64_t version, const std::byte* bytes);
  void CacheErase(uint64_t slot);

  core::RStoreClient& client_;
  core::MappedRegion* region_;
  KvOptions options_;
  core::PinnedBuffer scratch_{};  // one slot for reads
  core::PinnedBuffer write_buf_{};
  core::PinnedBuffer version_buf_{};  // 8-byte pinned word for seqlock IO
  std::unordered_map<uint64_t, CachedSlot> slot_cache_;
  std::list<uint64_t> slot_lru_;  // front = most recently used
  KvStats stats_;
  // Set by PutImpl/DeleteImpl once the payload/tombstone write has been
  // posted: a failure after this point leaves the op's effect undefined,
  // so the wrapper records it as *pending* (may have happened) rather
  // than dropping it. KvStore is client-thread-local, so a plain bool.
  bool lin_wrote_payload_ = false;
};

}  // namespace rstore::kv
