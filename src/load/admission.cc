#include "load/admission.h"

#include <algorithm>

namespace rstore::load {

AdmissionController::AdmissionController(uint32_t servers, bool enabled,
                                         uint32_t window_per_server,
                                         uint32_t max_deferred)
    : enabled_(enabled),
      window_(std::max(window_per_server, 1u)),
      max_deferred_(max_deferred),
      inflight_(servers, 0),
      queues_(servers) {}

Admit AdmissionController::TryAdmit(uint32_t server, uint32_t session_tag) {
  uint32_t& inflight = inflight_.at(server);
  if (!enabled_ || inflight < window_) {
    ++inflight;
    ++total_inflight_;
    ++stats_.admitted;
    stats_.inflight_high_water = std::max(stats_.inflight_high_water,
                                          inflight);
    return Admit::kAdmit;
  }
  std::deque<uint32_t>& q = queues_.at(server);
  if (q.size() >= max_deferred_) {
    ++stats_.shed;
    return Admit::kShed;
  }
  q.push_back(session_tag);
  ++stats_.deferred;
  stats_.deferred_high_water = std::max(
      stats_.deferred_high_water, static_cast<uint32_t>(q.size()));
  return Admit::kDefer;
}

int64_t AdmissionController::Release(uint32_t server) {
  uint32_t& inflight = inflight_.at(server);
  --inflight;
  --total_inflight_;
  std::deque<uint32_t>& q = queues_.at(server);
  if (q.empty()) return -1;
  const uint32_t tag = q.front();
  q.pop_front();
  // The freed slot transfers to the deferred op: it is in flight from
  // this instant.
  ++inflight;
  ++total_inflight_;
  stats_.inflight_high_water = std::max(stats_.inflight_high_water,
                                        inflight);
  return static_cast<int64_t>(tag);
}

}  // namespace rstore::load
