// Per-server admission control for the client dataplane.
//
// RStore memory servers are deliberately passive — the data path is
// one-sided, no server CPU runs per IO — so "the server is overloaded"
// manifests purely as queueing: NIC egress queues, QP send queues, and
// ballooning in-flight windows. Admission is therefore enforced where
// the decision can be made, at the client dataplane, per *target*
// server: each engine caps the operations it keeps in flight against
// each memory server (the window), queues arrivals beyond the window in
// FIFO order (deferral — queue-depth backpressure), and sheds outright
// once the deferral queue itself is full. Shedding is what keeps the
// tail of *completed* operations bounded past the saturation knee: the
// alternative is an unbounded queue whose waiting time — measured from
// intended send time, as it must be — diverges.
//
// One controller per engine keeps the state partition-local (engines on
// different client nodes never share memory), so partitioned-scheduler
// runs stay deterministic; the cluster-wide in-flight bound is then
// window_per_server x engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace rstore::load {

enum class Admit : uint8_t {
  kAdmit,  // start now; caller must Release() when the op ends
  kDefer,  // parked in the server's FIFO; re-admitted by a Release()
  kShed,   // rejected outright (deferral queue full)
};

struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t deferred = 0;
  uint64_t shed = 0;
  uint32_t inflight_high_water = 0;  // max in-flight on any one server
  uint32_t deferred_high_water = 0;  // max depth of any one defer queue
};

class AdmissionController {
 public:
  // `enabled` = false turns the controller into a pass-through that still
  // tracks in-flight counts and high-water marks (the "without admission"
  // arm of E13 reports them).
  AdmissionController(uint32_t servers, bool enabled,
                      uint32_t window_per_server, uint32_t max_deferred);

  // Asks to start an op against `server`. On kDefer the (session) tag is
  // parked and will come back out of Release() in FIFO order.
  Admit TryAdmit(uint32_t server, uint32_t session_tag);

  // Ends an admitted op. If a deferred session becomes admitted by the
  // freed slot, returns its tag (already accounted in flight); the caller
  // must start that op now. Returns -1 otherwise.
  int64_t Release(uint32_t server);

  [[nodiscard]] uint32_t inflight(uint32_t server) const {
    return inflight_.at(server);
  }
  [[nodiscard]] size_t deferred(uint32_t server) const {
    return queues_.at(server).size();
  }
  [[nodiscard]] bool idle() const noexcept { return total_inflight_ == 0; }
  [[nodiscard]] const AdmissionStats& stats() const noexcept {
    return stats_;
  }

 private:
  const bool enabled_;
  const uint32_t window_;
  const uint32_t max_deferred_;
  std::vector<uint32_t> inflight_;          // admitted ops per server
  std::vector<std::deque<uint32_t>> queues_;  // deferred session tags
  uint64_t total_inflight_ = 0;
  AdmissionStats stats_;
};

}  // namespace rstore::load
