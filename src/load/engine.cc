#include "load/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "check/lin.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::load {

using kv::SlotLayout;

namespace {

uint64_t Load64(const std::byte* p) noexcept {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void Store64(std::byte* p, uint64_t v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

std::string_view KeyView(const std::byte* key) noexcept {
  return {reinterpret_cast<const char*>(key), 8};
}

}  // namespace

LoadEngine::LoadEngine(core::RStoreClient& client, std::string table,
                       const LoadOptions& options, uint32_t engine_index,
                       uint32_t engine_count)
    : client_(client),
      table_(std::move(table)),
      options_(options),
      engine_index_(engine_index),
      engine_count_(engine_count),
      mux_(client.device()),
      hotkeys_(options_.hotkey_capacity) {}

LoadEngine::~LoadEngine() {
  if (arena_mr_ != nullptr && pd_ != nullptr) {
    (void)pd_->DeregisterMemory(arena_mr_);
  }
}

void LoadEngine::EncodeKey(uint64_t id, std::byte out[8]) noexcept {
  std::memcpy(out, &id, sizeof(id));
}

uint64_t LoadEngine::SlotOffset(uint64_t slot) const noexcept {
  return SlotLayout::SlotOffset(slot, geometry_.slot_bytes);
}

std::byte* LoadEngine::Scratch(uint32_t s) noexcept {
  return arena_.data() + static_cast<size_t>(s) * stride_;
}

uint64_t LoadEngine::Cookie(uint32_t s) const noexcept {
  return (static_cast<uint64_t>(s) << 32) | sessions_[s].gen;
}

uint32_t LoadEngine::ServerIndexOf(uint64_t slot) {
  // The slot's version cell (8 bytes at the slot start) never straddles a
  // slab boundary (slab sizes are 8-aligned; validated in Setup), so the
  // home server of an op is always well defined.
  auto span = region_->Resolve(SlotOffset(slot) + SlotLayout::kVersionOff, 8);
  if (!span.ok()) return 0;
  return server_index_.at(span->server_node);
}

size_t LoadEngine::Moderation() const noexcept {
  // CQ interrupt moderation: wait for a batch proportional to the
  // in-flight count, so heavy load amortizes wakeups and light load
  // stays prompt.
  size_t m = static_cast<size_t>(inflight_wrs_ / 4);
  m = std::clamp<size_t>(m, 1, options_.moderation_max);
  return std::min<size_t>(m, static_cast<size_t>(inflight_wrs_));
}

verbs::SendWr LoadEngine::ReadWr(const core::RemoteSpan& span, std::byte* dst,
                                 uint32_t len, uint64_t cookie,
                                 bool signaled) {
  verbs::SendWr wr;
  wr.wr_id = cookie;
  wr.opcode = verbs::Opcode::kRdmaRead;
  wr.local = {dst, len, arena_mr_->lkey()};
  wr.remote_addr = span.remote_addr;
  wr.rkey = span.rkey;
  wr.signaled = signaled;
  return wr;
}

Status LoadEngine::CollectPieces(uint64_t offset, uint64_t length,
                                 std::byte* local) {
  pieces_.clear();
  const uint64_t slab = region_->desc().slab_size;
  while (length > 0) {
    const uint64_t in_slab = offset % slab;
    const uint64_t n = std::min(length, slab - in_slab);
    auto span = region_->Resolve(offset, n);
    if (!span.ok()) return span.status();
    pieces_.push_back({*span, local, static_cast<uint32_t>(n)});
    offset += n;
    local += n;
    length -= n;
  }
  return Status::Ok();
}

void LoadEngine::ResolveObs() {
  obs::Telemetry* tel = client_.device().network().sim().telemetry();
  if (tel == obs_owner_) return;
  obs_owner_ = tel;
  if (tel == nullptr) {
    obs_latency_ = nullptr;
    obs_completed_ = nullptr;
    obs_shed_ = nullptr;
    return;
  }
  obs::NodeMetrics& m =
      tel->metrics().ForNode(client_.device().node_id());
  obs_latency_ = &m.GetTimer("load.op_ns");
  obs_completed_ = &m.GetCounter("load.completed");
  obs_shed_ = &m.GetCounter("load.shed");
}

// ---------------------------------------------------------------------------
// Setup and preload.

Status LoadEngine::Setup() {
  lin_ = client_.device().network().sim().lin();
  RSTORE_ASSIGN_OR_RETURN(region_, client_.Rmap(table_));
  if (region_->desc().slab_size % 8 != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "slab size must be 8-byte aligned");
  }

  // Table geometry comes from the header, like KvStore::Open.
  RSTORE_ASSIGN_OR_RETURN(core::PinnedBuffer hdr,
                          client_.AllocBuffer(SlotLayout::kHeaderBytes));
  RSTORE_RETURN_IF_ERROR(region_->Read(0, hdr.data));
  if (Load64(hdr.begin()) != SlotLayout::kMagic) {
    return Status(ErrorCode::kInvalidArgument, "not an RKV table");
  }
  geometry_.buckets = Load64(hdr.begin() + 8);
  std::memcpy(&geometry_.slot_bytes, hdr.begin() + 16, 4);
  std::memcpy(&geometry_.max_probe, hdr.begin() + 20, 4);

  // Dense server index in slab order (mux + admission addressing).
  for (const auto& slab : region_->desc().slabs) {
    if (server_index_.emplace(slab.server_node, server_nodes_.size()).second) {
      server_nodes_.push_back(slab.server_node);
    }
  }
  RSTORE_RETURN_IF_ERROR(mux_.Connect(server_nodes_, options_.qp_per_server));
  admission_ = std::make_unique<AdmissionController>(
      static_cast<uint32_t>(server_nodes_.size()), options_.admission,
      options_.window_per_server, options_.max_deferred);

  // One zipf generator per engine: its O(n) CDF is too heavy to clone per
  // session, and sessions are stepped in deterministic order anyway.
  zipf_ = std::make_unique<ZipfGenerator>(
      options_.preload_keys, options_.theta,
      options_.seed ^ (0x9e3779b97f4a7c15ULL * (engine_index_ + 1)));

  // Block-partition the sessions over engines.
  const uint32_t total = options_.sessions;
  const uint32_t base = total / engine_count_;
  const uint32_t rem = total % engine_count_;
  const uint32_t count = base + (engine_index_ < rem ? 1 : 0);
  first_global_session_ =
      engine_index_ * base + std::min(engine_index_, rem);
  if (count == 0) {
    return Status(ErrorCode::kInvalidArgument, "engine has no sessions");
  }
  sessions_.resize(count);
  for (uint32_t s = 0; s < count; ++s) {
    const uint64_t gsid = first_global_session_ + s;
    sessions_[s].rng =
        Rng(options_.seed ^ (0x2545f4914f6cdd1dULL * (gsid + 1)));
  }

  // Scratch arena: per-session read/compose area plus three 8-byte cells
  // (version validate, CAS result, unlock word).
  const uint32_t slots =
      options_.mix.scan > 0.0 ? std::max(options_.scan_len, 1u) : 1u;
  read_area_ = static_cast<size_t>(geometry_.slot_bytes) * slots;
  stride_ = (read_area_ + 24 + 7) & ~size_t{7};
  arena_.assign(static_cast<size_t>(count) * stride_, std::byte{0});
  pd_ = &client_.device().CreatePd();
  RSTORE_ASSIGN_OR_RETURN(
      arena_mr_,
      pd_->RegisterMemory(arena_.data(), arena_.size(), verbs::kLocalWrite));
  stats_.sessions = count;
  stats_.qps = mux_.qp_count();
  if (options_.rtrace.mode != obs::RtraceMode::kOff) {
    rtrace_ = std::make_unique<obs::RtraceCollector>(options_.rtrace);
  }
  return Status::Ok();
}

Status LoadEngine::PreloadTable(core::RStoreClient& client,
                                const std::string& name,
                                const LoadOptions& options) {
  kv::KvOptions geo;
  geo.buckets = options.buckets();
  geo.slot_bytes = options.slot_bytes;
  geo.max_probe = options.max_probe;
  RSTORE_ASSIGN_OR_RETURN(auto store, kv::KvStore::Create(client, name, geo));
  (void)store;
  RSTORE_ASSIGN_OR_RETURN(core::MappedRegion * region, client.Rmap(name));

  // Compose the whole table locally, then stream it with one large write:
  // the per-key Put protocol (probe, CAS, write, release) is pure waste
  // when nobody else can observe the table yet.
  const uint64_t table_bytes = geo.buckets * geo.slot_bytes;
  RSTORE_ASSIGN_OR_RETURN(core::PinnedBuffer img,
                          client.AllocBuffer(table_bytes));
  std::memset(img.begin(), 0, table_bytes);
  Rng values(options.seed ^ 0x6c078965ULL);
  std::vector<std::byte> value(options.value_bytes);
  uint64_t placed = 0;
  for (uint64_t id = 0; id < options.preload_keys; ++id) {
    std::byte kb[8];
    EncodeKey(id, kb);
    const uint64_t home = SlotLayout::HomeSlot(KeyView(kb), geo.buckets);
    for (uint32_t p = 0; p < geo.max_probe; ++p) {
      const uint64_t slot = (home + p) % geo.buckets;
      std::byte* dst = img.begin() + slot * geo.slot_bytes;
      if (Load64(dst + SlotLayout::kVersionOff) != 0) continue;
      values.Fill(value.data(), value.size());
      SlotLayout::Compose(dst, geo.slot_bytes, /*version=*/2, KeyView(kb),
                          value);
      // rlin: the preloaded value is the key's initial register state.
      if (check::LinChecker* lin = client.device().network().sim().lin();
          lin != nullptr) {
        lin->RecordInit(id,
                        check::LinChecker::Digest(value.data(), value.size()));
      }
      ++placed;
      break;
    }
  }
  if (placed < options.preload_keys) {
    return Status(ErrorCode::kOutOfMemory, "preload overflowed probe window");
  }
  return region->Write(SlotLayout::kHeaderBytes,
                       std::span<const std::byte>(img.begin(), table_bytes));
}

// ---------------------------------------------------------------------------
// Arrival schedule.

void LoadEngine::ScheduleFirstArrivals() {
  for (uint32_t s = 0; s < sessions_.size(); ++s) {
    sessions_[s].next_intended = t0_;
    PushNextArrival(s);
  }
}

void LoadEngine::PushNextArrival(uint32_t s) {
  Session& ses = sessions_[s];
  // Exponential gap at the curve's instantaneous per-session rate. The
  // draw happens at schedule time, so the arrival process is open loop:
  // completions never influence when the next op is due.
  const double rate =
      options_.curve.RateAt(options_.offered_load,
                            ses.next_intended - t0_, options_.duration) /
      static_cast<double>(options_.sessions);
  if (!(rate > 0.0)) {
    ses.next_intended = t_end_;
    return;
  }
  const double u = ses.rng.NextDouble();
  double gap_s = -std::log1p(-u) / rate;
  if (!(gap_s >= 1e-9)) gap_s = 1e-9;
  const double cap_s = sim::ToSeconds(options_.duration) + 1.0;
  if (gap_s >= cap_s) {
    ses.next_intended = t_end_;
    return;
  }
  ses.next_intended += std::max<sim::Nanos>(
      1, static_cast<sim::Nanos>(std::llround(gap_s * 1e9)));
  if (ses.next_intended < t_end_) {
    arrivals_.push({ses.next_intended, s});
  }
}

void LoadEngine::OnArrival(uint32_t s, sim::Nanos intended) {
  Session& ses = sessions_[s];
  ++stats_.arrivals;
  ++open_ops_;
  // The intended time anchors the latency measurement even if the session
  // is busy — the op starts late and the wait shows up in the histogram.
  ses.backlog.push_back(intended);
  PushNextArrival(s);
  if (ses.phase == Phase::kIdle) StartNextFromBacklog(s);
}

void LoadEngine::StartNextFromBacklog(uint32_t s) {
  Session& ses = sessions_[s];
  while (ses.phase == Phase::kIdle && !ses.backlog.empty()) {
    BeginOp(s);  // leaves phase == kIdle only when the op was shed
  }
}

void LoadEngine::BeginOp(uint32_t s) {
  Session& ses = sessions_[s];
  ses.intended = ses.backlog.front();
  ses.backlog.pop_front();
  // Deadline shed: under sustained overload the per-session backlog is
  // unbounded (open loop), so an op can be stale before it is even
  // started. Starting it anyway just reports queueing delay the operator
  // already chose to shed; dropping it here is what keeps the
  // completed-op tail bounded.
  if (options_.admission && options_.shed_deadline > 0 &&
      sim::Now() > ses.intended + options_.shed_deadline) {
    ++stats_.shed;
    --open_ops_;
    ResolveObs();
    if (obs_shed_ != nullptr) obs_shed_->Inc();
    return;  // phase stays kIdle; caller loop starts the next backlog op
  }
  if (rtrace_ != nullptr) {
    // New op: reset the stage breakdown and charge everything between the
    // intended send and this instant to backlog wait. From here on, each
    // transition charges [tr_cursor, now] to exactly one stage, so the
    // stages telescope to done - intended.
    ses.op_id = ((static_cast<uint64_t>(first_global_session_) + s) << 32) |
                ses.op_count;
    ses.tr_stage = {};
    ses.tr_last = {};
    ses.tr_cursor = ses.intended;
    ChargeStage(ses, obs::RtraceStage::kBacklog, sim::Now());
  }
  ++ses.op_count;
  DrawKey(s);
  hotkeys_.Offer(ses.key_id);
  ses.retries_left = options_.op_retry_budget;
  ses.probe = 0;
  ses.reusable = -1;
  ses.target = -1;
  ses.failed = false;
  ses.step_error = false;
  ses.lin_staged = false;
  ses.server_idx = ServerIndexOf(ses.home);
  switch (admission_->TryAdmit(ses.server_idx, s)) {
    case Admit::kAdmit:
      BeginAdmitted(s);
      break;
    case Admit::kDefer:
      ses.phase = Phase::kDeferred;
      break;
    case Admit::kShed:
      ++stats_.shed;
      --open_ops_;
      ResolveObs();
      if (obs_shed_ != nullptr) obs_shed_->Inc();
      break;  // phase stays kIdle; caller loop starts the next backlog op
  }
}

void LoadEngine::BeginAdmitted(uint32_t s) {
  if (rtrace_ != nullptr) {
    // Zero when admission admitted synchronously; the FIFO defer wait
    // when this is the readmit callback of a released window slot.
    ChargeStage(sessions_[s], obs::RtraceStage::kAdmit, sim::Now());
  }
  if (sessions_[s].op == OpType::kScan) {
    StageScan(s);
  } else {
    StageProbe(s);
  }
}

void LoadEngine::DrawKey(uint32_t s) {
  Session& ses = sessions_[s];
  ses.op = options_.mix.Pick(ses.rng);
  if (ses.op == OpType::kInsert) {
    // Globally unique fresh key: stripe the id space by session so no two
    // inserts ever collide.
    ses.key_id = options_.preload_keys +
                 ses.insert_seq * options_.sessions +
                 (first_global_session_ + s);
    ++ses.insert_seq;
  } else {
    ses.key_id = zipf_->Next();
  }
  EncodeKey(ses.key_id, ses.key_bytes);
  ses.home = SlotLayout::HomeSlot(KeyView(ses.key_bytes), geometry_.buckets);
}

// ---------------------------------------------------------------------------
// Op state machine: staging.

void LoadEngine::StageProbe(uint32_t s) {
  Session& ses = sessions_[s];
  const uint64_t slot = (ses.home + ses.probe) % geometry_.buckets;
  std::byte* scratch = Scratch(s);
  if (Status st =
          CollectPieces(SlotOffset(slot), geometry_.slot_bytes, scratch);
      !st.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  const uint64_t cookie = Cookie(s);
  if (pieces_.size() == 1) {
    // Common case: the slot lives in one slab. Chain the full-slot read
    // and the 8-byte version re-read on the same QP — RC execution order
    // makes the re-read observe any version change that raced the slot
    // read, which is the seqlock validation, in a single round trip.
    const Piece& p = pieces_[0];
    const uint32_t si = server_index_.at(p.span.server_node);
    mux_.Stage(si, s, Lane::kSpeculative,
               ReadWr(p.span, p.local, p.length, 0, /*signaled=*/false));
    mux_.Stage(si, s, Lane::kSpeculative,
               ReadWr(p.span, scratch + read_area_, 8, cookie,
                      /*signaled=*/true));
    ses.pending = 1;
    inflight_wrs_ += 1;
    ses.phase = Phase::kProbe;
  } else {
    // Slab-straddling slot: pieces may land on different QPs, so chained
    // ordering cannot carry the validation — read the pieces first, then
    // issue the version re-read as its own step (kProbeVerify).
    for (const Piece& p : pieces_) {
      mux_.Stage(server_index_.at(p.span.server_node), s, Lane::kSpeculative,
                 ReadWr(p.span, p.local, p.length, cookie,
                        /*signaled=*/true));
    }
    ses.pending = static_cast<uint32_t>(pieces_.size());
    inflight_wrs_ += pieces_.size();
    ses.phase = Phase::kProbePieces;
  }
}

void LoadEngine::StageProbeVerify(uint32_t s) {
  Session& ses = sessions_[s];
  const uint64_t slot = (ses.home + ses.probe) % geometry_.buckets;
  auto span = region_->Resolve(SlotOffset(slot) + SlotLayout::kVersionOff, 8);
  if (!span.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  mux_.Stage(server_index_.at(span->server_node), s, Lane::kSpeculative,
             ReadWr(*span, Scratch(s) + read_area_, 8, Cookie(s),
                    /*signaled=*/true));
  ses.pending = 1;
  inflight_wrs_ += 1;
  ses.phase = Phase::kProbeVerify;
}

void LoadEngine::StageLockPeek(uint32_t s) {
  Session& ses = sessions_[s];
  auto span = region_->Resolve(
      SlotOffset(static_cast<uint64_t>(ses.target)) + SlotLayout::kVersionOff,
      8);
  if (!span.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  mux_.Stage(server_index_.at(span->server_node), s, Lane::kSpeculative,
             ReadWr(*span, Scratch(s) + read_area_, 8, Cookie(s),
                    /*signaled=*/true));
  ses.pending = 1;
  inflight_wrs_ += 1;
  ses.phase = Phase::kLockPeek;
}

void LoadEngine::StageLockCas(uint32_t s) {
  Session& ses = sessions_[s];
  auto span = region_->Resolve(
      SlotOffset(static_cast<uint64_t>(ses.target)) + SlotLayout::kVersionOff,
      8);
  if (!span.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  verbs::SendWr wr;
  wr.wr_id = Cookie(s);
  wr.opcode = verbs::Opcode::kCompareSwap;
  wr.local = {Scratch(s) + read_area_ + 8, 8, arena_mr_->lkey()};
  wr.remote_addr = span->remote_addr;
  wr.rkey = span->rkey;
  wr.compare = ses.lock_compare;
  wr.swap_or_add = ses.lock_compare + 1;  // even -> odd: locked
  wr.signaled = true;
  mux_.Stage(server_index_.at(span->server_node), s, Lane::kPlain, wr);
  ses.pending = 1;
  inflight_wrs_ += 1;
  ses.phase = Phase::kLockCas;
}

void LoadEngine::StageRecheck(uint32_t s) {
  Session& ses = sessions_[s];
  std::byte* scratch = Scratch(s);
  // The slot is locked, so a plain (checked) read is safe. The version
  // word is ours — zero the local copy and read from key_len onward.
  Store64(scratch + SlotLayout::kVersionOff, 0);
  if (Status st = CollectPieces(
          SlotOffset(static_cast<uint64_t>(ses.target)) +
              SlotLayout::kKeyLenOff,
          geometry_.slot_bytes - SlotLayout::kKeyLenOff,
          scratch + SlotLayout::kKeyLenOff);
      !st.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  const uint64_t cookie = Cookie(s);
  for (const Piece& p : pieces_) {
    mux_.Stage(server_index_.at(p.span.server_node), s, Lane::kPlain,
               ReadWr(p.span, p.local, p.length, cookie, /*signaled=*/true));
  }
  ses.pending = static_cast<uint32_t>(pieces_.size());
  inflight_wrs_ += pieces_.size();
  ses.phase = Phase::kRecheck;
}

void LoadEngine::StageWrite(uint32_t s) {
  Session& ses = sessions_[s];
  std::byte* img = Scratch(s);
  // Compose the new slot image in place (the recheck bytes are spent) and
  // write everything from key_len onward; the locked version word is
  // untouched until the release.
  std::memset(img, 0, SlotLayout::kSlotHeader);
  const uint16_t key_len = 8;
  const uint32_t val_len = options_.value_bytes;
  std::memcpy(img + SlotLayout::kKeyLenOff, &key_len, sizeof(key_len));
  std::memcpy(img + SlotLayout::kValLenOff, &val_len, sizeof(val_len));
  std::memcpy(img + SlotLayout::kPayloadOff, ses.key_bytes, key_len);
  ses.rng.Fill(img + SlotLayout::kPayloadOff + key_len, val_len);
  const uint64_t write_len =
      SlotLayout::kSlotHeader - SlotLayout::kKeyLenOff + key_len + val_len;
  if (Status st = CollectPieces(
          SlotOffset(static_cast<uint64_t>(ses.target)) +
              SlotLayout::kKeyLenOff,
          write_len, img + SlotLayout::kKeyLenOff);
      !st.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  const uint64_t cookie = Cookie(s);
  for (const Piece& p : pieces_) {
    verbs::SendWr wr;
    wr.wr_id = cookie;
    wr.opcode = verbs::Opcode::kRdmaWrite;
    wr.local = {p.local, p.length, arena_mr_->lkey()};
    wr.remote_addr = p.span.remote_addr;
    wr.rkey = p.span.rkey;
    // Signaled: the release below must not be posted until this write's
    // completion is polled, both for the seqlock protocol and so rcheck
    // sees the payload write retired before the release edge.
    wr.signaled = true;
    mux_.Stage(server_index_.at(p.span.server_node), s, Lane::kPlain, wr);
  }
  ses.pending = static_cast<uint32_t>(pieces_.size());
  inflight_wrs_ += pieces_.size();
  // rlin: the payload leaves the client here. Recorded as the op's write
  // digest on success, or as a pending maybe-write if the op fails after
  // this point.
  if (lin_ != nullptr) {
    ses.lin_write_digest = check::LinChecker::Digest(
        img + SlotLayout::kPayloadOff + key_len, val_len);
    ses.lin_staged = true;
  }
  ses.phase = Phase::kWrite;
}

void LoadEngine::StageUnlock(uint32_t s) {
  Session& ses = sessions_[s];
  auto span = region_->Resolve(
      SlotOffset(static_cast<uint64_t>(ses.target)) + SlotLayout::kVersionOff,
      8);
  if (!span.ok()) {
    FinishOp(s, false);
    return;
  }
  std::byte* cell = Scratch(s) + read_area_ + 16;
  Store64(cell, ses.locked_version + 1);  // odd -> next even: released
  ++ses.gen;
  verbs::SendWr wr;
  wr.wr_id = Cookie(s);
  wr.opcode = verbs::Opcode::kRdmaWrite;
  wr.local = {cell, 8, arena_mr_->lkey()};
  wr.remote_addr = span->remote_addr;
  wr.rkey = span->rkey;
  wr.signaled = true;
  mux_.Stage(server_index_.at(span->server_node), s, Lane::kSyncCell, wr);
  ses.pending = 1;
  inflight_wrs_ += 1;
  ses.phase = Phase::kUnlock;
}

void LoadEngine::StageScan(uint32_t s) {
  Session& ses = sessions_[s];
  const uint64_t count =
      std::min<uint64_t>(std::max(options_.scan_len, 1u),
                         geometry_.buckets - ses.home);
  if (Status st = CollectPieces(SlotOffset(ses.home),
                                count * geometry_.slot_bytes, Scratch(s));
      !st.ok()) {
    FinishOp(s, false);
    return;
  }
  ++ses.gen;
  const uint64_t cookie = Cookie(s);
  for (const Piece& p : pieces_) {
    mux_.Stage(server_index_.at(p.span.server_node), s, Lane::kSpeculative,
               ReadWr(p.span, p.local, p.length, cookie, /*signaled=*/true));
  }
  ses.pending = static_cast<uint32_t>(pieces_.size());
  inflight_wrs_ += pieces_.size();
  ses.phase = Phase::kScan;
}

// ---------------------------------------------------------------------------
// Op state machine: completion handling.

void LoadEngine::HandleCompletion(const verbs::WorkCompletion& wc) {
  const auto s = static_cast<uint32_t>(wc.wr_id >> 32);
  const auto gen = static_cast<uint32_t>(wc.wr_id & 0xffffffffu);
  if (inflight_wrs_ > 0) --inflight_wrs_;
  if (s >= sessions_.size()) {
    ++stats_.stale_completions;
    return;
  }
  Session& ses = sessions_[s];
  if (gen != ses.gen || ses.pending == 0) {
    ++stats_.stale_completions;
    return;
  }
  --ses.pending;
  if (!wc.ok()) ses.step_error = true;
  if (ses.pending > 0) return;  // multi-piece step still draining
  if (rtrace_ != nullptr) {
    ChargeWireStages(ses, wc.stamps, sim::Now());
  }
  if (ses.step_error) {
    FinishOp(s, false);
    return;
  }
  switch (ses.phase) {
    case Phase::kProbe:
    case Phase::kProbeVerify:
      OnProbeDone(s);
      break;
    case Phase::kProbePieces:
      StageProbeVerify(s);
      break;
    case Phase::kLockPeek:
      OnLockPeekDone(s);
      break;
    case Phase::kLockCas:
      OnLockCasDone(s);
      break;
    case Phase::kRecheck:
      OnRecheckDone(s);
      break;
    case Phase::kWrite:
      StageUnlock(s);
      break;
    case Phase::kUnlock:
      OnUnlockDone(s);
      break;
    case Phase::kScan:
      OnScanDone(s);
      break;
    default:
      ++stats_.stale_completions;
      break;
  }
}

void LoadEngine::OnProbeDone(uint32_t s) {
  Session& ses = sessions_[s];
  const std::byte* scratch = Scratch(s);
  const uint64_t v_slot = Load64(scratch + SlotLayout::kVersionOff);
  const uint64_t v_check = Load64(scratch + read_area_);
  if ((v_slot & 1) != 0 || v_check != v_slot) {
    RetryOp(s, /*backoff=*/true);  // torn or locked: seqlock retry
    return;
  }
  uint16_t key_len;
  std::memcpy(&key_len, scratch + SlotLayout::kKeyLenOff, sizeof(key_len));
  const bool writes = ses.op == OpType::kUpdate || ses.op == OpType::kInsert;

  if (v_slot == 0 && key_len == 0) {
    // Never-used slot: the probe chain ends here.
    if (!writes) {
      FinishOp(s, true, /*found=*/false);
    } else {
      ses.target = ses.reusable >= 0
                       ? ses.reusable
                       : static_cast<int64_t>(
                             (ses.home + ses.probe) % geometry_.buckets);
      StageLockPeek(s);
    }
    return;
  }
  if (key_len == 8 &&
      std::memcmp(scratch + SlotLayout::kPayloadOff, ses.key_bytes, 8) == 0) {
    if (ses.op == OpType::kRead) {
      FinishOp(s, true);
    } else {
      ses.target =
          static_cast<int64_t>((ses.home + ses.probe) % geometry_.buckets);
      StageLockPeek(s);
    }
    return;
  }
  if (key_len == 0 && ses.reusable < 0) {
    // Tombstone: remember it for inserts, keep probing (the key may live
    // further along the chain).
    ses.reusable =
        static_cast<int64_t>((ses.home + ses.probe) % geometry_.buckets);
  }
  if (++ses.probe >= geometry_.max_probe) {
    if (!writes) {
      FinishOp(s, true, /*found=*/false);
    } else if (ses.reusable >= 0) {
      ses.target = ses.reusable;
      StageLockPeek(s);
    } else {
      FinishOp(s, false);  // probe window full
    }
    return;
  }
  StageProbe(s);
}

void LoadEngine::OnLockPeekDone(uint32_t s) {
  Session& ses = sessions_[s];
  const uint64_t ver = Load64(Scratch(s) + read_area_);
  if ((ver & 1) != 0) {
    RetryOp(s, /*backoff=*/true);  // someone holds the lock
    return;
  }
  ses.lock_compare = ver;
  StageLockCas(s);
}

void LoadEngine::OnLockCasDone(uint32_t s) {
  Session& ses = sessions_[s];
  const uint64_t old = Load64(Scratch(s) + read_area_ + 8);
  if (old == ses.lock_compare) {
    ses.locked_version = ses.lock_compare + 1;
    StageRecheck(s);
    return;
  }
  // CAS lost. If the winner still holds the lock, back off; otherwise
  // re-peek immediately (same scheduling round).
  RetryOp(s, /*backoff=*/(old & 1) != 0);
}

void LoadEngine::OnRecheckDone(uint32_t s) {
  Session& ses = sessions_[s];
  const std::byte* scratch = Scratch(s);
  uint16_t key_len;
  std::memcpy(&key_len, scratch + SlotLayout::kKeyLenOff, sizeof(key_len));
  const bool ours =
      key_len == 8 &&
      std::memcmp(scratch + SlotLayout::kPayloadOff, ses.key_bytes, 8) == 0;
  if (ours || key_len == 0) {
    StageWrite(s);
    return;
  }
  // The slot changed hands between the probe and the lock: release it and
  // restart the whole op.
  ses.failed = true;
  StageUnlock(s);
}

void LoadEngine::OnUnlockDone(uint32_t s) {
  Session& ses = sessions_[s];
  if (ses.failed) {
    ses.failed = false;
    RetryOp(s, /*backoff=*/true);
    return;
  }
  FinishOp(s, true);
}

void LoadEngine::OnScanDone(uint32_t s) {
  // Best-effort snapshot scan (no per-slot seqlock validation); the read
  // itself rode the speculative lane so rcheck knows it may race.
  FinishOp(s, true);
}

void LoadEngine::RetryOp(uint32_t s, bool backoff) {
  Session& ses = sessions_[s];
  ++stats_.retries;
  if (ses.retries_left == 0) {
    FinishOp(s, false);
    return;
  }
  --ses.retries_left;
  // Lock-path conflicts resume at the peek (the target slot is known);
  // everything else restarts the probe where it stood. A post-recheck
  // restart re-probes from the home slot: the chain may have shifted.
  Phase resume = Phase::kProbe;
  if ((ses.phase == Phase::kLockPeek || ses.phase == Phase::kLockCas) &&
      ses.target >= 0) {
    resume = Phase::kLockPeek;
  } else if (ses.phase == Phase::kUnlock) {
    ses.probe = 0;
    ses.reusable = -1;
    ses.target = -1;
  }
  if (backoff) {
    ses.resume = resume;
    ses.phase = Phase::kBackoff;
    retries_.push({sim::Now() + options_.retry_backoff, s});
    return;
  }
  if (resume == Phase::kLockPeek) {
    StageLockPeek(s);
  } else {
    StageProbe(s);
  }
}

void LoadEngine::OnRetryTimer(uint32_t s) {
  Session& ses = sessions_[s];
  if (ses.phase != Phase::kBackoff) {
    ++stats_.stale_completions;
    return;
  }
  if (rtrace_ != nullptr) {
    ChargeStage(ses, obs::RtraceStage::kBackoff, sim::Now());
  }
  if (ses.resume == Phase::kLockPeek) {
    StageLockPeek(s);
  } else {
    StageProbe(s);
  }
}

void LoadEngine::FinishOp(uint32_t s, bool ok, bool found) {
  Session& ses = sessions_[s];
  const sim::Nanos now = sim::Now();
  const int64_t readmit = admission_->Release(ses.server_idx);
  // rlin history capture, before StartNextFromBacklog can reuse the
  // session's scratch. The invocation edge is the coordinated-omission
  // anchor (ses.intended): widening the interval only adds legal
  // linearization orders, so this stays sound (zero false positives)
  // while it may mask violations an exact-send anchor would expose.
  // Shed and never-admitted deferred ops never reach FinishOp, so they
  // never appear as completed responses. Scans are not single-register
  // ops and are skipped.
  if (lin_ != nullptr && ses.op != OpType::kScan) {
    const uint32_t lin_client = first_global_session_ + s;
    const auto inv = static_cast<uint64_t>(ses.intended);
    if (ok) {
      const bool is_write =
          ses.op == OpType::kUpdate || ses.op == OpType::kInsert ||
          (ses.op == OpType::kReadModifyWrite && found);
      if (is_write) {
        lin_->RecordOp(lin_client, check::LinOpKind::kWrite, ses.key_id,
                       ses.lin_write_digest, inv, static_cast<uint64_t>(now));
      } else {
        // Read path (including rmw that found no mapping): digest the
        // value bytes still in this session's scratch slot image.
        uint64_t digest = check::kLinAbsent;
        if (found) {
          const std::byte* scratch = Scratch(s);
          uint32_t val_len = 0;
          std::memcpy(&val_len, scratch + SlotLayout::kValLenOff,
                      sizeof(val_len));
          digest = check::LinChecker::Digest(
              scratch + SlotLayout::kPayloadOff + 8, val_len);
        }
        lin_->RecordOp(lin_client, check::LinOpKind::kRead, ses.key_id,
                       digest, inv, static_cast<uint64_t>(now));
      }
    } else if (ses.lin_staged) {
      // The op failed after its payload write was posted: the value may
      // or may not be visible to readers. Pending = may linearize at any
      // point after invocation, or never.
      lin_->RecordPending(lin_client, check::LinOpKind::kWrite, ses.key_id,
                          ses.lin_write_digest, inv);
    }
  }
  if (ok) {
    ++stats_.completed;
    ++stats_.completed_by_type[static_cast<uint32_t>(ses.op)];
    if (!found) ++stats_.not_found;
    const uint64_t latency = now - ses.intended;
    stats_.latency.Add(latency);
    if (ses.op == OpType::kRead || ses.op == OpType::kScan) {
      stats_.read_latency.Add(latency);
    } else {
      stats_.write_latency.Add(latency);
    }
    stats_.drained_at = now;
    ResolveObs();
    if (obs_latency_ != nullptr) {
      obs_latency_->Record(latency);
      obs_completed_->Inc();
    }
    if (rtrace_ != nullptr) {
      // Residue between the last stage charge and completion (zero when
      // the op finished inside a completion handler) lands in cqpoll, so
      // the stages sum exactly to `latency`.
      ChargeStage(ses, obs::RtraceStage::kCqPoll, now);
      obs::RtraceOp rec;
      rec.op_id = ses.op_id;
      rec.kind = static_cast<uint8_t>(ses.op);
      rec.server_node = server_nodes_[ses.server_idx];
      rec.intended_ns = static_cast<uint64_t>(ses.intended);
      rec.done_ns = static_cast<uint64_t>(now);
      rec.stage_ns = ses.tr_stage;
      rec.posted_ns = static_cast<uint64_t>(ses.tr_last.posted);
      rec.first_bit_ns = static_cast<uint64_t>(ses.tr_last.first_bit);
      rec.executed_ns = static_cast<uint64_t>(ses.tr_last.executed);
      rtrace_->Record(rtrace_seq_++, rec);
    }
  } else {
    ++stats_.errors;
  }
  --open_ops_;
  ses.phase = Phase::kIdle;
  StartNextFromBacklog(s);
  if (readmit >= 0) BeginAdmitted(static_cast<uint32_t>(readmit));
}

void LoadEngine::ChargeStage(Session& ses, obs::RtraceStage stage,
                             sim::Nanos now) {
  if (now > ses.tr_cursor) {
    ses.tr_stage[static_cast<uint32_t>(stage)] +=
        static_cast<uint64_t>(now - ses.tr_cursor);
    ses.tr_cursor = now;
  }
}

void LoadEngine::ChargeWireStages(Session& ses,
                                  const verbs::WireStamps& stamps,
                                  sim::Nanos now) {
  // Subdivide [tr_cursor, now] by the step's stamp chain. Each stamp is
  // clamped monotone into the interval, so absent stamps (loopback steps
  // never enter the port model; the wire stages collapse to zero width)
  // and any residue still telescope: the charges sum to now - tr_cursor.
  sim::Nanos cur = ses.tr_cursor;
  const auto charge = [&](obs::RtraceStage stage, sim::Nanos at) {
    const sim::Nanos t = std::clamp(at, cur, now);
    ses.tr_stage[static_cast<uint32_t>(stage)] +=
        static_cast<uint64_t>(t - cur);
    cur = t;
  };
  charge(obs::RtraceStage::kMux, stamps.posted);
  charge(obs::RtraceStage::kEgress, stamps.tx_start);
  charge(obs::RtraceStage::kWire, stamps.first_bit);
  charge(obs::RtraceStage::kServer, stamps.executed);
  charge(obs::RtraceStage::kAck, stamps.pushed);
  charge(obs::RtraceStage::kCqPoll, now);
  ses.tr_cursor = now;
  ses.tr_last = stamps;
}

// ---------------------------------------------------------------------------
// Main loop.

Status LoadEngine::Run() {
  RSTORE_RETURN_IF_ERROR(Setup());
  // Cross-engine start barrier: arrival schedules of every engine share
  // the same t0, so offered load aggregates as configured.
  RSTORE_RETURN_IF_ERROR(client_.NotifyInc("e13.armed"));
  RSTORE_ASSIGN_OR_RETURN(uint64_t armed,
                          client_.WaitNotify("e13.armed", engine_count_));
  (void)armed;
  t0_ = sim::Now();
  t_end_ = t0_ + options_.duration;
  stats_.window_start = t0_;
  ScheduleFirstArrivals();
  Status st = RunLoop();
  stats_.admission = admission_->stats();
  stats_.mux = mux_.stats();
  stats_.hotkeys = hotkeys_.TopK();
  ResolveObs();
  if (obs_owner_ != nullptr) {
    // Heavy hitters as gauges: rank-indexed so the merged metrics JSON
    // carries the sketch without a dedicated export path.
    obs::NodeMetrics& m =
        obs_owner_->metrics().ForNode(client_.device().node_id());
    for (size_t r = 0; r < stats_.hotkeys.size(); ++r) {
      const std::string prefix = "load.hotkeys." + std::to_string(r);
      m.GetGauge(prefix + ".key_id")
          .Set(static_cast<int64_t>(stats_.hotkeys[r].key_id));
      m.GetGauge(prefix + ".count")
          .Set(static_cast<int64_t>(stats_.hotkeys[r].count));
    }
  }
  if (rtrace_ != nullptr) {
    stats_.rtrace = rtrace_->Finalize();
    // Post-run span/flow export: recording order is a pure function of
    // the kept set, never of the schedule.
    if (obs_owner_ != nullptr && obs_owner_->tracing()) {
      obs::EmitRtraceTrace(obs_owner_->tracer(), stats_.rtrace,
                           client_.device().node_id());
    }
  }
  return st;
}

namespace {

// Deliveries that share a virtual instant can be queued around this
// thread's wake in a scheduler-dependent order: the legacy single queue
// stamps global post order, the partitioned merge stamps
// (source partition, post order). Sorting the batch by completion cookie
// makes processing a pure function of the batch contents, so the
// engine's timeline is bit-identical across --host-threads settings.
// stable_sort: split-probe pieces share one cookie and their handling is
// commutative, but keeping their relative order costs nothing.
void SortBatch(std::vector<verbs::WorkCompletion>& wcs) {
  std::stable_sort(wcs.begin(), wcs.end(),
                   [](const verbs::WorkCompletion& a,
                      const verbs::WorkCompletion& b) {
                     return a.wr_id < b.wr_id;
                   });
}

}  // namespace

Status LoadEngine::RunLoop() {
  std::vector<verbs::WorkCompletion> wcs;
  wcs.reserve(256);
  while (true) {
    const sim::Nanos now = sim::Now();
    uint64_t steps = 0;
    while (!retries_.empty() && retries_.top().at <= now) {
      const uint32_t s = retries_.top().session;
      retries_.pop();
      OnRetryTimer(s);
      ++steps;
    }
    while (!arrivals_.empty() && arrivals_.top().at <= now) {
      const TimerEntry e = arrivals_.top();
      arrivals_.pop();
      OnArrival(e.session, e.at);
      ++steps;
    }
    wcs.clear();
    if (inflight_wrs_ > 0) {
      // End-of-instant barrier before polling: a completion due *at* this
      // instant may still be behind this thread's wake in the event queue
      // (whether it is depends on scheduler tie order). Yielding reposts
      // the wake behind every already-queued same-instant event, so the
      // batch below holds exactly the completions due by `now` under any
      // scheduler.
      sim::Yield();
      mux_.PollInto(wcs);
      SortBatch(wcs);
    }
    for (const verbs::WorkCompletion& wc : wcs) {
      HandleCompletion(wc);
      ++steps;
    }
    if (steps > 0) {
      // One flush per scheduling round: every WR the round staged rides
      // one doorbell chain per (QP, lane) — chains widen exactly as load
      // rises. The modeled CPU charge keeps virtual time honest about
      // the session work this round did.
      stats_.steps += steps;
      if (options_.session_step_ns > 0) {
        sim::ChargeCpu(steps * options_.session_step_ns);
      }
      RSTORE_ASSIGN_OR_RETURN(size_t posted, mux_.Flush());
      (void)posted;
      continue;
    }
    if (open_ops_ == 0 && arrivals_.empty() && retries_.empty()) break;
    sim::Nanos next = sim::kNever;
    if (!arrivals_.empty()) next = arrivals_.top().at;
    if (!retries_.empty()) next = std::min(next, retries_.top().at);
    if (inflight_wrs_ > 0) {
      wcs.clear();
      const sim::Nanos timeout =
          next == sim::kNever ? sim::kNever : next - now;
      mux_.WaitPollInto(wcs, Moderation(), timeout);
      if (!wcs.empty()) {
        // Same end-of-instant barrier as above: the CQ wake that ended
        // the wait may precede sibling deliveries at this instant.
        sim::Yield();
        mux_.PollInto(wcs);  // appends the stragglers
        SortBatch(wcs);
      }
      for (const verbs::WorkCompletion& wc : wcs) HandleCompletion(wc);
      if (!wcs.empty()) {
        stats_.steps += wcs.size();
        if (options_.session_step_ns > 0) {
          sim::ChargeCpu(wcs.size() * options_.session_step_ns);
        }
        RSTORE_ASSIGN_OR_RETURN(size_t posted, mux_.Flush());
        (void)posted;
      }
      continue;
    }
    if (next != sim::kNever) {
      sim::Sleep(next - now);
      continue;
    }
    // Open ops but no WRs in flight and no timers: every path that parks
    // an op either holds a WR, a timer, or an admission slot whose
    // releaser holds one — reaching here means the machine leaked a step.
    return Status(ErrorCode::kInternal, "load engine stalled with open ops");
  }
  return Status::Ok();
}

}  // namespace rstore::load
