// LoadEngine: an open-loop workload engine driving thousands of client
// sessions from ONE simulated thread per client node.
//
// Sessions are lightweight state machines, not SimThreads: a 10k-session
// run costs 10k small structs, not 10k stacks. Each session follows a
// deterministic open-loop arrival schedule (exponential gaps at the
// curve's instantaneous rate, drawn from a per-session RNG) and runs one
// RKV operation at a time through an asynchronous replica of KvStore's
// slot protocol — speculative probe reads with seqlock validation, CAS
// lock acquire, raw re-check under the lock, payload write, 8-byte
// release — posted through the SessionMux and resumed by completion
// cookies (wr_id = session << 32 | generation).
//
// Coordinated-omission safety: every operation's latency is measured
// from its *intended* send time under the arrival schedule. When a
// session falls behind (its previous op is still in flight, or admission
// deferred it), the next op's intended time does not slip — the op
// starts late and the queueing delay lands in the histogram, where it
// belongs.
//
// The engine's main loop is also where load-adaptive doorbell batching
// and CQ interrupt moderation live: each scheduling round drains ready
// completions, resumes due retries, starts due arrivals, charges modeled
// CPU for the session steps it ran, and flushes the mux once — so one
// doorbell chain carries everything the round produced, and the CQ wake
// threshold scales with the in-flight count.
//
// Determinism: one engine per client node, no shared mutable state
// between engines (admission is engine-local; see admission.h), every
// scheduling decision a pure function of simulated state — so runs are
// bit-identical across --host-threads and clean under rcheck.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/client.h"
#include "kv/kv.h"
#include "load/admission.h"
#include "load/hotkeys.h"
#include "load/session_mux.h"
#include "load/workload.h"
#include "obs/rtrace.h"

namespace rstore::obs {
class Counter;
class Timer;
class Telemetry;
}  // namespace rstore::obs

namespace rstore::check {
class LinChecker;
}  // namespace rstore::check

namespace rstore::load {

struct EngineStats {
  uint64_t arrivals = 0;        // ops the schedule produced
  uint64_t completed = 0;       // ops that finished with a recorded latency
  uint64_t completed_by_type[kOpTypes] = {};
  uint64_t not_found = 0;       // reads/rmws that missed (counted complete)
  uint64_t errors = 0;          // ops abandoned (budget/probe window/verbs)
  uint64_t shed = 0;            // ops rejected by admission
  uint64_t retries = 0;         // seqlock conflicts + CAS losses
  uint64_t stale_completions = 0;
  uint64_t steps = 0;           // session state-machine steps executed
  uint32_t sessions = 0;
  uint32_t qps = 0;
  sim::Nanos window_start = 0;
  sim::Nanos drained_at = 0;    // when the last in-flight op finished
  LatencyHistogram latency{1.04};       // all completed ops, intended->done
  LatencyHistogram read_latency{1.04};
  LatencyHistogram write_latency{1.04};  // update/insert/rmw
  AdmissionStats admission;
  MuxStats mux;
  // Per-op causal tracing report (empty when options.rtrace.mode == kOff).
  obs::RtraceReport rtrace;
  // Space-saving heavy hitters over the issued key ids, hottest first.
  std::vector<HotKey> hotkeys;
};

class LoadEngine {
 public:
  // One of `engine_count` engines jointly driving options.sessions; this
  // engine runs the sessions whose global index ≡ engine_index (block
  // partition). The table named `table` must already be preloaded.
  LoadEngine(core::RStoreClient& client, std::string table,
             const LoadOptions& options, uint32_t engine_index,
             uint32_t engine_count);
  ~LoadEngine();
  LoadEngine(const LoadEngine&) = delete;
  LoadEngine& operator=(const LoadEngine&) = delete;

  // Connects the mux, arms the cross-engine start barrier, drives the
  // open-loop window, and drains. Blocks the calling simulated thread.
  Status Run();

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  // Bulk-loads `options.preload_keys` keys into a fresh RKV table by
  // composing the entire table image locally and writing it with large
  // sequential IO — seconds of per-key Puts collapse into one streaming
  // write. Run by exactly one client before any engine starts.
  static Status PreloadTable(core::RStoreClient& client,
                             const std::string& name,
                             const LoadOptions& options);

  // The 8-byte binary key for key id `id` (shared by preload and ops).
  static void EncodeKey(uint64_t id, std::byte out[8]) noexcept;

 private:
  enum class Phase : uint8_t {
    kIdle,
    kDeferred,     // admission parked the op; no WR in flight
    kBackoff,      // seqlock conflict backoff; resumes via retries_ heap
    kProbe,        // chained slot+version speculative read outstanding
    kProbePieces,  // slab-split slot read outstanding (then verify)
    kProbeVerify,  // post-split version validation read outstanding
    kLockPeek,     // speculative 8-byte version read outstanding
    kLockCas,      // seqlock CAS outstanding
    kRecheck,      // raw re-read under the lock outstanding
    kWrite,        // payload write outstanding
    kUnlock,       // 8-byte release write outstanding
    kScan,         // one or more scan-run reads outstanding
  };

  struct Session {
    Rng rng{0};
    sim::Nanos next_intended = 0;  // head of this session's schedule
    // Ops whose intended time has passed but which have not started yet
    // (the session was busy). Latency anchors pop from here.
    std::deque<sim::Nanos> backlog;
    // --- current op ---
    Phase phase = Phase::kIdle;
    Phase resume = Phase::kProbe;  // where a kBackoff wakeup re-enters
    OpType op = OpType::kRead;
    sim::Nanos intended = 0;
    uint64_t key_id = 0;
    std::byte key_bytes[8] = {};
    uint64_t home = 0;       // home slot
    uint32_t probe = 0;      // probe distance so far
    int64_t reusable = -1;   // first tombstone seen during the probe
    int64_t target = -1;     // slot being locked/written
    uint64_t lock_compare = 0;   // version the CAS expects
    uint64_t locked_version = 0; // odd version we hold
    uint32_t server_idx = 0;     // admission charge (home slot's server)
    uint32_t retries_left = 0;
    bool failed = false;     // unlock-then-retry instead of complete
    bool step_error = false; // a WR of the current step errored
    uint32_t gen = 0;        // completion cookie generation
    uint32_t pending = 0;    // signaled WRs outstanding for this step
    uint64_t insert_seq = 0; // per-session unique-key counter
    // --- rtrace (maintained only when the collector is attached) ---
    uint64_t op_id = 0;      // (global session id << 32) | op ordinal
    uint64_t op_count = 0;   // ops this session has begun
    sim::Nanos tr_cursor = 0;          // last instant charged to a stage
    obs::RtraceStageNs tr_stage{};     // per-stage ns of the current op
    verbs::WireStamps tr_last{};       // stamps of the last completed step
    // --- rlin (maintained only when a LinChecker is attached) ---
    uint64_t lin_write_digest = 0;  // digest of the last staged payload
    bool lin_staged = false;        // a payload write was posted this op
  };

  // One slab-contiguous piece of a slot range (slots may straddle slab
  // boundaries: the 64-byte table header shifts slot addresses).
  struct Piece {
    core::RemoteSpan span;
    std::byte* local;
    uint32_t length;
  };

  // Timed wakeups (retry backoff) and arrivals share one comparator:
  // earliest time first, session index breaking ties.
  struct TimerEntry {
    sim::Nanos at;
    uint32_t session;
    bool operator>(const TimerEntry& o) const noexcept {
      return at != o.at ? at > o.at : session > o.session;
    }
  };
  using TimerHeap =
      std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                          std::greater<TimerEntry>>;

  Status Setup();
  Status RunLoop();
  void ScheduleFirstArrivals();
  void PushNextArrival(uint32_t s);

  // State-machine steps. Each stages at most one mux step and returns.
  void OnArrival(uint32_t s, sim::Nanos intended);
  void StartNextFromBacklog(uint32_t s);
  void BeginOp(uint32_t s);
  void BeginAdmitted(uint32_t s);
  void HandleCompletion(const verbs::WorkCompletion& wc);
  void OnProbeDone(uint32_t s);
  void OnLockPeekDone(uint32_t s);
  void OnLockCasDone(uint32_t s);
  void OnRecheckDone(uint32_t s);
  void OnUnlockDone(uint32_t s);
  void OnScanDone(uint32_t s);
  void OnRetryTimer(uint32_t s);
  void StageProbe(uint32_t s);
  void StageProbeVerify(uint32_t s);
  void StageLockPeek(uint32_t s);
  void StageLockCas(uint32_t s);
  void StageRecheck(uint32_t s);
  void StageWrite(uint32_t s);
  void StageUnlock(uint32_t s);
  void StageScan(uint32_t s);
  void RetryOp(uint32_t s, bool backoff);
  void FinishOp(uint32_t s, bool ok, bool found = true);

  // rtrace stage accounting: charges [tr_cursor, now] to `stage` and
  // advances the cursor; ChargeWireStages subdivides the interval by the
  // step's wire stamps (mux/egress/wire/server/ack/cqpoll). Callers guard
  // on rtrace_ so the disabled cost is one pointer compare.
  void ChargeStage(Session& ses, obs::RtraceStage stage, sim::Nanos now);
  void ChargeWireStages(Session& ses, const verbs::WireStamps& stamps,
                        sim::Nanos now);

  // Helpers.
  [[nodiscard]] uint64_t SlotOffset(uint64_t slot) const noexcept;
  [[nodiscard]] uint32_t ServerIndexOf(uint64_t slot);
  [[nodiscard]] std::byte* Scratch(uint32_t s) noexcept;
  [[nodiscard]] uint64_t Cookie(uint32_t s) const noexcept;
  [[nodiscard]] verbs::SendWr ReadWr(const core::RemoteSpan& span,
                                     std::byte* dst, uint32_t len,
                                     uint64_t cookie, bool signaled);
  // Splits [offset, offset+length) at slab boundaries into pieces_.
  Status CollectPieces(uint64_t offset, uint64_t length, std::byte* local);
  void DrawKey(uint32_t s);
  [[nodiscard]] size_t Moderation() const noexcept;
  void ResolveObs();

  core::RStoreClient& client_;
  const std::string table_;
  const LoadOptions options_;
  const uint32_t engine_index_;
  const uint32_t engine_count_;

  core::MappedRegion* region_ = nullptr;
  kv::KvOptions geometry_;  // from the table header
  SessionMux mux_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ZipfGenerator> zipf_;

  std::vector<Session> sessions_;
  uint32_t first_global_session_ = 0;
  TimerHeap arrivals_;
  TimerHeap retries_;
  std::vector<Piece> pieces_;  // CollectPieces scratch

  // One registered scratch arena, carved into per-session strides.
  std::vector<std::byte> arena_;
  verbs::ProtectionDomain* pd_ = nullptr;
  verbs::MemoryRegion* arena_mr_ = nullptr;
  size_t stride_ = 0;
  size_t read_area_ = 0;  // bytes of the slot/scan read area in a stride

  // server_node -> dense server index (admission + mux addressing).
  std::vector<uint32_t> server_nodes_;
  std::unordered_map<uint32_t, uint32_t> server_index_;

  sim::Nanos t0_ = 0;
  sim::Nanos t_end_ = 0;
  uint64_t open_ops_ = 0;       // arrived but not finished (any phase)
  uint64_t inflight_wrs_ = 0;   // signaled WRs outstanding
  EngineStats stats_;

  // rlin history capture (null unless a LinChecker is attached to the
  // simulation; resolved once in Setup). Observe-only: see check/lin.h.
  check::LinChecker* lin_ = nullptr;

  // rtrace collector (null when options.rtrace.mode == kOff — every hook
  // reduces to one pointer compare) and the heavy-hitter sketch.
  std::unique_ptr<obs::RtraceCollector> rtrace_;
  uint64_t rtrace_seq_ = 0;     // engine-local completed-op ordinal
  SpaceSaving hotkeys_;

  // PR3 observability (lazily resolved; null when detached).
  obs::Telemetry* obs_owner_ = nullptr;
  obs::Timer* obs_latency_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_shed_ = nullptr;
};

}  // namespace rstore::load
