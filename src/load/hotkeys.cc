#include "load/hotkeys.h"

#include <algorithm>

namespace rstore::load {

void SpaceSaving::Offer(uint64_t key_id) {
  ++offered_;
  if (capacity_ == 0) return;
  HotKey* min_entry = nullptr;
  for (HotKey& e : entries_) {
    if (e.key_id == key_id) {
      ++e.count;
      return;
    }
    if (min_entry == nullptr || e.count < min_entry->count) {
      min_entry = &e;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back({key_id, 1, 0});
    return;
  }
  // Take over the minimum counter; its count becomes the new key's
  // overestimation error (the new key may have occurred that often
  // unseen, never more).
  min_entry->error = min_entry->count;
  min_entry->count += 1;
  min_entry->key_id = key_id;
}

std::vector<HotKey> SpaceSaving::TopK() const {
  std::vector<HotKey> out = entries_;
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key_id < b.key_id;
  });
  return out;
}

}  // namespace rstore::load
