// Space-saving top-k heavy-hitter sketch over the key ids an engine
// actually issued (Metwally et al., "Efficient computation of frequent
// and top-k elements in data streams").
//
// The sketch keeps `capacity` (key, count, error) counters. A tracked
// key increments its counter; an untracked key evicts the minimum
// counter, inheriting its count as the new key's overestimation error.
// The classic guarantee follows: any key with true frequency above
// offered/capacity is tracked, and count - error lower-bounds the true
// frequency.
//
// Determinism: counters live in a plain vector scanned linearly (k is
// tens, not thousands), so the eviction victim — and therefore the whole
// sketch — is a pure function of the offer sequence. Host-side
// arithmetic only; the probe-effect rule of the obs layer applies.
#pragma once

#include <cstdint>
#include <vector>

namespace rstore::load {

struct HotKey {
  uint64_t key_id = 0;
  uint64_t count = 0;  // estimated frequency (overestimate)
  uint64_t error = 0;  // max overestimation inherited at takeover
};

class SpaceSaving {
 public:
  explicit SpaceSaving(uint32_t capacity) : capacity_(capacity) {}

  void Offer(uint64_t key_id);

  // Tracked keys, highest estimated count first (key id breaking ties).
  [[nodiscard]] std::vector<HotKey> TopK() const;

  [[nodiscard]] uint64_t offered() const noexcept { return offered_; }
  [[nodiscard]] uint32_t capacity() const noexcept { return capacity_; }

 private:
  uint32_t capacity_;
  uint64_t offered_ = 0;
  std::vector<HotKey> entries_;  // unsorted; linear scans keep it simple
};

}  // namespace rstore::load
