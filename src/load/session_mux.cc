#include "load/session_mux.h"

#include <algorithm>

#include "check/check.h"
#include "core/types.h"

namespace rstore::load {

SessionMux::SessionMux(verbs::Device& device) : device_(device) {}

Status SessionMux::Connect(std::span<const uint32_t> server_nodes,
                           uint32_t qp_per_server,
                           const verbs::QpConfig& config) {
  if (server_nodes.empty() || qp_per_server == 0) {
    return Status(ErrorCode::kInvalidArgument, "empty QP pool");
  }
  qp_per_server_ = qp_per_server;
  cq_ = &device_.CreateCq();
  qps_.reserve(server_nodes.size() * qp_per_server);
  for (const uint32_t server : server_nodes) {
    for (uint32_t i = 0; i < qp_per_server; ++i) {
      auto qp = device_.network().Connect(device_, server, core::kDataService,
                                          config, cq_, cq_);
      if (!qp.ok()) return qp.status();
      qps_.push_back(*qp);
    }
  }
  staging_.resize(qps_.size());
  return Status::Ok();
}

void SessionMux::Stage(uint32_t server_idx, uint32_t session, Lane lane,
                       const verbs::SendWr& wr) {
  const uint32_t qi = QpIndexFor(server_idx, session);
  LaneQueue& q = staging_.at(qi)[static_cast<uint32_t>(lane)];
  q.wrs.push_back(wr);
  q.wrs.back().next = nullptr;
  ++staged_total_;
  stats_.max_staged = std::max<uint64_t>(stats_.max_staged, staged_total_);
}

Result<size_t> SessionMux::Flush() {
  ++stats_.flush_rounds;
  size_t posted_total = 0;
  bool stalled = false;
  check::Checker* checker = device_.network().sim().checker();
  // Lanes flush in forward-progress order: seqlock releases first (they
  // unblock every contending writer), then data IO, then speculative
  // probes. A session never has WRs in two lanes in the same round (one
  // step in flight per session), so this never reorders a session's ops.
  static constexpr Lane kLaneOrder[kLanes] = {Lane::kSyncCell, Lane::kPlain,
                                              Lane::kSpeculative};
  for (size_t qi = 0; qi < qps_.size(); ++qi) {
    verbs::QueuePair* qp = qps_[qi];
    size_t headroom = qp->send_headroom();
    for (const Lane lane : kLaneOrder) {
      LaneQueue& q = staging_[qi][static_cast<uint32_t>(lane)];
      const size_t avail = q.wrs.size() - q.head;
      if (avail == 0) {
        if (q.head > 0) {
          q.wrs.clear();
          q.head = 0;
        }
        continue;
      }
      const size_t n = std::min(avail, headroom);
      if (n == 0) {
        stalled = true;
        continue;
      }
      for (size_t i = 0; i + 1 < n; ++i) {
        q.wrs[q.head + i].next = &q.wrs[q.head + i + 1];
      }
      q.wrs[q.head + n - 1].next = nullptr;
      Status posted;
      switch (lane) {
        case Lane::kSpeculative: {
          check::SpeculativeScope scope(checker);
          posted = qp->PostSend(q.wrs[q.head]);
          break;
        }
        case Lane::kSyncCell: {
          check::SyncCellScope scope(checker);
          posted = qp->PostSend(q.wrs[q.head]);
          break;
        }
        case Lane::kPlain:
          posted = qp->PostSend(q.wrs[q.head]);
          break;
      }
      // Chain pointers reference the staging vector; sever them before it
      // can grow again.
      for (size_t i = 0; i < n; ++i) q.wrs[q.head + i].next = nullptr;
      if (!posted.ok()) return posted;
      q.head += n;
      if (q.head == q.wrs.size()) {
        q.wrs.clear();
        q.head = 0;
      }
      staged_total_ -= n;
      posted_total += n;
      headroom -= n;
      ++stats_.chains_posted;
      stats_.wrs_posted += n;
      stats_.chain_width.Add(n);
    }
  }
  if (stalled) ++stats_.headroom_stalls;
  return posted_total;
}

size_t SessionMux::PollInto(std::vector<verbs::WorkCompletion>& out) {
  return cq_->PollInto(out);
}

size_t SessionMux::WaitPollInto(std::vector<verbs::WorkCompletion>& out,
                                size_t min_entries, sim::Nanos timeout) {
  return cq_->WaitPollInto(out, min_entries, SIZE_MAX, timeout);
}

}  // namespace rstore::load
