// SessionMux: N logical sessions share a bounded pool of verbs QPs/CQs.
//
// Storm's dataplane argument, applied to RStore: per-client QPs do not
// scale — QP state thrashes the NIC cache and connection setup costs
// ~3 RTTs — so thousands of sessions must be multiplexed onto a handful
// of connections. The mux owns qp_per_server reliable-connection QPs to
// every memory server, all completing into ONE shared CQ, and exposes a
// stage/flush interface:
//
//   * Stage() copies a work request into a per-(QP, lane) staging queue.
//     A session is pinned to one QP per server (session % qp_per_server),
//     and RC QPs execute in post order, so every session observes FIFO
//     completion ordering for its own ops even though completions from
//     different sessions interleave arbitrarily on the shared CQ.
//   * Flush() posts each QP's staged run as one doorbell chain, capped
//     by the QP's send-queue headroom — WRs that do not fit stay staged
//     and re-flush when completions drain, instead of tripping the send
//     queue's kOutOfMemory. This is where load-adaptive doorbell
//     batching happens: the more arrivals and completions a scheduling
//     round processed, the wider the chains this flush posts, so the
//     per-WR doorbell cost amortizes exactly when load rises.
//
// Lanes exist for the happens-before checker: a doorbell chain is posted
// under one rcheck scope, so WRs with different race semantics —
// speculative seqlock reads, plain data IO, the 8-byte seqlock release
// — must ride separate chains. Three lanes per QP, flushed in fixed
// order, keep one PostSend per (QP, lane) per round.
//
// Completion demux is the caller's: wr_id is caller-owned (the engine
// encodes session/generation cookies in it); the mux only moves
// completions out of the shared CQ.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "verbs/verbs.h"

namespace rstore::load {

// Which rcheck scope a staged WR posts under.
enum class Lane : uint8_t {
  kSpeculative = 0,  // seqlock-validated reads (racy by design)
  kPlain = 1,        // data IO + atomics (protected by the seqlock)
  kSyncCell = 2,     // the 8-byte seqlock release write
};
inline constexpr uint32_t kLanes = 3;

struct MuxStats {
  uint64_t wrs_posted = 0;
  uint64_t chains_posted = 0;
  uint64_t flush_rounds = 0;
  uint64_t headroom_stalls = 0;  // flushes that left WRs staged
  uint64_t max_staged = 0;       // high-water of WRs parked across QPs
  LatencyHistogram chain_width{1.25};  // WRs per posted chain
};

class SessionMux {
 public:
  explicit SessionMux(verbs::Device& device);
  SessionMux(const SessionMux&) = delete;
  SessionMux& operator=(const SessionMux&) = delete;

  // Connects qp_per_server QPs to the data service of every server in
  // `server_nodes` (caller's index order defines server_idx below). All
  // QPs share one CQ. Blocks the calling simulated thread.
  Status Connect(std::span<const uint32_t> server_nodes,
                 uint32_t qp_per_server, const verbs::QpConfig& config = {});

  // The QP a session's ops to server_idx ride on — stable, so the per
  // -session FIFO guarantee holds across ops.
  [[nodiscard]] uint32_t QpIndexFor(uint32_t server_idx,
                                    uint32_t session) const noexcept {
    return server_idx * qp_per_server_ + session % qp_per_server_;
  }

  // Copies `wr` (chain pointer must be unset) into the staging queue.
  void Stage(uint32_t server_idx, uint32_t session, Lane lane,
             const verbs::SendWr& wr);

  // Posts staged WRs as doorbell chains, up to each QP's send-queue
  // headroom; the remainder stays staged for the next flush. Returns the
  // number of WRs posted this round.
  Result<size_t> Flush();

  // Completion plumbing (shared CQ pass-through).
  size_t PollInto(std::vector<verbs::WorkCompletion>& out);
  size_t WaitPollInto(std::vector<verbs::WorkCompletion>& out,
                      size_t min_entries, sim::Nanos timeout);

  [[nodiscard]] uint32_t qp_count() const noexcept {
    return static_cast<uint32_t>(qps_.size());
  }
  [[nodiscard]] size_t staged() const noexcept { return staged_total_; }
  [[nodiscard]] const MuxStats& stats() const noexcept { return stats_; }

 private:
  // Staged WRs of one (QP, lane), consumed from `head`.
  struct LaneQueue {
    std::vector<verbs::SendWr> wrs;
    size_t head = 0;
  };

  verbs::Device& device_;
  verbs::CompletionQueue* cq_ = nullptr;
  uint32_t qp_per_server_ = 1;
  std::vector<verbs::QueuePair*> qps_;  // [server_idx * qp_per_server + i]
  std::vector<std::array<LaneQueue, kLanes>> staging_;  // per QP
  size_t staged_total_ = 0;
  MuxStats stats_;
};

}  // namespace rstore::load
