#include "load/workload.h"

namespace rstore::load {

std::string_view ToString(OpType op) noexcept {
  switch (op) {
    case OpType::kRead: return "read";
    case OpType::kUpdate: return "update";
    case OpType::kInsert: return "insert";
    case OpType::kScan: return "scan";
    case OpType::kReadModifyWrite: return "rmw";
  }
  return "?";
}

WorkloadMix WorkloadMix::Ycsb(char workload) noexcept {
  switch (workload | 0x20) {  // tolower for ASCII letters
    case 'a': return {.read = 0.5, .update = 0.5};
    case 'b': return {.read = 0.95, .update = 0.05};
    case 'd': return {.read = 0.95, .insert = 0.05};
    case 'e': return {.read = 0.0, .insert = 0.05, .scan = 0.95};
    case 'f': return {.read = 0.5, .rmw = 0.5};
    case 'c':
    default: return {.read = 1.0};
  }
}

OpType WorkloadMix::Pick(Rng& rng) const noexcept {
  const double u = rng.NextDouble();
  double acc = read;
  if (u < acc) return OpType::kRead;
  acc += update;
  if (u < acc) return OpType::kUpdate;
  acc += insert;
  if (u < acc) return OpType::kInsert;
  acc += scan;
  if (u < acc) return OpType::kScan;
  return OpType::kReadModifyWrite;
}

double ArrivalCurve::RateAt(double peak_ops_per_s, sim::Nanos t,
                            sim::Nanos duration) const noexcept {
  switch (shape) {
    case ArrivalShape::kConstant:
      return peak_ops_per_s;
    case ArrivalShape::kRamp: {
      if (duration == 0) return peak_ops_per_s;
      const double frac =
          static_cast<double>(t) / static_cast<double>(duration);
      return peak_ops_per_s *
             (ramp_start_fraction + (1.0 - ramp_start_fraction) * frac);
    }
    case ArrivalShape::kBurst: {
      if (burst_period == 0) return peak_ops_per_s;
      const double phase = static_cast<double>(t % burst_period) /
                           static_cast<double>(burst_period);
      return peak_ops_per_s *
             (phase < burst_duty ? burst_multiplier : base_fraction);
    }
  }
  return peak_ops_per_s;
}

}  // namespace rstore::load
