// Workload vocabulary for the open-loop load engine (see engine.h).
//
// A workload is (mix, skew, arrival process): the YCSB core mixes over
// RKV operations, zipf-distributed key popularity, and an open-loop
// arrival-rate curve. Open loop means arrivals are scheduled by the
// curve, never by completions — a saturated store keeps receiving
// traffic, which is exactly the regime where tail latency is earned.
// Latency is therefore measured from each operation's *intended* send
// time (coordinated-omission-safe, wrk2-style), not from whenever the
// session got around to issuing it.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "obs/rtrace.h"
#include "sim/time.h"

namespace rstore::load {

enum class OpType : uint8_t {
  kRead = 0,
  kUpdate = 1,
  kInsert = 2,
  kScan = 3,
  kReadModifyWrite = 4,
};
inline constexpr uint32_t kOpTypes = 5;

[[nodiscard]] std::string_view ToString(OpType op) noexcept;

// Operation-type fractions; must sum to 1. The YCSB core workloads:
//   A  50% read / 50% update          (update heavy)
//   B  95% read /  5% update          (read mostly)
//   C  100% read
//   D  95% read /  5% insert          (read latest)
//   E  95% scan /  5% insert          (short ranges)
//   F  50% read / 50% read-modify-write
struct WorkloadMix {
  double read = 1.0;
  double update = 0.0;
  double insert = 0.0;
  double scan = 0.0;
  double rmw = 0.0;

  // Named mix for 'a'..'f' (case-insensitive); unknown letters fall back
  // to workload C (pure reads).
  [[nodiscard]] static WorkloadMix Ycsb(char workload) noexcept;

  // Draws one op type; thresholds are walked in field order so the draw
  // is a pure function of the RNG stream.
  [[nodiscard]] OpType Pick(Rng& rng) const noexcept;
};

enum class ArrivalShape : uint8_t { kConstant, kRamp, kBurst };

// Instantaneous aggregate arrival rate over the open-loop window. The
// peak rate (ops/s) comes from LoadOptions::offered_load; the curve
// modulates it:
//   kConstant  rate(t) = peak
//   kRamp      rate(t) climbs linearly from ramp_start_fraction*peak to
//              peak across the window
//   kBurst     square wave: burst_multiplier*peak for the first
//              burst_duty of every burst_period, base_fraction*peak for
//              the rest
struct ArrivalCurve {
  ArrivalShape shape = ArrivalShape::kConstant;
  double ramp_start_fraction = 0.1;
  sim::Nanos burst_period = sim::Millis(10);
  double burst_duty = 0.2;
  double burst_multiplier = 3.0;
  double base_fraction = 0.5;

  // Rate in ops/s at `t` nanoseconds into a window of `duration` ns.
  [[nodiscard]] double RateAt(double peak_ops_per_s, sim::Nanos t,
                              sim::Nanos duration) const noexcept;
};

// Everything that shapes one open-loop run. One LoadOptions describes
// the *aggregate* workload; each engine (one per client node) drives
// sessions/engine_count of it.
struct LoadOptions {
  // --- traffic ---------------------------------------------------------
  uint32_t sessions = 10000;        // total logical client sessions
  double offered_load = 200e3;      // aggregate peak arrival rate, ops/s
  sim::Nanos duration = sim::Millis(100);  // open-loop arrival window
  ArrivalCurve curve;
  WorkloadMix mix = WorkloadMix::Ycsb('b');
  double theta = 0.99;              // zipf skew over the preloaded keys
  // --- table -----------------------------------------------------------
  uint64_t preload_keys = 16384;    // keys bulk-loaded before the run
  uint32_t value_bytes = 64;
  uint32_t slot_bytes = 256;
  uint32_t max_probe = 16;
  uint32_t scan_len = 16;           // slots per YCSB-E scan
  // --- admission control (per engine, per target server) ---------------
  bool admission = true;
  uint32_t window_per_server = 48;  // in-flight ops per (engine, server)
  uint32_t max_deferred = 128;      // defer-queue cap before shedding
  // Deadline shed: an op whose intended send time has already aged past
  // this bound is dropped instead of started (0 = never). This is what
  // keeps the *completed*-op tail bounded under sustained overload: the
  // in-flight window and defer queue bound the dataplane, the deadline
  // bounds the per-session backlog wait.
  sim::Nanos shed_deadline = sim::Millis(10);
  // --- session-to-QP multiplexing --------------------------------------
  uint32_t qp_per_server = 2;       // verbs QPs per (engine, server)
  uint32_t moderation_max = 32;     // CQ wake-threshold ceiling
  // --- engine ----------------------------------------------------------
  sim::Nanos session_step_ns = 120; // modeled CPU per session step
  uint32_t op_retry_budget = 64;    // seqlock conflicts before giving up
  sim::Nanos retry_backoff = sim::Micros(5);
  uint64_t seed = 1;
  // --- observability ----------------------------------------------------
  // Per-op causal tracing (see obs/rtrace.h). Off by default; enabling it
  // never moves virtual time — timelines are bit-identical across modes.
  obs::RtraceConfig rtrace;
  uint32_t hotkey_capacity = 16;    // space-saving heavy-hitter counters

  // Table geometry derived from the preload size: 4x bucket headroom
  // keeps linear probing short at a 25% load factor.
  [[nodiscard]] uint64_t buckets() const noexcept {
    return preload_keys * 4;
  }
};

}  // namespace rstore::load
