#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace rstore::obs {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.str);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n':
        out.type = JsonValue::Type::kNull;
        return Expect("null");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Fail("expected object key");
      std::string key;
      if (Status s = ParseString(key); !s.ok()) return s;
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':' after object key");
      ++pos_;
      JsonValue value;
      if (Status s = ParseValue(value, depth + 1); !s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(value, depth + 1); !s.ok()) return s;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return Fail("short \\u escape");
            // Keep the escape verbatim; the validator only needs
            // round-trip fidelity for ASCII content.
            out.append(text_.substr(pos_, 6));
            pos_ += 6;
            continue;
          }
          default: return Fail("unknown escape");
        }
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseLiteral(JsonValue& out) {
    out.type = JsonValue::Type::kBool;
    if (text_[pos_] == 't') {
      out.boolean = true;
      return Expect("true");
    }
    out.boolean = false;
    return Expect("false");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    out.type = JsonValue::Type::kNumber;
    return Status::Ok();
  }

  Status Expect(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("malformed literal");
    }
    pos_ += word.size();
    return Status::Ok();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char Peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Fail(std::string_view what) const {
    return Status(ErrorCode::kInvalidArgument,
                  "JSON parse error at offset " + std::to_string(pos_) + ": " +
                      std::string(what));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file) {
    return Status(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file.get())) > 0) {
    text.append(buf, n);
  }
  return ParseJson(text);
}

}  // namespace rstore::obs
