// Minimal dependency-free JSON parser shared by the observability and
// verification layers.
//
// One implementation serves every consumer that round-trips this repo's
// own emissions — Chrome traces (trace_check), rcheck violation dumps
// (tools/rcheck_report), rtrace attribution reports (tools/rtail), and
// rlin linearizability counterexamples (tools/rlin) — so tests and the
// CI tools can verify well-formedness without an external dependency.
// Not a general JSON library: numbers parse as double, \uXXXX escapes
// outside ASCII are preserved verbatim as their escape text. Values that
// need all 64 bits (key hashes, value digests) are therefore emitted as
// hex *strings* by the writers, never as numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rstore::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved (duplicate keys keep the last value).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* Find(std::string_view key) const;
  [[nodiscard]] bool Is(Type t) const noexcept { return type == t; }
};

// Parses a complete JSON document; trailing garbage is an error.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

// Convenience: reads `path` entirely and parses it.
[[nodiscard]] Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace rstore::obs
