#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace rstore::obs {
namespace {

template <typename Map, typename... Args>
auto& Lookup(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

Counter& NodeMetrics::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Lookup(counters_, name);
}

Gauge& NodeMetrics::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Lookup(gauges_, name);
}

Timer& NodeMetrics::GetTimer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Lookup(timers_, name);
}

void NodeMetrics::MergeFrom(const NodeMetrics& other) {
  for (const auto& [name, c] : other.counters_) {
    GetCounter(name).Inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    GetGauge(name).MergeFrom(*g);
  }
  for (const auto& [name, t] : other.timers_) {
    GetTimer(name).Merge(*t);
  }
}

void NodeMetrics::AppendJson(std::string& out) const {
  out += "{\"id\":";
  AppendU64(out, id_);
  out += ",\"name\":";
  AppendJsonString(out, name_);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    AppendU64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ":{\"value\":";
    AppendI64(out, g->value());
    out += ",\"high_water\":";
    AppendI64(out, g->high_water());
    out += '}';
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) out += ',';
    first = false;
    const LatencyHistogram& h = t->hist();
    AppendJsonString(out, name);
    out += ":{\"count\":";
    AppendU64(out, h.count());
    out += ",\"mean\":";
    AppendDouble(out, h.mean());
    out += ",\"min\":";
    AppendU64(out, h.min());
    out += ",\"max\":";
    AppendU64(out, h.max());
    out += ",\"p50\":";
    AppendU64(out, h.Quantile(0.50));
    out += ",\"p90\":";
    AppendU64(out, h.Quantile(0.90));
    out += ",\"p99\":";
    AppendU64(out, h.Quantile(0.99));
    out += ",\"p999\":";
    AppendU64(out, h.Quantile(0.999));
    out += '}';
  }
  out += "}}";
}

NodeMetrics& MetricsRegistry::ForNode(uint32_t id, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    it = nodes_
             .emplace(id, std::make_unique<NodeMetrics>(
                              id, name.empty() ? "node" + std::to_string(id)
                                               : std::string(name)))
             .first;
  }
  return *it->second;
}

NodeMetrics MetricsRegistry::Merged() const {
  NodeMetrics merged(0, "cluster");
  for (const auto& [id, node] : nodes_) {
    merged.MergeFrom(*node);
  }
  return merged;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out;
  out += "{\"nodes\":[";
  bool first = true;
  for (const auto& [id, node] : nodes_) {
    if (!first) out += ',';
    first = false;
    node->AppendJson(out);
  }
  out += "],\"cluster\":";
  Merged().AppendJson(out);
  out += '}';
  return out;
}

}  // namespace rstore::obs
