// Cluster-wide metrics registry.
//
// Named counters, gauges, and LatencyHistogram-backed timers, grouped per
// simulated node and mergeable into one cluster-wide view. Instrumented
// layers (fabric, verbs, rpc, client, cache, apps) resolve an instrument
// once and then mutate it through a stable pointer, so the steady-state
// cost of an enabled metric is an increment — and of a disabled one, a
// null-pointer test.
//
// Zero-probe-effect rule: nothing in this file touches the virtual clock,
// the event queue, or any RNG. Recording a metric can never change a
// simulated outcome; enabling telemetry costs wall-clock time only.
//
// Thread-safety (partitioned scheduler): Counter increments are atomic
// (relaxed — counts only, no ordering guarantees needed), and instrument/
// node creation is mutex-guarded, so instruments shared across partitions
// (e.g. a sender incrementing the receiver's bytes_in) stay exact.
// Gauge and Timer remain owner-partition-only: every site that mutates
// one does so from the partition that owns the instrumented node.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stats.h"

namespace rstore::obs {

// Monotonic event count. Increments are atomic so partitions running on
// different host threads may share one counter; relaxed ordering suffices
// because counters are read only at barriers or after the run.
class Counter {
 public:
  void Inc(uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level with a high-water mark (e.g. egress queue depth).
class Gauge {
 public:
  void Set(int64_t v) noexcept {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  void Add(int64_t delta) noexcept { Set(value_ + delta); }
  [[nodiscard]] int64_t value() const noexcept { return value_; }
  [[nodiscard]] int64_t high_water() const noexcept { return high_water_; }

  // Cluster merge: levels sum, high-waters take the max (per-node peaks
  // need not coincide in time, so the sum of peaks would overstate).
  void MergeFrom(const Gauge& other) noexcept {
    value_ += other.value_;
    if (other.high_water_ > high_water_) high_water_ = other.high_water_;
  }

 private:
  int64_t value_ = 0;
  int64_t high_water_ = 0;
};

// Duration/size distribution backed by the log-scaled LatencyHistogram.
class Timer {
 public:
  void Record(uint64_t value) { hist_.Add(value); }
  [[nodiscard]] const LatencyHistogram& hist() const noexcept { return hist_; }
  void Merge(const Timer& other) { hist_.Merge(other.hist_); }

 private:
  LatencyHistogram hist_;
};

// The instruments of one simulated node. Lookups are by name; returned
// pointers stay valid for the registry's lifetime (node-local maps never
// erase), which is what lets callers cache them. Creation is serialized
// by a per-node mutex so concurrent partitions may resolve instruments
// lazily; the steady-state path (mutating a cached pointer) takes no lock.
class NodeMetrics {
 public:
  NodeMetrics(uint32_t id, std::string name)
      : id_(id), name_(std::move(name)) {}

  // Movable (Merged() returns by value); the mutex is not state, so the
  // moved-to object simply gets a fresh one. Move only quiescent objects.
  NodeMetrics(NodeMetrics&& other) noexcept
      : id_(other.id_),
        name_(std::move(other.name_)),
        counters_(std::move(other.counters_)),
        gauges_(std::move(other.gauges_)),
        timers_(std::move(other.timers_)) {}

  [[nodiscard]] uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] Counter& GetCounter(std::string_view name);
  [[nodiscard]] Gauge& GetGauge(std::string_view name);
  [[nodiscard]] Timer& GetTimer(std::string_view name);

  // Adds every instrument of `other` into this node's same-named
  // instruments (counters/timers sum; gauges sum values, max high-waters).
  void MergeFrom(const NodeMetrics& other);

  // Appends this node's instruments as one JSON object (no trailing
  // newline). Deterministic: maps iterate in name order.
  void AppendJson(std::string& out) const;

 private:
  template <typename T>
  using InstrumentMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  uint32_t id_;
  std::string name_;
  mutable std::mutex mu_;  // guards map insertion only, never the values
  InstrumentMap<Counter> counters_;
  InstrumentMap<Gauge> gauges_;
  InstrumentMap<Timer> timers_;
};

// All nodes of one cluster. ForNode() creates on first use, so layers can
// record against nodes the registry has not seen yet; creation is
// mutex-guarded so partitions on different host threads may do so
// concurrently. Returned references never move (node entries never erase).
class MetricsRegistry {
 public:
  [[nodiscard]] NodeMetrics& ForNode(uint32_t id, std::string_view name = {});

  // Cluster-wide merge of every node's instruments.
  [[nodiscard]] NodeMetrics Merged() const;

  // Full snapshot: {"nodes": [...], "cluster": {...}}.
  [[nodiscard]] std::string DumpJson() const;

  [[nodiscard]] size_t node_count() const noexcept { return nodes_.size(); }

 private:
  mutable std::mutex mu_;  // guards node-map insertion only
  std::map<uint32_t, std::unique_ptr<NodeMetrics>> nodes_;
};

// Appends `s` to `out` as a JSON string literal (quotes + escapes).
void AppendJsonString(std::string& out, std::string_view s);

}  // namespace rstore::obs
