#include "obs/rtrace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rstore::obs {

namespace {

constexpr std::array<std::string_view, kRtraceStageCount> kStageNames = {
    "backlog", "admit", "mux",    "egress",  "wire",
    "server",  "ack",   "cqpoll", "backoff",
};

// Deterministic slowness order: larger total first; earlier op wins ties,
// so the reservoir is a pure function of the recorded set.
bool SlowerThan(const RtraceOp& a, const RtraceOp& b) noexcept {
  if (a.total_ns() != b.total_ns()) return a.total_ns() > b.total_ns();
  return a.op_id < b.op_id;
}

void AppendStageArray(std::string& out, const RtraceStageNs& v) {
  out += '[';
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

}  // namespace

std::string_view RtraceStageName(uint32_t stage) noexcept {
  return stage < kRtraceStageCount ? kStageNames[stage] : "unknown";
}

std::string_view ToString(RtraceMode mode) noexcept {
  switch (mode) {
    case RtraceMode::kOff: return "off";
    case RtraceMode::kSampled: return "sampled";
    case RtraceMode::kFull: return "full";
  }
  return "unknown";
}

bool ParseRtraceMode(std::string_view s, RtraceMode* out) noexcept {
  if (s == "off") {
    *out = RtraceMode::kOff;
  } else if (s == "sampled") {
    *out = RtraceMode::kSampled;
  } else if (s == "full") {
    *out = RtraceMode::kFull;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RtraceReport
// ---------------------------------------------------------------------------
size_t RtraceReport::BandFor(uint64_t total_ns) noexcept {
  if (total_ns == 0) return 0;
  const double b =
      std::log(static_cast<double>(total_ns)) / std::log(kBandGrowth);
  return 1 + static_cast<size_t>(b);
}

uint64_t RtraceReport::BandLow(size_t band) noexcept {
  if (band == 0) return 0;
  return static_cast<uint64_t>(
      std::pow(kBandGrowth, static_cast<double>(band - 1)));
}

RtraceReport::Slice RtraceReport::Attribution(double q_lo, double q_hi) const {
  Slice s;
  if (total_hist.count() == 0) return s;
  s.lo_ns = q_lo <= 0.0 ? total_hist.min() : total_hist.Quantile(q_lo);
  s.hi_ns = q_hi >= 1.0 ? total_hist.max() : total_hist.Quantile(q_hi);
  for (size_t b = 0; b < bands.size(); ++b) {
    const Band& band = bands[b];
    if (band.count == 0) continue;
    const uint64_t lo = BandLow(b);
    const uint64_t hi = BandLow(b + 1);
    if (hi <= s.lo_ns || lo > s.hi_ns) continue;
    s.count += band.count;
    s.total_ns += band.total_ns;
    for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
      s.stage_ns[i] += band.stage_ns[i];
    }
  }
  return s;
}

void RtraceReport::Merge(const RtraceReport& other) {
  ops += other.ops;
  total_ns_sum += other.total_ns_sum;
  sum_mismatches += other.sum_mismatches;
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    stage_ns_sum[i] += other.stage_ns_sum[i];
  }
  total_hist.Merge(other.total_hist);
  if (bands.size() < other.bands.size()) bands.resize(other.bands.size());
  for (size_t b = 0; b < other.bands.size(); ++b) {
    bands[b].count += other.bands[b].count;
    bands[b].total_ns += other.bands[b].total_ns;
    for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
      bands[b].stage_ns[i] += other.bands[b].stage_ns[i];
    }
  }
  if (windows.size() < other.windows.size()) {
    windows.resize(other.windows.size());
  }
  for (size_t w = 0; w < other.windows.size(); ++w) {
    windows[w].count += other.windows[w].count;
    windows[w].total_ns += other.windows[w].total_ns;
    for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
      windows[w].stage_ns[i] += other.windows[w].stage_ns[i];
    }
    windows[w].hist.Merge(other.windows[w].hist);
  }
  kept.insert(kept.end(), other.kept.begin(), other.kept.end());
  std::sort(kept.begin(), kept.end(),
            [](const RtraceOp& a, const RtraceOp& b) {
              return a.op_id < b.op_id;
            });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const RtraceOp& a, const RtraceOp& b) {
                           return a.op_id == b.op_id;
                         }),
             kept.end());
}

// ---------------------------------------------------------------------------
// RtraceCollector
// ---------------------------------------------------------------------------
RtraceCollector::RtraceCollector(const RtraceConfig& config)
    : config_(config) {
  report_.config = config;
}

void RtraceCollector::Record(uint64_t op_seq, const RtraceOp& op) {
  const uint64_t total = op.total_ns();
  uint64_t sum = 0;
  for (const uint64_t s : op.stage_ns) sum += s;
  ++report_.ops;
  report_.total_ns_sum += total;
  if (sum != total) ++report_.sum_mismatches;
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    report_.stage_ns_sum[i] += op.stage_ns[i];
  }
  report_.total_hist.Add(total);

  const size_t b = RtraceReport::BandFor(total);
  if (b >= report_.bands.size()) report_.bands.resize(b + 1);
  RtraceReport::Band& band = report_.bands[b];
  band.count += 1;
  band.total_ns += total;
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    band.stage_ns[i] += op.stage_ns[i];
  }

  const size_t w = config_.window_ns == 0
                       ? 0
                       : static_cast<size_t>(op.done_ns / config_.window_ns);
  if (w >= report_.windows.size()) report_.windows.resize(w + 1);
  RtraceReport::Window& win = report_.windows[w];
  win.count += 1;
  win.total_ns += total;
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    win.stage_ns[i] += op.stage_ns[i];
  }
  win.hist.Add(total);

  const bool head = config_.mode == RtraceMode::kFull ||
                    (config_.sample_period != 0 &&
                     op_seq % config_.sample_period == 0);
  if (head) {
    sampled_.push_back(op);
    sampled_.back().sampled = true;
  }
  if (config_.mode == RtraceMode::kSampled && config_.reservoir_k > 0) {
    // Min-heap on slowness: the front is the least slow kept op, evicted
    // when a slower one arrives.
    reservoir_.push_back(op);
    std::push_heap(reservoir_.begin(), reservoir_.end(), SlowerThan);
    if (reservoir_.size() > config_.reservoir_k) {
      std::pop_heap(reservoir_.begin(), reservoir_.end(), SlowerThan);
      reservoir_.pop_back();
    }
  }
}

RtraceReport RtraceCollector::Finalize() const {
  RtraceReport r = report_;
  r.kept = sampled_;
  r.kept.insert(r.kept.end(), reservoir_.begin(), reservoir_.end());
  std::sort(r.kept.begin(), r.kept.end(),
            [](const RtraceOp& a, const RtraceOp& b) {
              if (a.op_id != b.op_id) return a.op_id < b.op_id;
              return a.sampled && !b.sampled;  // keep the sampled copy
            });
  r.kept.erase(std::unique(r.kept.begin(), r.kept.end(),
                           [](const RtraceOp& a, const RtraceOp& b) {
                             return a.op_id == b.op_id;
                           }),
               r.kept.end());
  return r;
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------
void AppendRtraceJson(std::string& out, const RtraceReport& report) {
  out += "{\"mode\":\"";
  out += ToString(report.config.mode);
  out += "\",\"sample_period\":";
  out += std::to_string(report.config.sample_period);
  out += ",\"reservoir_k\":";
  out += std::to_string(report.config.reservoir_k);
  out += ",\"window_ns\":";
  out += std::to_string(report.config.window_ns);
  out += ",\"stages\":[";
  for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
    if (i != 0) out += ',';
    AppendJsonString(out, RtraceStageName(i));
  }
  out += "],\"ops\":";
  out += std::to_string(report.ops);
  out += ",\"sum_mismatches\":";
  out += std::to_string(report.sum_mismatches);
  out += ",\"total_ns_sum\":";
  out += std::to_string(report.total_ns_sum);
  out += ",\"stage_ns_sum\":";
  AppendStageArray(out, report.stage_ns_sum);
  out += ",\"quantiles\":{\"p50_ns\":";
  out += std::to_string(report.total_hist.Quantile(0.50));
  out += ",\"p90_ns\":";
  out += std::to_string(report.total_hist.Quantile(0.90));
  out += ",\"p99_ns\":";
  out += std::to_string(report.total_hist.Quantile(0.99));
  out += ",\"p999_ns\":";
  out += std::to_string(report.total_hist.Quantile(0.999));
  out += ",\"max_ns\":";
  out += std::to_string(report.total_hist.max());
  out += "},\"attribution\":[";
  struct NamedBand {
    std::string_view name;
    double lo, hi;
  };
  constexpr NamedBand kBands[] = {
      {"p0-p50", 0.0, 0.50},
      {"p50-p99", 0.50, 0.99},
      {"p99-p999", 0.99, 0.999},
      {"p999-p100", 0.999, 1.0},
  };
  bool first = true;
  for (const NamedBand& nb : kBands) {
    const RtraceReport::Slice s = report.Attribution(nb.lo, nb.hi);
    if (!first) out += ',';
    first = false;
    out += "{\"band\":";
    AppendJsonString(out, nb.name);
    out += ",\"lo_ns\":";
    out += std::to_string(s.lo_ns);
    out += ",\"hi_ns\":";
    out += std::to_string(s.hi_ns);
    out += ",\"count\":";
    out += std::to_string(s.count);
    out += ",\"total_ns\":";
    out += std::to_string(s.total_ns);
    out += ",\"stage_ns\":";
    AppendStageArray(out, s.stage_ns);
    out += '}';
  }
  out += "],\"windows\":[";
  first = true;
  for (size_t w = 0; w < report.windows.size(); ++w) {
    const RtraceReport::Window& win = report.windows[w];
    if (!first) out += ',';
    first = false;
    out += "{\"start_ns\":";
    out += std::to_string(w * report.config.window_ns);
    out += ",\"count\":";
    out += std::to_string(win.count);
    out += ",\"p50_ns\":";
    out += std::to_string(win.hist.Quantile(0.50));
    out += ",\"p99_ns\":";
    out += std::to_string(win.hist.Quantile(0.99));
    out += ",\"p999_ns\":";
    out += std::to_string(win.hist.Quantile(0.999));
    out += ",\"stage_mean_ns\":[";
    for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
      if (i != 0) out += ',';
      out += std::to_string(win.count == 0 ? 0 : win.stage_ns[i] / win.count);
    }
    out += "]}";
  }
  out += "],\"slowest\":[";
  std::vector<const RtraceOp*> slowest;
  slowest.reserve(report.kept.size());
  for (const RtraceOp& op : report.kept) slowest.push_back(&op);
  std::sort(slowest.begin(), slowest.end(),
            [](const RtraceOp* a, const RtraceOp* b) {
              return SlowerThan(*a, *b);
            });
  const size_t k = report.config.reservoir_k == 0
                       ? slowest.size()
                       : std::min<size_t>(slowest.size(),
                                          report.config.reservoir_k);
  first = true;
  for (size_t i = 0; i < k; ++i) {
    const RtraceOp& op = *slowest[i];
    if (!first) out += ',';
    first = false;
    out += "{\"op_id\":";
    out += std::to_string(op.op_id);
    out += ",\"kind\":";
    out += std::to_string(op.kind);
    out += ",\"server\":";
    out += std::to_string(op.server_node);
    out += ",\"intended_ns\":";
    out += std::to_string(op.intended_ns);
    out += ",\"total_ns\":";
    out += std::to_string(op.total_ns());
    out += ",\"stage_ns\":";
    AppendStageArray(out, op.stage_ns);
    out += '}';
  }
  out += "],\"kept\":";
  out += std::to_string(report.kept.size());
  out += '}';
}

// ---------------------------------------------------------------------------
// Trace emission
// ---------------------------------------------------------------------------
void EmitRtraceTrace(Tracer& tracer, const RtraceReport& report,
                     uint32_t client_node) {
  for (const RtraceOp& op : report.kept) {
    std::vector<TraceArg> args;
    args.reserve(3 + kRtraceStageCount);
    args.push_back({"op_id", true, static_cast<double>(op.op_id), {}});
    args.push_back({"kind", true, static_cast<double>(op.kind), {}});
    args.push_back({"total_ns", true, static_cast<double>(op.total_ns()), {}});
    for (uint32_t i = 0; i < kRtraceStageCount; ++i) {
      args.push_back({std::string(RtraceStageName(i)) + "_ns", true,
                      static_cast<double>(op.stage_ns[i]),
                      {}});
    }
    tracer.RecordSpan(client_node, 0, "rtrace", "rtrace.op", op.intended_ns,
                      op.done_ns, std::move(args));
    if (op.executed_ns != 0) {
      // Server-side execution span of the op's final data-path step, tied
      // to the client span by one flow (start inside the client span at
      // the doorbell, step at execution, end bound to the completion).
      tracer.RecordSpan(op.server_node, 0, "rtrace", "rtrace.server",
                        op.first_bit_ns, op.executed_ns);
      tracer.Flow('s', client_node, 0, "rtrace", "rtrace.flow",
                  op.posted_ns != 0 ? op.posted_ns : op.intended_ns,
                  op.op_id);
      tracer.Flow('t', op.server_node, 0, "rtrace", "rtrace.flow",
                  op.executed_ns, op.op_id);
      tracer.Flow('f', client_node, 0, "rtrace", "rtrace.flow", op.done_ns,
                  op.op_id);
    }
  }
}

}  // namespace rstore::obs
