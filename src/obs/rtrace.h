// rtrace: end-to-end per-operation causal tracing with tail-latency
// attribution.
//
// A traced operation carries a per-op cursor through every stage it
// crosses between its *intended* send instant (the coordinated-omission
// anchor) and its completion: backlog wait, admission deferral, mux/
// doorbell batching, NIC egress queueing, wire propagation, server-side
// execution, the ack's return trip, and the CQ poll-to-collect delay.
// Each transition charges `now - cursor` to exactly one stage and moves
// the cursor, so the per-stage nanoseconds *provably sum* to the op's
// end-to-end latency — the invariant the tests pin and rtail re-checks.
//
// The collector keeps three views, all cheap enough to maintain for every
// completed op:
//   * attribution bands — per-stage sums bucketed by total latency
//     (geometric bands), from which any quantile band's attribution table
//     is derived ("the p999 is 78% admission-defer wait");
//   * virtual-time windows — throughput/p50/p99/p999 plus per-stage means
//     per window, for watching the knee and burst transients;
//   * kept ops — head-sampled (1/N) plus an always-keep-slowest-K
//     reservoir, so tail ops are never lost; these export as Chrome-trace
//     spans tied together by flow events ('s'/'t'/'f', id = op id).
//
// Zero-probe-effect rule (same contract as metrics.h/trace.h): recording
// reads virtual-time values the scheduler already computed, never reads
// the clock to make a decision, schedules nothing, and charges no cost
// model. Mode kOff reduces every hook to one pointer compare; kSampled
// and kFull differ only in how many per-op records are *kept* — the
// timeline is bit-identical across all three modes and any host thread
// count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace rstore::obs {

class Tracer;

// The stages an op's latency decomposes into, in causal order.
enum class RtraceStage : uint8_t {
  kBacklog = 0,  // intended send -> session picked the op up
  kAdmit,        // admission FIFO deferral (window full at the server)
  kMux,          // staged in the session mux -> doorbell rang (batching,
                 // headroom stalls, verbs post cost)
  kEgress,       // doorbell -> transmission start (NIC egress queueing)
  kWire,         // transmission start -> first bit at the server NIC
  kServer,       // first bit -> target-side execution (ingress service +
                 // DRAM access)
  kAck,          // execution -> CQE pushed (ack return trip + CQE order)
  kCqPoll,       // CQE pushed -> engine collected it (poll batching)
  kBackoff,      // retry backoff waits between steps
};
inline constexpr uint32_t kRtraceStageCount = 9;

// Per-op (and aggregated) stage nanoseconds, indexed by RtraceStage.
using RtraceStageNs = std::array<uint64_t, kRtraceStageCount>;

[[nodiscard]] std::string_view RtraceStageName(uint32_t stage) noexcept;

enum class RtraceMode : uint8_t {
  kOff,      // every hook is one pointer compare
  kSampled,  // aggregates for every op; records kept for 1/N + slowest-K
  kFull,     // aggregates + a record for every op
};

[[nodiscard]] std::string_view ToString(RtraceMode mode) noexcept;
// Parses "off" / "sampled" / "full"; false on anything else.
bool ParseRtraceMode(std::string_view s, RtraceMode* out) noexcept;

struct RtraceConfig {
  RtraceMode mode = RtraceMode::kOff;
  uint32_t sample_period = 64;  // head sampling: keep every Nth op
  uint32_t reservoir_k = 32;    // always keep the K slowest ops
  uint64_t window_ns = 1000000;  // time-series window (1 ms virtual)
};

// One kept operation: identity, outcome, and the full stage breakdown.
struct RtraceOp {
  uint64_t op_id = 0;
  uint8_t kind = 0;           // workload-defined op kind (load::OpType)
  uint32_t server_node = 0;   // node the op's final data-path step hit
  uint64_t intended_ns = 0;   // coordinated-omission anchor
  uint64_t done_ns = 0;
  RtraceStageNs stage_ns{};
  // Wire stamps of the final data-path step, for span/flow export.
  uint64_t posted_ns = 0;
  uint64_t first_bit_ns = 0;
  uint64_t executed_ns = 0;
  bool sampled = false;  // head-sampled (reservoir-only ops have false)

  [[nodiscard]] uint64_t total_ns() const noexcept {
    return done_ns - intended_ns;
  }
};

// Aggregated attribution data. Mergeable across engines (Merge) and
// serializable (AppendRtraceJson); copyable so engines can hand it out by
// value in their stats structs.
struct RtraceReport {
  // Geometric growth of the attribution bands (~5% band width).
  static constexpr double kBandGrowth = 1.05;

  struct Band {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    RtraceStageNs stage_ns{};
  };
  struct Window {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    RtraceStageNs stage_ns{};
    LatencyHistogram hist;  // per-window latency distribution
  };
  // Attribution of one latency range (Attribution()).
  struct Slice {
    uint64_t lo_ns = 0;
    uint64_t hi_ns = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    RtraceStageNs stage_ns{};
  };

  RtraceConfig config;
  uint64_t ops = 0;
  uint64_t total_ns_sum = 0;
  RtraceStageNs stage_ns_sum{};
  // Ops whose stage sums failed to reproduce their total exactly. The
  // cursor construction makes this impossible; it is exported (and
  // asserted 0 by rtail and the tests) as the invariant's tripwire.
  uint64_t sum_mismatches = 0;
  LatencyHistogram total_hist;     // end-to-end latency distribution
  std::vector<Band> bands;         // indexed geometrically by total_ns
  std::vector<Window> windows;     // indexed by done_ns / window_ns
  std::vector<RtraceOp> kept;      // head-sampled + slowest-K, op_id order

  // Geometric band index for a total latency (shared by collector/report).
  [[nodiscard]] static size_t BandFor(uint64_t total_ns) noexcept;
  [[nodiscard]] static uint64_t BandLow(size_t band) noexcept;

  // Attribution of the latency range [Quantile(q_lo), Quantile(q_hi)]:
  // per-stage sums over the bands overlapping the range. Band edges quantize
  // the cut at kBandGrowth resolution.
  [[nodiscard]] Slice Attribution(double q_lo, double q_hi) const;

  // Sums `other` into this report (same config required for windows/bands
  // to align; kept ops concatenate and the slowest-K selection re-runs).
  void Merge(const RtraceReport& other);
};

// Appends the report as one JSON object (no trailing newline):
// quantiles, attribution tables for the standard bands (p0-50, p50-99,
// p99-999, p999-100), windowed time series, and the kept slowest ops.
void AppendRtraceJson(std::string& out, const RtraceReport& report);

// Emits the kept ops as Chrome-trace events: a client span per op
// (pid = client_node, stage breakdown in args), a server-side execution
// span (pid = the op's server node), and an 's'/'t'/'f' flow with
// id = op_id tying them into one clickable arrow. Post-run export —
// recording order does not depend on the schedule.
void EmitRtraceTrace(Tracer& tracer, const RtraceReport& report,
                     uint32_t client_node);

// Per-engine collector. All methods are plain host-side arithmetic.
class RtraceCollector {
 public:
  explicit RtraceCollector(const RtraceConfig& config);

  [[nodiscard]] const RtraceConfig& config() const noexcept { return config_; }

  // Records one completed op. `op_seq` is the engine-local op ordinal
  // (head sampling keeps op_seq % sample_period == 0); `op` carries the
  // breakdown and stamps. Called once per successfully completed op.
  void Record(uint64_t op_seq, const RtraceOp& op);

  // Builds the mergeable report (reservoir resolved, kept ops sorted).
  [[nodiscard]] RtraceReport Finalize() const;

 private:
  RtraceConfig config_;
  RtraceReport report_;          // bands/windows/aggregates filled in place
  std::vector<RtraceOp> sampled_;
  // Slowest-K min-heap ordered by (total_ns, descending op_id) so the
  // eviction victim — and therefore the reservoir — is a pure function of
  // the recorded set.
  std::vector<RtraceOp> reservoir_;
};

}  // namespace rstore::obs
