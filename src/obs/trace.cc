#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace rstore::obs {
namespace {

void AppendArgs(std::string& out, const std::vector<TraceArg>& args) {
  out += "\"args\":{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, a.key);
    out += ':';
    if (a.is_number) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", a.number);
      out += buf;
    } else {
      AppendJsonString(out, a.text);
    }
  }
  out += '}';
}

// chrome://tracing wants microsecond timestamps; keep nanosecond
// resolution through the fraction.
void AppendMicros(std::string& out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

void Tracer::RegisterNode(uint32_t id, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  node_names_[id] = std::string(name);
}

void Tracer::SetThreadName(uint32_t node, uint64_t tid,
                           std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[{node, tid}] = std::string(name);
}

void Tracer::RecordSpan(uint32_t node, uint64_t tid, std::string_view category,
                        std::string_view name, uint64_t start_ns,
                        uint64_t end_ns, std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Event e;
  e.phase = 'X';
  e.node = node;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.category = std::string(category);
  e.name = std::string(name);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::Instant(uint32_t node, uint64_t tid, std::string_view category,
                     std::string_view name, uint64_t ts_ns,
                     std::vector<TraceArg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Event e;
  e.phase = 'i';
  e.node = node;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.category = std::string(category);
  e.name = std::string(name);
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::Flow(char phase, uint32_t node, uint64_t tid,
                  std::string_view category, std::string_view name,
                  uint64_t ts_ns, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Event e;
  e.phase = phase;
  e.node = node;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.flow_id = id;
  e.category = std::string(category);
  e.name = std::string(name);
  events_.push_back(std::move(e));
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!file) {
    return Status(ErrorCode::kUnavailable, "cannot open trace file " + path);
  }
  std::string out;
  out.reserve(1u << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto flush_chunk = [&]() -> bool {
    if (out.size() < (1u << 20)) return true;
    const bool ok = std::fwrite(out.data(), 1, out.size(), file.get()) ==
                    out.size();
    out.clear();
    return ok;
  };
  for (const auto& [id, name] : node_names_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(id);
    out += ",\"tid\":0,\"args\":{\"name\":";
    AppendJsonString(out, name);
    out += "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    out += std::to_string(key.first);
    out += ",\"tid\":";
    out += std::to_string(key.second);
    out += ",\"args\":{\"name\":";
    AppendJsonString(out, name);
    out += "}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"name\":";
    AppendJsonString(out, e.name);
    out += ",\"cat\":";
    AppendJsonString(out, e.category);
    out += ",\"pid\":";
    out += std::to_string(e.node);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    AppendMicros(out, e.ts_ns);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(out, e.dur_ns);
    } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
      out += ",\"id\":";
      out += std::to_string(e.flow_id);
      // Bind the flow end to the enclosing slice, as the viewer expects.
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    } else {
      out += ",\"s\":\"t\"";  // instant scoped to its thread
    }
    out += ',';
    AppendArgs(out, e.args);
    out += '}';
    if (!flush_chunk()) {
      return Status(ErrorCode::kUnavailable, "short write to " + path);
    }
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  if (std::fwrite(out.data(), 1, out.size(), file.get()) != out.size()) {
    return Status(ErrorCode::kUnavailable, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace rstore::obs
