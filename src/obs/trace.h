// Virtual-time spans and Chrome trace_event export.
//
// A span is a named interval on one simulated node's timeline, recorded in
// *virtual* nanoseconds. Spans nest naturally per cooperative thread (the
// simulator runs one thread at a time, so same-thread spans form a proper
// stack) and export as Chrome trace_event JSON: one "process" per
// simulated node, one "thread" per SimThread, loadable in chrome://tracing
// or Perfetto.
//
// The probe-effect rule from metrics.h applies: recording reads the
// virtual clock but never advances it, schedules nothing, and charges no
// cost model. Tracing enabled vs disabled is bit-identical in virtual
// time; the only difference is host-side work.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace rstore::obs {

// One span/event attribute. Numbers are stored as double (virtual-time
// spans and byte counts fit well within the 2^53 exact range).
struct TraceArg {
  std::string key;
  bool is_number = true;
  double number = 0.0;
  std::string text;
};

// Collects events in memory; WriteChromeTrace() renders them. Capacity is
// capped so a runaway bench cannot exhaust host memory — overflow events
// are counted, not stored.
//
// Mutation (RegisterNode/SetThreadName/RecordSpan/Instant) is mutex-
// guarded: registration happens from partition threads even when span
// recording is off (tracing itself serializes dispatch, so recording
// order — and therefore the exported trace — stays deterministic).
// events() and WriteChromeTrace() are post-run reads.
class Tracer {
 public:
  struct Event {
    char phase = 'X';  // 'X' complete span, 'i' instant, 's'/'t'/'f' flow
    uint32_t node = 0;
    uint64_t tid = 0;
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;   // spans only
    uint64_t flow_id = 0;  // flow events only ('s'/'t'/'f')
    std::string category;
    std::string name;
    std::vector<TraceArg> args;
  };

  void RegisterNode(uint32_t id, std::string_view name);
  void SetThreadName(uint32_t node, uint64_t tid, std::string_view name);

  void RecordSpan(uint32_t node, uint64_t tid, std::string_view category,
                  std::string_view name, uint64_t start_ns, uint64_t end_ns,
                  std::vector<TraceArg> args = {});
  void Instant(uint32_t node, uint64_t tid, std::string_view category,
               std::string_view name, uint64_t ts_ns,
               std::vector<TraceArg> args = {});
  // Flow events tie spans on different nodes into one clickable arrow in
  // the trace viewer: a start ('s') on the producing span, optional steps
  // ('t'), and an end ('f', emitted with bp:"e" so it binds to the
  // enclosing slice) on the consuming span — all sharing `id`. rtrace uses
  // one flow per sampled op (id = op id) from the client span through the
  // server-side execution back to the completion.
  void Flow(char phase, uint32_t node, uint64_t tid, std::string_view category,
            std::string_view name, uint64_t ts_ns, uint64_t id);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] uint64_t dropped() const noexcept { return dropped_; }
  void SetCapacity(size_t max_events) noexcept { capacity_ = max_events; }
  void Clear();

  // Renders {"traceEvents": [...]} with process/thread metadata, ts/dur in
  // microseconds as chrome://tracing expects.
  [[nodiscard]] Status WriteChromeTrace(const std::string& path) const;

 private:
  std::mutex mu_;  // guards the containers below during a run
  std::vector<Event> events_;
  std::map<uint32_t, std::string> node_names_;
  std::map<std::pair<uint32_t, uint64_t>, std::string> thread_names_;
  size_t capacity_ = 4u << 20;  // ~4M events; plenty for any bench run
  uint64_t dropped_ = 0;
};

// Bundles the registry and the tracer with the clock/thread-id hooks the
// simulator installs (Simulation::AttachTelemetry). One Telemetry can
// outlive a Simulation and aggregate several runs (bench iterations).
class Telemetry {
 public:
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }

  void EnableTracing(bool on) noexcept { tracing_ = on; }
  [[nodiscard]] bool tracing() const noexcept { return tracing_; }

  // Virtual time of the attached simulation (0 when detached).
  [[nodiscard]] uint64_t NowNs() const { return clock_ ? clock_() : 0; }
  // Simulation-unique id of the running SimThread (0 = scheduler context).
  [[nodiscard]] uint64_t CurrentTid() const { return tid_ ? tid_() : 0; }

  void SetClock(std::function<uint64_t()> clock) { clock_ = std::move(clock); }
  void SetTidSource(std::function<uint64_t()> tid) { tid_ = std::move(tid); }

  [[nodiscard]] std::string DumpMetricsJson() const {
    return metrics_.DumpJson();
  }
  [[nodiscard]] Status WriteTrace(const std::string& path) const {
    return tracer_.WriteChromeTrace(path);
  }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  bool tracing_ = false;
  std::function<uint64_t()> clock_;
  std::function<uint64_t()> tid_;
};

// RAII span over the current virtual-time interval on `node`. Null-safe:
// with telemetry absent or tracing disabled the constructor reduces to a
// pointer test and the destructor to a no-op. Category and name must
// outlive the span (string literals or stable registry strings).
class ObsSpan {
 public:
  ObsSpan(Telemetry* telemetry, uint32_t node, std::string_view category,
          std::string_view name)
      : telemetry_(telemetry && telemetry->tracing() ? telemetry : nullptr) {
    if (telemetry_ != nullptr) {
      node_ = node;
      category_ = category;
      name_ = name;
      tid_ = telemetry_->CurrentTid();
      start_ns_ = telemetry_->NowNs();
    }
  }

  ~ObsSpan() {
    if (telemetry_ != nullptr) {
      telemetry_->tracer().RecordSpan(node_, tid_, category_, name_, start_ns_,
                                      telemetry_->NowNs(), std::move(args_));
    }
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  [[nodiscard]] bool active() const noexcept { return telemetry_ != nullptr; }
  [[nodiscard]] uint64_t start_ns() const noexcept { return start_ns_; }

  void Arg(std::string_view key, double value) {
    if (telemetry_ != nullptr) {
      args_.push_back({std::string(key), true, value, {}});
    }
  }
  void Arg(std::string_view key, std::string_view value) {
    if (telemetry_ != nullptr) {
      args_.push_back({std::string(key), false, 0.0, std::string(value)});
    }
  }

 private:
  Telemetry* telemetry_;
  uint32_t node_ = 0;
  uint64_t tid_ = 0;
  uint64_t start_ns_ = 0;
  std::string_view category_;
  std::string_view name_;
  std::vector<TraceArg> args_;
};

}  // namespace rstore::obs
