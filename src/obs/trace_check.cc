#include "obs/trace_check.h"

#include <cstdio>
#include <set>

namespace rstore::obs {
namespace {

Status BadTrace(std::string what) {
  return Status(ErrorCode::kInvalidArgument, "invalid trace: " + std::move(what));
}

}  // namespace

Result<TraceCheckSummary> ValidateChromeTrace(const JsonValue& root) {
  if (!root.Is(JsonValue::Type::kObject)) {
    return BadTrace("top level is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->Is(JsonValue::Type::kArray)) {
    return BadTrace("missing traceEvents array");
  }
  TraceCheckSummary summary;
  std::set<double> named_pids;
  // Flow-event pairing: bit 0 = saw a start ('s'), bit 1 = saw an end ('f').
  std::map<double, unsigned> flows;
  size_t index = 0;
  for (const JsonValue& e : events->array) {
    const std::string at = " (event " + std::to_string(index++) + ")";
    if (!e.Is(JsonValue::Type::kObject)) return BadTrace("event not an object" + at);
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->Is(JsonValue::Type::kString)) {
      return BadTrace("event without string ph" + at);
    }
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    if (pid == nullptr || !pid->Is(JsonValue::Type::kNumber) ||
        tid == nullptr || !tid->Is(JsonValue::Type::kNumber)) {
      return BadTrace("event without numeric pid/tid" + at);
    }
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->Is(JsonValue::Type::kString)) {
      return BadTrace("event without string name" + at);
    }
    if (ph->str == "M") {
      if (name->str == "process_name") named_pids.insert(pid->number);
      continue;
    }
    const JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->Is(JsonValue::Type::kNumber) || ts->number < 0) {
      return BadTrace("event without non-negative numeric ts" + at);
    }
    ++summary.total_events;
    const JsonValue* cat = e.Find("cat");
    if (cat != nullptr && cat->Is(JsonValue::Type::kString)) {
      ++summary.events_by_category[cat->str];
    }
    if (ph->str == "X") {
      const JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->Is(JsonValue::Type::kNumber) ||
          dur->number < 0) {
        return BadTrace("X event without non-negative dur" + at);
      }
      ++summary.complete_spans;
    } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      const JsonValue* id = e.Find("id");
      if (id == nullptr || !id->Is(JsonValue::Type::kNumber)) {
        return BadTrace("flow event without numeric id" + at);
      }
      ++summary.flow_events;
      unsigned& bits = flows[id->number];
      if (ph->str == "s") bits |= 1u;
      if (ph->str == "f") bits |= 2u;
    }
  }
  for (const auto& [id, bits] : flows) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f", id);
    if ((bits & 1u) == 0) {
      return BadTrace("dangling flow end: id " + std::string(buf) +
                      " has no start event");
    }
    if ((bits & 2u) == 0) {
      return BadTrace("unterminated flow: id " + std::string(buf) +
                      " has no end event");
    }
  }
  summary.flow_ids = flows.size();
  summary.processes = named_pids.size();
  return summary;
}

Result<TraceCheckSummary> ValidateChromeTraceFile(const std::string& path) {
  Result<JsonValue> parsed = ParseJsonFile(path);
  if (!parsed.ok()) return parsed.status();
  return ValidateChromeTrace(parsed.value());
}

}  // namespace rstore::obs
