// Chrome trace_event validator over the shared obs/json.h parser.
//
// Verifies what this repo emits (WriteChromeTrace files) so tests and the
// `trace_check` CI tool can check well-formedness without an external
// dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/json.h"

namespace rstore::obs {

// What ValidateChromeTrace saw, for assertions and human output.
struct TraceCheckSummary {
  size_t total_events = 0;     // spans + instants + flows (metadata excluded)
  size_t complete_spans = 0;   // ph == "X"
  size_t processes = 0;        // distinct pids with a process_name
  size_t flow_events = 0;      // ph in {"s","t","f"}
  size_t flow_ids = 0;         // distinct flow ids
  std::map<std::string, size_t> events_by_category;

  [[nodiscard]] bool HasCategory(std::string_view cat) const {
    return events_by_category.contains(std::string(cat));
  }
};

// Structural validation of an exported trace: top-level object with a
// traceEvents array; every event has string ph/name, numeric pid/tid/ts;
// "X" events carry a non-negative dur; flow events ("s"/"t"/"f") carry a
// numeric id, and every flow id has at least one start and one end — a
// dangling flow end (an "f" whose id never started) is an error.
[[nodiscard]] Result<TraceCheckSummary> ValidateChromeTrace(
    const JsonValue& root);

// Convenience: read `path`, parse, validate.
[[nodiscard]] Result<TraceCheckSummary> ValidateChromeTraceFile(
    const std::string& path);

}  // namespace rstore::obs
