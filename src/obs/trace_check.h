// Minimal JSON parser + Chrome trace_event validator.
//
// Just enough JSON to round-trip what this repo emits (DumpJson snapshots
// and WriteChromeTrace files) so tests and the `trace_check` CI tool can
// verify well-formedness without an external dependency. Not a general
// JSON library: numbers parse as double, \uXXXX escapes outside ASCII are
// preserved verbatim as their escape text.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rstore::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Insertion order preserved (duplicate keys keep the last value).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* Find(std::string_view key) const;
  [[nodiscard]] bool Is(Type t) const noexcept { return type == t; }
};

// Parses a complete JSON document; trailing garbage is an error.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

// What ValidateChromeTrace saw, for assertions and human output.
struct TraceCheckSummary {
  size_t total_events = 0;     // spans + instants + flows (metadata excluded)
  size_t complete_spans = 0;   // ph == "X"
  size_t processes = 0;        // distinct pids with a process_name
  size_t flow_events = 0;      // ph in {"s","t","f"}
  size_t flow_ids = 0;         // distinct flow ids
  std::map<std::string, size_t> events_by_category;

  [[nodiscard]] bool HasCategory(std::string_view cat) const {
    return events_by_category.contains(std::string(cat));
  }
};

// Structural validation of an exported trace: top-level object with a
// traceEvents array; every event has string ph/name, numeric pid/tid/ts;
// "X" events carry a non-negative dur; flow events ("s"/"t"/"f") carry a
// numeric id, and every flow id has at least one start and one end — a
// dangling flow end (an "f" whose id never started) is an error.
[[nodiscard]] Result<TraceCheckSummary> ValidateChromeTrace(
    const JsonValue& root);

// Convenience: read `path`, parse, validate.
[[nodiscard]] Result<TraceCheckSummary> ValidateChromeTraceFile(
    const std::string& path);

}  // namespace rstore::obs
