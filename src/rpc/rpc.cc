#include "rpc/rpc.h"

#include <cassert>
#include <cstring>

#include "common/log.h"

namespace rstore::rpc {
namespace {

constexpr size_t kFrameHeader = 16;  // u64 id + u32 method/status + u32 len

struct Frame {
  uint64_t rpc_id;
  uint32_t code;  // method (request) or status (response)
  std::span<const std::byte> payload;
};

bool ParseFrame(std::span<const std::byte> buf, uint32_t byte_len, Frame* out) {
  if (byte_len < kFrameHeader || byte_len > buf.size()) return false;
  std::memcpy(&out->rpc_id, buf.data(), 8);
  std::memcpy(&out->code, buf.data() + 8, 4);
  uint32_t len = 0;
  std::memcpy(&len, buf.data() + 12, 4);
  if (kFrameHeader + len > byte_len) return false;
  out->payload = buf.subspan(kFrameHeader, len);
  return true;
}

void WriteFrame(std::byte* dst, uint64_t rpc_id, uint32_t code,
                std::span<const std::byte> payload) {
  std::memcpy(dst, &rpc_id, 8);
  std::memcpy(dst + 8, &code, 4);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(dst + 12, &len, 4);
  if (!payload.empty()) {
    std::memcpy(dst + kFrameHeader, payload.data(), payload.size());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------
struct RpcServer::Connection {
  common::HugeBuffer arena;
  verbs::MemoryRegion* mr = nullptr;
};

RpcServer::RpcServer(verbs::Device& device, uint32_t service_id,
                     RpcOptions options)
    : device_(device), service_id_(service_id), options_(options) {}

RpcServer::~RpcServer() = default;

void RpcServer::RegisterHandler(uint32_t method, Handler handler) {
  assert(!started_ && "register handlers before Start()");
  handlers_[method] = std::move(handler);
}

void RpcServer::RegisterHandler(uint32_t method, std::string name,
                                Handler handler) {
  method_names_[method] = std::move(name);
  RegisterHandler(method, std::move(handler));
}

RpcServer::MethodObs* RpcServer::ObsForMethod(uint32_t method,
                                              obs::Telemetry* telemetry) {
  if (telemetry != obs_owner_) {
    obs_owner_ = telemetry;
    method_obs_.clear();
  }
  if (telemetry == nullptr) return nullptr;
  auto it = method_obs_.find(method);
  if (it == method_obs_.end()) {
    auto name_it = method_names_.find(method);
    const std::string name = name_it != method_names_.end()
                                 ? name_it->second
                                 : "m" + std::to_string(method);
    obs::NodeMetrics& m = telemetry->metrics().ForNode(device_.node_id());
    MethodObs obs;
    obs.span_name = "rpc." + name;
    obs.calls = &m.GetCounter(obs.span_name + ".calls");
    obs.latency = &m.GetTimer(obs.span_name + "_ns");
    it = method_obs_.emplace(method, std::move(obs)).first;
  }
  return &it->second;
}

void RpcServer::Start() {
  started_ = true;
  verbs::Network& net = device_.network();
  net.Listen(device_, service_id_);
  device_.node().Spawn("rpc-accept:" + std::to_string(service_id_), [this] {
    verbs::Network& net = device_.network();
    auto& listener = net.Listen(device_, service_id_);
    while (true) {
      auto qp = listener.Accept();
      if (!qp.ok()) return;
      verbs::QueuePair* conn_qp = *qp;
      device_.node().Spawn(
          "rpc-conn:" + std::to_string(service_id_),
          [this, conn_qp] { ServeConnection(conn_qp); });
    }
  });
}

void RpcServer::ServeConnection(verbs::QueuePair* qp) {
  const sim::CpuCostModel& cpu = device_.network().cpu_model();
  auto conn = std::make_unique<Connection>();
  const uint32_t n_recv = options_.recv_buffers;
  const size_t slot = options_.buffer_size;
  conn->arena = common::HugeBuffer(static_cast<size_t>(n_recv) * 2 * slot);

  verbs::ProtectionDomain& pd = device_.CreatePd();
  auto mr = pd.RegisterMemory(conn->arena.data(), conn->arena.size(),
                              verbs::kLocalWrite);
  if (!mr.ok()) return;
  conn->mr = *mr;
  Connection& c = *conn;
  connections_.push_back(std::move(conn));

  auto recv_slot = [&](uint32_t i) { return c.arena.data() + i * slot; };
  auto send_slot = [&](uint32_t i) {
    return c.arena.data() + (n_recv + i) * slot;
  };
  for (uint32_t i = 0; i < n_recv; ++i) {
    (void)qp->PostRecv(verbs::RecvWr{
        .wr_id = i,
        .local = {recv_slot(i), static_cast<uint32_t>(slot), c.mr->lkey()}});
  }
  std::vector<uint32_t> free_send;
  for (uint32_t i = 0; i < n_recv; ++i) free_send.push_back(i);

  auto charge = [&](sim::Nanos ns) {
    cpu_time_ += ns;
    sim::ChargeCpu(ns);
  };

  // Requests that arrived while we were stalled on a send slot.
  std::deque<verbs::WorkCompletion> backlog;

  // Reclaims response slots; send completions land on the QP's send CQ.
  auto drain_send_cq = [&](bool blocking) -> bool {
    auto wcs = blocking ? qp->send_cq().WaitPoll(64) : qp->send_cq().Poll(64);
    for (const auto& wc : wcs) {
      if (!wc.ok()) return false;
      if (wc.wr_id >= n_recv) {
        free_send.push_back(static_cast<uint32_t>(wc.wr_id - n_recv));
      }
    }
    return true;
  };

  while (true) {
    if (!drain_send_cq(/*blocking=*/false)) return;
    std::vector<verbs::WorkCompletion> wcs;
    if (!backlog.empty()) {
      wcs.push_back(backlog.front());
      backlog.pop_front();
    } else {
      wcs = qp->recv_cq().WaitPoll();
    }
    for (const auto& wc : wcs) {
      if (!wc.ok()) return;  // peer gone or QP flushed: end service thread
      if (wc.opcode != verbs::Opcode::kRecv) continue;
      const auto recv_idx = static_cast<uint32_t>(wc.wr_id);
      Frame frame{};
      if (!ParseFrame({recv_slot(recv_idx), slot}, wc.byte_len, &frame)) {
        LOG_WARN << "rpc: malformed frame on service " << service_id_;
        (void)qp->PostRecv(verbs::RecvWr{
            .wr_id = recv_idx,
            .local = {recv_slot(recv_idx), static_cast<uint32_t>(slot),
                      c.mr->lkey()}});
        continue;
      }

      // Two-sided costs: handler dispatch plus unmarshalling the request.
      // The telemetry span brackets the whole server-side op — dispatch,
      // handler, response marshal, reply post — on the connection thread.
      obs::Telemetry* tel = device_.network().sim().telemetry();
      MethodObs* mobs = ObsForMethod(frame.code, tel);
      const uint64_t obs_t0 = tel != nullptr ? tel->NowNs() : 0;
      obs::ObsSpan span(tel, device_.node_id(), "rpc",
                        mobs != nullptr ? std::string_view(mobs->span_name)
                                        : std::string_view("rpc.call"));
      span.Arg("bytes_in", static_cast<double>(frame.payload.size()));
      charge(cpu.rpc_handler_ns + sim::MarshalCost(cpu, frame.payload.size()));

      Writer response;
      Status status;
      auto it = handlers_.find(frame.code);
      if (it == handlers_.end()) {
        status = Status(ErrorCode::kNotFound,
                        "no handler for method " + std::to_string(frame.code));
      } else {
        Reader reader(frame.payload);
        status = it->second(reader, response);
      }
      ++calls_served_;

      std::vector<std::byte> error_payload;
      std::span<const std::byte> payload = response.buffer();
      if (!status.ok()) {
        const std::string& msg = status.message();
        error_payload.resize(msg.size());
        std::memcpy(error_payload.data(), msg.data(), msg.size());
        payload = error_payload;
      }
      if (kFrameHeader + payload.size() > slot) {
        status = Status(ErrorCode::kInvalidArgument, "response too large");
        payload = {};
      }

      // Re-post the receive before replying so a fast client can pipeline.
      (void)qp->PostRecv(verbs::RecvWr{
          .wr_id = recv_idx,
          .local = {recv_slot(recv_idx), static_cast<uint32_t>(slot),
                    c.mr->lkey()}});

      // Wait for a free send slot if the client has many calls in flight.
      while (free_send.empty()) {
        if (!drain_send_cq(/*blocking=*/true)) return;
      }
      const uint32_t sidx = free_send.back();
      free_send.pop_back();

      charge(sim::MarshalCost(cpu, payload.size()));
      WriteFrame(send_slot(sidx), frame.rpc_id,
                 static_cast<uint32_t>(status.code()), payload);
      (void)qp->PostSend(verbs::SendWr{
          .wr_id = n_recv + sidx,
          .opcode = verbs::Opcode::kSend,
          .local = {send_slot(sidx),
                    static_cast<uint32_t>(kFrameHeader + payload.size()),
                    c.mr->lkey()}});
      if (mobs != nullptr) {
        mobs->calls->Inc();
        mobs->latency->Record(tel->NowNs() - obs_t0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------
RpcClient::RpcClient(verbs::Device& device, uint32_t server_node,
                     RpcOptions options)
    : device_(device), server_node_(server_node), options_(options) {}

Result<std::unique_ptr<RpcClient>> RpcClient::Connect(verbs::Device& device,
                                                      uint32_t server_node,
                                                      uint32_t service_id,
                                                      RpcOptions options) {
  auto client = std::unique_ptr<RpcClient>(
      new RpcClient(device, server_node, options));
  verbs::Network& net = device.network();
  verbs::CompletionQueue& cq = device.CreateCq();
  auto qp = net.Connect(device, server_node, service_id, {}, &cq, &cq);
  if (!qp.ok()) return qp.status();
  client->qp_ = *qp;
  RSTORE_RETURN_IF_ERROR(client->SetupBuffers());
  return client;
}

RpcClient::~RpcClient() {
  if (qp_ != nullptr) qp_->Close();
  if (pd_ != nullptr && arena_mr_ != nullptr) {
    (void)pd_->DeregisterMemory(arena_mr_);
  }
}

Status RpcClient::SetupBuffers() {
  const uint32_t n = options_.recv_buffers;
  const size_t slot = options_.buffer_size;
  arena_ = common::HugeBuffer(static_cast<size_t>(n) * 2 * slot);
  pd_ = &device_.CreatePd();
  verbs::ProtectionDomain& pd = *pd_;
  auto mr = pd.RegisterMemory(arena_.data(), arena_.size(),
                              verbs::kLocalWrite);
  if (!mr.ok()) return mr.status();
  arena_mr_ = *mr;
  for (uint32_t i = 0; i < n; ++i) {
    RSTORE_RETURN_IF_ERROR(qp_->PostRecv(verbs::RecvWr{
        .wr_id = i,
        .local = {arena_.data() + i * slot, static_cast<uint32_t>(slot),
                  arena_mr_->lkey()}}));
  }
  for (uint32_t i = 0; i < n; ++i) {
    free_send_bufs_.push_back(arena_.data() + (n + i) * slot);
  }
  return Status::Ok();
}

void RpcClient::FailAllPending(const Status& status) {
  for (auto& [id, call] : pending_) {
    call->done = true;
    call->status = status;
    call->cv.NotifyAll();
  }
  pending_.clear();
}

void RpcClient::PumpCompletions(sim::Nanos timeout) {
  const size_t slot = options_.buffer_size;
  const uint32_t n = options_.recv_buffers;
  auto wcs = qp_->recv_cq().WaitPoll(16, timeout);
  for (const auto& wc : wcs) {
    if (!wc.ok()) {
      FailAllPending(Status(ErrorCode::kUnavailable,
                            std::string("rpc transport error: ") +
                                std::string(verbs::ToString(wc.status))));
      return;
    }
    if (wc.opcode != verbs::Opcode::kRecv) {
      // Send completion: wr_id is the arena offset of the send slot.
      free_send_bufs_.push_back(arena_.data() + wc.wr_id);
      continue;
    }
    const auto recv_idx = static_cast<uint32_t>(wc.wr_id);
    std::byte* buf = arena_.data() + recv_idx * slot;
    Frame frame{};
    if (ParseFrame({buf, slot}, wc.byte_len, &frame)) {
      auto it = pending_.find(frame.rpc_id);
      if (it != pending_.end()) {
        PendingCall* call = it->second;
        pending_.erase(it);
        const auto code = static_cast<ErrorCode>(frame.code);
        if (code == ErrorCode::kOk) {
          call->payload.assign(frame.payload.begin(), frame.payload.end());
        } else {
          call->status = Status(
              code, std::string(reinterpret_cast<const char*>(
                                    frame.payload.data()),
                                frame.payload.size()));
        }
        call->done = true;
        call->cv.NotifyAll();
      }
    }
    (void)qp_->PostRecv(verbs::RecvWr{
        .wr_id = recv_idx,
        .local = {buf, static_cast<uint32_t>(slot), arena_mr_->lkey()}});
  }
  (void)n;
}

Result<std::vector<std::byte>> RpcClient::Call(uint32_t method,
                                               const Writer& request) {
  return CallRaw(method, request.buffer());
}

Result<std::vector<std::byte>> RpcClient::CallRaw(
    uint32_t method, std::span<const std::byte> request) {
  const size_t slot = options_.buffer_size;
  if (kFrameHeader + request.size() > slot) {
    return Result<std::vector<std::byte>>(
        ErrorCode::kInvalidArgument, "request exceeds rpc buffer size");
  }
  if (qp_->state() != verbs::QueuePair::State::kRts) {
    return Result<std::vector<std::byte>>(ErrorCode::kUnavailable,
                                          "rpc connection is down");
  }

  const sim::CpuCostModel& cpu = device_.network().cpu_model();
  obs::Telemetry* tel = device_.network().sim().telemetry();
  if (tel != obs_owner_) {
    obs_owner_ = tel;
    if (tel != nullptr) {
      obs::NodeMetrics& m = tel->metrics().ForNode(device_.node_id());
      obs_calls_ = &m.GetCounter("rpc.calls");
      obs_call_ns_ = &m.GetTimer("rpc.call_ns");
    } else {
      obs_calls_ = nullptr;
      obs_call_ns_ = nullptr;
    }
  }
  const uint64_t obs_t0 = tel != nullptr ? tel->NowNs() : 0;
  obs::ObsSpan span(tel, device_.node_id(), "rpc", "rpc.call");
  span.Arg("method", static_cast<double>(method));
  span.Arg("server", static_cast<double>(server_node_));
  // Records the call count + latency on every exit path.
  struct CallObs {
    RpcClient* client;
    obs::Telemetry* tel;
    uint64_t t0;
    ~CallObs() {
      if (tel != nullptr && client->obs_calls_ != nullptr) {
        client->obs_calls_->Inc();
        client->obs_call_ns_->Record(tel->NowNs() - t0);
      }
    }
  } call_obs{this, tel, obs_t0};
  sim::ChargeCpu(sim::MarshalCost(cpu, request.size()));

  const sim::Nanos deadline = sim::Now() + options_.call_timeout;
  while (free_send_bufs_.empty()) {
    if (sim::Now() >= deadline) {
      return Result<std::vector<std::byte>>(ErrorCode::kTimedOut,
                                            "no free rpc send buffer");
    }
    PumpCompletions(deadline - sim::Now());
  }
  std::byte* send_buf = free_send_bufs_.back();
  free_send_bufs_.pop_back();

  const uint64_t rpc_id = next_rpc_id_++;
  WriteFrame(send_buf, rpc_id, method, request);

  PendingCall call(device_.network().sim());
  pending_[rpc_id] = &call;

  Status posted = qp_->PostSend(verbs::SendWr{
      .wr_id = static_cast<uint64_t>(send_buf - arena_.data()),
      .opcode = verbs::Opcode::kSend,
      .local = {send_buf,
                static_cast<uint32_t>(kFrameHeader + request.size()),
                arena_mr_->lkey()}});
  if (!posted.ok()) {
    pending_.erase(rpc_id);
    return posted;
  }

  // One thread pumps the shared completion queue at a time; the others
  // park on their call's condvar and take over pumping when poked.
  while (!call.done) {
    if (sim::Now() >= deadline) {
      pending_.erase(rpc_id);
      return Result<std::vector<std::byte>>(ErrorCode::kTimedOut,
                                            "rpc call timed out");
    }
    if (!pumping_) {
      pumping_ = true;
      PumpCompletions(deadline - sim::Now());
      pumping_ = false;
      // Hand the pump to another waiter if our call just finished.
      if (!pending_.empty()) pending_.begin()->second->cv.NotifyAll();
    } else {
      (void)call.cv.WaitFor(deadline - sim::Now());
    }
  }
  if (!call.status.ok()) return call.status;
  // Unmarshal cost for the response payload.
  sim::ChargeCpu(sim::MarshalCost(cpu, call.payload.size()));
  return std::move(call.payload);
}

}  // namespace rstore::rpc
