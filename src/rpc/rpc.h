// Two-sided RPC over rverbs SEND/RECV.
//
// Used for everything that is *supposed* to be two-sided: RStore's
// control path (allocation, mapping, leases, notifications through the
// master) and the comparison baselines whose data paths flow through
// server CPUs. Each RPC charges the server the per-message handler cost
// and both ends the marshalling cost from the CPU model — exactly the
// overhead that one-sided RStore IO avoids on its data path.
//
// Wire format (inside a verbs SEND):
//   request : [u64 rpc_id][u32 method][u32 payload_len][payload]
//   response: [u64 rpc_id][u32 status][u32 payload_len][payload]
//
// Concurrency: an RpcClient may be shared by several threads on one node;
// responses are matched by rpc_id, and whichever thread is polling the
// completion queue dispatches for the others.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/huge_buffer.h"
#include "common/status.h"
#include "obs/trace.h"
#include "rpc/wire.h"
#include "sim/cost_model.h"
#include "verbs/verbs.h"

namespace rstore::rpc {

struct RpcOptions {
  // Size of each registered message buffer; bounds the largest request or
  // response payload (minus the 16-byte frame header).
  uint32_t buffer_size = 64 * 1024;
  // Receive buffers pre-posted per connection (max in-flight inbound).
  uint32_t recv_buffers = 32;
  // Give up on a call after this long (peer death shows up earlier via
  // QP errors; this catches hung handlers).
  sim::Nanos call_timeout = sim::Seconds(30);
};

// Server-side handler: parse the request from `req`, write the response
// into `resp`, return the application status. Runs on a per-connection
// thread on the server node, so it may block (sleep, nested RPC, verbs).
using Handler = std::function<Status(Reader& req, Writer& resp)>;

class RpcServer {
 public:
  // Creates the server and its verbs listener; call Start() to begin
  // accepting. `service_id` is the rendezvous port.
  RpcServer(verbs::Device& device, uint32_t service_id, RpcOptions options = {});
  ~RpcServer();  // out of line: Connection is an incomplete type here

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Registers a method handler; must precede Start() for that method to
  // be visible (no locking — registration is setup-time only).
  void RegisterHandler(uint32_t method, Handler handler);
  // Same, with a human-readable method name used for telemetry: per-opcode
  // call counters, latency histograms, and control-path spans are emitted
  // as "rpc.<name>" when the hosting simulation has telemetry attached.
  void RegisterHandler(uint32_t method, std::string name, Handler handler);

  // Spawns the accept loop on the server node. Each accepted connection
  // gets its own service thread.
  void Start();

  [[nodiscard]] uint32_t service_id() const noexcept { return service_id_; }
  [[nodiscard]] uint64_t calls_served() const noexcept {
    return calls_served_;
  }
  // Cumulative CPU nanoseconds charged to this server for RPC handling —
  // the "server CPU cost" series of experiment E6.
  [[nodiscard]] sim::Nanos cpu_time() const noexcept { return cpu_time_; }

 private:
  struct Connection;
  void ServeConnection(verbs::QueuePair* qp);

  // Per-method telemetry instruments, resolved lazily per attach.
  struct MethodObs {
    std::string span_name;  // "rpc.<name>"; stable for span lifetimes
    obs::Counter* calls = nullptr;
    obs::Timer* latency = nullptr;
  };
  MethodObs* ObsForMethod(uint32_t method, obs::Telemetry* telemetry);

  verbs::Device& device_;
  uint32_t service_id_;
  RpcOptions options_;
  std::map<uint32_t, Handler> handlers_;
  std::map<uint32_t, std::string> method_names_;
  std::map<uint32_t, MethodObs> method_obs_;
  obs::Telemetry* obs_owner_ = nullptr;
  std::vector<std::unique_ptr<Connection>> connections_;
  uint64_t calls_served_ = 0;
  sim::Nanos cpu_time_ = 0;
  bool started_ = false;
};

class RpcClient {
 public:
  // Connects to (server_node, service_id); blocks the calling thread.
  static Result<std::unique_ptr<RpcClient>> Connect(verbs::Device& device,
                                                    uint32_t server_node,
                                                    uint32_t service_id,
                                                    RpcOptions options = {});

  // Disarms the transport: closes the QP (flushing posted receives) and
  // deregisters the message arena, so late responses from slow handlers
  // NAK instead of landing in freed memory.
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Issues one call and blocks until the response (or failure) arrives.
  // On success the returned bytes are the handler's response payload.
  Result<std::vector<std::byte>> Call(uint32_t method,
                                      const Writer& request);
  // Same, with a pre-encoded request payload.
  Result<std::vector<std::byte>> CallRaw(uint32_t method,
                                         std::span<const std::byte> payload);

  [[nodiscard]] uint32_t server_node() const noexcept { return server_node_; }
  [[nodiscard]] bool healthy() const noexcept {
    return qp_->state() == verbs::QueuePair::State::kRts;
  }

 private:
  RpcClient(verbs::Device& device, uint32_t server_node, RpcOptions options);

  struct PendingCall {
    explicit PendingCall(sim::Simulation& s) : cv(s) {}
    sim::CondVar cv;
    bool done = false;
    Status status;
    std::vector<std::byte> payload;
  };

  Status SetupBuffers();
  void PumpCompletions(sim::Nanos timeout);
  void FailAllPending(const Status& status);

  verbs::Device& device_;
  uint32_t server_node_;
  RpcOptions options_;
  // Client-side telemetry instruments, resolved lazily per attach.
  obs::Telemetry* obs_owner_ = nullptr;
  obs::Counter* obs_calls_ = nullptr;
  obs::Timer* obs_call_ns_ = nullptr;
  verbs::QueuePair* qp_ = nullptr;
  verbs::ProtectionDomain* pd_ = nullptr;
  verbs::MemoryRegion* arena_mr_ = nullptr;
  // Message slots; HugeBuffer so the few-MiB arena comes from the pooled
  // mapping cache instead of being faulted fresh per connection.
  common::HugeBuffer arena_;
  std::vector<std::byte*> free_send_bufs_;
  uint64_t next_rpc_id_ = 1;
  std::map<uint64_t, PendingCall*> pending_;
  bool pumping_ = false;
};

}  // namespace rstore::rpc
