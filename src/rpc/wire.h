// Byte-stream serialization for control-path messages.
//
// Deliberately boring: explicit little-endian scalar writes and length-
// prefixed strings/blobs, with a Reader that fails closed (any underflow
// or malformed length poisons the reader, and all subsequent reads return
// false). No reflection, no allocation tricks — control messages are tiny
// and rare by design (that is the paper's thesis), so clarity wins.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rstore::rpc {

class Writer {
 public:
  void U8(uint8_t v) { Append(&v, 1); }
  void U32(uint32_t v) { Append(&v, 4); }
  void U64(uint64_t v) { Append(&v, 8); }
  void I64(int64_t v) { Append(&v, 8); }
  void F64(double v) { Append(&v, 8); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  void Bytes(std::span<const std::byte> b) {
    U32(static_cast<uint32_t>(b.size()));
    Append(b.data(), b.size());
  }
  // Splices pre-encoded bytes without a length prefix.
  void AppendRaw(std::span<const std::byte> b) { Append(b.data(), b.size()); }

  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::byte> Take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] size_t size() const noexcept { return buf_.size(); }

 private:
  void Append(const void* p, size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool U8(uint8_t* v) { return Fixed(v, 1); }
  [[nodiscard]] bool U32(uint32_t* v) { return Fixed(v, 4); }
  [[nodiscard]] bool U64(uint64_t* v) { return Fixed(v, 8); }
  [[nodiscard]] bool I64(int64_t* v) { return Fixed(v, 8); }
  [[nodiscard]] bool F64(double* v) { return Fixed(v, 8); }
  [[nodiscard]] bool Bool(bool* v) {
    uint8_t b = 0;
    if (!U8(&b)) return false;
    *v = (b != 0);
    return true;
  }

  [[nodiscard]] bool Str(std::string* out) {
    uint32_t n = 0;
    if (!U32(&n) || n > Remaining()) return Fail();
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool Bytes(std::vector<std::byte>* out) {
    uint32_t n = 0;
    if (!U32(&n) || n > Remaining()) return Fail();
    out->assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
                data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }
  // Zero-copy view of a length-prefixed blob (valid while the underlying
  // buffer lives).
  [[nodiscard]] bool BytesView(std::span<const std::byte>* out) {
    uint32_t n = 0;
    if (!U32(&n) || n > Remaining()) return Fail();
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] size_t Remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  bool Fixed(void* v, size_t n) {
    if (failed_ || Remaining() < n) return Fail();
    std::memcpy(v, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool Fail() noexcept {
    failed_ = true;
    return false;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace rstore::rpc
