#include "rsort/records.h"

#include <algorithm>
#include <numeric>

namespace rstore::sort {

void GenerateRecord(uint64_t seed, uint64_t index, std::byte* out) {
  // Two mixes make the record a pure function of (seed, index) without
  // needing a long-period generator per record.
  Rng rng(seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x165667b19e3779f9ULL));
  rng.Fill(out, kRecordBytes);
  // Stamp the index into the payload so records are distinguishable even
  // under key collisions (TeraGen does the same with its "rowid").
  std::memcpy(out + kKeyBytes, &index, sizeof(index));
}

void GenerateRecords(uint64_t seed, uint64_t first, uint64_t count,
                     std::byte* out) {
  for (uint64_t i = 0; i < count; ++i) {
    GenerateRecord(seed, first + i, out + i * kRecordBytes);
  }
}

bool IsSorted(const std::byte* records, uint64_t count) {
  for (uint64_t i = 1; i < count; ++i) {
    if (CompareKeys(records + (i - 1) * kRecordBytes,
                    records + i * kRecordBytes) > 0) {
      return false;
    }
  }
  return true;
}

uint64_t UnorderedChecksum(const std::byte* records, uint64_t count) {
  // Sum of per-record hashes: commutative, so permutation-invariant.
  uint64_t sum = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const std::byte* r = records + i * kRecordBytes;
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t b = 0; b < kRecordBytes; ++b) {
      h ^= static_cast<uint8_t>(r[b]);
      h *= 0x100000001b3ULL;
    }
    sum += h;
  }
  return sum;
}

void SortRecords(std::byte* records, uint64_t count) {
  // Sort an index permutation, then apply it with one scratch buffer —
  // cheaper than swapping 100-byte records through quicksort.
  std::vector<uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return CompareKeys(records + static_cast<uint64_t>(a) * kRecordBytes,
                       records + static_cast<uint64_t>(b) * kRecordBytes) < 0;
  });
  std::vector<std::byte> scratch(count * kRecordBytes);
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(scratch.data() + i * kRecordBytes,
                records + static_cast<uint64_t>(order[i]) * kRecordBytes,
                kRecordBytes);
  }
  std::memcpy(records, scratch.data(), scratch.size());
}

}  // namespace rstore::sort
