// TeraSort-format records and deterministic workload generation for
// RSort (the paper's second application study: "sorts 256 GB in 31.7 s").
//
// A record is 100 bytes: a 10-byte binary key and a 90-byte payload, the
// classic TeraGen layout. Generation is a pure function of (seed, record
// index), so any node can produce any slice of the input independently —
// and validation can recompute what the input multiset must have been.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/rng.h"

namespace rstore::sort {

inline constexpr size_t kKeyBytes = 10;
inline constexpr size_t kRecordBytes = 100;

struct RecordRef {
  const std::byte* data;

  [[nodiscard]] std::span<const std::byte> key() const noexcept {
    return {data, kKeyBytes};
  }
};

// Compares two 10-byte keys lexicographically.
[[nodiscard]] inline int CompareKeys(const std::byte* a,
                                     const std::byte* b) noexcept {
  return std::memcmp(a, b, kKeyBytes);
}

// Writes record `index` of the stream identified by `seed` into `out`
// (exactly kRecordBytes).
void GenerateRecord(uint64_t seed, uint64_t index, std::byte* out);

// Generates records [first, first+count) into a contiguous buffer.
void GenerateRecords(uint64_t seed, uint64_t first, uint64_t count,
                     std::byte* out);

// True if `records` (count x kRecordBytes) is sorted by key.
[[nodiscard]] bool IsSorted(const std::byte* records, uint64_t count);

// Order-independent checksum over keys+payloads, for multiset equality
// between input and output.
[[nodiscard]] uint64_t UnorderedChecksum(const std::byte* records,
                                         uint64_t count);

// In-place sort of a contiguous record buffer by key.
void SortRecords(std::byte* records, uint64_t count);

}  // namespace rstore::sort
