#include "rsort/rsort.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"

namespace rstore::sort {
namespace {

constexpr size_t kPaddedKey = 16;  // keys padded for the samples region

template <typename T>
std::span<std::byte> AsBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::byte*>(v.data()), v.size() * sizeof(T)};
}

}  // namespace

SortWorker::SortWorker(core::RStoreClient& client, SortConfig config)
    : client_(client), config_(std::move(config)) {
  const uint64_t n = config_.total_records;
  rlo_ = n * config_.worker_id / config_.num_workers;
  rhi_ = n * (config_.worker_id + 1) / config_.num_workers;
}

Status SortWorker::EnsureRegion(const std::string& name, uint64_t size) {
  Status st = client_.Ralloc(name, size);
  if (st.code() == ErrorCode::kAlreadyExists) return Status::Ok();
  return st;
}

Status SortWorker::Barrier(const std::string& name) {
  const std::string chan = config_.job + "/" + name;
  RSTORE_RETURN_IF_ERROR(client_.NotifyInc(chan));
  return client_.WaitNotify(chan, config_.num_workers).status();
}

Status SortWorker::GenerateInput() {
  const uint64_t total_bytes = config_.total_records * kRecordBytes;
  RSTORE_RETURN_IF_ERROR(EnsureRegion(R("input"), total_bytes));
  core::MappedRegion* input;
  RSTORE_ASSIGN_OR_RETURN(input, client_.Rmap(R("input")));

  const uint64_t count = rhi_ - rlo_;
  if (count == 0) return Status::Ok();
  std::vector<std::byte> buf(count * kRecordBytes);
  GenerateRecords(config_.seed, rlo_, count, buf.data());
  sim::ChargeCpu(sim::ScanCost(client_.device().network().cpu_model(),
                               buf.size()));
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(buf));
  Status st = input->Write(rlo_ * kRecordBytes, buf);
  (void)client_.UnregisterBuffer(buf);
  return st;
}

Result<SortStats> SortWorker::Sort() {
  const sim::CpuCostModel& cpu = client_.device().network().cpu_model();
  const uint32_t W = config_.num_workers;
  const uint32_t w = config_.worker_id;
  const uint64_t total_bytes = config_.total_records * kRecordBytes;
  const uint64_t my_count = rhi_ - rlo_;
  const uint32_t S = config_.samples_per_worker;

  SortStats stats;
  stats.records_in = my_count;
  const sim::Nanos t_start = sim::Now();

  // Phase telemetry: a latency sample per phase, plus a trace span when
  // tracing is on. Reads the clock only — never advances it.
  obs::Telemetry* tel = client_.device().network().sim().telemetry();
  const uint32_t obs_node = client_.device().node_id();
  auto note_phase = [&](const char* name, sim::Nanos begin,
                        const char* timer) {
    if (tel == nullptr) return;
    tel->metrics().ForNode(obs_node).GetTimer(timer).Record(
        static_cast<uint64_t>(sim::Now() - begin));
    if (tel->tracing()) {
      tel->tracer().RecordSpan(obs_node, tel->CurrentTid(), "app", name,
                               static_cast<uint64_t>(begin),
                               static_cast<uint64_t>(sim::Now()));
    }
  };

  RSTORE_RETURN_IF_ERROR(
      EnsureRegion(R("samples"), static_cast<uint64_t>(W) * S * kPaddedKey));
  RSTORE_RETURN_IF_ERROR(
      EnsureRegion(R("counts"), static_cast<uint64_t>(W) * W * 8));
  RSTORE_RETURN_IF_ERROR(EnsureRegion(R("exchange"), total_bytes));
  RSTORE_RETURN_IF_ERROR(EnsureRegion(R("output"), total_bytes));

  core::MappedRegion *input, *samples, *counts, *exchange, *output;
  RSTORE_ASSIGN_OR_RETURN(input, client_.Rmap(R("input")));
  RSTORE_ASSIGN_OR_RETURN(samples, client_.Rmap(R("samples")));
  RSTORE_ASSIGN_OR_RETURN(counts, client_.Rmap(R("counts")));
  RSTORE_ASSIGN_OR_RETURN(exchange, client_.Rmap(R("exchange")));
  RSTORE_ASSIGN_OR_RETURN(output, client_.Rmap(R("output")));

  // ---- fetch my input slice -------------------------------------------
  std::vector<std::byte> mine(std::max<uint64_t>(my_count, 1) * kRecordBytes);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(mine));
  if (my_count > 0) {
    RSTORE_RETURN_IF_ERROR(input->Read(
        rlo_ * kRecordBytes, std::span<std::byte>(mine.data(),
                                                  my_count * kRecordBytes)));
  }

  // ---- phase 1: sampling & splitters ----------------------------------
  {
    std::vector<std::byte> my_samples(S * kPaddedKey, std::byte{0});
    for (uint32_t s = 0; s < S; ++s) {
      const uint64_t idx = my_count ? (s * my_count / S) : 0;
      if (my_count > 0) {
        std::memcpy(my_samples.data() + s * kPaddedKey,
                    mine.data() + idx * kRecordBytes, kKeyBytes);
      }
    }
    RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(my_samples));
    RSTORE_RETURN_IF_ERROR(
        samples->Write(static_cast<uint64_t>(w) * S * kPaddedKey,
                       my_samples));
    RSTORE_RETURN_IF_ERROR(Barrier("sampled"));
    (void)client_.UnregisterBuffer(my_samples);
  }

  std::vector<std::byte> all_samples(static_cast<uint64_t>(W) * S *
                                     kPaddedKey);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(all_samples));
  RSTORE_RETURN_IF_ERROR(samples->Read(0, all_samples));
  const uint64_t n_samples = static_cast<uint64_t>(W) * S;
  std::vector<uint32_t> order(n_samples);
  for (uint32_t i = 0; i < n_samples; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::memcmp(all_samples.data() + a * kPaddedKey,
                       all_samples.data() + b * kPaddedKey, kKeyBytes) < 0;
  });
  // Splitter j: upper bound of bucket j (j in [0, W-1)).
  std::vector<std::array<std::byte, kKeyBytes>> splitters(W - 1);
  for (uint32_t j = 0; j + 1 < W; ++j) {
    const uint64_t pos = (j + 1) * n_samples / W;
    std::memcpy(splitters[j].data(),
                all_samples.data() + order[pos] * kPaddedKey, kKeyBytes);
  }
  sim::ChargeCpu(sim::SortCost(cpu, n_samples));
  stats.sample_time = sim::Now() - t_start;
  note_phase("sort.sample", t_start, "sort.sample_ns");

  // ---- phase 2: classify & one-sided shuffle --------------------------
  const sim::Nanos t_shuffle = sim::Now();
  auto bucket_of = [&](const std::byte* key) -> uint32_t {
    uint32_t lo = 0, hi = W - 1;  // buckets [0, W)
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (std::memcmp(key, splitters[mid].data(), kKeyBytes) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  std::vector<uint64_t> my_counts(W, 0);
  std::vector<uint32_t> record_bucket(std::max<uint64_t>(my_count, 1));
  for (uint64_t i = 0; i < my_count; ++i) {
    const uint32_t b = bucket_of(mine.data() + i * kRecordBytes);
    record_bucket[i] = b;
    ++my_counts[b];
  }
  // Classification cost: one scan plus log2(W) key compares per record.
  sim::ChargeCpu(sim::ScanCost(cpu, my_count * kRecordBytes));

  // Gather buckets contiguously into a staging buffer.
  std::vector<std::byte> staged(std::max<uint64_t>(my_count, 1) *
                                kRecordBytes);
  {
    std::vector<uint64_t> cursor(W, 0);
    for (uint32_t b = 1; b < W; ++b) {
      cursor[b] = cursor[b - 1] + my_counts[b - 1];
    }
    for (uint64_t i = 0; i < my_count; ++i) {
      std::memcpy(staged.data() + cursor[record_bucket[i]] * kRecordBytes,
                  mine.data() + i * kRecordBytes, kRecordBytes);
      ++cursor[record_bucket[i]];
    }
    sim::ChargeCpu(sim::MemcpyCost(cpu, my_count * kRecordBytes));
  }
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(staged));

  // Publish my counts row, then read the full matrix.
  std::vector<uint64_t> counts_row = my_counts;
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(counts_row)));
  RSTORE_RETURN_IF_ERROR(
      counts->Write(static_cast<uint64_t>(w) * W * 8, AsBytes(counts_row)));
  RSTORE_RETURN_IF_ERROR(Barrier("counted"));
  std::vector<uint64_t> matrix(static_cast<uint64_t>(W) * W);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(AsBytes(matrix)));
  RSTORE_RETURN_IF_ERROR(counts->Read(0, AsBytes(matrix)));

  // Exchange layout: [dest d][sender s] contiguous. Compute, for each
  // destination, where my chunk starts, then write each bucket with one
  // one-sided write.
  std::vector<uint64_t> dest_total(W, 0);
  for (uint32_t d = 0; d < W; ++d) {
    for (uint32_t s = 0; s < W; ++s) dest_total[d] += matrix[s * W + d];
  }
  std::vector<uint64_t> dest_base(W, 0);
  for (uint32_t d = 1; d < W; ++d) {
    dest_base[d] = dest_base[d - 1] + dest_total[d - 1];
  }
  {
    uint64_t staged_off = 0;
    std::vector<core::IoFuture> futures;
    for (uint32_t d = 0; d < W; ++d) {
      uint64_t within = 0;  // my offset inside dest d's area
      for (uint32_t s = 0; s < w; ++s) within += matrix[s * W + d];
      const uint64_t bytes = my_counts[d] * kRecordBytes;
      if (bytes > 0) {
        auto f = exchange->WriteAsync(
            (dest_base[d] + within) * kRecordBytes,
            std::span<const std::byte>(staged.data() + staged_off, bytes));
        if (!f.ok()) return f.status();
        futures.push_back(std::move(*f));
      }
      staged_off += bytes;
    }
    for (auto& f : futures) RSTORE_RETURN_IF_ERROR(f.Wait());
  }
  RSTORE_RETURN_IF_ERROR(Barrier("shuffled"));
  stats.shuffle_time = sim::Now() - t_shuffle;
  note_phase("sort.shuffle", t_shuffle, "sort.shuffle_ns");

  // ---- phase 3: fetch my partition, sort, emit -------------------------
  const sim::Nanos t_sort = sim::Now();
  const uint64_t out_count = dest_total[w];
  stats.records_out = out_count;
  std::vector<std::byte> run(std::max<uint64_t>(out_count, 1) * kRecordBytes);
  RSTORE_RETURN_IF_ERROR(client_.RegisterBuffer(run));
  if (out_count > 0) {
    RSTORE_RETURN_IF_ERROR(exchange->Read(
        dest_base[w] * kRecordBytes,
        std::span<std::byte>(run.data(), out_count * kRecordBytes)));
    SortRecords(run.data(), out_count);
    sim::ChargeCpu(sim::SortCost(cpu, out_count) +
                   sim::MemcpyCost(cpu, out_count * kRecordBytes));
    RSTORE_RETURN_IF_ERROR(output->Write(
        dest_base[w] * kRecordBytes,
        std::span<const std::byte>(run.data(), out_count * kRecordBytes)));
  }
  RSTORE_RETURN_IF_ERROR(Barrier("done"));
  stats.sort_time = sim::Now() - t_sort;
  note_phase("sort.sortmerge", t_sort, "sort.sortmerge_ns");
  stats.total_time = sim::Now() - t_start;
  return stats;
}

Status ValidateSortedOutput(core::RStoreClient& client,
                            const SortConfig& config) {
  auto region = client.Rmap(config.job + "/output");
  if (!region.ok()) return region.status();
  const uint64_t total = config.total_records;
  constexpr uint64_t kChunkRecords = 1 << 16;

  auto buf = client.AllocBuffer(kChunkRecords * kRecordBytes);
  if (!buf.ok()) return buf.status();

  std::array<std::byte, kKeyBytes> prev_key{};
  bool have_prev = false;
  uint64_t checksum = 0;
  for (uint64_t at = 0; at < total; at += kChunkRecords) {
    const uint64_t n = std::min(kChunkRecords, total - at);
    RSTORE_RETURN_IF_ERROR((*region)->Read(
        at * kRecordBytes, std::span<std::byte>(buf->begin(),
                                                n * kRecordBytes)));
    if (have_prev &&
        CompareKeys(prev_key.data(), buf->begin()) > 0) {
      return Status(ErrorCode::kInternal, "output not sorted at chunk edge");
    }
    if (!IsSorted(buf->begin(), n)) {
      return Status(ErrorCode::kInternal, "output not sorted within chunk");
    }
    checksum += UnorderedChecksum(buf->begin(), n);
    std::memcpy(prev_key.data(), buf->begin() + (n - 1) * kRecordBytes,
                kKeyBytes);
    have_prev = true;
  }

  // The input multiset is a pure function of the seed: recompute.
  std::vector<std::byte> regen(kChunkRecords * kRecordBytes);
  uint64_t expected = 0;
  for (uint64_t at = 0; at < total; at += kChunkRecords) {
    const uint64_t n = std::min(kChunkRecords, total - at);
    GenerateRecords(config.seed, at, n, regen.data());
    expected += UnorderedChecksum(regen.data(), n);
  }
  if (checksum != expected) {
    return Status(ErrorCode::kInternal,
                  "output multiset differs from generated input");
  }
  return Status::Ok();
}

}  // namespace rstore::sort
