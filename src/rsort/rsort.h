// RSort: a distributed key-value sorter on RStore (the paper's second
// application; abstract: 256 GB sorted in 31.7 s, 8x Hadoop TeraSort).
//
// Classic sample sort, with every bulk data movement expressed as
// one-sided RStore IO:
//
//   1. sample    each worker publishes evenly spaced keys from its input
//                slice into a shared region; everyone reads them all and
//                derives identical splitters.
//   2. shuffle   workers classify their records and *write* each bucket
//                directly into the exchange region at offsets computed
//                from the shared count matrix — an all-to-all over RDMA
//                with no receiver CPU involvement at all.
//   3. sort      each worker reads its exchange area, sorts locally, and
//                writes the run to its place in the output region.
//
// Synchronization uses the master's notification channels; data never
// touches a disk or a server CPU. Input is TeraGen-style (records.h) so
// any worker generates its own slice.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/client.h"
#include "rsort/records.h"
#include "sim/time.h"

namespace rstore::sort {

struct SortConfig {
  uint32_t worker_id = 0;
  uint32_t num_workers = 1;
  uint64_t total_records = 0;
  uint64_t seed = 42;  // input generation seed
  // Samples each worker contributes; W*this keys determine splitters.
  uint32_t samples_per_worker = 128;
  std::string job = "rsort";
};

struct SortStats {
  sim::Nanos sample_time = 0;
  sim::Nanos shuffle_time = 0;
  sim::Nanos sort_time = 0;
  sim::Nanos total_time = 0;
  uint64_t records_in = 0;   // records this worker started with
  uint64_t records_out = 0;  // records this worker emitted
};

class SortWorker {
 public:
  SortWorker(core::RStoreClient& client, SortConfig config);

  // Allocates the input region (idempotent across workers) and writes
  // this worker's slice of the TeraGen stream into it.
  Status GenerateInput();

  // Runs the measured sort. All workers must call concurrently.
  Result<SortStats> Sort();

  [[nodiscard]] uint64_t record_lo() const noexcept { return rlo_; }
  [[nodiscard]] uint64_t record_hi() const noexcept { return rhi_; }

 private:
  [[nodiscard]] std::string R(const std::string& what) const {
    return config_.job + "/" + what;
  }
  Status Barrier(const std::string& name);
  Status EnsureRegion(const std::string& name, uint64_t size);

  core::RStoreClient& client_;
  SortConfig config_;
  uint64_t rlo_ = 0, rhi_ = 0;  // my input records [rlo, rhi)
};

// Driver-side check: output region is globally sorted and holds exactly
// the multiset TeraGen(seed) would have produced. Reads the output in
// chunks through `client`.
Status ValidateSortedOutput(core::RStoreClient& client,
                            const SortConfig& config);

}  // namespace rstore::sort
