#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "sim/fabric.h"

namespace rstore::sim {

Nanos ConservativeLookahead(const NicConfig& nic) noexcept {
  return nic.base_latency;
}

Nanos MemcpyCost(const CpuCostModel& m, uint64_t bytes) noexcept {
  return TransferTime(bytes, m.memcpy_bps);
}

Nanos ScanCost(const CpuCostModel& m, uint64_t bytes) noexcept {
  return TransferTime(bytes, m.scan_bps);
}

Nanos SortCost(const CpuCostModel& m, uint64_t items) noexcept {
  if (items < 2) return 0;
  const double n = static_cast<double>(items);
  return static_cast<Nanos>(n * std::log2(n) * m.sort_ns_per_cmp);
}

Nanos MarshalCost(const CpuCostModel& m, uint64_t bytes) noexcept {
  return static_cast<Nanos>(static_cast<double>(bytes) *
                            m.msg_marshal_ns_per_byte);
}

Nanos GraphEdgeCost(const CpuCostModel& m, uint64_t edges) noexcept {
  return static_cast<Nanos>(static_cast<double>(edges) * m.graph_ns_per_edge);
}

Nanos CacheCopyCost(const CpuCostModel& m, uint64_t bytes) noexcept {
  return TransferTime(bytes, m.cache_copy_bps);
}

void ChargeCpu(Nanos cost) {
  if (cost > 0) Sleep(cost);
}

void SimDisk::Read(uint64_t bytes, bool sequential) {
  DoIo(bytes, sequential, model_.read_bps);
  bytes_read_ += bytes;
}

void SimDisk::Write(uint64_t bytes, bool sequential) {
  DoIo(bytes, sequential, model_.write_bps);
  bytes_written_ += bytes;
}

void SimDisk::DoIo(uint64_t bytes, bool sequential, double bps) {
  const Nanos now = Now();
  const Nanos start = std::max(now, busy_until_);
  const Nanos service =
      (sequential ? 0 : model_.seek) + TransferTime(bytes, bps);
  busy_until_ = start + service;
  Sleep(busy_until_ - now);  // queueing delay + service time
}

}  // namespace rstore::sim
