// Cost models: how CPU and disk work is charged to the virtual clock.
//
// Node programs perform *real* computation (data really moves, sorts
// really sort, ranks really converge) but real wall-clock time on the host
// machine is meaningless inside the simulation. Instead, each phase charges
// an explicit, documented cost to the virtual clock via sim::Sleep. The
// constants below are single-core figures in the range of the paper's
// 2014-era Xeon testbed; they are configuration, not hidden magic —
// benchmarks print which model they used, and ablations can vary them.
#pragma once

#include <cstdint>

#include "sim/simulation.h"
#include "sim/time.h"

namespace rstore::sim {

struct CpuCostModel {
  // Streaming memory copy bandwidth (single core), bits/s.
  double memcpy_bps = 40e9;  // ~5 GB/s
  // Streaming scan/parse bandwidth (e.g. record parsing), bits/s.
  double scan_bps = 24e9;  // ~3 GB/s
  // Cost of one comparison-and-move step in sorting (ns); total sort cost
  // is n*log2(n)*this.
  double sort_ns_per_cmp = 3.0;
  // Per-edge cost of a vertex-program update (rank accumulate), ns.
  double graph_ns_per_edge = 5.0;
  // Fixed CPU cost to post a verbs work request / poll a completion on
  // the initiator (descriptor write, doorbell, CQE read).
  Nanos verbs_post_ns = 150;
  // Fixed CPU cost for a two-sided message handler on the *server*
  // (interrupt/poll, dispatch, protocol decode) — the cost one-sided
  // operations avoid. RAMCloud-class systems report ~1-2 us total server
  // wire-to-wire; we charge the CPU share.
  Nanos rpc_handler_ns = 1200;
  // Per-byte marshalling cost for two-sided messages (serialize + copy
  // into send buffers), ns per byte.
  double msg_marshal_ns_per_byte = 0.25;
  // Copy bandwidth out of the client-side region cache, bits/s. Hit
  // copies stream out of pages the client touched moments ago (warm in
  // cache/TLB, single stream, no parsing), so they run at hot-copy rather
  // than cold-bulk (memcpy_bps) rate. Cache hits are charged this — never
  // zero — so cached and uncached runs stay comparable.
  double cache_copy_bps = 80e9;  // ~10 GB/s
};

// Convenience cost functions. All return virtual nanoseconds.
[[nodiscard]] Nanos MemcpyCost(const CpuCostModel& m, uint64_t bytes) noexcept;
[[nodiscard]] Nanos ScanCost(const CpuCostModel& m, uint64_t bytes) noexcept;
[[nodiscard]] Nanos SortCost(const CpuCostModel& m, uint64_t items) noexcept;
[[nodiscard]] Nanos MarshalCost(const CpuCostModel& m,
                                uint64_t bytes) noexcept;
[[nodiscard]] Nanos GraphEdgeCost(const CpuCostModel& m,
                                  uint64_t edges) noexcept;
[[nodiscard]] Nanos CacheCopyCost(const CpuCostModel& m,
                                  uint64_t bytes) noexcept;

// Charges `cost` to the calling simulated thread (must run in one).
void ChargeCpu(Nanos cost);

struct NicConfig;

// Conservative PDES lookahead derived from the fabric model: the minimum
// virtual-time distance at which one node's work can become visible to
// another node. Every cross-node effect travels the fabric, and the
// earliest a message touches its destination is one base propagation
// delay after the sender pumps it (cut-through first bit; loopback is
// node-local and never crosses partitions; drop detection is far larger).
// The partitioned scheduler may therefore dispatch each epoch up to
// T_min + ConservativeLookahead() without ever missing a cross-partition
// arrival. See DESIGN.md "Parallel simulation".
[[nodiscard]] Nanos ConservativeLookahead(const NicConfig& nic) noexcept;

// ---------------------------------------------------------------------------
// SimDisk: a per-node spinning-disk model used by the Hadoop-TeraSort
// baseline (the paper's comparator is disk-bound). Sequential streaming
// bandwidth plus a seek penalty for non-sequential accesses; requests from
// concurrent threads serialize on the spindle.
// ---------------------------------------------------------------------------
struct DiskCostModel {
  double read_bps = 1.2e9;   // 150 MB/s sequential read
  double write_bps = 1.0e9;  // 125 MB/s sequential write
  Nanos seek = Millis(8);
};

class SimDisk {
 public:
  SimDisk(Simulation& sim, DiskCostModel model)
      : sim_(sim), model_(model) {}

  // Blocks the calling thread for the modelled duration of the I/O.
  void Read(uint64_t bytes, bool sequential);
  void Write(uint64_t bytes, bool sequential);

  [[nodiscard]] uint64_t bytes_read() const noexcept { return bytes_read_; }
  [[nodiscard]] uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  void DoIo(uint64_t bytes, bool sequential, double bps);

  Simulation& sim_;
  DiskCostModel model_;
  Nanos busy_until_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace rstore::sim
