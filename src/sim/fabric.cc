#include "sim/fabric.h"

#include <algorithm>
#include <utility>

#include "explore/policy.h"
#include "obs/trace.h"
#include "sim/cost_model.h"

namespace rstore::sim {

namespace {
// Stamps of the message whose on_delivered callback is executing on this
// host thread (partitioned deliveries run concurrently, so the record is
// per-thread). Null outside a delivery callback.
thread_local const DeliveryStamps* g_current_delivery = nullptr;
}  // namespace

const DeliveryStamps* Fabric::CurrentDelivery() noexcept {
  return g_current_delivery;
}

Fabric::Fabric(Simulation& sim, NicConfig config)
    : sim_(sim), config_(config) {
  pools_.emplace_back();
  if (sim_.partitioned()) {
    // The fabric is the cross-partition channel: its base propagation
    // delay bounds how soon one node's work can affect another, which is
    // the epoch lookahead of the partitioned scheduler.
    sim_.ProposeLookahead(ConservativeLookahead(config_));
    sim_.AtPartitionedRunStart([this] { PrepareForPartitionedRun(); });
  }
}

void Fabric::PrepareForPartitionedRun() {
  // Pre-size every shared container and pre-resolve telemetry
  // instruments so the parallel phase mutates nothing but per-port state
  // owned by the dispatching partition (egress on the source port,
  // ingress on the destination port) and atomic counters.
  const auto n = static_cast<uint32_t>(sim_.node_count());
  if (n > 0) (void)port(n - 1);
  for (uint32_t i = 0; i < n; ++i) {
    PortState& p = ports_[i];
    if (p.egress_by_dst.size() < n) p.egress_by_dst.resize(n);
    if (p.last_first_bit_by_dst.size() < n) p.last_first_bit_by_dst.resize(n);
    EnsureObs(i, p);
  }
  while (pools_.size() < sim_.node_count() + 1) pools_.emplace_back();
}

Fabric::PortState& Fabric::port(uint32_t node) {
  if (node >= ports_.size()) ports_.resize(node + 1);
  return ports_[node];
}

void Fabric::EnsureObs(uint32_t node, PortState& p) {
  obs::Telemetry* tel = sim_.telemetry();
  if (tel == p.obs_owner) return;
  p.obs_owner = tel;
  if (tel == nullptr) {
    p.obs_bytes_out = p.obs_msgs_out = p.obs_bytes_in = nullptr;
    p.obs_queue_ns = p.obs_ser_ns = p.obs_wire_ns = p.obs_rr_rounds = nullptr;
    p.obs_egress_depth = nullptr;
    return;
  }
  obs::NodeMetrics& m =
      tel->metrics().ForNode(node, node < sim_.node_count()
                                       ? sim_.node(node).name()
                                       : std::string_view{});
  p.obs_bytes_out = &m.GetCounter("fabric.bytes_out");
  p.obs_msgs_out = &m.GetCounter("fabric.msgs_out");
  p.obs_bytes_in = &m.GetCounter("fabric.bytes_in");
  p.obs_queue_ns = &m.GetCounter("fabric.queue_ns");
  p.obs_ser_ns = &m.GetCounter("fabric.serialization_ns");
  p.obs_wire_ns = &m.GetCounter("fabric.wire_ns");
  p.obs_rr_rounds = &m.GetCounter("fabric.rr_rounds");
  p.obs_egress_depth = &m.GetGauge("fabric.egress_depth");
}

Fabric::Message* Fabric::AcquireMessage() {
  MsgPool& pool = pools_[sim_.CurrentPartitionIndex()];
  if (pool.free.empty()) {
    pool.arena.emplace_back();
    return &pool.arena.back();
  }
  Message* msg = pool.free.back();
  pool.free.pop_back();
  return msg;
}

void Fabric::ReleaseMessage(Message* msg) {
  msg->on_delivered.Reset();
  msg->on_dropped.Reset();
  pools_[sim_.CurrentPartitionIndex()].free.push_back(msg);
}

void Fabric::SetLinkDown(uint32_t a, uint32_t b, bool down) {
  if (down) {
    down_links_.insert(LinkKey(a, b));
  } else {
    down_links_.erase(LinkKey(a, b));
  }
}

bool Fabric::LinkUp(uint32_t a, uint32_t b) const {
  return !down_links_.contains(LinkKey(a, b));
}

uint64_t Fabric::total_bytes() const noexcept {
  // Every accepted Send increments exactly one port's bytes_out, so the
  // sum is the historical cumulative counter (and needs no shared
  // accumulator under concurrent partitions).
  uint64_t n = 0;
  for (const auto& p : ports_) n += p.bytes_out;
  return n;
}

uint64_t Fabric::bytes_out(uint32_t node) const {
  return node < ports_.size() ? ports_[node].bytes_out : 0;
}
uint64_t Fabric::bytes_in(uint32_t node) const {
  return node < ports_.size() ? ports_[node].bytes_in : 0;
}
uint64_t Fabric::messages_out(uint32_t node) const {
  return node < ports_.size() ? ports_[node].messages_out : 0;
}

void Fabric::Send(uint32_t src, uint32_t dst, uint64_t payload_bytes,
                  FabricFn on_delivered, FabricFn on_dropped) {
  const Nanos now = sim_.NowNanos();

  const bool path_up = LinkUp(src, dst) && sim_.node(src).alive() &&
                       sim_.node(dst).alive();
  if (!path_up) {
    if (on_dropped) {
      sim_.At(now + config_.drop_detect_latency, std::move(on_dropped));
    }
    return;
  }

  PortState& sp = port(src);
  sp.bytes_out += payload_bytes;
  sp.messages_out += 1;
  if (!sim_.partitioned()) {
    PortState& dp = port(dst);
    dp.bytes_in += payload_bytes;
    EnsureObs(src, sp);
    if (sp.obs_bytes_out != nullptr) {
      sp.obs_bytes_out->Inc(payload_bytes);
      sp.obs_msgs_out->Inc();
      EnsureObs(dst, dp);
      dp.obs_bytes_in->Inc(payload_bytes);
    }
  } else {
    // Partitioned: the caller runs in src's partition, so only src-port
    // state may be touched here; dst ingress accounting happens in
    // ApplyIngress on dst's partition. Instruments were pre-resolved by
    // the run-start hook (counters are atomic).
    if (sp.obs_bytes_out != nullptr) {
      sp.obs_bytes_out->Inc(payload_bytes);
      sp.obs_msgs_out->Inc();
    }
    if (src == dst) {
      sp.bytes_in += payload_bytes;
      if (sp.obs_bytes_in != nullptr) sp.obs_bytes_in->Inc(payload_bytes);
    }
  }

  if (src == dst) {
    // Node-local loopback: bypasses the port model entirely.
    sim_.At(now + config_.loopback_latency, std::move(on_delivered));
    return;
  }

  const uint64_t wire_bytes = payload_bytes + config_.header_overhead_bytes;
  const Nanos wire_time = TransferTime(wire_bytes, config_.bandwidth_bps);

  Message* msg = AcquireMessage();
  msg->src = src;
  msg->dst = dst;
  msg->payload_bytes = payload_bytes;
  msg->wire_time = wire_time;
  msg->service_time = std::max(wire_time, config_.per_message_gap);
  msg->on_delivered = std::move(on_delivered);
  msg->on_dropped = std::move(on_dropped);
  msg->sent_at = now;
  msg->tx_start = now;

  if (dst >= sp.egress_by_dst.size()) sp.egress_by_dst.resize(dst + 1);
  sp.egress_by_dst[dst].push_back(msg);
  sp.egress_backlog += 1;
  if (sp.obs_egress_depth != nullptr) {
    sp.obs_egress_depth->Set(static_cast<int64_t>(sp.egress_backlog));
  }
  PumpEgress(src);
}

void Fabric::SchedulePump(uint32_t node, Nanos at) {
  port(node).pump_scheduled = true;
  sim_.At(at, [this, node] {
    port(node).pump_scheduled = false;
    PumpEgress(node);
  });
}

void Fabric::PumpEgress(uint32_t node) {
  PortState& p = port(node);
  if (p.pump_scheduled || p.egress_backlog == 0) return;
  const Nanos now = sim_.NowNanos();
  if (now < p.egress_free_at) {
    // Port mid-transmission and no pump pending (the previous pump saw an
    // empty backlog): revive the done-event for the waiting message.
    SchedulePump(node, p.egress_free_at);
    return;
  }

  // Round-robin over destinations with queued traffic, starting after the
  // last destination served. The scan over destination ids reproduces the
  // old ordered-map iteration (deterministic, key order) at vector-index
  // cost.
  const auto n = static_cast<uint32_t>(p.egress_by_dst.size());
  uint32_t dst = n;  // invalid
  if (explore::SchedulePolicy* pol = sim_.policy(); pol != nullptr) {
    // Explorable arbitration (kEgressArbitration): collect every
    // destination with queued traffic in baseline scan order; pick 0 is
    // the baseline round-robin winner, so the baseline policy reproduces
    // the un-explored arbitration exactly.
    auto& cands = egress_cand_scratch_;
    cands.clear();
    for (uint32_t step = 1; step <= n; ++step) {
      const uint32_t cand = (p.rr_cursor + step) % n;
      if (!p.egress_by_dst[cand].empty()) cands.push_back(cand);
    }
    if (cands.empty()) return;
    dst = cands.size() > 1
              ? cands[pol->PickEgressDst(
                    cands.data(), static_cast<uint32_t>(cands.size()))]
              : cands[0];
  } else {
    for (uint32_t step = 1; step <= n; ++step) {
      const uint32_t cand = (p.rr_cursor + step) % n;
      if (!p.egress_by_dst[cand].empty()) {
        dst = cand;
        break;
      }
    }
    if (dst == n) return;  // nothing queued (backlog said otherwise; safety)
  }

  Message* msg = p.egress_by_dst[dst].front();
  p.egress_by_dst[dst].pop_front();
  p.egress_backlog -= 1;
  p.rr_cursor = dst;
  p.egress_free_at = now + msg->service_time;
  msg->tx_start = now;
  if (p.obs_rr_rounds != nullptr && p.obs_owner == sim_.telemetry()) {
    p.obs_rr_rounds->Inc();
    p.obs_queue_ns->Inc(static_cast<uint64_t>(now - msg->sent_at));
    p.obs_ser_ns->Inc(static_cast<uint64_t>(msg->wire_time));
    p.obs_egress_depth->Set(static_cast<int64_t>(p.egress_backlog));
  }

  // First bit reaches the destination base_latency after transmission
  // starts (cut-through: ingress service overlaps egress transmission);
  // the ingress port then serves messages back to back in first-bit
  // order, which the reservation timestamp reproduces directly.
  //
  // Fault injection (kFabricDelay): an exploration policy may add bounded
  // extra propagation latency per message. Because the destination's
  // ingress reservation (`ingress_free_at`) is monotone and reservations
  // happen in pump order, a delayed message can push *later* arrivals at
  // that port back but never overtake an earlier reservation — so RC-QP
  // same-path FIFO delivery is preserved under any injected delay.
  Nanos extra = 0;
  if (explore::SchedulePolicy* pol = sim_.policy(); pol != nullptr) {
    extra = pol->FabricDelayNs();
  }
  // The ingress reservation belongs to the destination: the message is
  // handed over at its first-bit instant (in partitioned mode the post is
  // at least one lookahead — base_latency — ahead of this partition's
  // clock, so it is never clamped), staged, and reserved by the
  // end-of-instant drain in (src, tx_seq) order. The per-(src,dst) clamp
  // keeps first bits strictly increasing per path even when a policy
  // injects unequal per-message delays, so the first-bit sort preserves
  // RC same-path FIFO delivery.
  auto& last = p.last_first_bit_by_dst;
  if (msg->dst >= last.size()) last.resize(msg->dst + 1);
  Nanos first_bit = now + config_.base_latency + extra;
  if (first_bit <= last[msg->dst]) first_bit = last[msg->dst] + 1;
  last[msg->dst] = first_bit;
  msg->first_bit = first_bit;
  msg->tx_seq = p.tx_seq++;
  if (!sim_.partitioned()) {
    sim_.At(first_bit, [this, msg] { ApplyIngress(msg); });
  } else {
    sim_.PostToNode(msg->dst, first_bit, [this, msg] { ApplyIngress(msg); });
  }

  if (p.egress_backlog > 0) SchedulePump(node, p.egress_free_at);
}

void Fabric::ApplyIngress(Message* msg) {
  // Runs on the destination's partition at the first-bit arrival instant.
  // Arrivals that share the instant are staged and reserved together by
  // DrainIngress: the drain event is posted *during* the instant, so it
  // sorts behind every same-instant arrival under both schedulers (the
  // legacy queue and the partitioned merge both order equal-time events
  // by post order), and the stage then holds the complete tie set.
  PortState& q = port(msg->dst);
  if (sim_.partitioned()) {
    q.bytes_in += msg->payload_bytes;
    if (q.obs_bytes_in != nullptr) q.obs_bytes_in->Inc(msg->payload_bytes);
  }
  if (q.ingress_stage.empty()) {
    const uint32_t node = msg->dst;
    sim_.At(sim_.NowNanos(), [this, node] { DrainIngress(node); });
  }
  q.ingress_stage.push_back(msg);
}

void Fabric::DrainIngress(uint32_t node) {
  // End-of-instant ingress arbitration: serve this instant's arrivals in
  // (src, tx_seq) order — a pure function of the arrival set, so tied
  // first bits resolve identically under any scheduler.
  PortState& q = port(node);
  if (q.ingress_stage.size() > 1) {
    std::sort(q.ingress_stage.begin(), q.ingress_stage.end(),
              [](const Message* a, const Message* b) {
                return a->src != b->src ? a->src < b->src
                                        : a->tx_seq < b->tx_seq;
              });
  }
  for (Message* msg : q.ingress_stage) {
    const Nanos service_start = std::max(msg->first_bit, q.ingress_free_at);
    q.ingress_free_at = service_start + msg->wire_time;
    sim_.At(q.ingress_free_at, [this, msg] { Deliver(msg); });
  }
  q.ingress_stage.clear();
}

void Fabric::Deliver(Message* msg) {
  // Move the callback out and recycle the message *before* invoking it:
  // delivery handlers routinely send nested messages (read responses),
  // which can then reuse the slot.
  if (sim_.node(msg->dst).alive() && LinkUp(msg->src, msg->dst)) {
    obs::Telemetry* tel = sim_.telemetry();
    if (tel != nullptr) {
      const Nanos now = sim_.NowNanos();
      // Propagation plus any ingress-port wait: everything between the
      // end of egress queueing/serialization and delivery.
      const Nanos wire = now - msg->tx_start - msg->wire_time;
      PortState& sp = port(msg->src);
      // Partitioned: sp belongs to another partition — read-only access
      // to the pre-resolved instrument pointer plus an atomic Inc is
      // safe; lazy resolution (a write) is not, so it is legacy-only.
      if (!sim_.partitioned()) EnsureObs(msg->src, sp);
      if (sp.obs_wire_ns != nullptr) {
        sp.obs_wire_ns->Inc(static_cast<uint64_t>(wire));
      }
      if (tel->tracing()) {
        std::vector<obs::TraceArg> args;
        args.push_back({"dst", true, static_cast<double>(msg->dst), {}});
        args.push_back(
            {"bytes", true, static_cast<double>(msg->payload_bytes), {}});
        args.push_back({"queue_ns", true,
                        static_cast<double>(msg->tx_start - msg->sent_at),
                        {}});
        args.push_back({"serialization_ns", true,
                        static_cast<double>(msg->wire_time), {}});
        args.push_back({"wire_ns", true, static_cast<double>(wire), {}});
        tel->tracer().RecordSpan(msg->src, 0, "fabric", "fabric.msg",
                                 static_cast<uint64_t>(msg->sent_at),
                                 static_cast<uint64_t>(now), std::move(args));
      }
    }
    // Expose the message's wire stamps to the callback (rtrace reads them
    // into the op's breakdown); the previous value is restored so nested
    // deliveries cannot leak stamps into an outer frame. Observation only
    // — nothing here reads the stamps to make a scheduling decision.
    const DeliveryStamps stamps{msg->sent_at, msg->tx_start, msg->first_bit};
    FabricFn cb = std::move(msg->on_delivered);
    ReleaseMessage(msg);
    const DeliveryStamps* prev = g_current_delivery;
    g_current_delivery = &stamps;
    cb();
    g_current_delivery = prev;
  } else if (msg->on_dropped) {
    // The destination died (or the link partitioned) in flight. The drop
    // callback belongs to the sender (verbs maps it to a retry-exceeded
    // completion on the initiator), so in partitioned mode it is routed
    // back to the source's partition.
    const Nanos detect = msg->sent_at + config_.drop_detect_latency;
    const Nanos at = std::max(detect, sim_.NowNanos());
    if (sim_.partitioned() && !sim_.InContextOfNode(msg->src)) {
      sim_.PostToNode(msg->src, at,
                      [cb = std::move(msg->on_dropped)]() mutable { cb(); });
    } else {
      sim_.At(at, std::move(msg->on_dropped));
    }
    ReleaseMessage(msg);
  } else {
    ReleaseMessage(msg);
  }
}

}  // namespace rstore::sim
