#include "sim/fabric.h"

#include <algorithm>
#include <utility>

namespace rstore::sim {

Fabric::Fabric(Simulation& sim, NicConfig config)
    : sim_(sim), config_(config) {}

Fabric::PortState& Fabric::port(uint32_t node) {
  if (node >= ports_.size()) ports_.resize(node + 1);
  return ports_[node];
}

void Fabric::SetLinkDown(uint32_t a, uint32_t b, bool down) {
  if (down) {
    down_links_.insert(LinkKey(a, b));
  } else {
    down_links_.erase(LinkKey(a, b));
  }
}

bool Fabric::LinkUp(uint32_t a, uint32_t b) const {
  return !down_links_.contains(LinkKey(a, b));
}

uint64_t Fabric::bytes_out(uint32_t node) const {
  return node < ports_.size() ? ports_[node].bytes_out : 0;
}
uint64_t Fabric::bytes_in(uint32_t node) const {
  return node < ports_.size() ? ports_[node].bytes_in : 0;
}
uint64_t Fabric::messages_out(uint32_t node) const {
  return node < ports_.size() ? ports_[node].messages_out : 0;
}

void Fabric::Send(uint32_t src, uint32_t dst, uint64_t payload_bytes,
                  std::function<void()> on_delivered,
                  std::function<void()> on_dropped) {
  const Nanos now = sim_.NowNanos();

  const bool path_up = LinkUp(src, dst) && sim_.node(src).alive() &&
                       sim_.node(dst).alive();
  if (!path_up) {
    if (on_dropped) {
      sim_.At(now + config_.drop_detect_latency, std::move(on_dropped));
    }
    return;
  }

  PortState& sp = port(src);
  sp.bytes_out += payload_bytes;
  sp.messages_out += 1;
  port(dst).bytes_in += payload_bytes;
  total_bytes_ += payload_bytes;

  if (src == dst) {
    // Node-local loopback: bypasses the port model entirely.
    sim_.At(now + config_.loopback_latency, std::move(on_delivered));
    return;
  }

  const uint64_t wire_bytes = payload_bytes + config_.header_overhead_bytes;
  const Nanos wire_time = TransferTime(wire_bytes, config_.bandwidth_bps);

  Message msg{src,
              dst,
              wire_time,
              std::max(wire_time, config_.per_message_gap),
              std::move(on_delivered),
              std::move(on_dropped),
              now};
  port(src).egress_queues[dst].push_back(std::move(msg));
  PumpEgress(src);
}

void Fabric::PumpEgress(uint32_t node) {
  PortState& p = port(node);
  if (p.egress_busy) return;

  // Round-robin over destinations with queued traffic, starting after the
  // last destination served (deterministic: map iterates in key order).
  auto it = p.egress_queues.upper_bound(p.rr_cursor);
  if (it == p.egress_queues.end()) it = p.egress_queues.begin();
  if (it == p.egress_queues.end()) return;  // nothing queued

  Message msg = std::move(it->second.front());
  it->second.pop_front();
  p.rr_cursor = it->first;
  if (it->second.empty()) p.egress_queues.erase(it);

  p.egress_busy = true;
  const Nanos start_tx = sim_.NowNanos();
  const Nanos service = msg.service_time;
  const Nanos first_bit = start_tx + config_.base_latency;
  const uint32_t dst = msg.dst;

  // First bit reaches the destination's ingress after the base latency
  // (cut-through: ingress service overlaps egress transmission).
  sim_.At(first_bit, [this, dst, m = std::move(msg)]() mutable {
    EnqueueIngress(dst, std::move(m));
  });
  sim_.At(start_tx + service, [this, node] {
    port(node).egress_busy = false;
    PumpEgress(node);
  });
}

void Fabric::EnqueueIngress(uint32_t node, Message msg) {
  port(node).ingress_queue.push_back(std::move(msg));
  PumpIngress(node);
}

void Fabric::PumpIngress(uint32_t node) {
  PortState& p = port(node);
  if (p.ingress_busy || p.ingress_queue.empty()) return;
  Message msg = std::move(p.ingress_queue.front());
  p.ingress_queue.pop_front();
  p.ingress_busy = true;
  const Nanos done = sim_.NowNanos() + msg.wire_time;
  sim_.At(done, [this, node, m = std::move(msg)]() mutable {
    port(node).ingress_busy = false;
    Deliver(std::move(m));
    PumpIngress(node);
  });
}

void Fabric::Deliver(Message msg) {
  // The destination may have died (or the link partitioned) in flight.
  if (sim_.node(msg.dst).alive() && LinkUp(msg.src, msg.dst)) {
    msg.on_delivered();
  } else if (msg.on_dropped) {
    const Nanos detect = msg.sent_at + config_.drop_detect_latency;
    sim_.At(std::max(detect, sim_.NowNanos()), std::move(msg.on_dropped));
  }
}

}  // namespace rstore::sim
