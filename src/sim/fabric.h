// Fabric: the modelled RDMA interconnect.
//
// Model: every node owns one full-duplex NIC port attached to a
// non-blocking switch (the common single-switch testbed topology of the
// paper). Ports are event-driven queueing stations:
//
//   egress   per-destination queues served round-robin at message
//            granularity — the QP arbitration real HCAs perform, which
//            keeps concurrent flows fair instead of convoying;
//   ingress  FIFO in first-bit arrival order.
//
// A message of B payload bytes occupies each port for
// wire_time(B) = (B + header_overhead) * 8 / bandwidth, and its first bit
// reaches the destination base_latency after transmission starts. This
// reproduces the first-order behaviours the paper's evaluation rests on:
//   * uncontended latency = base_latency + size/bandwidth   (E1),
//   * per-port saturation and fair sharing under fan-in/out (E3, E6),
//   * cut-through pipelining of back-to-back transfers.
//
// Failure injection: links can be partitioned and nodes die; affected
// messages invoke the drop callback after a detection delay, which the
// verbs layer maps to retry-exhausted work completions, just like an RC
// QP on a real HCA.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace rstore::sim {

struct NicConfig {
  // Per-port full-duplex bandwidth. Default 58.8 Gb/s: the paper's
  // aggregate 705 Gb/s over 12 machines (705/12 ≈ 58.75) — effectively an
  // FDR 4x port plus encoding headroom.
  double bandwidth_bps = 58.8e9;
  // One-way base latency (propagation + switch + NIC processing); the
  // paper reports "close-to-hardware" latency against verbs on FDR,
  // ~1.3 us one-way for small messages.
  Nanos base_latency = Micros(1.3);
  // Wire overhead added to every message (transport headers, CRCs).
  uint64_t header_overhead_bytes = 42;
  // Minimum spacing between message starts on one port; caps the small-
  // message rate (~150 M msg/s, in the range of modern HCAs).
  Nanos per_message_gap = 6;
  // Latency of node-local loopback transfers (bypasses the port model).
  Nanos loopback_latency = 300;
  // How long a sender takes to declare a message lost (RC retry budget).
  Nanos drop_detect_latency = Millis(4);
};

class Fabric {
 public:
  Fabric(Simulation& sim, NicConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Models one message. `on_delivered` runs in scheduler context at the
  // delivery instant; `on_dropped` (optional) runs if the path is down or
  // the destination is dead. Exactly one of the two callbacks fires.
  void Send(uint32_t src, uint32_t dst, uint64_t payload_bytes,
            std::function<void()> on_delivered,
            std::function<void()> on_dropped = {});

  // Partitions (or heals) the bidirectional link between a and b.
  void SetLinkDown(uint32_t a, uint32_t b, bool down);
  [[nodiscard]] bool LinkUp(uint32_t a, uint32_t b) const;

  [[nodiscard]] const NicConfig& config() const noexcept { return config_; }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }

  // Cumulative statistics, for tests and bandwidth accounting.
  [[nodiscard]] uint64_t bytes_out(uint32_t node) const;
  [[nodiscard]] uint64_t bytes_in(uint32_t node) const;
  [[nodiscard]] uint64_t messages_out(uint32_t node) const;
  [[nodiscard]] uint64_t total_bytes() const noexcept { return total_bytes_; }

 private:
  struct Message {
    uint32_t src;
    uint32_t dst;
    Nanos wire_time;
    Nanos service_time;  // max(wire_time, per_message_gap)
    std::function<void()> on_delivered;
    std::function<void()> on_dropped;
    Nanos sent_at;
  };

  struct PortState {
    // Egress: one queue per destination, served round-robin.
    std::map<uint32_t, std::deque<Message>> egress_queues;
    uint32_t rr_cursor = 0;  // last destination served (exclusive start)
    bool egress_busy = false;
    // Ingress: FIFO in first-bit order.
    std::deque<Message> ingress_queue;
    bool ingress_busy = false;

    uint64_t bytes_out = 0;
    uint64_t bytes_in = 0;
    uint64_t messages_out = 0;
  };

  PortState& port(uint32_t node);
  void PumpEgress(uint32_t node);
  void EnqueueIngress(uint32_t node, Message msg);
  void PumpIngress(uint32_t node);
  void Deliver(Message msg);
  [[nodiscard]] static uint64_t LinkKey(uint32_t a, uint32_t b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  Simulation& sim_;
  NicConfig config_;
  // deque: grows without invalidating references (delivery callbacks can
  // trigger nested Sends that add ports).
  std::deque<PortState> ports_;
  std::unordered_set<uint64_t> down_links_;
  uint64_t total_bytes_ = 0;
};

}  // namespace rstore::sim
