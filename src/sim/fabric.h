// Fabric: the modelled RDMA interconnect.
//
// Model: every node owns one full-duplex NIC port attached to a
// non-blocking switch (the common single-switch testbed topology of the
// paper). Ports are event-driven queueing stations:
//
//   egress   per-destination queues served round-robin at message
//            granularity — the QP arbitration real HCAs perform, which
//            keeps concurrent flows fair instead of convoying;
//   ingress  FIFO in first-bit arrival order.
//
// A message of B payload bytes occupies each port for
// wire_time(B) = (B + header_overhead) * 8 / bandwidth, and its first bit
// reaches the destination base_latency after transmission starts. This
// reproduces the first-order behaviours the paper's evaluation rests on:
//   * uncontended latency = base_latency + size/bandwidth   (E1),
//   * per-port saturation and fair sharing under fan-in/out (E3, E6),
//   * cut-through pipelining of back-to-back transfers.
//
// Failure injection: links can be partitioned and nodes die; affected
// messages invoke the drop callback after a detection delay, which the
// verbs layer maps to retry-exhausted work completions, just like an RC
// QP on a real HCA.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/small_fn.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace rstore::obs {
class Counter;
class Gauge;
class Telemetry;
}  // namespace rstore::obs

namespace rstore::sim {

// Delivery/drop callbacks on fabric messages. 64 bytes of inline capture
// covers the verbs layer's {network, pooled wire-op} pointers plus a few
// scalars — including the RC ack's wire-stamp record — without heap
// allocation.
using FabricFn = common::SmallFn<void(), 64>;

// Stamps of the message whose on_delivered callback is currently running
// (see Fabric::CurrentDelivery). Pure observation for tracing layers:
// reading them cannot affect the timeline.
struct DeliveryStamps {
  Nanos sent_at = 0;    // Send() call instant
  Nanos tx_start = 0;   // egress transmission start
  Nanos first_bit = 0;  // first-bit arrival at the destination port
};

struct NicConfig {
  // Per-port full-duplex bandwidth. Default 58.8 Gb/s: the paper's
  // aggregate 705 Gb/s over 12 machines (705/12 ≈ 58.75) — effectively an
  // FDR 4x port plus encoding headroom.
  double bandwidth_bps = 58.8e9;
  // One-way base latency (propagation + switch + NIC processing); the
  // paper reports "close-to-hardware" latency against verbs on FDR,
  // ~1.3 us one-way for small messages.
  Nanos base_latency = Micros(1.3);
  // Wire overhead added to every message (transport headers, CRCs).
  uint64_t header_overhead_bytes = 42;
  // Minimum spacing between message starts on one port; caps the small-
  // message rate (~150 M msg/s, in the range of modern HCAs).
  Nanos per_message_gap = 6;
  // Latency of node-local loopback transfers (bypasses the port model).
  Nanos loopback_latency = 300;
  // How long a sender takes to declare a message lost (RC retry budget).
  Nanos drop_detect_latency = Millis(4);
};

class Fabric {
 public:
  Fabric(Simulation& sim, NicConfig config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Models one message. `on_delivered` runs in scheduler context at the
  // delivery instant; `on_dropped` (optional) runs if the path is down or
  // the destination is dead. Exactly one of the two callbacks fires.
  void Send(uint32_t src, uint32_t dst, uint64_t payload_bytes,
            FabricFn on_delivered, FabricFn on_dropped = {});

  // Partitions (or heals) the bidirectional link between a and b.
  void SetLinkDown(uint32_t a, uint32_t b, bool down);
  [[nodiscard]] bool LinkUp(uint32_t a, uint32_t b) const;

  [[nodiscard]] const NicConfig& config() const noexcept { return config_; }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }

  // Stamps of the message being delivered, valid only for the duration of
  // an on_delivered callback (nullptr elsewhere — notably for loopback
  // sends, which bypass the port model and carry no stamps). Thread-local
  // so concurrent partitioned deliveries on different host threads each
  // see their own message.
  [[nodiscard]] static const DeliveryStamps* CurrentDelivery() noexcept;

  // Cumulative statistics, for tests and bandwidth accounting.
  [[nodiscard]] uint64_t bytes_out(uint32_t node) const;
  [[nodiscard]] uint64_t bytes_in(uint32_t node) const;
  [[nodiscard]] uint64_t messages_out(uint32_t node) const;
  [[nodiscard]] uint64_t total_bytes() const noexcept;

 private:
  // Messages are pooled: acquired on Send, released after delivery/drop.
  // The event-queue callbacks then capture only {fabric, message*}, which
  // fits every layer's inline callback storage — the steady-state data
  // path performs no heap allocation in the fabric.
  struct Message {
    uint32_t src;
    uint32_t dst;
    uint64_t payload_bytes;
    Nanos wire_time;
    Nanos service_time;  // max(wire_time, per_message_gap)
    FabricFn on_delivered;
    FabricFn on_dropped;
    Nanos sent_at;
    Nanos tx_start;   // egress transmission start (set by PumpEgress)
    Nanos first_bit;  // arrival of the first bit at dst
    uint64_t tx_seq;  // per-source transmit sequence (ingress tie-break)
  };

  struct PortState {
    // Egress: one queue per destination, served round-robin in
    // destination-id order (the QP arbitration real HCAs perform). The
    // queues are a flat vector indexed by destination node id — node ids
    // are small and dense — so serving a message is an index plus a short
    // scan instead of ordered-map traversal.
    std::vector<std::deque<Message*>> egress_by_dst;
    uint32_t rr_cursor = 0;  // last destination served (exclusive start)
    uint64_t egress_backlog = 0;  // queued messages across all dsts
    // The port is transmitting until this instant. Busy/done bookkeeping
    // is a timestamp, not an event: a "transmission finished" event is
    // scheduled only when another message is actually waiting, so an
    // uncontended message costs a single scheduler event end to end.
    Nanos egress_free_at = 0;
    bool pump_scheduled = false;  // a pump event exists at egress_free_at
    // Ingress service is likewise a reservation timestamp. Messages are
    // served in first-bit arrival order: every message is handed to the
    // destination at its first-bit instant (ApplyIngress — an ordinary
    // event in legacy mode, a cross-partition post in partitioned mode),
    // staged per instant, and reserved in (first_bit, src, tx_seq) order
    // by DrainIngress. The explicit per-instant sort makes the service
    // order at *tied* first-bit instants a pure function of the arrival
    // set — bit-identical under the legacy and partitioned schedulers —
    // where the old scheme (legacy: reservation in pump order;
    // partitioned: epoch-merge order) let the two schedulers pick
    // different winners and diverge under contended fan-in.
    Nanos ingress_free_at = 0;
    // Same-instant arrivals staged for the end-of-instant drain.
    std::vector<Message*> ingress_stage;
    // Last first-bit instant sent towards each destination. Injected
    // per-message delays (kFabricDelay) are clamped so first bits per
    // (src,dst) pair stay strictly increasing, which preserves RC
    // same-path FIFO delivery under the first-bit sort.
    std::vector<Nanos> last_first_bit_by_dst;
    uint64_t tx_seq = 0;  // stamped onto outgoing messages at pump time

    uint64_t bytes_out = 0;
    uint64_t bytes_in = 0;
    uint64_t messages_out = 0;

    // Telemetry instruments, resolved lazily against the simulation's
    // attached obs::Telemetry (null while detached — recording is then a
    // single pointer test). `obs_owner` detects attach/detach.
    obs::Telemetry* obs_owner = nullptr;
    obs::Counter* obs_bytes_out = nullptr;
    obs::Counter* obs_msgs_out = nullptr;
    obs::Counter* obs_bytes_in = nullptr;
    obs::Counter* obs_queue_ns = nullptr;
    obs::Counter* obs_ser_ns = nullptr;
    obs::Counter* obs_wire_ns = nullptr;
    obs::Counter* obs_rr_rounds = nullptr;
    obs::Gauge* obs_egress_depth = nullptr;
  };

  PortState& port(uint32_t node);
  void EnsureObs(uint32_t node, PortState& p);
  Message* AcquireMessage();
  void ReleaseMessage(Message* msg);
  void PumpEgress(uint32_t node);
  void SchedulePump(uint32_t node, Nanos at);
  void ApplyIngress(Message* msg);
  void DrainIngress(uint32_t node);
  void Deliver(Message* msg);
  void PrepareForPartitionedRun();
  [[nodiscard]] static uint64_t LinkKey(uint32_t a, uint32_t b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  Simulation& sim_;
  NicConfig config_;
  // deque: grows without invalidating references (delivery callbacks can
  // trigger nested Sends that add ports). In partitioned mode the prepare
  // hook pre-sizes it to the node count so the parallel phase never
  // mutates the container (each partition then only writes its own port's
  // egress state and its own port's ingress state).
  std::deque<PortState> ports_;
  std::unordered_set<uint64_t> down_links_;

  // Message pools (stable storage + freelist), one per partition index so
  // concurrent partitions never contend: acquired from the sender's pool,
  // released into the releasing context's pool — pool membership does not
  // affect the timeline. Legacy mode uses pool 0 only.
  struct MsgPool {
    std::deque<Message> arena;
    std::vector<Message*> free;
  };
  std::deque<MsgPool> pools_;

  // Pooled scratch for the explorable egress arbitration in PumpEgress.
  std::vector<uint32_t> egress_cand_scratch_;
};

}  // namespace rstore::sim
