#include "sim/simulation.h"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "check/check.h"
#include "common/log.h"
#include "explore/policy.h"
#include "explore/trace_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rstore::sim {

// ---------------------------------------------------------------------------
// SimThread: one cooperative thread. The handoff protocol keeps the
// invariant that at any instant exactly one of {scheduler, one SimThread}
// is executing:
//
//   scheduler -> thread : set sim.active_ = t (under mu_), notify t->cv_
//   thread -> scheduler : set sim.active_ = nullptr (under mu_),
//                         notify sim.scheduler_cv_
//
// A thread "yields" by calling Block(), which performs the second handoff
// and waits to be re-activated. Wake events carry the generation number of
// the block instance they intend to end; stale wakes are ignored.
// ---------------------------------------------------------------------------
class SimThread {
 public:
  enum WakeReason : int { kNotify = 0, kTimeout = 1, kKilled = 2, kStart = 3 };

  SimThread(Node& node, std::string name, uint64_t tid,
            std::function<void()> fn)
      : node_(node),
        sim_(node.sim()),
        name_(std::move(name)),
        tid_(tid),
        fn_(std::move(fn)),
        os_thread_([this] { ThreadMain(); }) {}

  ~SimThread() {
    assert(exited_ && "simulation must unwind threads before destruction");
    if (os_thread_.joinable()) os_thread_.join();
  }

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // The scheduler reads these after the handoff's release/acquire edge on
  // sim.active_, but they are atomic so the ThreadSanitizer build can
  // verify the protocol instead of trusting this comment.
  [[nodiscard]] bool exited() const noexcept {
    return exited_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool blocked() const noexcept {
    return blocked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t gen() const noexcept {
    return gen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Node& node() noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] uint64_t tid() const noexcept { return tid_; }

  // Called from the thread itself: yield to the scheduler until woken.
  // Throws ThreadKilled when the node died, so stacks unwind via RAII —
  // unless an exception is already in flight, in which case it returns
  // kKilled silently (throwing during unwind would terminate).
  WakeReason Block() {
    if (!node_.alive() || ShuttingDown()) {
      if (std::uncaught_exceptions() > 0) return kKilled;
      throw ThreadKilled{};
    }
    YieldToScheduler();
    if (!node_.alive() || ShuttingDown()) {
      if (std::uncaught_exceptions() > 0) return kKilled;
      throw ThreadKilled{};
    }
    return wake_reason_;
  }

 private:
  friend class Simulation;

  [[nodiscard]] bool ShuttingDown() const noexcept;

  void YieldToScheduler() {
    std::unique_lock<std::mutex> lock(sim_.mu_);
    blocked_.store(true, std::memory_order_relaxed);
    sim_.active_.store(nullptr, std::memory_order_release);
    sim_.scheduler_cv_.notify_one();
    cv_.wait(lock, [this] {
      return sim_.active_.load(std::memory_order_relaxed) == this;
    });
    blocked_.store(false, std::memory_order_relaxed);
    // Invalidate any other pending wakes for the finished block.
    gen_.fetch_add(1, std::memory_order_relaxed);
  }

  void ThreadMain();

  Node& node_;
  Simulation& sim_;
  const std::string name_;
  const uint64_t tid_;  // simulation-unique id for trace attribution
  std::function<void()> fn_;

  std::condition_variable cv_;
  std::atomic<bool> blocked_ = true;  // starts "blocked"; ends at kStart
  std::atomic<bool> exited_ = false;
  std::atomic<uint64_t> gen_ = 0;
  WakeReason wake_reason_ = kStart;

  std::thread os_thread_;  // last member: starts after state is ready
};

namespace {
thread_local SimThread* g_current_thread = nullptr;

SimThread* Current() {
  SimThread* t = g_current_thread;
  if (t == nullptr) {
    std::fprintf(stderr,
                 "fatal: sim primitive called from outside a simulated "
                 "thread\n");
    std::abort();
  }
  return t;
}
}  // namespace

bool SimThread::ShuttingDown() const noexcept { return sim_.shutting_down_; }

void SimThread::ThreadMain() {
  g_current_thread = this;
  {
    // First activation mirrors the tail of YieldToScheduler().
    std::unique_lock<std::mutex> lock(sim_.mu_);
    cv_.wait(lock, [this] {
      return sim_.active_.load(std::memory_order_relaxed) == this;
    });
    blocked_.store(false, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_relaxed);
  }
  if (node_.alive() && !ShuttingDown()) {
    try {
      fn_();
    } catch (const ThreadKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      LOG_ERROR << "uncaught exception in sim thread '" << name_
                << "' on node " << node_.name() << ": " << e.what();
    }
  }
  // Exit handoff: give control back to the scheduler permanently.
  std::lock_guard<std::mutex> lock(sim_.mu_);
  exited_.store(true, std::memory_order_relaxed);
  sim_.active_.store(nullptr, std::memory_order_release);
  sim_.scheduler_cv_.notify_one();
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------
Node::Node(Simulation& sim, uint32_t id, std::string name, uint64_t seed)
    : sim_(sim), id_(id), name_(std::move(name)), rng_(seed) {}

Node::~Node() = default;

void Node::Spawn(std::string thread_name, std::function<void()> fn) {
  if (obs::Telemetry* tel = sim_.telemetry(); tel != nullptr) {
    tel->tracer().SetThreadName(id_, sim_.next_tid_, thread_name);
  }
  auto thread = std::make_unique<SimThread>(
      *this, std::move(thread_name), sim_.AllocateTid(), std::move(fn));
  SimThread* t = thread.get();
  threads_.push_back(std::move(thread));
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos(), SimThread::kStart);
}

size_t Node::live_threads() const noexcept {
  size_t n = 0;
  for (const auto& t : threads_) {
    if (!t->exited()) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Free functions for node code
// ---------------------------------------------------------------------------
Nanos Now() { return Current()->node().sim().NowNanos(); }

void Sleep(Nanos d) {
  SimThread* t = Current();
  Simulation& sim = t->node().sim();
  sim.ScheduleWake(t, t->gen(), sim.NowNanos() + d, SimThread::kTimeout);
  t->Block();
}

void Yield() { Sleep(0); }

Node& CurrentNode() { return Current()->node(); }

bool InSimThread() noexcept { return g_current_thread != nullptr; }

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------
// A ThreadKilled unwind must NOT touch waiters_: the kill may be part of
// simulation teardown, in which case the object owning this CondVar can
// already be gone (threads blocked in a server's accept loop outlive the
// server object until Shutdown unwinds them). The stale waiter entry is
// harmless — SimThread objects live until the simulation is destroyed,
// and NotifyOne skips entries whose thread has exited.
void CondVar::Wait() {
  SimThread* t = Current();
  waiters_.push_back(t);
  t->Block();
}

bool CondVar::WaitFor(Nanos timeout) {
  // An effectively infinite timeout blocks without a timeout event (a wake
  // at kNever would outlive the simulation horizon).
  if (timeout >= kNever - sim_.NowNanos()) {
    Wait();
    return true;
  }
  SimThread* t = Current();
  waiters_.push_back(t);
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos() + timeout,
                    SimThread::kTimeout);
  if (t->Block() == SimThread::kTimeout) {
    std::erase(waiters_, t);
    return false;
  }
  return true;
}

void CondVar::NotifyOne() {
  // Drop entries whose thread exited (killed while waiting) from the
  // front; deeper stale entries are inert and get skipped when reached.
  while (!waiters_.empty() && waiters_.front()->exited()) {
    waiters_.pop_front();
  }
  if (waiters_.empty()) return;
  // Baseline wakes the longest waiter (deque front). An attached
  // exploration policy may wake any live waiter instead — this is the
  // kWaiterWake decision point, and pick 0 is the baseline front.
  size_t pick = 0;
  if (explore::SchedulePolicy* pol = sim_.policy_;
      pol != nullptr && waiters_.size() > 1) {
    auto& live = sim_.waiter_pick_scratch_;
    auto& lanes = sim_.waiter_lane_scratch_;
    live.clear();
    lanes.clear();
    for (size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i]->exited()) continue;
      live.push_back(i);
      lanes.push_back(waiters_[i]->node().id());
    }
    pick = live[pol->PickWaiter(lanes.data(),
                                static_cast<uint32_t>(lanes.size()))];
  }
  SimThread* t = waiters_[pick];
  waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(pick));
  // CondVar edges are intra-node under per-node clocks (the hand-off is
  // subsumed by the notifier's node clock); ticking keeps stamps taken
  // around the notify distinct. Scheduler-context notifies (fabric
  // delivery) have no owning node and are ordered by the event loop.
  if (sim_.checker_ != nullptr && g_current_thread != nullptr) {
    sim_.checker_->OnCondNotify(g_current_thread->node().id());
  }
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos(), SimThread::kNotify);
}

void CondVar::NotifyAll() {
  while (!waiters_.empty()) NotifyOne();
}

Nanos CondVar::DeadlineFrom(Nanos timeout) const {
  const Nanos now = sim_.NowNanos();
  return timeout > kNever - now ? kNever : now + timeout;
}

Nanos CondVar::NowInternal() const { return sim_.NowNanos(); }

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------
Simulation::Simulation(SimConfig config)
    : config_(config), seeder_(config.seed) {
  events_.reserve(1024);
  // Opt-in runtime verification for whole test/bench processes: every
  // simulation in the process gets its own checker, and Shutdown() turns
  // any violation into a report + abort (the CI rcheck gate).
  if (const char* e = std::getenv("RSTORE_RCHECK");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    owned_checker_ = std::make_unique<check::Checker>();
    AttachChecker(owned_checker_.get());
  }
  // Opt-in schedule exploration: every simulation in the process gets its
  // own policy instance, cycling through the spec's derived seeds so one
  // bench/test invocation covers `runs` distinct schedules.
  if (const char* e = std::getenv("RSTORE_EXPLORE");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    explore::ExploreSpec spec;
    if (explore::ExploreSpec::Parse(e, &spec)) {
      static std::atomic<uint64_t> g_explore_instance{0};
      const uint64_t run =
          g_explore_instance.fetch_add(1, std::memory_order_relaxed);
      owned_policy_ = spec.Instantiate(run);
      policy_ = owned_policy_.get();
    } else {
      std::fprintf(stderr,
                   "RSTORE_EXPLORE: unparseable spec '%s' (expected "
                   "<policy>[:<seed>[:<runs>[:<max_delay_ns>]]], policy = "
                   "baseline | random | pct | pct<d>); exploring nothing\n",
                   e);
    }
  }
}

Simulation::~Simulation() { Shutdown(); }

Node& Simulation::AddNode(std::string name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<Node>(*this, id, std::move(name), seeder_.Next()));
  Node& node = *nodes_.back();
  if (telemetry_ != nullptr) {
    (void)telemetry_->metrics().ForNode(id, node.name());
    telemetry_->tracer().RegisterNode(id, node.name());
  }
  return node;
}

void Simulation::AttachTelemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr && telemetry == nullptr) {
    telemetry_->SetClock({});
    telemetry_->SetTidSource({});
    SetLogEmitHook({});
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  // The clock and thread-id sources read scheduler state only; they are
  // observation hooks, never inputs to the event timeline.
  telemetry_->SetClock([this] { return static_cast<uint64_t>(now_); });
  telemetry_->SetTidSource([]() -> uint64_t {
    return g_current_thread != nullptr ? g_current_thread->tid() : 0;
  });
  for (const auto& node : nodes_) {
    (void)telemetry_->metrics().ForNode(node->id(), node->name());
    telemetry_->tracer().RegisterNode(node->id(), node->name());
  }
  // Route log emissions into a per-level counter on the emitting node
  // (scheduler-context lines land on a synthetic "host" row).
  SetLogEmitHook([this](LogLevel level) {
    if (telemetry_ == nullptr) return;
    static constexpr std::string_view kCounterNames[] = {
        "log.debug", "log.info", "log.warn", "log.error"};
    obs::NodeMetrics& node =
        g_current_thread != nullptr
            ? telemetry_->metrics().ForNode(g_current_thread->node().id(),
                                            g_current_thread->node().name())
            : telemetry_->metrics().ForNode(~0u, "host");
    node.GetCounter(kCounterNames[static_cast<int>(level)]).Inc();
  });
}

void Simulation::AttachChecker(check::Checker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    // Observation hook only: the checker reads the clock, never drives it.
    checker_->SetClock([this] { return static_cast<uint64_t>(now_); });
  }
}

void Simulation::AttachPolicy(explore::SchedulePolicy* policy) {
  policy_ = policy;
}

void Simulation::PushEvent(Event e) {
  events_.push_back(std::move(e));
  std::push_heap(events_.begin(), events_.end(), std::greater<>{});
}

Simulation::Event Simulation::PopEvent() {
  std::pop_heap(events_.begin(), events_.end(), std::greater<>{});
  Event e = std::move(events_.back());
  events_.pop_back();
  return e;
}

void Simulation::At(Nanos t, EventFn fn) {
  Event e;
  e.t = std::max(t, now_);
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  PushEvent(std::move(e));
}

void Simulation::After(Nanos delay, EventFn fn) {
  At(now_ + delay, std::move(fn));
}

void Simulation::ScheduleWake(SimThread* t, uint64_t gen, Nanos at,
                              int reason) {
  Event e;
  e.t = std::max(at, now_);
  e.seq = next_seq_++;
  e.wake_target = t;
  e.wake_gen = gen;
  e.wake_reason = reason;
  PushEvent(std::move(e));
}

void Simulation::RunThreadSlice(SimThread* t) {
  // Scheduler hand-off edge: tick the node's clock component so shadow
  // stamps taken on either side of the slice boundary stay distinct.
  if (checker_ != nullptr) checker_->OnThreadSlice(t->node().id());
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.store(t, std::memory_order_release);
  }
  t->cv_.notify_one();
  // Slices are typically a few microseconds of real work, so poll for the
  // handback before parking on the condvar: most slices end while we
  // watch, which halves the OS handoff cost (one futex round trip instead
  // of two). *How* to poll depends on the host: with spare cores the
  // slice proceeds in parallel, so pause-spin; on a uniprocessor the
  // woken thread cannot run while we occupy the core — spinning only
  // delays it — so donate the core with sched_yield and check between
  // reschedules.
  static const bool kUniprocessor = std::thread::hardware_concurrency() == 1;
  if (kUniprocessor) {
    constexpr int kYieldIters = 64;
    for (int i = 0; i < kYieldIters; ++i) {
      if (active_.load(std::memory_order_acquire) == nullptr) return;
      std::this_thread::yield();
    }
  } else {
    constexpr int kSpinIters = 4096;
    for (int i = 0; i < kSpinIters; ++i) {
      if (active_.load(std::memory_order_acquire) == nullptr) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  scheduler_cv_.wait(lock, [this] {
    return active_.load(std::memory_order_relaxed) == nullptr;
  });
}

Simulation::Event Simulation::ExploreTieBreak(Event first) {
  // Gather every candidate at this instant. Stale wakes are discarded
  // here instead of at dispatch — staleness is permanent (generations
  // only grow), so early discard is behaviour-identical to the baseline's
  // lazy discard and keeps the clock untouched either way.
  tie_events_.clear();
  tie_events_.push_back(std::move(first));
  const Nanos t = tie_events_.front().t;
  while (!events_.empty() && events_.front().t == t) {
    Event e = PopEvent();
    if (e.wake_target != nullptr) {
      SimThread* th = e.wake_target;
      if (th->exited() || !th->blocked() || th->gen() != e.wake_gen) {
        continue;
      }
    }
    tie_events_.push_back(std::move(e));
  }
  size_t pick = 0;
  if (tie_events_.size() > 1) {
    if (t != tie_streak_t_) {
      tie_streak_t_ = t;
      tie_streak_ = 0;
    }
    if (++tie_streak_ <= kMaxSameInstantPicks) {
      tie_lanes_.clear();
      for (const Event& e : tie_events_) {
        tie_lanes_.push_back(e.wake_target != nullptr
                                 ? e.wake_target->node().id()
                                 : explore::kNoLane);
      }
      pick = policy_->PickEvent(tie_lanes_.data(),
                                static_cast<uint32_t>(tie_lanes_.size()));
    }
    // else: livelock guard tripped — baseline FIFO until time advances.
  }
  Event chosen = std::move(tie_events_[pick]);
  for (size_t i = 0; i < tie_events_.size(); ++i) {
    if (i != pick) PushEvent(std::move(tie_events_[i]));
  }
  tie_events_.clear();
  return chosen;
}

void Simulation::Run() { RunUntil(kNever); }

void Simulation::RunUntil(Nanos deadline) {
  assert(!InSimThread() && "Run must be driven from outside the simulation");
  stop_requested_ = false;
  while (!events_.empty() && !stop_requested_) {
    Event e = PopEvent();
    if (e.wake_target != nullptr) {
      SimThread* t = e.wake_target;
      if (t->exited() || !t->blocked() || t->gen() != e.wake_gen) {
        continue;  // stale wake: discard without touching the clock
      }
    }
    // Same-instant tie-break: only consulted when a policy is attached
    // and another event shares this instant, so the un-explored fast
    // path is one branch.
    if (policy_ != nullptr && !events_.empty() &&
        events_.front().t == e.t && e.t <= deadline) {
      e = ExploreTieBreak(std::move(e));
    }
    if (e.t > deadline) {
      // Put it back and stop at the deadline.
      PushEvent(std::move(e));
      now_ = std::max(now_, deadline);
      return;
    }
    if (e.t > config_.horizon) {
      std::fprintf(stderr,
                   "fatal: simulation passed its horizon (%.3f s) — likely "
                   "livelock\n",
                   ToSeconds(config_.horizon));
      std::abort();
    }
    now_ = std::max(now_, e.t);
    ++events_processed_;
    if (e.wake_target != nullptr) {
      ++thread_slices_;
      e.wake_target->wake_reason_ =
          static_cast<SimThread::WakeReason>(e.wake_reason);
      RunThreadSlice(e.wake_target);
    } else {
      e.fn();
    }
  }
}

void Simulation::KillNode(uint32_t id) {
  Node& node = *nodes_.at(id);
  if (!node.alive_) return;
  node.alive_ = false;
  // Sweep at the current instant: wake every still-blocked thread so it
  // unwinds. Gens are read at fire time, so threads that ran in between
  // are still caught (their next Block() throws on the alive_ check).
  At(now_, [this, &node] {
    for (auto& t : node.threads_) {
      if (!t->exited() && t->blocked()) {
        t->wake_reason_ = SimThread::kKilled;
        RunThreadSlice(t.get());
      }
    }
  });
}

size_t Simulation::live_thread_count() const noexcept {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->live_threads();
  return n;
}

void Simulation::Shutdown() {
  shutting_down_ = true;
  // A caller-attached checker may already be destroyed by the time the
  // simulation unwinds (it is usually declared after the TestCluster that
  // owns us). Everything it could observe below is forced teardown, so
  // detach it now; the owned checker lives until ~Simulation and keeps
  // observing.
  if (checker_ != owned_checker_.get()) checker_ = nullptr;
  for (auto& node : nodes_) {
    node->alive_ = false;
    for (auto& t : node->threads_) {
      if (!t->exited() && t->blocked()) {
        t->wake_reason_ = SimThread::kKilled;
        RunThreadSlice(t.get());
      }
    }
  }
  // All threads have exited; their destructors join the OS threads.
  for (auto& node : nodes_) {
    for ([[maybe_unused]] auto& t : node->threads_) {
      assert(t->exited());
    }
  }
  // Join now rather than from ~Node: members are destroyed in reverse
  // declaration order, so scheduler_cv_ dies before nodes_, and an
  // exiting thread may still be inside its final notify_one.
  for (auto& node : nodes_) {
    node->threads_.clear();
  }
  // Exploration accounting (the policy outlives the simulation by
  // contract, so reading it here is safe) and, for env-attached runs that
  // found a violation, the replayable schedule dump — written *before*
  // the rcheck abort below so the repro trace always lands on disk.
  // explore.violations counts the owned (env-attached) checker only; a
  // caller-attached checker belongs to the explorer driver, which reads
  // it directly.
  if (policy_ != nullptr) {
    if (telemetry_ != nullptr) {
      obs::NodeMetrics& host = telemetry_->metrics().ForNode(~0u, "host");
      host.GetCounter("explore.runs").Inc();
      host.GetCounter("explore.choices").Inc(policy_->choices());
      host.GetCounter("explore.divergences").Inc(policy_->divergences());
      if (owned_checker_ != nullptr) {
        host.GetCounter("explore.violations")
            .Inc(owned_checker_->violation_count());
      }
    }
    if (owned_policy_ != nullptr && owned_checker_ != nullptr &&
        owned_checker_->violation_count() > 0) {
      static int trace_seq = 0;
      std::string path = "explore_trace.json";
      if (const char* out = std::getenv("RSTORE_EXPLORE_OUT");
          out != nullptr && *out != '\0') {
        path = std::string(out) + "/explore-" + std::to_string(getpid()) +
               "-" + std::to_string(trace_seq++) + ".json";
      }
      std::ofstream f(path);
      if (f.is_open()) {
        f << explore::ToJson(owned_policy_->Trace());
        std::cerr << "rexplore: replayable schedule written to " << path
                  << " (replay with tools/rexplore)\n";
      }
    }
  }
  // Environment-attached checker: turn violations into a visible failure.
  // (A programmatically attached checker belongs to the caller, who
  // inspects violations() itself.)
  if (owned_checker_ != nullptr && owned_checker_->violation_count() > 0) {
    owned_checker_->PrintReports(std::cerr);
    static int dump_seq = 0;
    std::string path = "rcheck_report.json";
    if (const char* out = std::getenv("RSTORE_RCHECK_OUT");
        out != nullptr && *out != '\0') {
      path = std::string(out) + "/rcheck-" + std::to_string(getpid()) +
             "-" + std::to_string(dump_seq++) + ".json";
    }
    std::ofstream f(path);
    if (f.is_open()) {
      owned_checker_->DumpJson(f);
      std::cerr << "rcheck: report written to " << path << '\n';
    }
    std::abort();
  }
  checker_ = nullptr;
  // Detach telemetry last: teardown may still log, and the hooks capture
  // `this`.
  AttachTelemetry(nullptr);
}

}  // namespace rstore::sim
