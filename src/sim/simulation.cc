#include "sim/simulation.h"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "check/check.h"
#include "check/lin.h"
#include "common/log.h"
#include "explore/policy.h"
#include "explore/trace_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rstore::sim {

// ---------------------------------------------------------------------------
// SimPartition: one event queue + clock + thread-handoff channel. Legacy
// mode has exactly one (every node shares it — the historical global
// scheduler). Partitioned mode gives every node its own, plus partition 0
// for driver-scheduled events; partitions dispatch independently inside
// conservative epochs and exchange cross-partition events through
// `outbox`, merged deterministically at epoch barriers (FlushOutboxes).
// ---------------------------------------------------------------------------
struct SimPartition {
  using Event = Simulation::Event;

  Simulation* sim = nullptr;
  uint32_t index = 0;
  Nanos now = 0;
  uint64_t next_seq = 0;
  uint64_t events_processed = 0;
  uint64_t thread_slices = 0;
  // Event queue as a manual binary min-heap over a reserved vector: the
  // storage is pooled across the run (no reallocation churn once warm)
  // and the top entry can be moved out instead of copied.
  std::vector<Event> events;
  // Cross-partition posts created while this partition dispatches, as
  // (destination partition index, event) in post order. Only the owning
  // dispatcher appends; only the driver thread drains, at barriers.
  std::vector<std::pair<uint32_t, Event>> outbox;
  // Livelock-guard streak for ExploreTieBreak (per partition: a pure
  // function of this partition's schedule).
  Nanos tie_streak_t = kNever;
  uint64_t tie_streak = 0;
  // Handoff state: mu orders the handoff edges; active is additionally
  // atomic so the dispatcher can spin-wait for the slice end without
  // taking the mutex (see RunThreadSlice).
  std::mutex mu;
  std::condition_variable scheduler_cv;
  std::atomic<SimThread*> active = nullptr;
};

// ---------------------------------------------------------------------------
// SimThread: one cooperative thread. The handoff protocol keeps the
// invariant that at any instant exactly one of {dispatcher, one SimThread}
// is executing per partition:
//
//   dispatcher -> thread : set part.active = t (under part.mu), notify cv_
//   thread -> dispatcher : set part.active = nullptr (under part.mu),
//                          notify part.scheduler_cv
//
// A thread "yields" by calling Block(), which performs the second handoff
// and waits to be re-activated. Wake events carry the generation number of
// the block instance they intend to end; stale wakes are ignored.
// ---------------------------------------------------------------------------
class SimThread {
 public:
  enum WakeReason : int { kNotify = 0, kTimeout = 1, kKilled = 2, kStart = 3 };

  SimThread(Node& node, std::string name, uint64_t tid,
            std::function<void()> fn)
      : node_(node),
        sim_(node.sim()),
        part_(*node.partition_),
        name_(std::move(name)),
        tid_(tid),
        fn_(std::move(fn)),
        os_thread_([this] { ThreadMain(); }) {}

  ~SimThread() {
    assert(exited_ && "simulation must unwind threads before destruction");
    if (os_thread_.joinable()) os_thread_.join();
  }

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // The dispatcher reads these after the handoff's release/acquire edge on
  // part.active, but they are atomic so the ThreadSanitizer build can
  // verify the protocol instead of trusting this comment.
  [[nodiscard]] bool exited() const noexcept {
    return exited_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool blocked() const noexcept {
    return blocked_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t gen() const noexcept {
    return gen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Node& node() noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] uint64_t tid() const noexcept { return tid_; }

  // Called from the thread itself: yield to the scheduler until woken.
  // Throws ThreadKilled when the node died, so stacks unwind via RAII —
  // unless an exception is already in flight, in which case it returns
  // kKilled silently (throwing during unwind would terminate).
  WakeReason Block() {
    if (!node_.alive() || ShuttingDown()) {
      if (std::uncaught_exceptions() > 0) return kKilled;
      throw ThreadKilled{};
    }
    YieldToScheduler();
    if (!node_.alive() || ShuttingDown()) {
      if (std::uncaught_exceptions() > 0) return kKilled;
      throw ThreadKilled{};
    }
    return wake_reason_;
  }

 private:
  friend class Simulation;

  [[nodiscard]] bool ShuttingDown() const noexcept;

  void YieldToScheduler() {
    std::unique_lock<std::mutex> lock(part_.mu);
    blocked_.store(true, std::memory_order_relaxed);
    part_.active.store(nullptr, std::memory_order_release);
    part_.scheduler_cv.notify_one();
    cv_.wait(lock, [this] {
      return part_.active.load(std::memory_order_relaxed) == this;
    });
    blocked_.store(false, std::memory_order_relaxed);
    // Invalidate any other pending wakes for the finished block.
    gen_.fetch_add(1, std::memory_order_relaxed);
  }

  void ThreadMain();

  Node& node_;
  Simulation& sim_;
  SimPartition& part_;
  const std::string name_;
  const uint64_t tid_;  // simulation-unique id for trace attribution
  std::function<void()> fn_;

  std::condition_variable cv_;
  std::atomic<bool> blocked_ = true;  // starts "blocked"; ends at kStart
  std::atomic<bool> exited_ = false;
  std::atomic<uint64_t> gen_ = 0;
  WakeReason wake_reason_ = kStart;

  std::thread os_thread_;  // last member: starts after state is ready
};

namespace {
thread_local SimThread* g_current_thread = nullptr;
// Set on a host thread (driver or epoch worker) for the duration of one
// partition's dispatch, so scheduler-context callbacks resolve their
// clock and event queue. Node threads resolve through g_current_thread
// instead (they run on their own OS threads).
thread_local SimPartition* g_current_partition = nullptr;

SimThread* Current() {
  SimThread* t = g_current_thread;
  if (t == nullptr) {
    std::fprintf(stderr,
                 "fatal: sim primitive called from outside a simulated "
                 "thread\n");
    std::abort();
  }
  return t;
}
}  // namespace

bool PartitionedEnvRequested() {
  const char* e = std::getenv("RSTORE_HOST_THREADS");
  return e != nullptr && *e != '\0' && std::strtol(e, nullptr, 10) > 0;
}

bool SimThread::ShuttingDown() const noexcept { return sim_.shutting_down(); }

void SimThread::ThreadMain() {
  g_current_thread = this;
  {
    // First activation mirrors the tail of YieldToScheduler().
    std::unique_lock<std::mutex> lock(part_.mu);
    cv_.wait(lock, [this] {
      return part_.active.load(std::memory_order_relaxed) == this;
    });
    blocked_.store(false, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_relaxed);
  }
  if (node_.alive() && !ShuttingDown()) {
    try {
      fn_();
    } catch (const ThreadKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      LOG_ERROR << "uncaught exception in sim thread '" << name_
                << "' on node " << node_.name() << ": " << e.what();
    }
  }
  // Exit handoff: give control back to the scheduler permanently.
  std::lock_guard<std::mutex> lock(part_.mu);
  exited_.store(true, std::memory_order_relaxed);
  part_.active.store(nullptr, std::memory_order_release);
  part_.scheduler_cv.notify_one();
}

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------
Node::Node(Simulation& sim, uint32_t id, std::string name, uint64_t seed)
    : sim_(sim), id_(id), name_(std::move(name)), rng_(seed) {}

Node::~Node() = default;

void Node::Spawn(std::string thread_name, std::function<void()> fn) {
  const uint64_t tid = sim_.AllocateTid();
  if (obs::Telemetry* tel = sim_.telemetry(); tel != nullptr) {
    tel->tracer().SetThreadName(id_, tid, thread_name);
  }
  auto thread = std::make_unique<SimThread>(*this, std::move(thread_name), tid,
                                            std::move(fn));
  SimThread* t = thread.get();
  threads_.push_back(std::move(thread));
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos(), SimThread::kStart);
}

size_t Node::live_threads() const noexcept {
  size_t n = 0;
  for (const auto& t : threads_) {
    if (!t->exited()) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Free functions for node code
// ---------------------------------------------------------------------------
Nanos Now() { return Current()->node().sim().NowNanos(); }

void Sleep(Nanos d) {
  SimThread* t = Current();
  Simulation& sim = t->node().sim();
  sim.ScheduleWake(t, t->gen(), sim.NowNanos() + d, SimThread::kTimeout);
  t->Block();
}

void Yield() { Sleep(0); }

Node& CurrentNode() { return Current()->node(); }

bool InSimThread() noexcept { return g_current_thread != nullptr; }

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------
// A ThreadKilled unwind must NOT touch waiters_: the kill may be part of
// simulation teardown, in which case the object owning this CondVar can
// already be gone (threads blocked in a server's accept loop outlive the
// server object until Shutdown unwinds them). The stale waiter entry is
// harmless — SimThread objects live until the simulation is destroyed,
// and NotifyOne skips entries whose thread has exited.
void CondVar::Wait() {
  SimThread* t = Current();
  waiters_.push_back(t);
  t->Block();
}

bool CondVar::WaitFor(Nanos timeout) {
  // An effectively infinite timeout blocks without a timeout event (a wake
  // at kNever would outlive the simulation horizon).
  if (timeout >= kNever - sim_.NowNanos()) {
    Wait();
    return true;
  }
  SimThread* t = Current();
  waiters_.push_back(t);
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos() + timeout,
                    SimThread::kTimeout);
  if (t->Block() == SimThread::kTimeout) {
    std::erase(waiters_, t);
    return false;
  }
  return true;
}

void CondVar::NotifyOne() {
  // Drop entries whose thread exited (killed while waiting) from the
  // front; deeper stale entries are inert and get skipped when reached.
  while (!waiters_.empty() && waiters_.front()->exited()) {
    waiters_.pop_front();
  }
  if (waiters_.empty()) return;
  // Baseline wakes the longest waiter (deque front). An attached
  // exploration policy may wake any live waiter instead — this is the
  // kWaiterWake decision point, and pick 0 is the baseline front.
  size_t pick = 0;
  if (explore::SchedulePolicy* pol = sim_.policy_;
      pol != nullptr && waiters_.size() > 1) {
    auto& live = sim_.waiter_pick_scratch_;
    auto& lanes = sim_.waiter_lane_scratch_;
    live.clear();
    lanes.clear();
    for (size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i]->exited()) continue;
      live.push_back(i);
      lanes.push_back(waiters_[i]->node().id());
    }
    pick = live[pol->PickWaiter(lanes.data(),
                                static_cast<uint32_t>(lanes.size()))];
  }
  SimThread* t = waiters_[pick];
  waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(pick));
  // CondVar edges are intra-node under per-node clocks (the hand-off is
  // subsumed by the notifier's node clock); ticking keeps stamps taken
  // around the notify distinct. Scheduler-context notifies (fabric
  // delivery) have no owning node and are ordered by the event loop.
  if (sim_.checker_ != nullptr && g_current_thread != nullptr) {
    sim_.checker_->OnCondNotify(g_current_thread->node().id());
  }
  sim_.ScheduleWake(t, t->gen(), sim_.NowNanos(), SimThread::kNotify);
}

void CondVar::NotifyAll() {
  while (!waiters_.empty()) NotifyOne();
}

Nanos CondVar::DeadlineFrom(Nanos timeout) const {
  const Nanos now = sim_.NowNanos();
  return timeout > kNever - now ? kNever : now + timeout;
}

Nanos CondVar::NowInternal() const { return sim_.NowNanos(); }

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------
Simulation::Simulation(SimConfig config)
    : config_(config), seeder_(config.seed) {
  // Partitioned mode: explicit config wins; otherwise the environment
  // opts whole processes in (the bench --host-threads flag and the CI
  // parallel-determinism gate both use the env).
  if (config_.host_threads == 0) {
    if (const char* e = std::getenv("RSTORE_HOST_THREADS");
        e != nullptr && *e != '\0') {
      const long v = std::strtol(e, nullptr, 10);
      if (v > 0) {
        config_.host_threads = static_cast<uint32_t>(std::min(v, 1024L));
      }
    }
  }
  if (const char* e = std::getenv("RSTORE_PARTITION_SERIAL");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    config_.serialize_dispatch = true;
  }
  partitioned_ = config_.host_threads >= 1;
  partitions_.push_back(std::make_unique<Partition>());
  partitions_.back()->sim = this;
  partitions_.back()->index = 0;
  partitions_.back()->events.reserve(1024);
  // Opt-in runtime verification for whole test/bench processes: every
  // simulation in the process gets its own checker, and Shutdown() turns
  // any violation into a report + abort (the CI rcheck gate).
  if (const char* e = std::getenv("RSTORE_RCHECK");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    owned_checker_ = std::make_unique<check::Checker>();
    AttachChecker(owned_checker_.get());
  }
  // Opt-in linearizability checking (the rlin gate): same process-wide
  // contract as rcheck — each simulation gets its own history, Shutdown()
  // finalizes and aborts on violation.
  if (const char* e = std::getenv("RSTORE_RLIN");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    owned_lin_ = std::make_unique<check::LinChecker>();
    AttachLinChecker(owned_lin_.get());
  }
  // Opt-in schedule exploration: every simulation in the process gets its
  // own policy instance, cycling through the spec's derived seeds so one
  // bench/test invocation covers `runs` distinct schedules.
  if (const char* e = std::getenv("RSTORE_EXPLORE");
      e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) {
    explore::ExploreSpec spec;
    if (explore::ExploreSpec::Parse(e, &spec)) {
      static std::atomic<uint64_t> g_explore_instance{0};
      const uint64_t run =
          g_explore_instance.fetch_add(1, std::memory_order_relaxed);
      owned_policy_ = spec.Instantiate(run);
      policy_ = owned_policy_.get();
    } else {
      std::fprintf(stderr,
                   "RSTORE_EXPLORE: unparseable spec '%s' (expected "
                   "<policy>[:<seed>[:<runs>[:<max_delay_ns>]]], policy = "
                   "baseline | random | pct | pct<d>); exploring nothing\n",
                   e);
    }
  }
}

Simulation::~Simulation() { Shutdown(); }

Node& Simulation::AddNode(std::string name) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      std::make_unique<Node>(*this, id, std::move(name), seeder_.Next()));
  Node& node = *nodes_.back();
  if (partitioned_) {
    partitions_.push_back(std::make_unique<Partition>());
    partitions_.back()->sim = this;
    partitions_.back()->index = static_cast<uint32_t>(partitions_.size() - 1);
    partitions_.back()->events.reserve(64);
    node.partition_ = partitions_.back().get();
  } else {
    node.partition_ = partitions_.front().get();
  }
  if (telemetry_ != nullptr) {
    (void)telemetry_->metrics().ForNode(id, node.name());
    telemetry_->tracer().RegisterNode(id, node.name());
  }
  return node;
}

Simulation::Partition* Simulation::CurrentPartition() const noexcept {
  if (g_current_thread != nullptr &&
      &g_current_thread->node().sim() == this) {
    return g_current_thread->node().partition_;
  }
  if (g_current_partition != nullptr && g_current_partition->sim == this) {
    return g_current_partition;
  }
  return nullptr;
}

Nanos Simulation::NowNanos() const noexcept {
  const Partition* p = CurrentPartition();
  return p != nullptr ? p->now : driver_now_;
}

uint32_t Simulation::CurrentPartitionIndex() const noexcept {
  const Partition* p = CurrentPartition();
  return p != nullptr ? p->index : 0;
}

bool Simulation::InContextOfNode(uint32_t node_id) const noexcept {
  if (!partitioned_) return true;
  const Partition* cur = CurrentPartition();
  return cur == nullptr || cur == nodes_.at(node_id)->partition_;
}

uint64_t Simulation::events_processed() const noexcept {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->events_processed;
  return n;
}

uint64_t Simulation::thread_slices() const noexcept {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->thread_slices;
  return n;
}

void Simulation::AtPartitionedRunStart(std::function<void()> hook) {
  prepare_hooks_.push_back(std::move(hook));
}

void Simulation::AtEpochBarrier(std::function<void()> hook) {
  barrier_hooks_.push_back(std::move(hook));
}

void Simulation::AttachTelemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr && telemetry == nullptr) {
    telemetry_->SetClock({});
    telemetry_->SetTidSource({});
    SetLogEmitHook({});
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  // The clock and thread-id sources read scheduler state only; they are
  // observation hooks, never inputs to the event timeline.
  telemetry_->SetClock([this] { return static_cast<uint64_t>(NowNanos()); });
  telemetry_->SetTidSource([]() -> uint64_t {
    return g_current_thread != nullptr ? g_current_thread->tid() : 0;
  });
  for (const auto& node : nodes_) {
    (void)telemetry_->metrics().ForNode(node->id(), node->name());
    telemetry_->tracer().RegisterNode(node->id(), node->name());
  }
  // Route log emissions into a per-level counter on the emitting node
  // (scheduler-context lines land on a synthetic "host" row). Safe under
  // concurrent partition threads: ForNode/GetCounter take the registry
  // locks and counters are atomic.
  SetLogEmitHook([this](LogLevel level) {
    if (telemetry_ == nullptr) return;
    static constexpr std::string_view kCounterNames[] = {
        "log.debug", "log.info", "log.warn", "log.error"};
    obs::NodeMetrics& node =
        g_current_thread != nullptr
            ? telemetry_->metrics().ForNode(g_current_thread->node().id(),
                                            g_current_thread->node().name())
            : telemetry_->metrics().ForNode(~0u, "host");
    node.GetCounter(kCounterNames[static_cast<int>(level)]).Inc();
  });
}

void Simulation::AttachChecker(check::Checker* checker) {
  checker_ = checker;
  if (checker_ != nullptr) {
    // Observation hook only: the checker reads the clock, never drives it.
    checker_->SetClock([this] { return static_cast<uint64_t>(NowNanos()); });
  }
}

void Simulation::AttachLinChecker(check::LinChecker* lin) { lin_ = lin; }

void Simulation::AttachPolicy(explore::SchedulePolicy* policy) {
  policy_ = policy;
}

void Simulation::PushEvent(Partition& p, Event e) {
  p.events.push_back(std::move(e));
  std::push_heap(p.events.begin(), p.events.end(), std::greater<>{});
}

Simulation::Event Simulation::PopEvent(Partition& p) {
  std::pop_heap(p.events.begin(), p.events.end(), std::greater<>{});
  Event e = std::move(p.events.back());
  p.events.pop_back();
  return e;
}

void Simulation::At(Nanos t, EventFn fn) {
  Partition* cur = CurrentPartition();
  Partition& p = cur != nullptr ? *cur : *partitions_.front();
  Event e;
  e.t = std::max(t, cur != nullptr ? cur->now : driver_now_);
  e.seq = p.next_seq++;
  e.fn = std::move(fn);
  PushEvent(p, std::move(e));
}

void Simulation::After(Nanos delay, EventFn fn) {
  At(NowNanos() + delay, std::move(fn));
}

void Simulation::PostToNode(uint32_t node_id, Nanos t, EventFn fn) {
  Partition& target = *nodes_.at(node_id)->partition_;
  Partition* cur = CurrentPartition();
  Event e;
  e.fn = std::move(fn);
  if (cur != nullptr && cur != &target) {
    // Cross-partition: buffered in post order, merged at the next epoch
    // barrier (seq stamped there, under the merge rule).
    e.t = t;
    e.seq = 0;
    cur->outbox.emplace_back(target.index, std::move(e));
    return;
  }
  // Same partition, or driver context between runs (no dispatcher is
  // touching any heap): push directly.
  e.t = std::max(t, cur != nullptr ? cur->now : driver_now_);
  e.seq = target.next_seq++;
  PushEvent(target, std::move(e));
}

void Simulation::ScheduleWake(SimThread* t, uint64_t gen, Nanos at,
                              int reason) {
  Partition& target = *t->node().partition_;
  Partition* cur = CurrentPartition();
  Event e;
  e.wake_target = t;
  e.wake_gen = gen;
  e.wake_reason = reason;
  if (cur != nullptr && cur != &target) {
    // Cross-partition notify (e.g. a CondVar poked from another node's
    // context under serialized dispatch): routed through the epoch
    // boundary; the generation check makes late arrivals safe.
    e.t = std::max(at, cur->now);
    e.seq = 0;
    cur->outbox.emplace_back(target.index, std::move(e));
    return;
  }
  e.t = std::max(at, cur != nullptr ? cur->now : driver_now_);
  e.seq = target.next_seq++;
  PushEvent(target, std::move(e));
}

void Simulation::RunThreadSlice(Partition& p, SimThread* t) {
  // Scheduler hand-off edge: tick the node's clock component so shadow
  // stamps taken on either side of the slice boundary stay distinct.
  if (checker_ != nullptr) checker_->OnThreadSlice(t->node().id());
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.active.store(t, std::memory_order_release);
  }
  t->cv_.notify_one();
  // Slices are typically a few microseconds of real work, so poll for the
  // handback before parking on the condvar: most slices end while we
  // watch, which halves the OS handoff cost (one futex round trip instead
  // of two). *How* to poll depends on the host: with spare cores the
  // slice proceeds in parallel, so pause-spin; on a uniprocessor the
  // woken thread cannot run while we occupy the core — spinning only
  // delays it — so donate the core with sched_yield and check between
  // reschedules.
  static const bool kUniprocessor = std::thread::hardware_concurrency() == 1;
  if (kUniprocessor) {
    constexpr int kYieldIters = 64;
    for (int i = 0; i < kYieldIters; ++i) {
      if (p.active.load(std::memory_order_acquire) == nullptr) return;
      std::this_thread::yield();
    }
  } else {
    constexpr int kSpinIters = 4096;
    for (int i = 0; i < kSpinIters; ++i) {
      if (p.active.load(std::memory_order_acquire) == nullptr) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    }
  }
  std::unique_lock<std::mutex> lock(p.mu);
  p.scheduler_cv.wait(lock, [&p] {
    return p.active.load(std::memory_order_relaxed) == nullptr;
  });
}

Simulation::Event Simulation::ExploreTieBreak(Partition& p, Event first) {
  // Gather every candidate at this instant. Stale wakes are discarded
  // here instead of at dispatch — staleness is permanent (generations
  // only grow), so early discard is behaviour-identical to the baseline's
  // lazy discard and keeps the clock untouched either way.
  tie_events_.clear();
  tie_events_.push_back(std::move(first));
  const Nanos t = tie_events_.front().t;
  while (!p.events.empty() && p.events.front().t == t) {
    Event e = PopEvent(p);
    if (e.wake_target != nullptr) {
      SimThread* th = e.wake_target;
      if (th->exited() || !th->blocked() || th->gen() != e.wake_gen) {
        continue;
      }
    }
    tie_events_.push_back(std::move(e));
  }
  size_t pick = 0;
  if (tie_events_.size() > 1) {
    if (t != p.tie_streak_t) {
      p.tie_streak_t = t;
      p.tie_streak = 0;
    }
    if (++p.tie_streak <= kMaxSameInstantPicks) {
      tie_lanes_.clear();
      for (const Event& e : tie_events_) {
        tie_lanes_.push_back(e.wake_target != nullptr
                                 ? e.wake_target->node().id()
                                 : explore::kNoLane);
      }
      pick = policy_->PickEvent(tie_lanes_.data(),
                                static_cast<uint32_t>(tie_lanes_.size()));
    }
    // else: livelock guard tripped — baseline FIFO until time advances.
  }
  Event chosen = std::move(tie_events_[pick]);
  for (size_t i = 0; i < tie_events_.size(); ++i) {
    if (i != pick) PushEvent(p, std::move(tie_events_[i]));
  }
  tie_events_.clear();
  return chosen;
}

void Simulation::Run() { RunUntil(kNever); }

void Simulation::DispatchPartition(Partition& p, Nanos deadline, Nanos until,
                                   bool obey_stop) {
  while (!p.events.empty()) {
    if (obey_stop && stop_requested_.load(std::memory_order_relaxed)) return;
    // Conservative epoch horizon: nothing at or past `until` may run this
    // epoch (cross-partition arrivals up to the horizon are already
    // merged; later ones are not yet visible).
    if (until != kNever && p.events.front().t >= until) return;
    Event e = PopEvent(p);
    if (e.wake_target != nullptr) {
      SimThread* t = e.wake_target;
      if (t->exited() || !t->blocked() || t->gen() != e.wake_gen) {
        continue;  // stale wake: discard without touching the clock
      }
    }
    // Same-instant tie-break: only consulted when a policy is attached
    // and another event shares this instant, so the un-explored fast
    // path is one branch.
    if (policy_ != nullptr && !p.events.empty() &&
        p.events.front().t == e.t && e.t <= deadline) {
      e = ExploreTieBreak(p, std::move(e));
    }
    if (e.t > deadline) {
      // Put it back and stop at the deadline.
      PushEvent(p, std::move(e));
      p.now = std::max(p.now, deadline);
      return;
    }
    if (e.t > config_.horizon) {
      std::fprintf(stderr,
                   "fatal: simulation passed its horizon (%.3f s) — likely "
                   "livelock\n",
                   ToSeconds(config_.horizon));
      std::abort();
    }
    p.now = std::max(p.now, e.t);
    ++p.events_processed;
    if (e.wake_target != nullptr) {
      ++p.thread_slices;
      e.wake_target->wake_reason_ =
          static_cast<SimThread::WakeReason>(e.wake_reason);
      RunThreadSlice(p, e.wake_target);
    } else {
      e.fn();
    }
  }
}

void Simulation::DispatchShare(uint32_t worker, uint32_t stride,
                               Nanos deadline, Nanos until) {
  const size_t count = partitions_.size();
  for (size_t i = worker; i < count; i += stride) {
    Partition& p = *partitions_[i];
    if (p.events.empty()) continue;
    g_current_partition = &p;
    DispatchPartition(p, deadline, until, /*obey_stop=*/false);
    g_current_partition = nullptr;
  }
}

void Simulation::FlushOutboxes() {
  // Ascending source partition id, each outbox in post order: the gather
  // order per destination is (source partition, post order), and the
  // stable sort by t refines it to (t, source partition, post order) —
  // THE cross-partition merge rule. Destination seqs are stamped in that
  // order, so merged events obey the normal same-instant FIFO tie-break.
  for (auto& sp : partitions_) {
    for (auto& [dst, ev] : sp->outbox) {
      if (merge_scratch_[dst].empty()) merge_dirty_.push_back(dst);
      merge_scratch_[dst].push_back(std::move(ev));
    }
    sp->outbox.clear();
  }
  for (const uint32_t dst : merge_dirty_) {
    auto& arrivals = merge_scratch_[dst];
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Event& a, const Event& b) { return a.t < b.t; });
    Partition& d = *partitions_[dst];
    for (Event& ev : arrivals) {
      ev.seq = d.next_seq++;
      PushEvent(d, std::move(ev));
    }
    arrivals.clear();
  }
  merge_dirty_.clear();
}

// Epoch rendezvous for the worker pool: the driver publishes
// (gen, deadline, until) and waits for `outstanding` to drain; workers
// dispatch their static share (partition i goes to worker i % workers, so
// the assignment — though not the timeline, which doesn't depend on it —
// is reproducible too).
struct Simulation::EpochSync {
  std::mutex mu;
  std::condition_variable go_cv;
  std::condition_variable done_cv;
  uint64_t gen = 0;
  uint32_t outstanding = 0;
  Nanos deadline = 0;
  Nanos until = 0;
  bool quit = false;
};

void Simulation::RunPartitionedUntil(Nanos deadline) {
  merge_scratch_.resize(partitions_.size());
  // Run-start hooks: models pre-size per-partition pools and pre-resolve
  // telemetry instruments so the parallel phase never mutates shared
  // tables.
  for (auto& hook : prepare_hooks_) hook();
  const auto count = static_cast<uint32_t>(partitions_.size());
  // A checker, a policy, or span tracing observes one global order:
  // dispatch partitions serially (in id order) on this thread. The
  // timeline is identical to parallel dispatch by construction — the
  // epoch structure, merges, and per-partition orders do not depend on
  // which host thread dispatches a partition — so serialized runs are
  // valid goldens for parallel ones and vice versa.
  const bool serialize =
      config_.serialize_dispatch || checker_ != nullptr ||
      lin_ != nullptr || policy_ != nullptr ||
      (telemetry_ != nullptr && telemetry_->tracing());
  const uint32_t workers =
      serialize ? 1 : std::min(config_.host_threads, count);

  EpochSync sync;
  std::vector<std::thread> pool;
  pool.reserve(workers > 0 ? workers - 1 : 0);
  for (uint32_t w = 1; w < workers; ++w) {
    pool.emplace_back([this, &sync, w, workers] {
      uint64_t seen = 0;
      for (;;) {
        Nanos dl = 0;
        Nanos hor = 0;
        {
          std::unique_lock<std::mutex> lock(sync.mu);
          sync.go_cv.wait(lock,
                          [&] { return sync.quit || sync.gen != seen; });
          if (sync.quit) return;
          seen = sync.gen;
          dl = sync.deadline;
          hor = sync.until;
        }
        DispatchShare(w, workers, dl, hor);
        {
          std::lock_guard<std::mutex> lock(sync.mu);
          --sync.outstanding;
        }
        sync.done_cv.notify_one();
      }
    });
  }

  for (;;) {
    FlushOutboxes();
    for (auto& hook : barrier_hooks_) hook();
    // Stop requests take effect at epoch boundaries only — sampling the
    // flag mid-epoch would make the dispatched set depend on worker
    // timing.
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    Nanos tmin = kNever;
    for (const auto& p : partitions_) {
      if (!p->events.empty() && p->events.front().t < tmin) {
        tmin = p->events.front().t;
      }
    }
    if (tmin == kNever) break;  // quiescent
    if (tmin > deadline) {
      for (auto& p : partitions_) p->now = std::max(p->now, deadline);
      break;
    }
    // Epochs are event-driven (they start at the global minimum, jumping
    // idle gaps) and extend one lookahead past it: every cross-partition
    // effect of an event at t lands at t + lookahead or later, so events
    // strictly below the horizon can never be invalidated by another
    // partition's work in the same epoch. Without a finite positive
    // lookahead (no fabric attached, or a zero-latency one), fall back to
    // one virtual instant per epoch: partitions may interact at the next
    // instant (driver callbacks poking node state, KillNode), so running
    // any further ahead could reorder cross-partition effects — and
    // instant-sized epochs also keep RequestStop sampling prompt.
    const Nanos la =
        (lookahead_ == kNever || lookahead_ == 0) ? 1 : lookahead_;
    const Nanos until = la >= kNever - tmin ? kNever : tmin + la;
    if (workers > 1) {
      {
        std::lock_guard<std::mutex> lock(sync.mu);
        ++sync.gen;
        sync.outstanding = workers - 1;
        sync.deadline = deadline;
        sync.until = until;
      }
      sync.go_cv.notify_all();
      DispatchShare(0, workers, deadline, until);
      std::unique_lock<std::mutex> lock(sync.mu);
      sync.done_cv.wait(lock, [&] { return sync.outstanding == 0; });
    } else {
      DispatchShare(0, 1, deadline, until);
    }
  }

  if (!pool.empty()) {
    {
      std::lock_guard<std::mutex> lock(sync.mu);
      sync.quit = true;
    }
    sync.go_cv.notify_all();
    for (auto& t : pool) t.join();
  }
  Nanos max_now = driver_now_;
  for (const auto& p : partitions_) max_now = std::max(max_now, p->now);
  driver_now_ = max_now;
}

void Simulation::RunUntil(Nanos deadline) {
  assert(!InSimThread() && "Run must be driven from outside the simulation");
  stop_requested_.store(false, std::memory_order_relaxed);
  if (partitioned_) {
    RunPartitionedUntil(deadline);
    return;
  }
  Partition& p = *partitions_.front();
  g_current_partition = &p;
  DispatchPartition(p, deadline, kNever, /*obey_stop=*/true);
  g_current_partition = nullptr;
  driver_now_ = p.now;
}

void Simulation::KillNode(uint32_t id) {
  Node& node = *nodes_.at(id);
  Partition& target = *node.partition_;
  Partition* cur = CurrentPartition();
  if (cur != nullptr && cur != &target) {
    // Cross-partition kill: routed through the epoch boundary so the
    // takedown lands at a deterministic point in the target's timeline.
    PostToNode(id, cur->now, [this, &node] {
      if (!node.alive()) return;
      node.alive_.store(false, std::memory_order_relaxed);
      SweepKilledThreads(node);
    });
    return;
  }
  if (!node.alive()) return;
  node.alive_.store(false, std::memory_order_relaxed);
  // Sweep at the current instant: wake every still-blocked thread so it
  // unwinds. Gens are read at fire time, so threads that ran in between
  // are still caught (their next Block() throws on the alive_ check).
  PostToNode(id, NowNanos(), [this, &node] { SweepKilledThreads(node); });
}

void Simulation::SweepKilledThreads(Node& node) {
  for (auto& t : node.threads_) {
    if (!t->exited() && t->blocked()) {
      t->wake_reason_ = SimThread::kKilled;
      RunThreadSlice(*node.partition_, t.get());
    }
  }
}

size_t Simulation::live_thread_count() const noexcept {
  size_t n = 0;
  for (const auto& node : nodes_) n += node->live_threads();
  return n;
}

void Simulation::Shutdown() {
  shutting_down_.store(true, std::memory_order_relaxed);
  // A caller-attached checker may already be destroyed by the time the
  // simulation unwinds (it is usually declared after the TestCluster that
  // owns us). Everything it could observe below is forced teardown, so
  // detach it now; the owned checker lives until ~Simulation and keeps
  // observing.
  if (checker_ != owned_checker_.get()) checker_ = nullptr;
  if (lin_ != owned_lin_.get()) lin_ = nullptr;
  for (auto& node : nodes_) {
    node->alive_.store(false, std::memory_order_relaxed);
    for (auto& t : node->threads_) {
      if (!t->exited() && t->blocked()) {
        t->wake_reason_ = SimThread::kKilled;
        RunThreadSlice(*node->partition_, t.get());
      }
    }
  }
  // All threads have exited; their destructors join the OS threads.
  for (auto& node : nodes_) {
    for ([[maybe_unused]] auto& t : node->threads_) {
      assert(t->exited());
    }
  }
  // Join now rather than from ~Node: members are destroyed in reverse
  // declaration order, so the partitions (and their condvars) die before
  // nodes_, and an exiting thread may still be inside its final
  // notify_one — except partitions_ is declared first, so they outlive
  // nodes_; the explicit clear below keeps the historical join point.
  for (auto& node : nodes_) {
    node->threads_.clear();
  }
  // Exploration accounting (the policy outlives the simulation by
  // contract, so reading it here is safe) and, for env-attached runs that
  // found a violation, the replayable schedule dump — written *before*
  // the rcheck abort below so the repro trace always lands on disk.
  // explore.violations counts the owned (env-attached) checker only; a
  // caller-attached checker belongs to the explorer driver, which reads
  // it directly.
  // The env-attached lin checker finalizes here, before the explore-trace
  // dump, so a PCT-found linearizability violation also gets its
  // replayable schedule written.
  if (owned_lin_ != nullptr) owned_lin_->Finalize();
  if (policy_ != nullptr) {
    if (telemetry_ != nullptr) {
      obs::NodeMetrics& host = telemetry_->metrics().ForNode(~0u, "host");
      host.GetCounter("explore.runs").Inc();
      host.GetCounter("explore.choices").Inc(policy_->choices());
      host.GetCounter("explore.divergences").Inc(policy_->divergences());
      if (owned_checker_ != nullptr) {
        host.GetCounter("explore.violations")
            .Inc(owned_checker_->violation_count());
      }
    }
    if (owned_policy_ != nullptr &&
        ((owned_checker_ != nullptr &&
          owned_checker_->violation_count() > 0) ||
         (owned_lin_ != nullptr && owned_lin_->violation_count() > 0))) {
      static int trace_seq = 0;
      std::string path = "explore_trace.json";
      if (const char* out = std::getenv("RSTORE_EXPLORE_OUT");
          out != nullptr && *out != '\0') {
        path = std::string(out) + "/explore-" + std::to_string(getpid()) +
               "-" + std::to_string(trace_seq++) + ".json";
      }
      std::ofstream f(path);
      if (f.is_open()) {
        f << explore::ToJson(owned_policy_->Trace());
        std::cerr << "rexplore: replayable schedule written to " << path
                  << " (replay with tools/rexplore)\n";
      }
    }
  }
  // Environment-attached checker: turn violations into a visible failure.
  // (A programmatically attached checker belongs to the caller, who
  // inspects violations() itself.)
  if (owned_checker_ != nullptr && owned_checker_->violation_count() > 0) {
    owned_checker_->PrintReports(std::cerr);
    static int dump_seq = 0;
    std::string path = "rcheck_report.json";
    if (const char* out = std::getenv("RSTORE_RCHECK_OUT");
        out != nullptr && *out != '\0') {
      path = std::string(out) + "/rcheck-" + std::to_string(getpid()) +
             "-" + std::to_string(dump_seq++) + ".json";
    }
    std::ofstream f(path);
    if (f.is_open()) {
      owned_checker_->DumpJson(f);
      std::cerr << "rcheck: report written to " << path << '\n';
    }
    std::abort();
  }
  // Environment-attached lin checker: same contract as rcheck above.
  if (owned_lin_ != nullptr && owned_lin_->violation_count() > 0) {
    owned_lin_->PrintReports(std::cerr);
    static int lin_dump_seq = 0;
    std::string path = "rlin_report.json";
    if (const char* out = std::getenv("RSTORE_RLIN_OUT");
        out != nullptr && *out != '\0') {
      path = std::string(out) + "/rlin-" + std::to_string(getpid()) + "-" +
             std::to_string(lin_dump_seq++) + ".json";
    }
    std::ofstream f(path);
    if (f.is_open()) {
      owned_lin_->DumpJson(f);
      std::cerr << "rlin: counterexample written to " << path << '\n';
    }
    std::abort();
  }
  checker_ = nullptr;
  lin_ = nullptr;
  // Detach telemetry last: teardown may still log, and the hooks capture
  // `this`.
  AttachTelemetry(nullptr);
}

}  // namespace rstore::sim
