// Deterministic virtual-time cluster simulator.
//
// The simulator lets *real* C++ node programs (RStore master, memory
// servers, clients, sorters, graph workers) run against a modelled network
// without real hardware. Each simulated node hosts one or more cooperative
// threads; a discrete-event scheduler guarantees that exactly one thread
// (or event callback) executes at a time, and that execution order is a
// pure function of the event timeline — so every run is bit-reproducible.
//
// Concurrency model
// -----------------
//   * Node code runs on OS threads, but cooperatively: the scheduler hands
//     control to one thread at a time and regains it when the thread blocks
//     (Sleep, CondVar::Wait, ...) or exits. There is therefore no data race
//     between node programs, the fabric, or the scheduler, even though the
//     code "looks" multithreaded.
//   * Virtual time advances only in the scheduler, between thread slices.
//     Pure computation inside a thread is instantaneous in virtual time;
//     code charges compute costs explicitly via Sleep()/cost models
//     (see cost_model.h) — which keeps performance accounting explicit,
//     documented, and machine-independent.
//
// Failure injection
// -----------------
//   Simulation::KillNode tears a node down: its blocked threads are woken
//   with ThreadKilled (an exception type user code must not swallow), so
//   stacks unwind through RAII. Running threads die at their next blocking
//   call. The fabric drops traffic from/to dead nodes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/small_fn.h"
#include "sim/time.h"

namespace rstore::obs {
class Telemetry;
}  // namespace rstore::obs

namespace rstore::check {
class Checker;
}  // namespace rstore::check

namespace rstore::explore {
class SchedulePolicy;
}  // namespace rstore::explore

namespace rstore::sim {

// Event callbacks live inline in the event heap: 48 bytes of capture
// space covers every hot-path callback (a couple of pointers and
// scalars) without a heap allocation; larger captures fall back to the
// heap transparently.
using EventFn = common::SmallFn<void(), 48>;

class Simulation;
class Node;
class SimThread;

// Thrown out of blocking calls when the hosting node has been killed (or
// the simulation is shutting down). Node programs should let it propagate;
// Node::Spawn catches it at the top of every thread.
struct ThreadKilled {};

// ---------------------------------------------------------------------------
// Node: a simulated machine. Owns its threads and a deterministic RNG
// forked from the simulation seed.
// ---------------------------------------------------------------------------
class Node {
 public:
  Node(Simulation& sim, uint32_t id, std::string name, uint64_t seed);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  // Starts a new cooperative thread on this node at the current virtual
  // time. `fn` runs as if it were a process on the machine.
  void Spawn(std::string thread_name, std::function<void()> fn);

  // Number of this node's threads that have not yet exited.
  [[nodiscard]] size_t live_threads() const noexcept;

 private:
  friend class Simulation;

  Simulation& sim_;
  const uint32_t id_;
  const std::string name_;
  Rng rng_;
  bool alive_ = true;
  std::vector<std::unique_ptr<SimThread>> threads_;
};

// ---------------------------------------------------------------------------
// Calls available from inside node threads (free functions so application
// code reads naturally). All of them abort if called from outside a
// simulated thread.
// ---------------------------------------------------------------------------

// Current virtual time.
[[nodiscard]] Nanos Now();
// Blocks the calling thread for `d` virtual nanoseconds. Also the primitive
// through which compute costs are charged.
void Sleep(Nanos d);
// Yields without advancing time (reschedules at the same instant, after
// already-queued same-time events).
void Yield();
// The node hosting the calling thread.
[[nodiscard]] Node& CurrentNode();
// True when called from within a simulated thread.
[[nodiscard]] bool InSimThread() noexcept;

// ---------------------------------------------------------------------------
// CondVar: virtual-time condition variable. The only blocking primitive
// besides Sleep; everything higher (completion queues, RPC futures, BSP
// barriers) is built from it.
// ---------------------------------------------------------------------------
class CondVar {
 public:
  explicit CondVar(Simulation& sim) : sim_(sim) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified. May wake spuriously only in the sense that the
  // condition the caller associates with it may no longer hold; use the
  // predicate overloads for loops.
  void Wait();
  // Blocks until notified or `timeout` elapses; true = notified.
  bool WaitFor(Nanos timeout);

  template <typename Pred>
  void WaitUntil(Pred pred) {
    while (!pred()) Wait();
  }
  // True if pred became true before the deadline.
  template <typename Pred>
  bool WaitUntilFor(Pred pred, Nanos timeout) {
    const Nanos deadline = DeadlineFrom(timeout);
    while (!pred()) {
      const Nanos now = NowInternal();
      if (now >= deadline) return false;
      if (!WaitFor(deadline - now) && !pred()) return false;
    }
    return true;
  }

  // Wakes one / all waiters. Safe to call from node threads and from
  // scheduler-context callbacks (e.g. fabric delivery).
  void NotifyOne();
  void NotifyAll();

 private:
  Nanos DeadlineFrom(Nanos timeout) const;
  Nanos NowInternal() const;

  Simulation& sim_;
  std::deque<SimThread*> waiters_;
};

// ---------------------------------------------------------------------------
// Simulation: owns the clock, the event queue, and the nodes.
// ---------------------------------------------------------------------------
struct SimConfig {
  uint64_t seed = 1;
  // Safety valve: Run() aborts the process if virtual time passes this.
  Nanos horizon = Seconds(36000);
};

class Simulation {
 public:
  explicit Simulation(SimConfig config = {});
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Adds a machine to the cluster. Stable pointers; nodes live as long as
  // the simulation.
  Node& AddNode(std::string name);

  [[nodiscard]] Node& node(uint32_t id) { return *nodes_.at(id); }
  [[nodiscard]] size_t node_count() const noexcept { return nodes_.size(); }

  [[nodiscard]] Nanos NowNanos() const noexcept { return now_; }
  [[nodiscard]] uint64_t seed() const noexcept { return config_.seed; }

  // Events dispatched so far (callbacks run + thread slices; stale wakes
  // excluded). The denominator of the wall-clock harness's events/sec.
  [[nodiscard]] uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  // Subset of events_processed() that handed control to an OS thread —
  // each costs a real context-switch round trip, so the slice share of
  // the event mix is what wall-clock tuning watches.
  [[nodiscard]] uint64_t thread_slices() const noexcept {
    return thread_slices_;
  }

  // Schedules `fn` to run in scheduler context at virtual time `t`
  // (clamped to now). Callbacks must not block; they may notify CondVars
  // and schedule further events.
  void At(Nanos t, EventFn fn);
  void After(Nanos delay, EventFn fn);

  // Runs until the event queue drains (quiescence: every thread exited or
  // blocked indefinitely with no pending event that could wake it) or a
  // stop is requested.
  void Run();
  // Runs until quiescence, a requested stop, or until virtual time would
  // exceed `deadline`.
  void RunUntil(Nanos deadline);

  // Asks the dispatch loop to return after the current slice. Callable
  // from node threads and scheduler callbacks; the natural way for a
  // workload driver to end a simulation whose background services
  // (heartbeats, sweepers) would otherwise generate events forever.
  void RequestStop() noexcept { stop_requested_ = true; }

  // Failure injection: marks the node dead and unwinds its threads.
  void KillNode(uint32_t id);

  // Connects an observability sink (owned by the caller, may outlive this
  // simulation and aggregate several runs). Installs the virtual clock and
  // thread-id sources, registers existing and future nodes, and routes
  // log emissions into per-level counters. Telemetry observes only — it
  // never schedules events or charges the cost model, so attaching it
  // cannot change any simulated outcome. Detached automatically at
  // destruction; pass nullptr to detach early.
  void AttachTelemetry(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  // Connects the rcheck runtime-verification layer (src/check). Like
  // telemetry, the checker observes only — every hook is synchronous and
  // never schedules events or charges the cost model, so attaching it
  // cannot move virtual time. Owned by the caller; pass nullptr to
  // detach. When the RSTORE_RCHECK environment variable is set (and not
  // "0"), the constructor attaches an owned checker automatically and
  // Shutdown() prints its reports, dumps them as JSON (into
  // $RSTORE_RCHECK_OUT or ./rcheck_report.json), and aborts if any
  // violation was found — the CI gate.
  void AttachChecker(check::Checker* checker);
  [[nodiscard]] check::Checker* checker() const noexcept { return checker_; }

  // Connects a schedule-exploration policy (src/explore). Unlike telemetry
  // and the checker, a policy is an *input*: it decides scheduler
  // tie-breaks (equal-vtime event order, CondVar waiter wake order), NIC
  // egress arbitration, completion-queue delivery order, and bounded
  // fault-injection delays, so attaching one other than the baseline
  // policy legitimately changes the schedule. The policy MUST outlive the
  // simulation — it is still consulted while Shutdown() unwinds threads.
  // When the RSTORE_EXPLORE environment variable holds a parseable
  // explore::ExploreSpec ("<policy>[:<seed>[:<runs>[:<max_delay_ns>]]]"),
  // the constructor attaches an owned policy automatically; successive
  // Simulation instances in the process cycle through `runs` derived
  // seeds, and on an rcheck violation Shutdown() writes the replayable
  // decision trace next to the rcheck report (into $RSTORE_EXPLORE_OUT or
  // ./explore_trace.json) before aborting.
  void AttachPolicy(explore::SchedulePolicy* policy);
  [[nodiscard]] explore::SchedulePolicy* policy() const noexcept {
    return policy_;
  }

  // True once destruction has begun and threads are being unwound. Blocking
  // primitives use this to decide whether the object they were waiting on
  // is still safe to touch while a ThreadKilled exception propagates.
  [[nodiscard]] bool shutting_down() const noexcept { return shutting_down_; }

  // Total threads ever spawned / still live, for tests.
  [[nodiscard]] size_t live_thread_count() const noexcept;

 private:
  friend class Node;
  friend class SimThread;
  friend class CondVar;
  friend Nanos Now();
  friend void Sleep(Nanos);
  friend void Yield();

  // Two event kinds share the queue: callback events (fn set) and thread
  // wakes (wake_target set). Wakes carry the generation of the block they
  // intend to end; a stale wake is discarded *without* advancing the
  // clock, so cancelled timeouts and killed threads leave no time skew.
  //
  // Equal-vtime ordering (THE tie-break rule — pinned by
  // SameInstantEventsDispatchInFifoOrder in sim_test.cc): the heap orders
  // by (t, seq), and seq is a single monotonically increasing counter
  // assigned at *scheduling* time (At/After/ScheduleWake all stamp
  // next_seq_++). Events at the same virtual instant therefore dispatch
  // in FIFO scheduling order — first scheduled, first run — regardless of
  // kind (callback vs thread wake) or which node they belong to. An
  // attached explore::SchedulePolicy may permute same-instant candidates
  // (ExploreTieBreak), with pick 0 defined as exactly this baseline
  // order, which is what makes the baseline policy bit-identical to
  // running with no policy at all.
  struct Event {
    Nanos t;
    uint64_t seq;
    EventFn fn;
    SimThread* wake_target = nullptr;
    uint64_t wake_gen = 0;
    int wake_reason = 0;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  // Scheduler internals (see .cc for the handoff protocol).
  void RunThreadSlice(SimThread* t);
  void ScheduleWake(SimThread* t, uint64_t gen, Nanos at, int reason);
  void PushEvent(Event e);
  Event PopEvent();
  // Exploration hook: `first` was popped and more events share its
  // instant. Gathers the same-t candidates, lets policy_ pick one, and
  // re-pushes the rest (seqs preserved, so the baseline order survives).
  Event ExploreTieBreak(Event first);
  void Shutdown();
  [[nodiscard]] uint64_t AllocateTid() noexcept { return next_tid_++; }

  SimConfig config_;
  Rng seeder_;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t thread_slices_ = 0;
  // Event queue as a manual binary min-heap over a reserved vector: the
  // storage is pooled across the run (no reallocation churn once warm)
  // and the top entry can be moved out instead of copied.
  std::vector<Event> events_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool shutting_down_ = false;
  bool stop_requested_ = false;
  obs::Telemetry* telemetry_ = nullptr;
  check::Checker* checker_ = nullptr;
  std::unique_ptr<check::Checker> owned_checker_;  // RSTORE_RCHECK=1 mode
  explore::SchedulePolicy* policy_ = nullptr;
  std::unique_ptr<explore::SchedulePolicy> owned_policy_;  // RSTORE_EXPLORE
  // Pooled scratch for ExploreTieBreak / CondVar waiter picks — only ever
  // touched from scheduler context / the single active thread.
  std::vector<Event> tie_events_;
  std::vector<uint32_t> tie_lanes_;
  std::vector<size_t> waiter_pick_scratch_;
  std::vector<uint32_t> waiter_lane_scratch_;
  // Livelock guard: a policy that keeps favouring a Yield-spinning lane
  // could pin virtual time forever. After this many consecutive
  // same-instant tie-break consultations the scheduler falls back to the
  // baseline FIFO pick until time advances. Deterministic (a pure
  // function of the schedule), so replay is unaffected.
  static constexpr uint64_t kMaxSameInstantPicks = 65536;
  Nanos tie_streak_t_ = kNever;
  uint64_t tie_streak_ = 0;
  uint64_t next_tid_ = 1;  // SimThread trace ids; 0 = scheduler context

  // Handoff state: mu_ orders the handoff edges; active_ is additionally
  // atomic so the scheduler can spin-wait for the slice end without
  // taking the mutex (see RunThreadSlice).
  std::mutex mu_;
  std::condition_variable scheduler_cv_;
  std::atomic<SimThread*> active_ = nullptr;
};

}  // namespace rstore::sim
