// Deterministic virtual-time cluster simulator.
//
// The simulator lets *real* C++ node programs (RStore master, memory
// servers, clients, sorters, graph workers) run against a modelled network
// without real hardware. Each simulated node hosts one or more cooperative
// threads; a discrete-event scheduler guarantees that exactly one thread
// (or event callback) executes at a time *per partition*, and that
// execution order is a pure function of the event timeline — so every run
// is bit-reproducible.
//
// Concurrency model
// -----------------
//   * Node code runs on OS threads, but cooperatively: the scheduler hands
//     control to one thread at a time and regains it when the thread blocks
//     (Sleep, CondVar::Wait, ...) or exits. There is therefore no data race
//     between node programs, the fabric, or the scheduler, even though the
//     code "looks" multithreaded.
//   * Virtual time advances only in the scheduler, between thread slices.
//     Pure computation inside a thread is instantaneous in virtual time;
//     code charges compute costs explicitly via Sleep()/cost models
//     (see cost_model.h) — which keeps performance accounting explicit,
//     documented, and machine-independent.
//
// Partitioned (parallel) mode
// ---------------------------
//   With SimConfig::host_threads >= 1 (or RSTORE_HOST_THREADS set), every
//   node gets its own event queue and clock — a *partition* — and
//   partitions execute independently inside barrier-synced virtual-time
//   epochs bounded by the conservative lookahead (the minimum
//   cross-partition fabric latency, see ProposeLookahead). Cross-partition
//   events are exchanged at epoch boundaries through a deterministic merge
//   rule (sort by timestamp, then by (source partition, post order)), so
//   the timeline is a pure function of the workload and NOT of the host
//   thread count: --host-threads=8 is bit-identical to --host-threads=1.
//   host_threads == 0 (the default) selects the original single-queue
//   scheduler, byte-for-byte unchanged. See DESIGN.md "Parallel
//   simulation".
//
// Failure injection
// -----------------
//   Simulation::KillNode tears a node down: its blocked threads are woken
//   with ThreadKilled (an exception type user code must not swallow), so
//   stacks unwind through RAII. Running threads die at their next blocking
//   call. The fabric drops traffic from/to dead nodes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/small_fn.h"
#include "sim/time.h"

namespace rstore::obs {
class Telemetry;
}  // namespace rstore::obs

namespace rstore::check {
class Checker;
class LinChecker;
}  // namespace rstore::check

namespace rstore::explore {
class SchedulePolicy;
}  // namespace rstore::explore

namespace rstore::sim {

// Event callbacks live inline in the event heap: 48 bytes of capture
// space covers every hot-path callback (a couple of pointers and
// scalars) without a heap allocation; larger captures fall back to the
// heap transparently.
using EventFn = common::SmallFn<void(), 48>;

class Simulation;
class Node;
class SimThread;

// True when the RSTORE_HOST_THREADS environment variable requests
// partitioned scheduling for every Simulation in the process (the CI
// parallel-determinism gate). Tests that pin exact *legacy-scheduler*
// timelines use this to skip themselves under the gate.
[[nodiscard]] bool PartitionedEnvRequested();

// Thrown out of blocking calls when the hosting node has been killed (or
// the simulation is shutting down). Node programs should let it propagate;
// Node::Spawn catches it at the top of every thread.
struct ThreadKilled {};

// ---------------------------------------------------------------------------
// Node: a simulated machine. Owns its threads and a deterministic RNG
// forked from the simulation seed.
// ---------------------------------------------------------------------------
class Node {
 public:
  Node(Simulation& sim, uint32_t id, std::string name, uint64_t seed);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] bool alive() const noexcept {
    return alive_.load(std::memory_order_relaxed);
  }

  // Starts a new cooperative thread on this node at the current virtual
  // time. `fn` runs as if it were a process on the machine.
  void Spawn(std::string thread_name, std::function<void()> fn);

  // Number of this node's threads that have not yet exited.
  [[nodiscard]] size_t live_threads() const noexcept;

 private:
  friend class Simulation;
  friend class SimThread;

  Simulation& sim_;
  const uint32_t id_;
  const std::string name_;
  Rng rng_;
  // Relaxed atomic: flipped only from the owning partition's context (or
  // while all partitions are quiesced), but *read* by other partitions on
  // the fabric path-up check, so the TSan build needs the atomic.
  std::atomic<bool> alive_ = true;
  // The event queue this node's events live on. Legacy mode: the single
  // shared partition 0. Partitioned mode: a dedicated partition per node.
  struct SimPartition* partition_ = nullptr;
  std::vector<std::unique_ptr<SimThread>> threads_;
};

// ---------------------------------------------------------------------------
// Calls available from inside node threads (free functions so application
// code reads naturally). All of them abort if called from outside a
// simulated thread.
// ---------------------------------------------------------------------------

// Current virtual time.
[[nodiscard]] Nanos Now();
// Blocks the calling thread for `d` virtual nanoseconds. Also the primitive
// through which compute costs are charged.
void Sleep(Nanos d);
// Yields without advancing time (reschedules at the same instant, after
// already-queued same-time events).
void Yield();
// The node hosting the calling thread.
[[nodiscard]] Node& CurrentNode();
// True when called from within a simulated thread.
[[nodiscard]] bool InSimThread() noexcept;

// ---------------------------------------------------------------------------
// CondVar: virtual-time condition variable. The only blocking primitive
// besides Sleep; everything higher (completion queues, RPC futures, BSP
// barriers) is built from it.
//
// Partitioned mode: a CondVar must only be notified from its waiters' own
// node (or from scheduler callbacks running on that node's partition) —
// which every simulator primitive (CQs, RPC futures, BSP barriers)
// already satisfies, since they are per-node objects poked by delivery
// events on that node. Cross-partition notification is routed through the
// epoch boundary and is only safe under serialized dispatch.
// ---------------------------------------------------------------------------
class CondVar {
 public:
  explicit CondVar(Simulation& sim) : sim_(sim) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified. May wake spuriously only in the sense that the
  // condition the caller associates with it may no longer hold; use the
  // predicate overloads for loops.
  void Wait();
  // Blocks until notified or `timeout` elapses; true = notified.
  bool WaitFor(Nanos timeout);

  template <typename Pred>
  void WaitUntil(Pred pred) {
    while (!pred()) Wait();
  }
  // True if pred became true before the deadline.
  template <typename Pred>
  bool WaitUntilFor(Pred pred, Nanos timeout) {
    const Nanos deadline = DeadlineFrom(timeout);
    while (!pred()) {
      const Nanos now = NowInternal();
      if (now >= deadline) return false;
      if (!WaitFor(deadline - now) && !pred()) return false;
    }
    return true;
  }

  // Wakes one / all waiters. Safe to call from node threads and from
  // scheduler-context callbacks (e.g. fabric delivery).
  void NotifyOne();
  void NotifyAll();

 private:
  Nanos DeadlineFrom(Nanos timeout) const;
  Nanos NowInternal() const;

  Simulation& sim_;
  std::deque<SimThread*> waiters_;
};

// ---------------------------------------------------------------------------
// Simulation: owns the clock, the event queue(s), and the nodes.
// ---------------------------------------------------------------------------
struct SimConfig {
  uint64_t seed = 1;
  // Safety valve: Run() aborts the process if virtual time passes this.
  Nanos horizon = Seconds(36000);
  // 0 (default): the original single-queue scheduler, byte-for-byte the
  // historical behaviour. N >= 1: partitioned scheduling with one event
  // queue per node and up to N host worker threads dispatching epochs in
  // parallel. The *timeline* is identical for every N >= 1 — only wall
  // clock changes — so N=1 is the golden reference for the N=8 run.
  // Overridden by RSTORE_HOST_THREADS when left 0.
  uint32_t host_threads = 0;
  // Force epochs to dispatch partitions one at a time (in partition-id
  // order) on the calling thread, regardless of host_threads. Used by the
  // CI full-suite determinism gate, and switched on automatically when a
  // checker, an exploration policy, or span tracing is attached — those
  // layers observe a single global order, and serialized dispatch
  // produces the *same timeline* as parallel dispatch by construction.
  // Also via RSTORE_PARTITION_SERIAL.
  bool serialize_dispatch = false;
};

class Simulation {
 public:
  explicit Simulation(SimConfig config = {});
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Adds a machine to the cluster. Stable pointers; nodes live as long as
  // the simulation.
  Node& AddNode(std::string name);

  [[nodiscard]] Node& node(uint32_t id) { return *nodes_.at(id); }
  [[nodiscard]] size_t node_count() const noexcept { return nodes_.size(); }

  // Current virtual time of the calling context: a node thread or a
  // partition dispatch callback sees its partition's clock; the driver
  // (outside Run) sees the maximum over partitions. In legacy mode all of
  // these are the single global clock.
  [[nodiscard]] Nanos NowNanos() const noexcept;
  [[nodiscard]] uint64_t seed() const noexcept { return config_.seed; }

  // True when this simulation runs the partitioned scheduler
  // (host_threads >= 1).
  [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }
  [[nodiscard]] uint32_t host_threads() const noexcept {
    return config_.host_threads;
  }
  // Conservative lookahead bounding each epoch (minimum cross-partition
  // latency proposed by the fabric(s); kNever until one is proposed).
  [[nodiscard]] Nanos lookahead() const noexcept { return lookahead_; }
  // Minimum over all proposals wins. Models register the smallest latency
  // at which they send work across partitions (the fabric proposes its
  // base propagation delay, see cost_model.h ConservativeLookahead).
  void ProposeLookahead(Nanos l) noexcept {
    lookahead_ = l < lookahead_ ? l : lookahead_;
  }

  // Partition index of the calling context: node threads and partition
  // callbacks return their partition; the driver returns 0. Legacy mode
  // always returns 0. Used by pooled allocators (fabric messages, verbs
  // wire ops) to pick a per-partition freelist.
  [[nodiscard]] uint32_t CurrentPartitionIndex() const noexcept;
  // True when the calling context may touch `node_id`'s state directly:
  // legacy mode, driver context between runs, or the node's own
  // partition. Cross-partition work must instead be posted via
  // PostToNode.
  [[nodiscard]] bool InContextOfNode(uint32_t node_id) const noexcept;

  // Events dispatched so far (callbacks run + thread slices; stale wakes
  // excluded), summed over partitions. The denominator of the wall-clock
  // harness's events/sec.
  [[nodiscard]] uint64_t events_processed() const noexcept;
  // Subset of events_processed() that handed control to an OS thread —
  // each costs a real context-switch round trip, so the slice share of
  // the event mix is what wall-clock tuning watches.
  [[nodiscard]] uint64_t thread_slices() const noexcept;

  // Schedules `fn` to run in scheduler context at virtual time `t`
  // (clamped to now). Callbacks must not block; they may notify CondVars
  // and schedule further events. The event lands on the calling context's
  // partition (driver context: partition 0).
  void At(Nanos t, EventFn fn);
  void After(Nanos delay, EventFn fn);

  // Schedules `fn` at virtual time `t` on the partition owning `node_id`,
  // from any context. Same-partition (and legacy) posts are ordinary At()
  // events; cross-partition posts are buffered in the source partition's
  // outbox and merged at the next epoch boundary under the deterministic
  // merge rule — sorted by t, then (source partition, post order) — and
  // fire at max(t, destination clock). Posts at least `lookahead()` ahead
  // of the source clock are therefore never clamped and fire at exactly
  // `t`; nearer posts (completion acks) may be deferred to the boundary,
  // deterministically.
  void PostToNode(uint32_t node_id, Nanos t, EventFn fn);

  // Runs until the event queue drains (quiescence: every thread exited or
  // blocked indefinitely with no pending event that could wake it) or a
  // stop is requested.
  void Run();
  // Runs until quiescence, a requested stop, or until virtual time would
  // exceed `deadline`.
  void RunUntil(Nanos deadline);

  // Asks the dispatch loop to return after the current slice (legacy) or
  // at the current epoch boundary (partitioned — sampling the flag only
  // at barriers is what keeps the timeline thread-count-independent).
  // Callable from node threads and scheduler callbacks; the natural way
  // for a workload driver to end a simulation whose background services
  // (heartbeats, sweepers) would otherwise generate events forever.
  void RequestStop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  // Failure injection: marks the node dead and unwinds its threads. From
  // a different partition's context this is routed through the epoch
  // boundary (the kill lands deterministically at the next barrier).
  void KillNode(uint32_t id);

  // Registers a hook run on the driver thread at the start of every
  // partitioned Run/RunUntil, before workers exist. Models use it to
  // pre-size per-partition pools and pre-resolve telemetry instruments so
  // the parallel phase never mutates shared tables.
  void AtPartitionedRunStart(std::function<void()> hook);
  // Registers a hook run on the driver thread at every epoch boundary
  // (all partitions quiescent). Used to publish cross-partition snapshot
  // state (e.g. the master's live-server count) with epoch granularity —
  // readers in epoch k see the value as of the end of epoch k-1, which is
  // a pure function of virtual time, not of worker interleaving.
  void AtEpochBarrier(std::function<void()> hook);

  // Connects an observability sink (owned by the caller, may outlive this
  // simulation and aggregate several runs). Installs the virtual clock and
  // thread-id sources, registers existing and future nodes, and routes
  // log emissions into per-level counters. Telemetry observes only — it
  // never schedules events or charges the cost model, so attaching it
  // cannot change any simulated outcome. Detached automatically at
  // destruction; pass nullptr to detach early.
  void AttachTelemetry(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }

  // Connects the rcheck runtime-verification layer (src/check). Like
  // telemetry, the checker observes only — every hook is synchronous and
  // never schedules events or charges the cost model, so attaching it
  // cannot move virtual time. Owned by the caller; pass nullptr to
  // detach. When the RSTORE_RCHECK environment variable is set (and not
  // "0"), the constructor attaches an owned checker automatically and
  // Shutdown() prints its reports, dumps them as JSON (into
  // $RSTORE_RCHECK_OUT or ./rcheck_report.json), and aborts if any
  // violation was found — the CI gate. In partitioned mode an attached
  // checker serializes epoch dispatch, so its vector clocks observe one
  // global order and its reports are identical for every host thread
  // count.
  void AttachChecker(check::Checker* checker);
  [[nodiscard]] check::Checker* checker() const noexcept { return checker_; }

  // Connects the rlin linearizability checker (src/check/lin.h). Another
  // observe-only oracle: capture sites in the RKV client and the load
  // engine record per-op histories into it; recording is pure host-side
  // computation, so virtual time is bit-identical with it on or off.
  // Owned by the caller; pass nullptr to detach. When the RSTORE_RLIN
  // environment variable is set (and not "0"), the constructor attaches
  // an owned checker automatically and Shutdown() finalizes it, prints
  // reports, dumps them as JSON (into $RSTORE_RLIN_OUT or
  // ./rlin_report.json), and aborts on any violation — the CI gate. Like
  // rcheck, an attached lin checker serializes epoch dispatch in
  // partitioned mode so capture sites record in one global order.
  void AttachLinChecker(check::LinChecker* lin);
  [[nodiscard]] check::LinChecker* lin() const noexcept { return lin_; }

  // Connects a schedule-exploration policy (src/explore). Unlike telemetry
  // and the checker, a policy is an *input*: it decides scheduler
  // tie-breaks (equal-vtime event order, CondVar waiter wake order), NIC
  // egress arbitration, completion-queue delivery order, and bounded
  // fault-injection delays, so attaching one other than the baseline
  // policy legitimately changes the schedule. The policy MUST outlive the
  // simulation — it is still consulted while Shutdown() unwinds threads.
  // When the RSTORE_EXPLORE environment variable holds a parseable
  // explore::ExploreSpec ("<policy>[:<seed>[:<runs>[:<max_delay_ns>]]]"),
  // the constructor attaches an owned policy automatically; successive
  // Simulation instances in the process cycle through `runs` derived
  // seeds, and on an rcheck violation Shutdown() writes the replayable
  // decision trace next to the rcheck report (into $RSTORE_EXPLORE_OUT or
  // ./explore_trace.json) before aborting. In partitioned mode a policy
  // serializes epoch dispatch (partitions in id order), so choice points
  // fire in one canonical order under any host thread count.
  void AttachPolicy(explore::SchedulePolicy* policy);
  [[nodiscard]] explore::SchedulePolicy* policy() const noexcept {
    return policy_;
  }

  // True once destruction has begun and threads are being unwound. Blocking
  // primitives use this to decide whether the object they were waiting on
  // is still safe to touch while a ThreadKilled exception propagates.
  [[nodiscard]] bool shutting_down() const noexcept {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  // Total threads ever spawned / still live, for tests.
  [[nodiscard]] size_t live_thread_count() const noexcept;

 private:
  friend class Node;
  friend class SimThread;
  friend class CondVar;
  friend struct SimPartition;
  friend Nanos Now();
  friend void Sleep(Nanos);
  friend void Yield();

  // Two event kinds share the queue: callback events (fn set) and thread
  // wakes (wake_target set). Wakes carry the generation of the block they
  // intend to end; a stale wake is discarded *without* advancing the
  // clock, so cancelled timeouts and killed threads leave no time skew.
  //
  // Equal-vtime ordering (THE tie-break rule — pinned by
  // SameInstantEventsDispatchInFifoOrder in sim_test.cc): the heap orders
  // by (t, seq), and seq is a single monotonically increasing counter
  // *per partition* assigned at scheduling time (At/After/ScheduleWake
  // all stamp the partition's next_seq++; cross-partition arrivals are
  // stamped at the epoch merge, in merge-rule order). Events at the same
  // virtual instant therefore dispatch in FIFO scheduling order — first
  // scheduled, first run — regardless of kind (callback vs thread wake).
  // An attached explore::SchedulePolicy may permute same-instant
  // candidates (ExploreTieBreak), with pick 0 defined as exactly this
  // baseline order, which is what makes the baseline policy bit-identical
  // to running with no policy at all.
  struct Event {
    Nanos t;
    uint64_t seq;
    EventFn fn;
    SimThread* wake_target = nullptr;
    uint64_t wake_gen = 0;
    int wake_reason = 0;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  using Partition = struct SimPartition;
  struct EpochSync;

  // Scheduler internals (see .cc for the handoff protocol and the epoch
  // loop).
  void RunThreadSlice(Partition& p, SimThread* t);
  void ScheduleWake(SimThread* t, uint64_t gen, Nanos at, int reason);
  void PushEvent(Partition& p, Event e);
  Event PopEvent(Partition& p);
  // Exploration hook: `first` was popped and more events share its
  // instant. Gathers the same-t candidates, lets policy_ pick one, and
  // re-pushes the rest (seqs preserved, so the baseline order survives).
  // Only reached under serialized dispatch (attaching a policy
  // serializes), so the shared scratch vectors are safe.
  Event ExploreTieBreak(Partition& p, Event first);
  // The dispatch loop shared by every mode. Runs events with t <= deadline
  // and (when `until` != kNever) t < until, on one partition. `obey_stop`
  // checks stop_requested_ before every event (legacy semantics); epochs
  // pass false and sample the flag at barriers instead.
  void DispatchPartition(Partition& p, Nanos deadline, Nanos until,
                         bool obey_stop);
  void DispatchShare(uint32_t worker, uint32_t stride, Nanos deadline,
                     Nanos until);
  void RunPartitionedUntil(Nanos deadline);
  void SweepKilledThreads(Node& node);
  // Deterministic epoch merge: drains every partition's outbox (ascending
  // partition id, each in post order), stable-sorts each destination's
  // arrivals by t — yielding (t, source partition, post order) total
  // order — and stamps destination seqs in that order.
  void FlushOutboxes();
  [[nodiscard]] Partition* CurrentPartition() const noexcept;
  void Shutdown();
  [[nodiscard]] uint64_t AllocateTid() noexcept {
    return next_tid_.fetch_add(1, std::memory_order_relaxed);
  }

  SimConfig config_;
  bool partitioned_ = false;
  Rng seeder_;
  // Virtual clock seen by the driver between runs: the max over partition
  // clocks at the last dispatch exit (legacy: the single global clock).
  Nanos driver_now_ = 0;
  Nanos lookahead_ = kNever;
  // Partitions are stable (unique_ptr) and declared before nodes_ so node
  // teardown can still reach its partition. Legacy mode: exactly one.
  // Partitioned mode: partition 0 carries driver-scheduled events; node i
  // owns partition i+1.
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> shutting_down_ = false;
  std::atomic<bool> stop_requested_ = false;
  obs::Telemetry* telemetry_ = nullptr;
  check::Checker* checker_ = nullptr;
  std::unique_ptr<check::Checker> owned_checker_;  // RSTORE_RCHECK=1 mode
  check::LinChecker* lin_ = nullptr;
  std::unique_ptr<check::LinChecker> owned_lin_;  // RSTORE_RLIN=1 mode
  explore::SchedulePolicy* policy_ = nullptr;
  std::unique_ptr<explore::SchedulePolicy> owned_policy_;  // RSTORE_EXPLORE
  // Pooled scratch for ExploreTieBreak / CondVar waiter picks — only ever
  // touched from scheduler context / the single active thread (policies
  // force serialized dispatch).
  std::vector<Event> tie_events_;
  std::vector<uint32_t> tie_lanes_;
  std::vector<size_t> waiter_pick_scratch_;
  std::vector<uint32_t> waiter_lane_scratch_;
  // Epoch-merge scratch (driver thread only, at barriers).
  std::vector<std::vector<Event>> merge_scratch_;
  std::vector<uint32_t> merge_dirty_;
  std::vector<std::function<void()>> prepare_hooks_;
  std::vector<std::function<void()>> barrier_hooks_;
  // Livelock guard: a policy that keeps favouring a Yield-spinning lane
  // could pin virtual time forever. After this many consecutive
  // same-instant tie-break consultations the scheduler falls back to the
  // baseline FIFO pick until time advances. Deterministic (a pure
  // function of the schedule), so replay is unaffected.
  static constexpr uint64_t kMaxSameInstantPicks = 65536;
  std::atomic<uint64_t> next_tid_ = 1;  // SimThread ids; 0 = scheduler ctx
};

}  // namespace rstore::sim
