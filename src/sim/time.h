// Virtual-time vocabulary for the cluster simulator. All simulated time is
// carried as unsigned nanoseconds since simulation start; helpers below make
// literals readable at call sites (Micros(1.3), Millis(5), ...).
#pragma once

#include <cstdint>
#include <limits>

namespace rstore::sim {

// Virtual nanoseconds. 2^64 ns ≈ 584 years of simulated time, so overflow
// is not a practical concern.
using Nanos = uint64_t;

inline constexpr Nanos kNever = std::numeric_limits<Nanos>::max();

constexpr Nanos Nanoseconds(uint64_t n) noexcept { return n; }
constexpr Nanos Micros(double us) noexcept {
  return static_cast<Nanos>(us * 1e3);
}
constexpr Nanos Millis(double ms) noexcept {
  return static_cast<Nanos>(ms * 1e6);
}
constexpr Nanos Seconds(double s) noexcept {
  return static_cast<Nanos>(s * 1e9);
}

constexpr double ToSeconds(Nanos n) noexcept {
  return static_cast<double>(n) / 1e9;
}
constexpr double ToMillis(Nanos n) noexcept {
  return static_cast<double>(n) / 1e6;
}
constexpr double ToMicros(Nanos n) noexcept {
  return static_cast<double>(n) / 1e3;
}

// Time to push `bytes` through a link of `bits_per_second`, rounded up to
// a whole nanosecond so that zero-cost transfers cannot exist.
constexpr Nanos TransferTime(uint64_t bytes, double bits_per_second) noexcept {
  const double secs =
      (static_cast<double>(bytes) * 8.0) / bits_per_second;
  const auto n = static_cast<Nanos>(secs * 1e9);
  return n == 0 && bytes > 0 ? 1 : n;
}

}  // namespace rstore::sim
