#include "verbs/verbs.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "check/check.h"
#include "common/log.h"
#include "explore/policy.h"
#include "obs/trace.h"

namespace rstore::verbs {

std::string_view ToString(WcStatus status) noexcept {
  switch (status) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kLocalProtErr: return "LOCAL_PROT_ERR";
    case WcStatus::kRemAccessErr: return "REM_ACCESS_ERR";
    case WcStatus::kRemOpErr: return "REM_OP_ERR";
    case WcStatus::kRetryExceeded: return "RETRY_EXCEEDED";
    case WcStatus::kRnrRetryExceeded: return "RNR_RETRY_EXCEEDED";
    case WcStatus::kWrFlushErr: return "WR_FLUSH_ERR";
  }
  return "UNKNOWN";
}

std::string_view ToString(Opcode op) noexcept {
  switch (op) {
    case Opcode::kSend: return "SEND";
    case Opcode::kRecv: return "RECV";
    case Opcode::kRdmaWrite: return "RDMA_WRITE";
    case Opcode::kRdmaWriteWithImm: return "RDMA_WRITE_WITH_IMM";
    case Opcode::kRdmaRead: return "RDMA_READ";
    case Opcode::kCompareSwap: return "COMPARE_SWAP";
    case Opcode::kFetchAdd: return "FETCH_ADD";
  }
  return "UNKNOWN";
}

// ---------------------------------------------------------------------------
// MemoryRegion
// ---------------------------------------------------------------------------
bool MemoryRegion::Covers(uint64_t addr, uint64_t len) const noexcept {
  const uint64_t base = remote_addr();
  if (addr < base) return false;
  const uint64_t off = addr - base;
  return off <= length_ && len <= length_ - off;
}

// ---------------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------------
void CompletionQueue::Push(WorkCompletion wc) {
  if (explore::SchedulePolicy* pol = sim_.policy(); pol != nullptr) {
    // kCompletionDelay: hold the queue back for a bounded virtual time —
    // the NIC raised the CQE late. Holding is all-or-nothing: once any
    // entry is held every later completion joins the held tail, so a
    // held entry can never be overtaken by a direct one and per-QP CQE
    // order is preserved by construction.
    const uint64_t delay = pol->CompletionDelayNs();
    if (delay > 0 || !held_.empty()) {
      held_.push_back(wc);
      const sim::Nanos release = sim_.NowNanos() + delay;
      if (release > hold_release_at_ || held_.size() == 1) {
        hold_release_at_ = std::max(hold_release_at_, release);
        const uint64_t epoch = ++hold_epoch_;
        sim_.At(hold_release_at_, [this, epoch] {
          if (epoch == hold_epoch_) ReleaseHeld();
        });
      }
      return;
    }
    // kCompletionSlot: deliver this completion *before* up to `window`
    // trailing entries that belong to other QPs — the legal reorder
    // window (same-QP CQEs must stay FIFO). Slot 0 appends (baseline).
    size_t window = 0;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->qp_num == wc.qp_num) break;
      ++window;
    }
    size_t slot = 0;
    if (window > 0) {
      slot = pol->PickCompletionSlot(static_cast<uint32_t>(window) + 1);
    }
    entries_.insert(entries_.end() - static_cast<ptrdiff_t>(slot), wc);
    NotifyIfReady();
    return;
  }
  entries_.push_back(wc);
  NotifyIfReady();
}

void CompletionQueue::NotifyIfReady() {
  // Wake waiters only when the shallowest outstanding threshold is met
  // (NotifyAll with no waiters would be a no-op anyway, so consulting the
  // registered minima loses nothing).
  if (!waiter_minima_.empty() &&
      entries_.size() >=
          *std::min_element(waiter_minima_.begin(), waiter_minima_.end())) {
    ready_.NotifyAll();
  }
}

void CompletionQueue::ReleaseHeld() {
  while (!held_.empty()) {
    entries_.push_back(held_.front());
    held_.pop_front();
  }
  NotifyIfReady();
}

void CompletionQueue::WaitReady(size_t min_entries, sim::Nanos timeout) {
  // Copy the simulation reference to the stack: during global shutdown this
  // queue may already be destroyed (teardown frees devices before the
  // simulation unwinds blocked threads), so the unwinding path below must
  // not read anything through `this`.
  sim::Simulation& sim = sim_;
  waiter_minima_.push_back(min_entries);
  try {
    ready_.WaitUntilFor(
        [this, min_entries] { return entries_.size() >= min_entries; },
        timeout);
  } catch (...) {
    // ThreadKilled. A mid-run kill (failure injection) leaves the queue
    // alive, so clean up the registration; a shutdown unwind must leave
    // the (possibly freed) queue untouched.
    if (!sim.shutting_down()) std::erase(waiter_minima_, min_entries);
    throw;
  }
  std::erase(waiter_minima_, min_entries);
}

void CompletionQueue::RecordBatch(size_t n) {
  if (n == 0 || node_id_ == kNoNode) return;
  obs::Telemetry* tel = sim_.telemetry();
  if (tel != obs_owner_) {
    obs_owner_ = tel;
    obs_batch_ = tel != nullptr
                     ? &tel->metrics().ForNode(node_id_).GetTimer(
                           "verbs.cq_batch")
                     : nullptr;
  }
  if (obs_batch_ != nullptr) obs_batch_->Record(n);
}

std::vector<WorkCompletion> CompletionQueue::Poll(size_t max_entries) {
  std::vector<WorkCompletion> out;
  check::Checker* ck = sim_.checker();
  while (!entries_.empty() && out.size() < max_entries) {
    out.push_back(entries_.front());
    entries_.pop_front();
    if (ck != nullptr && out.back().check_ref != 0 && node_id_ != kNoNode) {
      ck->OnObserve(out.back().check_ref, node_id_, out.back().recv_side,
                    out.back().ok());
    }
  }
  RecordBatch(out.size());
  return out;
}

std::vector<WorkCompletion> CompletionQueue::WaitPoll(size_t max_entries,
                                                      sim::Nanos timeout) {
  if (entries_.empty()) WaitReady(1, timeout);
  return Poll(max_entries);
}

Result<WorkCompletion> CompletionQueue::WaitOne(sim::Nanos timeout) {
  auto wcs = WaitPoll(1, timeout);
  if (wcs.empty()) {
    return Result<WorkCompletion>(ErrorCode::kTimedOut,
                                  "no completion before deadline");
  }
  return wcs.front();
}

size_t CompletionQueue::PollInto(std::vector<WorkCompletion>& out,
                                 size_t max_entries) {
  size_t n = 0;
  check::Checker* ck = sim_.checker();
  while (!entries_.empty() && n < max_entries) {
    out.push_back(entries_.front());
    entries_.pop_front();
    ++n;
    if (ck != nullptr && out.back().check_ref != 0 && node_id_ != kNoNode) {
      ck->OnObserve(out.back().check_ref, node_id_, out.back().recv_side,
                    out.back().ok());
    }
  }
  RecordBatch(n);
  return n;
}

size_t CompletionQueue::WaitPollInto(std::vector<WorkCompletion>& out,
                                     size_t min_entries, size_t max_entries,
                                     sim::Nanos timeout) {
  if (min_entries == 0) min_entries = 1;
  if (entries_.size() < min_entries) WaitReady(min_entries, timeout);
  return PollInto(out, max_entries);
}

// ---------------------------------------------------------------------------
// ProtectionDomain
// ---------------------------------------------------------------------------
Result<MemoryRegion*> ProtectionDomain::RegisterMemory(std::byte* addr,
                                                       uint64_t length,
                                                       uint32_t access) {
  if (addr == nullptr || length == 0) {
    return Result<MemoryRegion*>(ErrorCode::kInvalidArgument,
                                 "null or empty registration");
  }
  Device& dev = device_;
  const uint32_t lkey = dev.next_key_++;
  const uint32_t rkey = dev.next_key_++;
  auto mr = std::unique_ptr<MemoryRegion>(
      new MemoryRegion(addr, length, lkey, rkey, access));
  MemoryRegion* raw = mr.get();
  dev.mrs_by_lkey_.emplace(lkey, std::move(mr));
  dev.mrs_by_rkey_.emplace(rkey, raw);
  return raw;
}

Status ProtectionDomain::DeregisterMemory(MemoryRegion* mr) {
  Device& dev = device_;
  // Look the region up by pointer identity rather than by reading keys
  // through `mr`: a double-deregister hands in a dangling pointer, which
  // must be rejected without ever being dereferenced. Registered-region
  // counts are small, so the scan is cheap. Visit order cannot leak: at
  // most one entry matches, and nothing else observes the walk.
  // rdet:order-independent (unique match, erase-and-return)
  for (auto it = dev.mrs_by_lkey_.begin(); it != dev.mrs_by_lkey_.end();
       ++it) {
    if (it->second.get() == mr) {
      if (check::Checker* ck = dev.network().sim().checker(); ck != nullptr) {
        ck->OnDeregister(dev.node_id(), it->second->remote_addr(),
                         it->second->remote_addr() + it->second->length());
      }
      dev.mrs_by_rkey_.erase(it->second->rkey());
      dev.mrs_by_lkey_.erase(it);
      return Status::Ok();
    }
  }
  return Status(ErrorCode::kNotFound, "unknown memory region");
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------
Device::Device(Network& network, sim::Node& node)
    : network_(network), node_(node) {}

ProtectionDomain& Device::CreatePd() {
  pds_.push_back(std::make_unique<ProtectionDomain>(*this));
  return *pds_.back();
}

CompletionQueue& Device::CreateCq() {
  cqs_.push_back(
      std::make_unique<CompletionQueue>(network_.sim(), node_.id()));
  return *cqs_.back();
}

QueuePair& Device::CreateQueuePair(QpConfig config, CompletionQueue* send_cq,
                                   CompletionQueue* recv_cq) {
  // Per-device numbering, a pure function of this device's creation
  // count — deterministic under the partitioned scheduler (a global
  // counter would be raced by concurrent partitions and hand out
  // interleaving-dependent numbers). The node-id stride keeps numbers
  // cluster-unique for readable logs; correctness only needs per-device
  // uniqueness (FindQp is per-device).
  const uint32_t num = 100 + node_id() * 100000 + next_qp_index_++;
  auto qp = std::unique_ptr<QueuePair>(
      new QueuePair(*this, num, send_cq, recv_cq, config));
  QueuePair* raw = qp.get();
  qps_.emplace(num, std::move(qp));
  return *raw;
}

MemoryRegion* Device::FindMrByRkey(uint32_t rkey) {
  auto it = mrs_by_rkey_.find(rkey);
  return it == mrs_by_rkey_.end() ? nullptr : it->second;
}

MemoryRegion* Device::FindMrByLkey(uint32_t lkey) {
  auto it = mrs_by_lkey_.find(lkey);
  return it == mrs_by_lkey_.end() ? nullptr : it->second.get();
}

QueuePair* Device::FindQp(uint32_t qp_num) {
  auto it = qps_.find(qp_num);
  return it == qps_.end() ? nullptr : it->second.get();
}

Status Device::ValidateLocal(const Sge& sge, bool will_write) {
  if (sge.length == 0) return Status::Ok();
  MemoryRegion* mr = FindMrByLkey(sge.lkey);
  if (mr == nullptr) {
    return Status(ErrorCode::kPermissionDenied, "unknown lkey");
  }
  if (!mr->Covers(reinterpret_cast<uint64_t>(sge.addr), sge.length)) {
    return Status(ErrorCode::kOutOfRange, "SGE outside memory region");
  }
  if (will_write && (mr->access() & kLocalWrite) == 0) {
    return Status(ErrorCode::kPermissionDenied, "MR not LOCAL_WRITE");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------
QueuePair::QueuePair(Device& device, uint32_t qp_num, CompletionQueue* send_cq,
                     CompletionQueue* recv_cq, QpConfig config)
    : device_(device), qp_num_(qp_num), config_(config) {
  if (send_cq == nullptr) {
    owned_send_cq_ = std::make_unique<CompletionQueue>(device.network().sim(),
                                                       device.node_id());
    send_cq = owned_send_cq_.get();
  }
  if (recv_cq == nullptr) {
    owned_recv_cq_ = std::make_unique<CompletionQueue>(device.network().sim(),
                                                       device.node_id());
    recv_cq = owned_recv_cq_.get();
  }
  send_cq_ = send_cq;
  recv_cq_ = recv_cq;
}

void QueuePair::ConnectTo(uint32_t peer_node, uint32_t peer_qp_num) {
  peer_node_ = peer_node;
  peer_qp_num_ = peer_qp_num;
  state_ = State::kRts;
}

namespace {
// Wire sizes of the non-payload parts of each op (request headers beyond
// the fabric's generic per-message overhead).
constexpr uint64_t kReadRequestBytes = 16;
constexpr uint64_t kAtomicRequestBytes = 32;
constexpr uint64_t kAtomicResponseBytes = 8;
// RC acknowledgement riding back for writes and sends: initiator-side
// completions fire when the responder's ack arrives, one base_latency
// after target execution — the same round trip reads and atomics pay.
// (Besides fidelity, this keeps every cross-node effect at fabric
// latency, which the partitioned scheduler's lookahead requires for
// legacy/partitioned bit-identical timelines; the old model completed
// writes in zero time across nodes, which an epoch-based scheduler
// cannot reproduce exactly.)
constexpr uint64_t kAckBytes = 12;

// Registers one queued WR with the rcheck shadow state: maps the opcode
// onto the checker's transport classes, gathers the non-empty local SGEs,
// and returns the pending-op reference carried by the SQ copy. SEND and
// write-with-imm retire after two completion polls (sender + receiver CQ);
// everything else after one.
uint32_t CheckPost(check::Checker& ck, const SendWr& wr, uint32_t initiator,
                   uint32_t target) {
  check::OpClass cls = check::OpClass::kRemoteAtomic;
  uint64_t remote_lo = 0;
  uint64_t remote_hi = 0;
  uint32_t expected = 1;
  switch (wr.opcode) {
    case Opcode::kSend:
      cls = check::OpClass::kMessage;
      expected = 2;
      break;
    case Opcode::kRdmaWriteWithImm:
      expected = 2;
      [[fallthrough]];
    case Opcode::kRdmaWrite:
      cls = check::OpClass::kRemoteWrite;
      remote_lo = wr.remote_addr;
      remote_hi = wr.remote_addr + wr.total_length();
      break;
    case Opcode::kRdmaRead:
      cls = check::OpClass::kRemoteRead;
      remote_lo = wr.remote_addr;
      remote_hi = wr.remote_addr + wr.total_length();
      break;
    default:  // kCompareSwap / kFetchAdd
      remote_lo = wr.remote_addr;
      remote_hi = wr.remote_addr + 8;
      break;
  }
  std::array<check::LocalRange, SendWr::kMaxSge> sges;
  uint32_t n = 0;
  for (uint32_t i = 0; i < wr.num_sge; ++i) {
    const Sge& s = wr.sge(i);
    if (s.length == 0) continue;
    const auto lo = reinterpret_cast<uint64_t>(s.addr);
    sges[n++] = check::LocalRange{lo, lo + s.length};
  }
  return ck.OnPost(initiator, target, cls, remote_lo, remote_hi, sges.data(),
                   n, expected);
}
}  // namespace

Status QueuePair::PostSend(const SendWr& wr) {
  if (state_ != State::kRts) {
    return Status(ErrorCode::kUnavailable,
                  state_ == State::kError ? "QP in error state"
                                          : "QP not connected");
  }
  // Validate the whole doorbell chain before enqueueing any of it: a
  // rejected post enqueues nothing (all-or-nothing, as ibv_post_send
  // reports via bad_wr).
  uint32_t chain_len = 0;
  uint32_t chain_sges = 0;
  for (const SendWr* w = &wr; w != nullptr; w = w->next) {
    ++chain_len;
    chain_sges += w->num_sge;
    if (w->num_sge == 0 || w->num_sge > SendWr::kMaxSge) {
      return Status(ErrorCode::kInvalidArgument, "bad num_sge");
    }
    switch (w->opcode) {
      case Opcode::kSend:
      case Opcode::kRdmaWrite:
      case Opcode::kRdmaWriteWithImm:
        for (uint32_t i = 0; i < w->num_sge; ++i) {
          RSTORE_RETURN_IF_ERROR(device_.ValidateLocal(w->sge(i), false));
        }
        break;
      case Opcode::kRdmaRead:
        for (uint32_t i = 0; i < w->num_sge; ++i) {
          RSTORE_RETURN_IF_ERROR(device_.ValidateLocal(w->sge(i), true));
        }
        break;
      case Opcode::kCompareSwap:
      case Opcode::kFetchAdd:
        if (w->num_sge != 1 || w->local.length != 8) {
          return Status(ErrorCode::kInvalidArgument,
                        "atomic result buffer must be 8 bytes");
        }
        RSTORE_RETURN_IF_ERROR(device_.ValidateLocal(w->local, true));
        break;
      case Opcode::kRecv:
        return Status(ErrorCode::kInvalidArgument, "RECV posted to send queue");
    }
  }
  if (sq_.size() + chain_len > config_.max_send_wr) {
    return Status(ErrorCode::kOutOfMemory, "send queue full");
  }

  const uint64_t first_seq = sq_next_seq_;
  check::Checker* ck = device_.network().sim().checker();
  for (const SendWr* w = &wr; w != nullptr; w = w->next) {
    ++sq_next_seq_;
    sq_.push_back(SqEntry{*w, false, WcStatus::kSuccess, 0});
    sq_.back().wr.next = nullptr;  // chain pointers don't outlive the post
    if (ck != nullptr) {
      sq_.back().wr.check_ref =
          CheckPost(*ck, sq_.back().wr, device_.node_id(), peer_node_);
    }
  }

  // One initiator post cost (descriptor writes + a single doorbell) for
  // the whole chain, then every WR enters the wire.
  Network& net = device_.network();
  if (obs::Telemetry* tel = net.sim().telemetry(); tel != nullptr) {
    if (tel != obs_owner_) {
      obs_owner_ = tel;
      obs::NodeMetrics& m = tel->metrics().ForNode(device_.node_id());
      obs_doorbells_ = &m.GetCounter("verbs.doorbells");
      obs_wrs_ = &m.GetCounter("verbs.wrs_posted");
      obs_wrs_per_doorbell_ = &m.GetTimer("verbs.wrs_per_doorbell");
      obs_sges_per_doorbell_ = &m.GetTimer("verbs.sges_per_doorbell");
    }
    obs_doorbells_->Inc();
    obs_wrs_->Inc(chain_len);
    obs_wrs_per_doorbell_->Record(chain_len);
    obs_sges_per_doorbell_->Record(chain_sges);
    if (tel->tracing()) {
      // The post span covers the modelled descriptor + doorbell cost.
      const auto now = static_cast<uint64_t>(net.sim().NowNanos());
      std::vector<obs::TraceArg> args;
      args.push_back({"wrs", true, static_cast<double>(chain_len), {}});
      args.push_back({"sges", true, static_cast<double>(chain_sges), {}});
      tel->tracer().RecordSpan(
          device_.node_id(), tel->CurrentTid(), "verbs", "verbs.post", now,
          now + static_cast<uint64_t>(net.cpu_model().verbs_post_ns),
          std::move(args));
    }
  }
  net.sim().After(net.cpu_model().verbs_post_ns, [this, first_seq, chain_len] {
    IssueDoorbell(first_seq, chain_len);
  });
  return Status::Ok();
}

void QueuePair::IssueDoorbell(uint64_t first_seq, uint32_t count) {
  Network& net = device_.network();
  Network* pnet = &net;
  const uint32_t src = device_.node_id();
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t seq = first_seq + i;
    if (seq < sq_base_seq_) continue;  // flushed while the doorbell was queued
    const size_t idx = seq - sq_base_seq_;
    if (idx >= sq_.size()) continue;
    const SendWr& wr = sq_[idx].wr;

    uint64_t request_bytes = 0;
    switch (wr.opcode) {
      case Opcode::kSend:
      case Opcode::kRdmaWrite:
      case Opcode::kRdmaWriteWithImm:
        request_bytes = wr.total_length();
        break;
      case Opcode::kRdmaRead:
        request_bytes = kReadRequestBytes;
        break;
      default:
        request_bytes = kAtomicRequestBytes;
        break;
    }

    WireOp* op = net.AcquireWireOp();
    op->initiator = this;
    op->wr = wr;
    op->seq = seq;
    op->src_node = src;
    op->dst_node = peer_node_;
    op->dst_qp = peer_qp_num_;
    op->stamps = WireStamps{};
    op->stamps.posted = net.sim().NowNanos();
    {
      // Bounce buffer: snapshot the outgoing data at doorbell time — the
      // target then never reads the initiator's memory. Matches HCA
      // semantics: the NIC reads the source buffers when it processes the
      // descriptor. Under the partitioned scheduler this is also what
      // keeps the target off memory another partition may be mutating;
      // it runs in legacy mode too so both schedulers sample racing
      // buffers at the identical virtual instant (scheduler-invariant
      // timelines need identical data, not just identical event times).
      switch (wr.opcode) {
        case Opcode::kSend:
        case Opcode::kRdmaWrite:
        case Opcode::kRdmaWriteWithImm:
          op->payload.reserve(wr.total_length());
          for (uint32_t s = 0; s < wr.num_sge; ++s) {
            const Sge& g = wr.sge(s);
            if (g.length > 0) {
              op->payload.insert(op->payload.end(), g.addr,
                                 g.addr + g.length);
            }
          }
          break;
        default:
          break;  // READ fills the buffer at the target; atomics are scalar
      }
    }

    net.fabric().Send(
        src, peer_node_, request_bytes,
        /*on_delivered=*/
        [pnet, op] {
          // Fabric egress/arrival stamps of the request message, recorded
          // for the wire-trip breakdown (zero on loopback, which bypasses
          // the egress model).
          if (const sim::DeliveryStamps* d = sim::Fabric::CurrentDelivery()) {
            op->stamps.tx_start = d->tx_start;
            op->stamps.first_bit = d->first_bit;
          }
          Device& target = pnet->device(op->dst_node);
          QueuePair* tqp = target.FindQp(op->dst_qp);
          if (tqp == nullptr || tqp->state_ == State::kError) {
            // NAK rides the wire back; because acks are delivered in order
            // per (src, dst) pair, this rejection cannot overtake an
            // earlier op's in-flight ack and flush it prematurely.
            op->initiator->CompleteSqViaAck(*pnet, op->dst_node, op->seq,
                                            WcStatus::kRetryExceeded, 0,
                                            op->stamps);
            pnet->ReleaseWireOp(op);
            return;
          }
          op->initiator->ExecuteAtTarget(*pnet, target, *tqp, op);
        },
        /*on_dropped=*/
        [pnet, op] {
          op->initiator->CompleteSqFromWire(op->seq, WcStatus::kRetryExceeded,
                                            0, op->stamps);
          pnet->ReleaseWireOp(op);
        });
  }
}

// Target-side execution of an arriving request, in scheduler context (the
// target's partition when the scheduler is partitioned). Owns `op`: every
// path releases it exactly once — immediately for ops that finish here,
// or when the response message's wire event fires. Initiator-side
// completions are routed through CompleteSqFromWire, which hops back to
// the initiator's partition when needed.
void QueuePair::ExecuteAtTarget(Network& net, Device& target, QueuePair& tqp,
                                WireOp* op) {
  const SendWr& wr = op->wr;
  const uint64_t seq = op->seq;
  op->stamps.executed = net.sim().NowNanos();
  check::Checker* ck = net.sim().checker();
  switch (wr.opcode) {
    case Opcode::kSend: {
      Network* pnet = &net;
      const uint32_t tnode = target.node_id();
      tqp.AcceptSend(wr, op->src_node,
                     [this, pnet, tnode, seq,
                      stamps = op->stamps](WcStatus st, uint32_t len) {
                       CompleteSqViaAck(*pnet, tnode, seq, st, len, stamps);
                     },
                     /*data_already_placed=*/false, std::move(op->payload));
      net.ReleaseWireOp(op);
      return;
    }

    case Opcode::kRdmaWrite:
    case Opcode::kRdmaWriteWithImm: {
      const uint64_t total = wr.total_length();
      MemoryRegion* mr = target.FindMrByRkey(wr.rkey);
      if (mr == nullptr || !mr->Covers(wr.remote_addr, total) ||
          (mr->access() & kRemoteWrite) == 0) {
        // NAK rides the wire back like the success ack.
        CompleteSqViaAck(net, target.node_id(), seq, WcStatus::kRemAccessErr,
                         0, op->stamps);
        net.ReleaseWireOp(op);
        return;
      }
      if (ck != nullptr && wr.check_ref != 0) ck->OnExecute(wr.check_ref);
      auto* dst = reinterpret_cast<std::byte*>(wr.remote_addr);
      // The data was snapshotted into the bounce buffer at doorbell
      // time; the initiator's memory is never read here.
      if (!op->payload.empty()) {
        std::memcpy(dst, op->payload.data(), op->payload.size());
      }
      if (wr.opcode == Opcode::kRdmaWriteWithImm) {
        Network* pnet = &net;
        const uint32_t tnode = target.node_id();
        tqp.AcceptSend(wr, op->src_node,
                       [this, pnet, tnode, seq,
                        stamps = op->stamps](WcStatus st, uint32_t len) {
                         CompleteSqViaAck(*pnet, tnode, seq, st, len, stamps);
                       },
                       /*data_already_placed=*/true);
      } else {
        CompleteSqViaAck(net, target.node_id(), seq, WcStatus::kSuccess,
                         static_cast<uint32_t>(total), op->stamps);
      }
      net.ReleaseWireOp(op);
      return;
    }

    case Opcode::kRdmaRead: {
      const uint64_t total = wr.total_length();
      MemoryRegion* mr = target.FindMrByRkey(wr.rkey);
      if (mr == nullptr || !mr->Covers(wr.remote_addr, total) ||
          (mr->access() & kRemoteRead) == 0) {
        CompleteSqFromWire(seq, WcStatus::kRemAccessErr, 0, op->stamps);
        net.ReleaseWireOp(op);
        return;
      }
      if (ck != nullptr && wr.check_ref != 0) ck->OnExecute(wr.check_ref);
      if (total > 0) {
        // Snapshot the target range into the bounce buffer now (the NIC
        // reads the MR when it serves the request); the response scatters
        // from the buffer at delivery. Both schedulers therefore sample
        // the target memory at the same virtual instant even when a
        // racing write lands between request service and response
        // delivery.
        op->payload.resize(total);
        std::memcpy(op->payload.data(),
                    reinterpret_cast<const std::byte*>(wr.remote_addr), total);
      }
      // Response: payload travels target -> initiator; bytes are copied
      // into the local SGEs at response delivery (initiator buffer
      // contents are undefined until the completion, per RDMA semantics).
      // The op carries the scatter list until then.
      Network* pnet = &net;
      net.fabric().Send(
          target.node_id(), device_.node_id(), total,
          [pnet, op] {
            const SendWr& w = op->wr;
            // Scatter: the contiguous remote range fills the SGEs in order.
            const auto* src =
                op->payload.empty()
                    ? reinterpret_cast<const std::byte*>(w.remote_addr)
                    : op->payload.data();
            for (uint32_t i = 0; i < w.num_sge; ++i) {
              const Sge& s = w.sge(i);
              if (s.length > 0) {
                std::memcpy(s.addr, src, s.length);
                src += s.length;
              }
            }
            op->initiator->CompleteSqFromWire(
                op->seq, WcStatus::kSuccess,
                static_cast<uint32_t>(w.total_length()), op->stamps);
            pnet->ReleaseWireOp(op);
          },
          [pnet, op] {
            op->initiator->CompleteSqFromWire(op->seq,
                                              WcStatus::kRetryExceeded, 0,
                                              op->stamps);
            pnet->ReleaseWireOp(op);
          });
      return;
    }

    case Opcode::kCompareSwap:
    case Opcode::kFetchAdd: {
      MemoryRegion* mr = target.FindMrByRkey(wr.rkey);
      if (mr == nullptr || !mr->Covers(wr.remote_addr, 8) ||
          (mr->access() & kRemoteAtomic) == 0) {
        CompleteSqFromWire(seq, WcStatus::kRemAccessErr, 0, op->stamps);
        net.ReleaseWireOp(op);
        return;
      }
      if (wr.remote_addr % 8 != 0) {
        CompleteSqFromWire(seq, WcStatus::kRemOpErr, 0, op->stamps);
        net.ReleaseWireOp(op);
        return;
      }
      if (ck != nullptr && wr.check_ref != 0) ck->OnExecute(wr.check_ref);
      auto* cell = reinterpret_cast<uint64_t*>(wr.remote_addr);
      const uint64_t old = *cell;
      if (wr.opcode == Opcode::kCompareSwap) {
        if (old == wr.compare) *cell = wr.swap_or_add;
      } else {
        *cell = old + wr.swap_or_add;
      }
      // The op stays in flight until the response delivers so its wire
      // stamps ride back with the completion (pool membership never
      // affects the timeline — only the release site moved). The delivery
      // callback runs on the initiator's partition (it is the message
      // destination), so writing the result buffer there is
      // partition-local.
      Network* pnet = &net;
      net.fabric().Send(
          target.node_id(), device_.node_id(), kAtomicResponseBytes,
          [pnet, op, old] {
            std::memcpy(op->wr.local.addr, &old, 8);
            op->initiator->CompleteSq(op->seq, WcStatus::kSuccess, 8,
                                      op->stamps);
            pnet->ReleaseWireOp(op);
          },
          [pnet, op] {
            op->initiator->CompleteSqFromWire(op->seq,
                                              WcStatus::kRetryExceeded, 0,
                                              op->stamps);
            pnet->ReleaseWireOp(op);
          });
      return;
    }

    case Opcode::kRecv:
      net.ReleaseWireOp(op);
      break;  // unreachable: rejected at post time
  }
}

// Target side of SEND / WRITE_WITH_IMM: consume a posted RECV or park in
// the RNR buffer. `on_executed` reports the initiator completion.
void QueuePair::AcceptSend(const SendWr& wr, uint32_t src_node,
                           CompletionFn on_executed, bool data_already_placed,
                           std::vector<std::byte> payload) {
  if (rq_.empty()) {
    if (rnr_buffer_.size() >= kMaxRnrBuffered) {
      on_executed(WcStatus::kRnrRetryExceeded, 0);
      EnterError();
      return;
    }
    rnr_buffer_.push_back(RnrEntry{wr, src_node, std::move(on_executed),
                                   data_already_placed, std::move(payload)});
    rnr_buffer_.back().wr.next = nullptr;
    return;
  }
  MatchRecv(wr, src_node, on_executed, data_already_placed, payload);
}

void QueuePair::MatchRecv(const SendWr& wr, uint32_t src_node,
                          CompletionFn& done, bool data_already_placed,
                          const std::vector<std::byte>& payload) {
  RecvWr recv = rq_.front();
  rq_.pop_front();
  const auto total = static_cast<uint32_t>(wr.total_length());
  if (!data_already_placed) {
    if (recv.local.length < total) {
      // Receive buffer too small: local length error on the receiver,
      // remote-op error for the sender.
      recv_cq_->Push(WorkCompletion{recv.wr_id, WcStatus::kLocalProtErr,
                                    Opcode::kRecv, 0, std::nullopt, qp_num_,
                                    src_node, wr.check_ref,
                                    /*recv_side=*/true});
      done(WcStatus::kRemOpErr, 0);
      EnterError();
      return;
    }
    std::byte* dst = recv.local.addr;
    // The data arrived in the doorbell-time bounce buffer; the sender's
    // SGE memory is never read here (see IssueDoorbell).
    if (!payload.empty()) {
      std::memcpy(dst, payload.data(), payload.size());
    }
  }
  recv_cq_->Push(WorkCompletion{
      recv.wr_id, WcStatus::kSuccess,
      data_already_placed ? Opcode::kRdmaWriteWithImm : Opcode::kRecv,
      total, wr.imm, qp_num_, src_node, wr.check_ref, /*recv_side=*/true});
  done(WcStatus::kSuccess, total);
}

Status QueuePair::PostRecv(const RecvWr& wr) {
  if (state_ == State::kError) {
    return Status(ErrorCode::kUnavailable, "QP in error state");
  }
  if (rq_.size() >= config_.max_recv_wr) {
    return Status(ErrorCode::kOutOfMemory, "receive queue full");
  }
  RSTORE_RETURN_IF_ERROR(device_.ValidateLocal(wr.local, true));
  rq_.push_back(wr);
  // Drain any sender that arrived before this buffer (RNR retry succeeds).
  while (!rq_.empty() && !rnr_buffer_.empty()) {
    RnrEntry entry = std::move(rnr_buffer_.front());
    rnr_buffer_.pop_front();
    MatchRecv(entry.wr, entry.src_node, entry.on_executed,
              entry.data_already_placed, entry.payload);
  }
  return Status::Ok();
}

void QueuePair::CompleteSqFromWire(uint64_t seq, WcStatus status,
                                   uint32_t byte_len, WireStamps stamps) {
  sim::Simulation& sim = device_.network().sim();
  if (sim.partitioned() && !sim.InContextOfNode(device_.node_id())) {
    // Target-side code finishing an op: the send queue and send CQ belong
    // to the initiator's partition, so hop there. The event carries the
    // current virtual instant — completion time is unchanged; arrivals
    // merge deterministically at the epoch barrier.
    sim.PostToNode(device_.node_id(), sim.NowNanos(),
                   [this, seq, status, byte_len, stamps] {
                     CompleteSq(seq, status, byte_len, stamps);
                   });
    return;
  }
  CompleteSq(seq, status, byte_len, stamps);
}

// Completion via RC ack: ride a small message from the target back to the
// initiator and complete when it is delivered, exactly as read responses
// and atomic responses already do. The delivery callback runs on the
// initiator's partition (it is the message destination), so CompleteSq is
// partition-local there. A dropped ack surfaces as a retry-exceeded error
// at the drop instant.
void QueuePair::CompleteSqViaAck(Network& net, uint32_t target_node,
                                 uint64_t seq, WcStatus status,
                                 uint32_t byte_len, WireStamps stamps) {
  net.fabric().Send(
      target_node, device_.node_id(), kAckBytes,
      [this, seq, status, byte_len, stamps] {
        CompleteSq(seq, status, byte_len, stamps);
      },
      [this, seq] { CompleteSqFromWire(seq, WcStatus::kRetryExceeded, 0); });
}

void QueuePair::CompleteSq(uint64_t seq, WcStatus status, uint32_t byte_len,
                           WireStamps stamps) {
  if (seq < sq_base_seq_) return;  // already flushed
  const size_t idx = seq - sq_base_seq_;
  if (idx >= sq_.size()) return;
  SqEntry& entry = sq_[idx];
  entry.done = true;
  entry.status = status;
  entry.byte_len = byte_len;
  entry.stamps = stamps;

  // The pushed stamp is the instant the CQE actually enters the CQ — for
  // entries held behind an unfinished predecessor (in-order drain) that is
  // the predecessor's completion instant, not this ack's arrival.
  const sim::Nanos now = device_.network().sim().NowNanos();
  check::Checker* ck = device_.network().sim().checker();
  if (status != WcStatus::kSuccess) {
    // An error moves the QP to the error state at once: every queued WR
    // completes in post order — finished ones with their recorded
    // status, unfinished ones flushed (their wire callbacks, if any,
    // arrive later with stale sequence numbers and are ignored).
    while (!sq_.empty()) {
      SqEntry e = std::move(sq_.front());
      sq_.pop_front();
      ++sq_base_seq_;
      const WcStatus st = e.done ? e.status : WcStatus::kWrFlushErr;
      if (ck != nullptr && e.wr.check_ref != 0) {
        ck->OnSettle(e.wr.check_ref, st == WcStatus::kSuccess);
      }
      if (st != WcStatus::kSuccess || e.wr.signaled) {
        WorkCompletion wc{e.wr.wr_id, st, e.wr.opcode, e.byte_len,
                          std::nullopt, qp_num_, peer_node_, e.wr.check_ref};
        wc.stamps = e.stamps;
        wc.stamps.pushed = now;
        send_cq_->Push(wc);
      }
    }
    EnterError();
    return;
  }

  // Emit the done prefix so completions are in post order.
  while (!sq_.empty() && sq_.front().done) {
    SqEntry e = std::move(sq_.front());
    sq_.pop_front();
    ++sq_base_seq_;
    if (ck != nullptr && e.wr.check_ref != 0) {
      ck->OnSettle(e.wr.check_ref, true);
    }
    if (e.wr.signaled) {
      WorkCompletion wc{e.wr.wr_id, e.status, e.wr.opcode, e.byte_len,
                        std::nullopt, qp_num_, peer_node_, e.wr.check_ref};
      wc.stamps = e.stamps;
      wc.stamps.pushed = now;
      send_cq_->Push(wc);
    }
  }
}

void QueuePair::FlushAll(WcStatus status) {
  check::Checker* ck = device_.network().sim().checker();
  while (!sq_.empty()) {
    SqEntry e = std::move(sq_.front());
    sq_.pop_front();
    ++sq_base_seq_;
    if (ck != nullptr && e.wr.check_ref != 0) {
      ck->OnSettle(e.wr.check_ref, false);
    }
    send_cq_->Push(WorkCompletion{e.wr.wr_id, status, e.wr.opcode, 0,
                                  std::nullopt, qp_num_, peer_node_,
                                  e.wr.check_ref});
  }
  while (!rq_.empty()) {
    RecvWr r = rq_.front();
    rq_.pop_front();
    recv_cq_->Push(WorkCompletion{r.wr_id, status, Opcode::kRecv, 0,
                                  std::nullopt, qp_num_, peer_node_});
  }
}

void QueuePair::EnterError() {
  if (state_ == State::kError) return;
  state_ = State::kError;
  FlushAll(WcStatus::kWrFlushErr);
}

// ---------------------------------------------------------------------------
// Network & connection management
// ---------------------------------------------------------------------------
Network::Network(sim::Simulation& sim, sim::NicConfig nic,
                 sim::CpuCostModel cpu)
    : sim_(sim), fabric_(sim, nic), cpu_(cpu) {
  op_pools_.emplace_back();
  if (sim_.partitioned()) {
    sim_.AtPartitionedRunStart([this] { PrepareForPartitionedRun(); });
  }
}

void Network::PrepareForPartitionedRun() {
  while (op_pools_.size() < sim_.node_count() + 1) op_pools_.emplace_back();
}

Device& Network::AddDevice(sim::Node& node) {
  const uint32_t id = node.id();
  if (id >= devices_.size()) devices_.resize(id + 1);
  if (!devices_[id]) {
    devices_[id] = std::unique_ptr<Device>(new Device(*this, node));
  }
  return *devices_[id];
}

Device& Network::device(uint32_t node_id) {
  assert(node_id < devices_.size() && devices_[node_id] != nullptr &&
         "no device on node");
  return *devices_[node_id];
}

WireOp* Network::AcquireWireOp() {
  OpPool& pool = op_pools_[sim_.CurrentPartitionIndex()];
  if (pool.free.empty()) {
    pool.arena.emplace_back();
    return &pool.arena.back();
  }
  WireOp* op = pool.free.back();
  pool.free.pop_back();
  return op;
}

void Network::ReleaseWireOp(WireOp* op) {
  op->payload.clear();  // keep capacity for reuse
  op_pools_[sim_.CurrentPartitionIndex()].free.push_back(op);
}

Network::Listener::Listener(Network& net, Device& dev, uint32_t service_id,
                            QpConfig config, CompletionQueue* send_cq,
                            CompletionQueue* recv_cq)
    : net_(net), dev_(dev), service_id_(service_id), config_(config),
      send_cq_(send_cq), recv_cq_(recv_cq), ready_(net.sim()) {}

Result<QueuePair*> Network::Listener::Accept(sim::Nanos timeout) {
  if (!ready_.WaitUntilFor([this] { return !pending_.empty(); }, timeout)) {
    return Result<QueuePair*>(ErrorCode::kTimedOut, "no incoming connection");
  }
  QueuePair* qp = pending_.front();
  pending_.pop_front();
  return qp;
}

Network::Listener& Network::Listen(Device& device, uint32_t service_id,
                                   QpConfig config, CompletionQueue* send_cq,
                                   CompletionQueue* recv_cq) {
  const uint64_t key =
      (static_cast<uint64_t>(device.node_id()) << 32) | service_id;
  std::lock_guard<std::mutex> lock(listeners_mu_);
  auto it = listeners_.find(key);
  if (it == listeners_.end()) {
    it = listeners_
             .emplace(key, std::unique_ptr<Listener>(new Listener(
                               *this, device, service_id, config, send_cq,
                               recv_cq)))
             .first;
  }
  return *it->second;
}

Result<QueuePair*> Network::Connect(Device& device, uint32_t remote_node,
                                    uint32_t service_id, QpConfig config,
                                    CompletionQueue* send_cq,
                                    CompletionQueue* recv_cq) {
  // Client-side QP programming cost.
  sim::Sleep(qp_setup_cost());
  QueuePair& client_qp = device.CreateQueuePair(config, send_cq, recv_cq);

  struct ConnectState {
    explicit ConnectState(sim::Simulation& s) : cv(s) {}
    sim::CondVar cv;
    bool done = false;
    bool accepted = false;
    uint32_t server_qp_num = 0;
  };
  auto state = std::make_shared<ConnectState>(sim_);

  const uint64_t key = (static_cast<uint64_t>(remote_node) << 32) | service_id;
  const uint32_t client_node = device.node_id();
  const uint32_t client_qp_num = client_qp.qp_num();
  constexpr uint64_t kCmMessageBytes = 64;

  fabric_.Send(
      client_node, remote_node, kCmMessageBytes,
      /*on_delivered=*/
      [this, key, client_node, client_qp_num, remote_node, state] {
        Listener* found = nullptr;
        {
          // This CM handler runs on the server's partition; Listen may run
          // concurrently on other partitions.
          std::lock_guard<std::mutex> lock(listeners_mu_);
          auto it = listeners_.find(key);
          if (it != listeners_.end()) found = it->second.get();
        }
        if (found == nullptr) {
          // Reject travels back as a CM message.
          fabric_.Send(remote_node, client_node, kCmMessageBytes, [state] {
            state->done = true;
            state->cv.NotifyAll();
          });
          return;
        }
        Listener& listener = *found;
        // Server-side QP programming, then the accept reply.
        sim_.After(qp_setup_cost(), [this, &listener, client_node,
                                     client_qp_num, state] {
          QueuePair& server_qp = listener.dev_.CreateQueuePair(
              listener.config_, listener.send_cq_, listener.recv_cq_);
          server_qp.ConnectTo(client_node, client_qp_num);
          listener.pending_.push_back(&server_qp);
          listener.ready_.NotifyAll();
          const uint32_t server_qp_num = server_qp.qp_num();
          fabric_.Send(listener.dev_.node_id(), client_node, kCmMessageBytes,
                       [state, server_qp_num] {
                         state->done = true;
                         state->accepted = true;
                         state->server_qp_num = server_qp_num;
                         state->cv.NotifyAll();
                       });
        });
      },
      /*on_dropped=*/
      [state] {
        state->done = true;
        state->cv.NotifyAll();
      });

  state->cv.WaitUntil([&] { return state->done; });
  if (!state->accepted) {
    return Result<QueuePair*>(ErrorCode::kUnavailable,
                              "connection rejected or peer unreachable");
  }
  client_qp.ConnectTo(remote_node, state->server_qp_num);
  return &client_qp;
}

}  // namespace rstore::verbs
