// rverbs: an ibverbs-like RDMA API over the simulated fabric.
//
// The RStore layers above are written against this API exactly as they
// would be against OFED verbs: applications register memory regions (MRs)
// with a protection domain, exchange (remote_addr, rkey) pairs out of
// band, connect reliable-connection queue pairs (QPs), and then post
// work requests — two-sided SEND/RECV and one-sided RDMA READ / WRITE /
// WRITE_WITH_IMM plus 8-byte atomics — whose completions surface on
// completion queues (CQs).
//
// Modelled semantics (the subset RC hardware guarantees that matters
// here):
//   * Work requests on one QP execute and complete in post order.
//   * One-sided operations never involve the target CPU; the simulator
//     executes them in scheduler context against the target MR, charging
//     only fabric time (this is precisely the paper's "direct access").
//   * rkey, bounds and access-flag violations produce an error completion
//     on the initiator and move the QP to the error state; outstanding
//     and subsequent work flushes with kWrFlushErr, as on real HCAs.
//   * Lost messages (partition, dead peer) surface as kRetryExceeded
//     after the fabric's drop-detection delay (RC retry budget).
//   * A SEND with no posted RECV waits in a bounded RNR buffer.
//
// Cost model: each posted work request pays CpuCostModel::verbs_post_ns
// of initiator-side latency before entering the wire model (descriptor +
// doorbell). Completion-queue polling is free (busy polling is the
// norm for RDMA applications and overlaps with progress).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/small_fn.h"
#include "common/status.h"
#include "sim/cost_model.h"
#include "sim/fabric.h"
#include "sim/simulation.h"

namespace rstore::obs {
class Counter;
class Timer;
class Telemetry;
}  // namespace rstore::obs

namespace rstore::verbs {

class Device;
class ProtectionDomain;
class CompletionQueue;
class QueuePair;
class Network;
struct WireOp;

// Access permissions for memory regions, OR-able.
enum Access : uint32_t {
  kLocalWrite = 1u << 0,
  kRemoteRead = 1u << 1,
  kRemoteWrite = 1u << 2,
  kRemoteAtomic = 1u << 3,
};

enum class Opcode : uint8_t {
  kSend,
  kRecv,
  kRdmaWrite,
  kRdmaWriteWithImm,
  kRdmaRead,
  kCompareSwap,
  kFetchAdd,
};

enum class WcStatus : uint8_t {
  kSuccess,
  kLocalProtErr,    // bad lkey / local bounds
  kRemAccessErr,    // bad rkey, remote bounds, or missing access flag
  kRemOpErr,        // remote peer could not execute (e.g. misaligned atomic)
  kRetryExceeded,   // transport gave up (partition / dead peer)
  kRnrRetryExceeded,  // receiver never posted a buffer
  kWrFlushErr,      // QP entered error state before this WR executed
};

std::string_view ToString(WcStatus status) noexcept;
std::string_view ToString(Opcode op) noexcept;

// Callback reporting the initiator-side outcome of a target-side step
// (status, bytes transferred). Small-buffer: the ack path captures
// {queue pair, sequence number, wire stamps}.
using CompletionFn = common::SmallFn<void(WcStatus, uint32_t), 72>;

// Virtual-time stamps of one work request's trip through the modelled
// NIC and fabric, assigned as the op crosses each boundary and carried on
// every internal copy (SqEntry, WireOp, the RC ack) back onto the
// WorkCompletion. Pure observation: stamps are written with values the
// scheduler already computed, never read to make a scheduling decision,
// so carrying them cannot move virtual time (the rtrace zero-probe-effect
// contract, see src/obs/rtrace.h). All zero when a stage was never
// reached (loopback sends bypass the egress/wire model, recv-side
// completions have no initiator-side doorbell).
struct WireStamps {
  sim::Nanos posted = 0;     // doorbell rang; request handed to the fabric
  sim::Nanos tx_start = 0;   // egress serialization began at the initiator
  sim::Nanos first_bit = 0;  // first bit reached the target NIC
  sim::Nanos executed = 0;   // target-side execution instant (DRAM touched)
  sim::Nanos pushed = 0;     // CQE entered the initiator's completion queue
};

// A completed work request.
struct WorkCompletion {
  uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  Opcode opcode = Opcode::kSend;
  uint32_t byte_len = 0;            // bytes transferred (recv/read)
  std::optional<uint32_t> imm;      // present for recv of WRITE_WITH_IMM/SEND w/ imm
  uint32_t qp_num = 0;
  uint32_t src_node = 0;            // peer node id (recv side convenience)
  uint32_t check_ref = 0;           // rcheck pending-op handle (0 = untracked)
  bool recv_side = false;           // completion surfaced on the receiver CQ
  WireStamps stamps{};              // wire trip breakdown (initiator side)

  [[nodiscard]] bool ok() const noexcept {
    return status == WcStatus::kSuccess;
  }
};

// Registered memory region.
class MemoryRegion {
 public:
  [[nodiscard]] std::byte* addr() const noexcept { return addr_; }
  [[nodiscard]] uint64_t length() const noexcept { return length_; }
  [[nodiscard]] uint32_t lkey() const noexcept { return lkey_; }
  [[nodiscard]] uint32_t rkey() const noexcept { return rkey_; }
  [[nodiscard]] uint32_t access() const noexcept { return access_; }
  // Address as it travels on the wire (the simulated "remote VA").
  [[nodiscard]] uint64_t remote_addr() const noexcept {
    return reinterpret_cast<uint64_t>(addr_);
  }
  [[nodiscard]] bool Covers(uint64_t addr, uint64_t len) const noexcept;

 private:
  friend class ProtectionDomain;
  MemoryRegion(std::byte* addr, uint64_t length, uint32_t lkey, uint32_t rkey,
               uint32_t access)
      : addr_(addr), length_(length), lkey_(lkey), rkey_(rkey),
        access_(access) {}

  std::byte* addr_;
  uint64_t length_;
  uint32_t lkey_;
  uint32_t rkey_;
  uint32_t access_;
};

// Local scatter-gather element.
struct Sge {
  std::byte* addr = nullptr;
  uint32_t length = 0;
  uint32_t lkey = 0;
};

// Send-queue work request.
//
// Gather/scatter: a WR carries up to kMaxSge local elements — `local`
// is SGE 0, `sge_tail` holds the rest (appended after the original
// fields so existing designated initializers keep compiling). For WRITE
// the SGEs gather into one contiguous remote range; for READ the remote
// range scatters across them. Atomics and zero-length ops use SGE 0
// only.
//
// Doorbell batching: `next` links WRs into a chain; PostSend posts the
// whole chain under a single doorbell (one initiator post cost), as
// ibv_post_send does. The chain is consumed synchronously — the pointed
// -to WRs need only outlive the PostSend call.
struct SendWr {
  static constexpr uint32_t kMaxSge = 4;

  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  Sge local;                 // source (send/write) or destination (read)
  uint64_t remote_addr = 0;  // one-sided ops & atomics
  uint32_t rkey = 0;
  std::optional<uint32_t> imm = std::nullopt;  // SEND and WRITE_WITH_IMM
  uint64_t compare = 0;      // kCompareSwap
  uint64_t swap_or_add = 0;  // kCompareSwap / kFetchAdd
  bool signaled = true;      // errors always complete, success only if set
  uint32_t num_sge = 1;      // SGEs in use: `local` + (num_sge-1) of tail
  std::array<Sge, kMaxSge - 1> sge_tail{};
  const SendWr* next = nullptr;  // doorbell chain; not owned
  // rcheck pending-op handle. Assigned on the send-queue copy at post time
  // (never on the caller's struct) and rides every internal copy of the WR
  // — SqEntry, WireOp, RNR parking — so target-side execution and both
  // completion queues can report against the same shadow operation.
  uint32_t check_ref = 0;

  [[nodiscard]] const Sge& sge(uint32_t i) const noexcept {
    return i == 0 ? local : sge_tail[i - 1];
  }
  [[nodiscard]] Sge& sge(uint32_t i) noexcept {
    return i == 0 ? local : sge_tail[i - 1];
  }
  [[nodiscard]] Sge& last_sge() noexcept { return sge(num_sge - 1); }
  [[nodiscard]] uint64_t total_length() const noexcept {
    uint64_t n = 0;
    for (uint32_t i = 0; i < num_sge; ++i) n += sge(i).length;
    return n;
  }
  // Appends a gather/scatter element; false when the WR is full.
  bool AppendSge(const Sge& s) noexcept {
    if (num_sge >= kMaxSge) return false;
    sge_tail[num_sge - 1] = s;
    ++num_sge;
    return true;
  }
};

// Receive-queue work request.
struct RecvWr {
  uint64_t wr_id = 0;
  Sge local;
};

// Internal: one operation in flight on the wire. Pooled by the Network so
// fabric callbacks capture only {network, op} — two pointers, well within
// the fabric's inline callback storage. Acquired at doorbell time,
// released exactly once when the op's last wire event fires.
struct WireOp {
  QueuePair* initiator = nullptr;
  SendWr wr;  // chain pointer cleared; SGE array owned by value
  uint64_t seq = 0;
  uint32_t src_node = 0;
  uint32_t dst_node = 0;
  uint32_t dst_qp = 0;
  // Partitioned mode: the op's data travels in this bounce buffer instead
  // of being read through raw SGE/MR pointers at the far end, so no
  // partition ever touches another partition's memory. Gathered from the
  // source SGEs at doorbell time (SEND/WRITE), or filled from the target
  // MR at execute time (READ response). Capacity persists across pool
  // reuse. Legacy mode leaves it empty and copies directly, as before.
  std::vector<std::byte> payload;
  // Wire trip stamps accumulated as the op crosses each boundary; copied
  // onto the initiator-side WorkCompletion (via the ack / response path).
  WireStamps stamps{};
};

// Completion queue. Unbounded (real CQ overflow is a provisioning bug the
// simulation treats as out of scope).
class CompletionQueue {
 public:
  // `node_id` attributes telemetry (CQ batch-size distribution) to the
  // owning node; kNoNode skips attribution.
  static constexpr uint32_t kNoNode = ~0u;
  explicit CompletionQueue(sim::Simulation& sim, uint32_t node_id = kNoNode)
      : sim_(sim), node_id_(node_id), ready_(sim) {}
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // Non-blocking: moves up to max_entries completions out.
  std::vector<WorkCompletion> Poll(size_t max_entries = 16);
  // Blocking: waits until at least one completion or timeout; empty vector
  // on timeout. Must be called from a simulated thread.
  std::vector<WorkCompletion> WaitPoll(size_t max_entries = 16,
                                       sim::Nanos timeout = sim::kNever);
  // Convenience: wait for exactly one completion.
  Result<WorkCompletion> WaitOne(sim::Nanos timeout = sim::kNever);

  // Allocation-free variants: append up to max_entries completions into
  // `out` (which the caller clears and reuses across polls), returning the
  // number appended. One wake drains everything ready — the batch analogue
  // of ibv_poll_cq into a caller-owned WC array.
  //
  // `min_entries` is the wake threshold (interrupt moderation): the wait
  // does not wake until that many completions are ready, so a caller that
  // knows it needs N more completions pays one thread wake instead of N.
  // Virtual-time semantics are unchanged — the Nth completion arrives at
  // the same instant whether the queue was drained eagerly or not — and a
  // timeout still fires even if the threshold is never reached. With
  // concurrent waiters the threshold degrades conservatively (extra
  // wakes, never missed ones).
  size_t PollInto(std::vector<WorkCompletion>& out,
                  size_t max_entries = SIZE_MAX);
  size_t WaitPollInto(std::vector<WorkCompletion>& out,
                      size_t min_entries = 1, size_t max_entries = SIZE_MAX,
                      sim::Nanos timeout = sim::kNever);

  [[nodiscard]] size_t pending() const noexcept { return entries_.size(); }

 private:
  friend class QueuePair;
  friend class Device;
  void Push(WorkCompletion wc);
  // Wakes waiters whose registered threshold the queue now meets.
  void NotifyIfReady();
  // Exploration: flushes held-back completions into the visible queue.
  void ReleaseHeld();
  // Registers the caller's threshold, blocks until reached or timeout.
  void WaitReady(size_t min_entries, sim::Nanos timeout);
  void RecordBatch(size_t n);

  sim::Simulation& sim_;
  const uint32_t node_id_;
  std::deque<WorkCompletion> entries_;
  // Exploration state (see Push): completions an attached
  // explore::SchedulePolicy is holding back (kCompletionDelay), in NIC
  // push order. While anything is held, *every* new completion joins the
  // held tail — all-or-nothing holding is what keeps per-QP CQE order
  // intact, exactly like a real CQ under interrupt moderation. The
  // release event re-checks hold_epoch_ so extending the hold supersedes
  // earlier release events.
  std::deque<WorkCompletion> held_;
  sim::Nanos hold_release_at_ = 0;
  uint64_t hold_epoch_ = 0;
  // Lazily resolved telemetry instrument (see fabric.h for the pattern).
  obs::Telemetry* obs_owner_ = nullptr;
  obs::Timer* obs_batch_ = nullptr;
  // min_entries of every blocked waiter; Push notifies only when the
  // smallest registered threshold is met.
  std::vector<size_t> waiter_minima_;
  sim::CondVar ready_;
};

// Protection domain: scopes MRs and QPs, hands out keys.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(Device& device) : device_(device) {}
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  // Registers [addr, addr+length) with the given access flags. The caller
  // keeps ownership of the memory and must keep it alive until
  // deregistration. Returns a stable, device-owned handle.
  Result<MemoryRegion*> RegisterMemory(std::byte* addr, uint64_t length,
                                       uint32_t access);
  Status DeregisterMemory(MemoryRegion* mr);

  [[nodiscard]] Device& device() noexcept { return device_; }

 private:
  Device& device_;
};

struct QpConfig {
  uint32_t max_send_wr = 512;   // outstanding send-queue WRs
  uint32_t max_recv_wr = 4096;  // posted receive buffers
};

// Reliable-connection queue pair. Create via Device::CreateQueuePair, then
// connect both ends via the Network/Connector helpers (which mirror
// rdma_cm). After Connect the QP is in RTS and accepts posts.
class QueuePair {
 public:
  enum class State : uint8_t { kInit, kRts, kError };

  Status PostSend(const SendWr& wr);
  Status PostRecv(const RecvWr& wr);

  // Tears the QP down (ibv_destroy_qp analogue): moves it to the error
  // state and flushes all posted work. Arriving wire traffic is NAKed to
  // the sender from then on. Call before freeing buffers that are still
  // posted to this QP.
  void Close() { EnterError(); }

  [[nodiscard]] uint32_t qp_num() const noexcept { return qp_num_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] uint32_t peer_node() const noexcept { return peer_node_; }
  [[nodiscard]] uint32_t peer_qp_num() const noexcept { return peer_qp_num_; }
  [[nodiscard]] CompletionQueue& send_cq() noexcept { return *send_cq_; }
  [[nodiscard]] CompletionQueue& recv_cq() noexcept { return *recv_cq_; }
  [[nodiscard]] Device& device() noexcept { return device_; }

  // Number of send WRs posted but not yet completed.
  [[nodiscard]] size_t outstanding() const noexcept { return sq_.size(); }
  // Send-queue slots still free: a PostSend chain longer than this fails
  // with kOutOfMemory. Multiplexers stage and re-flush against it instead
  // of tripping the error (see load::SessionMux).
  [[nodiscard]] size_t send_headroom() const noexcept {
    return sq_.size() >= config_.max_send_wr
               ? 0
               : config_.max_send_wr - sq_.size();
  }

 private:
  friend class Device;
  friend class Network;

  struct SqEntry {
    SendWr wr;
    bool done = false;
    WcStatus status = WcStatus::kSuccess;
    uint32_t byte_len = 0;
    WireStamps stamps{};
  };

  struct RnrEntry {
    SendWr wr;
    uint32_t src_node;
    CompletionFn on_executed;
    bool data_already_placed;
    // Partitioned mode: the parked SEND's data (the initiator's buffers
    // may be reused the instant its completion fires, so the RNR buffer
    // must own a copy). Empty in legacy mode.
    std::vector<std::byte> payload;
  };

  QueuePair(Device& device, uint32_t qp_num, CompletionQueue* send_cq,
            CompletionQueue* recv_cq, QpConfig config);

  void ConnectTo(uint32_t peer_node, uint32_t peer_qp_num);
  // Rings the doorbell for sq entries [first_seq, first_seq+count):
  // issues one fabric message per WR (scheduler context, after the post
  // cost). Entries flushed in the interim are skipped.
  void IssueDoorbell(uint64_t first_seq, uint32_t count);
  // Target-side execution of an arriving op (scheduler context). `this`
  // is the *initiator* QP; `tqp` the target QP (only used for two-sided).
  // Takes ownership of `op` (released when its last wire event fires).
  void ExecuteAtTarget(Network& net, Device& target, QueuePair& tqp,
                       WireOp* op);
  // Target side of SEND / WRITE_WITH_IMM: consume a RECV or park in RNR.
  // `payload` carries the data in partitioned mode (bounce buffer, moved
  // into the RNR entry if parked); empty in legacy mode.
  void AcceptSend(const SendWr& wr, uint32_t src_node,
                  CompletionFn on_executed, bool data_already_placed,
                  std::vector<std::byte> payload = {});
  void MatchRecv(const SendWr& wr, uint32_t src_node, CompletionFn& done,
                 bool data_already_placed,
                 const std::vector<std::byte>& payload);
  // Initiator-side completion of sq entry `seq` (scheduler context).
  // `stamps` is the op's wire trip record (pushed is stamped here, at the
  // instant the CQE actually enters the CQ — which for entries held by
  // in-order draining is later than the ack arrival).
  void CompleteSq(uint64_t seq, WcStatus status, uint32_t byte_len,
                  WireStamps stamps = {});
  // Same, callable from any partition: routes to the initiator's
  // partition when the caller runs elsewhere (target-side execution,
  // response drops), at the current virtual instant — the modelled
  // completion time is unchanged, only the mutation site moves. Legacy
  // mode calls CompleteSq directly, byte-identical to before.
  void CompleteSqFromWire(uint64_t seq, WcStatus status, uint32_t byte_len,
                          WireStamps stamps = {});
  // Initiator-side completion delivered by an RC ack message from the
  // target: write/send completions ride the fabric back like read and
  // atomic responses, so no cross-node completion is zero-latency.
  void CompleteSqViaAck(Network& net, uint32_t target_node, uint64_t seq,
                        WcStatus status, uint32_t byte_len,
                        WireStamps stamps = {});
  void FlushAll(WcStatus status);
  void EnterError();

  Device& device_;
  const uint32_t qp_num_;
  QpConfig config_;
  State state_ = State::kInit;
  uint32_t peer_node_ = 0;
  uint32_t peer_qp_num_ = 0;

  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  std::unique_ptr<CompletionQueue> owned_send_cq_;
  std::unique_ptr<CompletionQueue> owned_recv_cq_;

  // Send queue in post order; completions drain the done prefix so CQEs
  // are in order even when the wire reorders logically (e.g. read vs
  // write round trips).
  std::deque<SqEntry> sq_;
  uint64_t sq_base_seq_ = 0;  // seq of sq_.front()
  uint64_t sq_next_seq_ = 0;

  std::deque<RecvWr> rq_;
  // SENDs that arrived before a RECV was posted (RNR buffer).
  std::deque<RnrEntry> rnr_buffer_;
  static constexpr size_t kMaxRnrBuffered = 1024;

  // Lazily resolved telemetry instruments for the post path.
  obs::Telemetry* obs_owner_ = nullptr;
  obs::Counter* obs_doorbells_ = nullptr;
  obs::Counter* obs_wrs_ = nullptr;
  obs::Timer* obs_wrs_per_doorbell_ = nullptr;
  obs::Timer* obs_sges_per_doorbell_ = nullptr;
};

// The per-node HCA. Owns PDs, MRs, CQs and QPs; routes arriving one-sided
// operations against the MR table.
class Device {
 public:
  [[nodiscard]] uint32_t node_id() const noexcept { return node_.id(); }
  [[nodiscard]] sim::Node& node() noexcept { return node_; }
  [[nodiscard]] Network& network() noexcept { return network_; }

  ProtectionDomain& CreatePd();
  CompletionQueue& CreateCq();
  // QP with private CQs (send_cq/recv_cq null) or caller-shared CQs.
  QueuePair& CreateQueuePair(QpConfig config = {},
                             CompletionQueue* send_cq = nullptr,
                             CompletionQueue* recv_cq = nullptr);

  // MR lookup used by the simulated wire (target side).
  [[nodiscard]] MemoryRegion* FindMrByRkey(uint32_t rkey);
  [[nodiscard]] MemoryRegion* FindMrByLkey(uint32_t lkey);
  [[nodiscard]] QueuePair* FindQp(uint32_t qp_num);

  // Validates a local SGE against the MR table (lkey, bounds, and —
  // when writing into it — kLocalWrite).
  [[nodiscard]] Status ValidateLocal(const Sge& sge, bool will_write);

 private:
  friend class Network;
  friend class ProtectionDomain;
  friend class QueuePair;

  Device(Network& network, sim::Node& node);

  Network& network_;
  sim::Node& node_;
  uint32_t next_key_ = 1;
  // QP numbers are allocated per device (FindQp is per-device, and both
  // CreateQueuePair call sites — client connect, server accept — run on
  // the owning node's partition), so numbering is deterministic under the
  // partitioned scheduler regardless of host-thread interleaving.
  uint32_t next_qp_index_ = 0;

  std::vector<std::unique_ptr<ProtectionDomain>> pds_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::unordered_map<uint32_t, std::unique_ptr<MemoryRegion>> mrs_by_lkey_;
  std::unordered_map<uint32_t, MemoryRegion*> mrs_by_rkey_;
  std::unordered_map<uint32_t, std::unique_ptr<QueuePair>> qps_;
};

// Network: the verbs-visible cluster — one Device per node over one
// Fabric, plus the rdma_cm-style connection establishment service.
class Network {
 public:
  Network(sim::Simulation& sim, sim::NicConfig nic = {},
          sim::CpuCostModel cpu = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // One device per node; idempotent per node.
  Device& AddDevice(sim::Node& node);
  [[nodiscard]] Device& device(uint32_t node_id);

  [[nodiscard]] sim::Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] sim::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const sim::CpuCostModel& cpu_model() const noexcept {
    return cpu_;
  }

  // --- Connection management (rdma_cm flavoured) ---------------------
  // A Listener accepts connections on (node, service_id). Accept blocks
  // the calling (server) thread until a peer connects; the returned QP is
  // in RTS. Connection setup costs ~3 control RTTs plus QP programming
  // time on both ends — deliberately heavyweight, as on real hardware;
  // RStore's control/data separation exists precisely to amortize this.
  class Listener {
   public:
    Result<QueuePair*> Accept(sim::Nanos timeout = sim::kNever);
    [[nodiscard]] size_t backlog() const noexcept { return pending_.size(); }

   private:
    friend class Network;
    Listener(Network& net, Device& dev, uint32_t service_id, QpConfig config,
             CompletionQueue* send_cq, CompletionQueue* recv_cq);
    Network& net_;
    Device& dev_;
    uint32_t service_id_;
    QpConfig config_;
    CompletionQueue* send_cq_;
    CompletionQueue* recv_cq_;
    std::deque<QueuePair*> pending_;
    sim::CondVar ready_;
  };

  // Creates (or returns the existing) listener for (device, service_id).
  Listener& Listen(Device& device, uint32_t service_id, QpConfig config = {},
                   CompletionQueue* send_cq = nullptr,
                   CompletionQueue* recv_cq = nullptr);

  // Client side: blocks until the QP pair is established (or fails when
  // the peer is unreachable / not listening).
  Result<QueuePair*> Connect(Device& device, uint32_t remote_node,
                             uint32_t service_id, QpConfig config = {},
                             CompletionQueue* send_cq = nullptr,
                             CompletionQueue* recv_cq = nullptr);

  // Time to program a QP into RTS on one end (control-path cost).
  [[nodiscard]] sim::Nanos qp_setup_cost() const noexcept {
    return sim::Micros(40);
  }

 private:
  friend class QueuePair;
  friend class ProtectionDomain;
  friend class Device;

  // Wire-op pool (stable storage + freelist); see WireOp. One pool per
  // partition index so concurrent partitions never contend — acquired
  // from the doorbell-ringing partition, released into whichever
  // partition fires the op's last wire event (pool membership does not
  // affect the timeline). Legacy mode uses pool 0 only.
  WireOp* AcquireWireOp();
  void ReleaseWireOp(WireOp* op);
  void PrepareForPartitionedRun();

  sim::Simulation& sim_;
  sim::Fabric fabric_;
  sim::CpuCostModel cpu_;
  std::vector<std::unique_ptr<Device>> devices_;             // by node id
  // Guards the listener map: Listen runs on the server's partition while
  // Connect resolves the key on the *connecting* side's CM message
  // arrival. Listener objects themselves are only touched on their
  // owning node's partition.
  std::mutex listeners_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Listener>> listeners_;
  struct OpPool {
    std::deque<WireOp> arena;
    std::vector<WireOp*> free;
  };
  std::deque<OpPool> op_pools_;
};

}  // namespace rstore::verbs
