// Tests for the comparison baselines: the two-sided RPC store, the
// message-passing BSP engine (validated against the PageRank reference),
// and the disk MapReduce TeraSort (validated for sortedness + multiset).
// Also checks the *architectural* properties the experiments rely on:
// two-sided IO burns server CPU; disk sort is slower than DRAM sort.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "baselines/bsp/msg_bsp.h"
#include "baselines/rpcstore/rpcstore.h"
#include "baselines/terasort/terasort.h"
#include "carafe/graph.h"
#include "common/rng.h"
#include "sim/simulation.h"

namespace rstore::baselines {
namespace {

using sim::Millis;
using sim::Nanos;

// ------------------------------------------------------------- rpcstore --
class RpcStoreFixture : public ::testing::Test {
 protected:
  RpcStoreFixture() : net(sim) {
    server_node = &sim.AddNode("server");
    client_node = &sim.AddNode("client");
    server_dev = &net.AddDevice(*server_node);
    client_dev = &net.AddDevice(*client_node);
    server = std::make_unique<RpcStoreServer>(*server_dev);
    server->Start();
  }

  void RunClient(std::function<void(RpcStoreClient&)> fn) {
    bool finished = false;
    client_node->Spawn("client", [&] {
      auto client = RpcStoreClient::Connect(*client_dev, server_node->id());
      ASSERT_TRUE(client.ok()) << client.status();
      fn(**client);
      finished = true;
      sim.RequestStop();
    });
    sim.Run();
    EXPECT_TRUE(finished);
  }

  sim::Simulation sim;
  verbs::Network net;
  sim::Node* server_node;
  sim::Node* client_node;
  verbs::Device* server_dev;
  verbs::Device* client_dev;
  std::unique_ptr<RpcStoreServer> server;
};

TEST_F(RpcStoreFixture, PutGetRoundTrip) {
  RunClient([&](RpcStoreClient& client) {
    std::vector<std::byte> src(4096), dst(4096);
    Rng rng(1);
    rng.Fill(src.data(), src.size());
    ASSERT_TRUE(client.Put(1000, src).ok());
    ASSERT_TRUE(client.Get(1000, dst).ok());
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  });
}

TEST_F(RpcStoreFixture, OutOfRangeRejected) {
  RunClient([&](RpcStoreClient& client) {
    std::vector<std::byte> buf(128);
    EXPECT_EQ(client.Get(server->capacity() - 64, buf).code(),
              ErrorCode::kOutOfRange);
    EXPECT_EQ(client.Put(server->capacity(), buf).code(),
              ErrorCode::kOutOfRange);
  });
}

TEST_F(RpcStoreFixture, DataPathBurnsServerCpu) {
  RunClient([&](RpcStoreClient& client) {
    std::vector<std::byte> buf(64 << 10);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client.Put(0, buf).ok());
      ASSERT_TRUE(client.Get(0, buf).ok());
    }
  });
  // 40 ops x (handler + marshal + memcpy): the server CPU did real work
  // per byte — the cost one-sided RStore IO avoids (E6).
  const sim::CpuCostModel cpu;
  EXPECT_GT(server->cpu_time(),
            40 * (cpu.rpc_handler_ns + sim::MemcpyCost(cpu, 64 << 10)));
  EXPECT_EQ(server->ops(), 40u);
}

// -------------------------------------------------------------- msg bsp --
class MsgBspFixture : public ::testing::Test {
 protected:
  // Runs message-passing PageRank over `workers` nodes and returns the
  // assembled global rank vector.
  std::vector<double> RunPageRank(const carafe::Graph& graph,
                                  uint32_t workers, uint32_t iterations,
                                  double per_message_ns = 25.0,
                                  Nanos* elapsed = nullptr) {
    sim::Simulation sim;
    verbs::Network net(sim);
    std::vector<sim::Node*> nodes;
    std::vector<uint32_t> node_ids;
    for (uint32_t w = 0; w < workers; ++w) {
      nodes.push_back(&sim.AddNode("w" + std::to_string(w)));
      net.AddDevice(*nodes.back());
      node_ids.push_back(nodes.back()->id());
    }
    std::vector<std::unique_ptr<MsgBspWorker>> bsp(workers);
    std::vector<double> global(graph.num_vertices());
    uint32_t done = 0;
    Nanos t_done = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      MsgBspConfig cfg;
      cfg.worker_id = w;
      cfg.num_workers = workers;
      cfg.worker_nodes = node_ids;
      cfg.per_message_ns = per_message_ns;
      bsp[w] = std::make_unique<MsgBspWorker>(net.device(node_ids[w]), graph,
                                              cfg);
      bsp[w]->StartService();
      nodes[w]->Spawn("pr", [&, w] {
        sim::Sleep(Millis(1));  // let every service start
        auto ranks = bsp[w]->PageRank(iterations);
        ASSERT_TRUE(ranks.ok()) << ranks.status();
        std::copy(ranks->begin(), ranks->end(),
                  global.begin() + static_cast<ptrdiff_t>(bsp[w]->lo()));
        t_done = sim::Now();
        if (++done == workers) sim::CurrentNode().sim().RequestStop();
      });
    }
    sim.Run();
    EXPECT_EQ(done, workers);
    if (elapsed != nullptr) *elapsed = t_done;
    return global;
  }
};

TEST_F(MsgBspFixture, MatchesReferenceSingleWorker) {
  carafe::Graph g = carafe::UniformRandomGraph(512, 6.0, 2);
  auto expected = carafe::ReferencePageRank(g, 8);
  auto got = RunPageRank(g, 1, 8);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-10) << v;
  }
}

TEST_F(MsgBspFixture, MatchesReferenceFourWorkers) {
  carafe::Graph g = carafe::RmatGraph(9, 8.0, 6);
  auto expected = carafe::ReferencePageRank(g, 10);
  auto got = RunPageRank(g, 4, 10);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-10) << v;
  }
}

TEST_F(MsgBspFixture, PerMessageOverheadSlowsItDown) {
  carafe::Graph g = carafe::UniformRandomGraph(1 << 12, 16.0, 3);
  Nanos cheap = 0, pricey = 0;
  RunPageRank(g, 4, 5, /*per_message_ns=*/5.0, &cheap);
  RunPageRank(g, 4, 5, /*per_message_ns=*/200.0, &pricey);
  EXPECT_GT(pricey, cheap + Millis(1));
}

// -------------------------------------------------------------- terasort --
class TeraSortFixture : public ::testing::Test {
 protected:
  // Runs the disk MapReduce sort; returns per-worker outputs and the
  // slowest worker's elapsed time.
  std::vector<std::vector<std::byte>> RunSort(uint32_t workers,
                                              uint64_t records,
                                              Nanos* slowest = nullptr,
                                              uint64_t seed = 21) {
    sim::Simulation sim;
    verbs::Network net(sim);
    std::vector<sim::Node*> nodes;
    std::vector<uint32_t> node_ids;
    for (uint32_t w = 0; w < workers; ++w) {
      nodes.push_back(&sim.AddNode("t" + std::to_string(w)));
      net.AddDevice(*nodes.back());
      node_ids.push_back(nodes.back()->id());
    }
    std::vector<std::unique_ptr<TeraSortWorker>> ts(workers);
    std::vector<std::vector<std::byte>> outputs(workers);
    Nanos worst = 0;
    uint32_t done = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      TeraSortConfig cfg;
      cfg.worker_id = w;
      cfg.num_workers = workers;
      cfg.total_records = records;
      cfg.seed = seed;
      cfg.worker_nodes = node_ids;
      cfg.task_startup = Millis(50);  // scaled down for tests
      ts[w] = std::make_unique<TeraSortWorker>(net.device(node_ids[w]), cfg);
      ts[w]->StartService();
      nodes[w]->Spawn("sort", [&, w] {
        ASSERT_TRUE(ts[w]->GenerateInput().ok());
        sim::Sleep(Millis(1));
        auto stats = ts[w]->Sort();
        ASSERT_TRUE(stats.ok()) << stats.status();
        worst = std::max(worst, stats->total_time);
        outputs[w] = ts[w]->output();
        if (++done == workers) sim::CurrentNode().sim().RequestStop();
      });
    }
    sim.Run();
    EXPECT_EQ(done, workers);
    if (slowest != nullptr) *slowest = worst;
    return outputs;
  }
};

TEST_F(TeraSortFixture, OutputIsGloballySortedAndComplete) {
  constexpr uint64_t kRecords = 20'000;
  auto outputs = RunSort(4, kRecords);
  uint64_t total = 0;
  uint64_t checksum = 0;
  const std::byte* prev_last = nullptr;
  for (const auto& part : outputs) {
    const uint64_t n = part.size() / sort::kRecordBytes;
    EXPECT_TRUE(sort::IsSorted(part.data(), n));
    if (prev_last != nullptr && n > 0) {
      EXPECT_LE(sort::CompareKeys(prev_last, part.data()), 0);
    }
    if (n > 0) {
      prev_last = part.data() + (n - 1) * sort::kRecordBytes;
    }
    total += n;
    checksum += sort::UnorderedChecksum(part.data(), n);
  }
  EXPECT_EQ(total, kRecords);
  std::vector<std::byte> regen(kRecords * sort::kRecordBytes);
  sort::GenerateRecords(21, 0, kRecords, regen.data());
  EXPECT_EQ(checksum, sort::UnorderedChecksum(regen.data(), kRecords));
}

TEST_F(TeraSortFixture, DiskDominatesRuntime) {
  // Structure check for E5: the same sort takes far longer than the pure
  // CPU sort cost, because all bytes cross the disk four times.
  constexpr uint64_t kRecords = 100'000;  // 10 MB
  Nanos elapsed = 0;
  RunSort(2, kRecords, &elapsed);
  const sim::CpuCostModel cpu;
  const Nanos sort_only = sim::SortCost(cpu, kRecords / 2);
  EXPECT_GT(elapsed, 4 * sort_only);
  // Lower bound: 4 disk passes of the per-node share at the configured
  // JBOD read bandwidth (writes are slower, so real time is higher).
  const double per_node_bytes =
      static_cast<double>(kRecords / 2) * sort::kRecordBytes;
  const double min_disk_s = 4 * per_node_bytes * 8 / 2.4e9;
  EXPECT_GT(sim::ToSeconds(elapsed), min_disk_s * 0.8);
}

}  // namespace
}  // namespace rstore::baselines
