// Tests for the client-side region cache: the RegionCache data structure
// (LRU, epochs, write-through), the cached data path in RStoreClient
// (hits, bypass, invalidation on grow/unmap/atomics), equivalence of
// cached and uncached execution (same values, deterministic), and the
// RKV slot cache's validate-on-hit consistency under concurrent writers.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/region_cache.h"
#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "core/cluster.h"
#include "kv/kv.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::RmapOptions;
using core::TestCluster;

// ------------------------------------------------ RegionCache (unit) ----
class RegionCacheTest : public ::testing::Test {
 protected:
  // page = 1 KiB, budget = 4 pages, bypass off: small enough to hit the
  // eviction boundary with a handful of pages.
  cache::RegionCache MakeCache(uint64_t pages = 4, uint64_t page = 1024,
                               uint64_t bypass = 0) {
    return cache::RegionCache(
        cache::CacheConfig{pages * page, page, bypass},
        [this](uint64_t bytes) -> std::byte* {
          arenas_.push_back(std::make_unique<std::byte[]>(bytes));
          return arenas_.back().get();
        });
  }

  // Fills and installs one page of `value` bytes.
  static cache::RegionCache::Frame* Put(cache::RegionCache& c, uint64_t region,
                                        uint64_t page, uint64_t epoch,
                                        std::byte value, uint32_t valid) {
    cache::RegionCache::Frame* f = c.Acquire();
    if (f == nullptr) return nullptr;
    std::memset(f->data, static_cast<int>(value), valid);
    c.Install(f, region, page, epoch, valid);
    return f;
  }

  std::vector<std::unique_ptr<std::byte[]>> arenas_;
};

TEST_F(RegionCacheTest, FindMissesUntilInstalled) {
  auto c = MakeCache();
  EXPECT_EQ(c.Find(1, 0, 0), nullptr);
  ASSERT_NE(Put(c, 1, 0, 0, std::byte{0xAB}, 1024), nullptr);
  cache::RegionCache::Frame* f = c.Find(1, 0, 0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->data[0], std::byte{0xAB});
  EXPECT_EQ(f->valid_bytes, 1024u);
  // Different page, region, or epoch: all misses.
  EXPECT_EQ(c.Find(1, 1, 0), nullptr);
  EXPECT_EQ(c.Find(2, 0, 0), nullptr);
  EXPECT_EQ(c.Find(1, 0, 1), nullptr);
}

TEST_F(RegionCacheTest, LruEvictsColdestAtBudgetBoundary) {
  auto c = MakeCache(/*pages=*/4);
  for (uint64_t p = 0; p < 4; ++p) {
    ASSERT_NE(Put(c, 1, p, 0, std::byte{1}, 1024), nullptr);
  }
  EXPECT_EQ(c.stats().evictions, 0u);
  EXPECT_EQ(c.resident_frames(), 4u);
  // Touch pages 1..3 so page 0 is coldest, then insert a fifth page.
  for (uint64_t p = 1; p < 4; ++p) EXPECT_NE(c.Find(1, p, 0), nullptr);
  ASSERT_NE(Put(c, 1, 4, 0, std::byte{2}, 1024), nullptr);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.resident_frames(), 4u);   // still exactly at budget
  EXPECT_EQ(c.Find(1, 0, 0), nullptr);  // the coldest page went
  for (uint64_t p = 1; p <= 4; ++p) EXPECT_NE(c.Find(1, p, 0), nullptr);
}

TEST_F(RegionCacheTest, ApplyWriteUpdatesCurrentEpochInPlace) {
  auto c = MakeCache();
  ASSERT_NE(Put(c, 1, 0, 5, std::byte{0}, 1024), nullptr);
  std::vector<std::byte> src(16, std::byte{0x7F});
  EXPECT_EQ(c.ApplyWrite(1, 5, 100, src), 16u);
  cache::RegionCache::Frame* f = c.Find(1, 0, 5);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->data[100], std::byte{0x7F});
  EXPECT_EQ(f->data[99], std::byte{0});
}

TEST_F(RegionCacheTest, ApplyWriteDropsStalePartialAndRestampsFullCover) {
  auto c = MakeCache();
  ASSERT_NE(Put(c, 1, 0, 5, std::byte{1}, 1024), nullptr);
  ASSERT_NE(Put(c, 1, 1, 5, std::byte{1}, 1024), nullptr);
  // Epoch moved to 6. Partial write to page 0: untrusted leftover bytes,
  // so the frame must go. Full-page write to page 1: re-stamped fresh.
  std::vector<std::byte> small(8, std::byte{2});
  EXPECT_EQ(c.ApplyWrite(1, 6, 0, small), 0u);
  EXPECT_EQ(c.Find(1, 0, 6), nullptr);
  std::vector<std::byte> full(1024, std::byte{3});
  EXPECT_EQ(c.ApplyWrite(1, 6, 1024, full), 1024u);
  cache::RegionCache::Frame* f = c.Find(1, 1, 6);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->data[0], std::byte{3});
}

TEST_F(RegionCacheTest, ApplyWriteAllocatesFullPagesOnlyFromFreeFrames) {
  auto c = MakeCache(/*pages=*/2);
  std::vector<std::byte> full(1024, std::byte{9});
  // The write path never allocates arenas: with no frame ever created, a
  // full-page write caches nothing.
  EXPECT_EQ(c.ApplyWrite(7, 0, 0, full), 0u);
  EXPECT_EQ(c.Find(7, 0, 0), nullptr);
  // Seed the free list (as an abandoned fill would), then the same write
  // populates a frame.
  cache::RegionCache::Frame* seed = c.Acquire();
  ASSERT_NE(seed, nullptr);
  c.Abandon(seed);
  EXPECT_EQ(c.ApplyWrite(7, 0, 0, full), 1024u);
  EXPECT_NE(c.Find(7, 0, 0), nullptr);
  // Exhaust the budget; with no free frame left, write-allocate must not
  // evict for a pure write stream.
  ASSERT_NE(Put(c, 7, 1, 0, std::byte{1}, 1024), nullptr);
  EXPECT_EQ(c.ApplyWrite(7, 0, 2048, full), 0u);
  EXPECT_EQ(c.Find(7, 2, 0), nullptr);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST_F(RegionCacheTest, DropRegionAndDropPage) {
  auto c = MakeCache();
  ASSERT_NE(Put(c, 1, 0, 0, std::byte{1}, 1024), nullptr);
  ASSERT_NE(Put(c, 1, 1, 0, std::byte{1}, 1024), nullptr);
  ASSERT_NE(Put(c, 2, 0, 0, std::byte{1}, 1024), nullptr);
  c.DropPage(1, 0);
  EXPECT_EQ(c.Find(1, 0, 0), nullptr);
  EXPECT_NE(c.Find(1, 1, 0), nullptr);
  c.DropRegion(1);
  EXPECT_EQ(c.Find(1, 1, 0), nullptr);
  EXPECT_NE(c.Find(2, 0, 0), nullptr);
  EXPECT_EQ(c.stats().invalidations, 2u);  // (1,0) then (1,1); (2,0) stays
}

// ------------------------------------------- cached data path (e2e) ----
ClusterConfig SmallCluster(uint32_t clients = 1) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = clients;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

std::vector<std::byte> Pattern(size_t n, uint32_t seed) {
  std::vector<std::byte> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  }
  return v;
}

// Writes `data` to the region through a pinned staging buffer (the data
// path requires registered memory on both ends).
void WriteAll(RStoreClient& client, core::MappedRegion* region,
              uint64_t offset, const std::vector<std::byte>& data) {
  auto buf = client.AllocBuffer(data.size());
  ASSERT_TRUE(buf.ok()) << buf.status();
  std::memcpy(buf->begin(), data.data(), data.size());
  ASSERT_TRUE(region->Write(offset, buf->data).ok());
}

TEST(CachedReadTest, SecondReadHitsAndMovesNoRemoteBytes) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    constexpr uint64_t kSize = 64ULL << 10;  // exactly one cache page
    ASSERT_TRUE(client.Ralloc("r", kSize).ok());
    auto data = Pattern(kSize, 3);
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());

    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("r", opts);
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->cache_mode(), cache::CacheMode::kImmutable);
    WriteAll(client, *region, 0, data);

    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), data.data(), kSize), 0);
    const uint64_t remote_after_fill = client.bytes_read();
    EXPECT_GT(client.cache_stats().fills, 0u);

    std::memset(buf->begin(), 0, kSize);
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), data.data(), kSize), 0);
    EXPECT_EQ(client.bytes_read(), remote_after_fill);  // served locally
    EXPECT_GT(client.cache_stats().hits, 0u);
    EXPECT_EQ(client.cache_stats().bytes_from_cache, kSize);
  });
}

TEST(CachedReadTest, LongRunsBypassTheCache) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    constexpr uint64_t kSize = 1ULL << 20;  // >> bypass threshold
    ASSERT_TRUE(client.Ralloc("big", kSize).ok());
    auto data = Pattern(kSize, 9);
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());

    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("big", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, data);

    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), data.data(), kSize), 0);
    EXPECT_GT(client.cache_stats().bypass_reads, 0u);
    EXPECT_EQ(client.cache_stats().bytes_filled, 0u);

    // A short read still fills and then hits.
    ASSERT_TRUE((*region)->Read(0, std::span(buf->begin(), 4096)).ok());
    EXPECT_GT(client.cache_stats().fills, 0u);
    const uint64_t remote = client.bytes_read();
    ASSERT_TRUE((*region)->Read(0, std::span(buf->begin(), 4096)).ok());
    EXPECT_EQ(client.bytes_read(), remote);
    EXPECT_EQ(std::memcmp(buf->begin(), data.data(), 4096), 0);
  });
}

TEST(CachedReadTest, WriteThroughKeepsCacheAndRemoteAligned) {
  TestCluster cluster(SmallCluster(2));
  // Client 0 writes through its cache; client 1 reads uncached and must
  // see every byte, proving the write really reached the servers.
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    constexpr uint64_t kSize = 64ULL << 10;
    ASSERT_TRUE(client.Ralloc("wt", kSize).ok());
    auto v1 = Pattern(kSize, 1);
    auto v2 = Pattern(kSize, 2);
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());
    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("wt", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, v1);
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    // Overwrite through the cache, then read: the hit must return the
    // new bytes (local update), without refetching.
    const uint64_t remote = client.bytes_read();
    WriteAll(client, *region, 0, v2);
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(client.bytes_read(), remote);
    EXPECT_EQ(std::memcmp(buf->begin(), v2.data(), kSize), 0);
    ASSERT_TRUE(client.NotifyInc("written").ok());
    ASSERT_TRUE(client.WaitNotify("checked", 1).ok());
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("written", 1).ok());
    constexpr uint64_t kSize = 64ULL << 10;
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());
    auto region = client.Rmap("wt");  // uncached
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    auto v2 = Pattern(kSize, 2);
    EXPECT_EQ(std::memcmp(buf->begin(), v2.data(), kSize), 0);
    ASSERT_TRUE(client.NotifyInc("checked").ok());
  });
  cluster.sim().Run();
}

TEST(CachedReadTest, EpochBumpObservesConcurrentWriterUpdate) {
  TestCluster cluster(SmallCluster(2));
  // Client 0 caches under kEpoch; client 1 writes remotely between
  // epochs. Before the bump client 0 may serve the old epoch's bytes;
  // after the bump it must observe client 1's update.
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    constexpr uint64_t kSize = 64ULL << 10;
    ASSERT_TRUE(client.Ralloc("ep", kSize).ok());
    auto v1 = Pattern(kSize, 1);
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());
    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kEpoch;
    auto region = client.Rmap("ep", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, v1);
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    ASSERT_TRUE(client.NotifyInc("v1-cached").ok());
    ASSERT_TRUE(client.WaitNotify("v2-written", 1).ok());
    // Same epoch: the stale-but-allowed cached copy.
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), v1.data(), kSize), 0);
    // New epoch: every cached page of the region is a miss.
    (*region)->BumpEpoch();
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    auto v2 = Pattern(kSize, 2);
    EXPECT_EQ(std::memcmp(buf->begin(), v2.data(), kSize), 0);
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("v1-cached", 1).ok());
    constexpr uint64_t kSize = 64ULL << 10;
    auto region = client.Rmap("ep");
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, Pattern(kSize, 2));
    ASSERT_TRUE(client.NotifyInc("v2-written").ok());
  });
  cluster.sim().Run();
}

TEST(CachedReadTest, RgrowAfterCachedReadInvalidatesAndServesNewTail) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    // 96 KiB: page 0 full, page 1 holds only 32 KiB — the shape where a
    // stale tail frame after growth would serve short or garbage bytes.
    constexpr uint64_t kOld = 96ULL << 10;
    constexpr uint64_t kNew = 128ULL << 10;
    ASSERT_TRUE(client.Ralloc("g", kOld).ok());
    auto v1 = Pattern(kOld, 4);
    auto buf = client.AllocBuffer(kNew);
    ASSERT_TRUE(buf.ok());
    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("g", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, v1);
    ASSERT_TRUE((*region)->Read(0, std::span(buf->begin(), kOld)).ok());
    ASSERT_GT(client.cache_stats().fills, 0u);

    ASSERT_TRUE(client.Rgrow("g", kNew).ok());
    EXPECT_EQ((*region)->size(), kNew);
    EXPECT_GT(client.cache_stats().invalidations, 0u);
    // Fill the grown tail, then read across the old/new boundary.
    auto tail = Pattern(kNew - kOld, 5);
    WriteAll(client, *region, kOld, tail);
    std::memset(buf->begin(), 0, kNew);
    ASSERT_TRUE((*region)->Read(0, std::span(buf->begin(), kNew)).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), v1.data(), kOld), 0);
    EXPECT_EQ(std::memcmp(buf->begin() + kOld, tail.data(), tail.size()), 0);
  });
}

TEST(CachedReadTest, RunmapAndModeChangeDropCacheState) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    constexpr uint64_t kSize = 64ULL << 10;
    ASSERT_TRUE(client.Ralloc("u", kSize).ok());
    auto data = Pattern(kSize, 6);
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());
    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("u", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, data);
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    const uint64_t invalidations = client.cache_stats().invalidations;

    ASSERT_TRUE(client.Runmap("u").ok());
    EXPECT_GT(client.cache_stats().invalidations, invalidations);

    // Remap uncached: reads bypass the cache entirely and still see the
    // data; the stats stay flat.
    auto plain = client.Rmap("u");
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ((*plain)->cache_mode(), cache::CacheMode::kNone);
    const uint64_t hits = client.cache_stats().hits;
    const uint64_t fills = client.cache_stats().fills;
    ASSERT_TRUE((*plain)->Read(0, buf->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), data.data(), kSize), 0);
    EXPECT_EQ(client.cache_stats().hits, hits);
    EXPECT_EQ(client.cache_stats().fills, fills);

    // Remapping with a mode applies it to the existing mapping.
    auto back = client.Rmap("u", opts);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, *plain);
    EXPECT_EQ((*plain)->cache_mode(), cache::CacheMode::kImmutable);
  });
}

TEST(CachedReadTest, AtomicsDropTheAffectedPage) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    constexpr uint64_t kSize = 64ULL << 10;
    ASSERT_TRUE(client.Ralloc("a", kSize).ok());
    auto buf = client.AllocBuffer(kSize);
    ASSERT_TRUE(buf.ok());
    RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("a", opts);
    ASSERT_TRUE(region.ok());
    WriteAll(client, *region, 0, std::vector<std::byte>(kSize));
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    auto old = (*region)->FetchAdd(8, 41);
    ASSERT_TRUE(old.ok());
    EXPECT_EQ(*old, 0u);
    // The cached page must not serve the pre-atomic bytes.
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    uint64_t counter = 0;
    std::memcpy(&counter, buf->begin() + 8, 8);
    EXPECT_EQ(counter, 41u);
  });
}

// ------------------------------- cached vs uncached: same results ------
std::vector<double> RunPageRank(bool cached) {
  constexpr uint32_t kWorkers = 4;
  carafe::Graph g = carafe::UniformRandomGraph(1 << 10, 8.0, 4);
  TestCluster cluster(SmallCluster(kWorkers));
  std::vector<double> result;
  uint64_t cache_activity = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(carafe::UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      carafe::WorkerConfig wc{w, kWorkers, "pr"};
      wc.cache = cached;
      carafe::Worker worker(client, "g", wc);
      ASSERT_TRUE(worker.Init().ok());
      auto ranks = worker.PageRank({.iterations = 8});
      ASSERT_TRUE(ranks.ok()) << ranks.status();
      if (w == 0) result = std::move(*ranks);
      const auto& cs = client.cache_stats();
      cache_activity += cs.fills + cs.hits + cs.bypass_reads;
    });
  }
  cluster.sim().Run();
  // The cache must actually engage when asked for — and stay fully inert
  // when not.
  if (cached) {
    EXPECT_GT(cache_activity, 0u);
  } else {
    EXPECT_EQ(cache_activity, 0u);
  }
  return result;
}

TEST(CacheEquivalenceTest, PageRankIdenticalWithCacheOnAndOff) {
  std::vector<double> off = RunPageRank(false);
  std::vector<double> on = RunPageRank(true);
  ASSERT_EQ(off.size(), on.size());
  ASSERT_FALSE(off.empty());
  // Bit-identical, not merely close: cached reads return copies of the
  // same bytes the uncached path would have fetched.
  for (size_t v = 0; v < off.size(); ++v) {
    EXPECT_EQ(off[v], on[v]) << "vertex " << v;
  }
}

// ----------------------------------------------------- RKV slot cache --
std::string Str(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(KvSlotCacheTest, HotGetHitsAndPutRefreshesTheEntry) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    kv::KvOptions opts;
    opts.cache_slots = 64;
    auto kv = kv::KvStore::Create(client, "t", opts);
    ASSERT_TRUE(kv.ok()) << kv.status();
    ASSERT_TRUE((*kv)->Put("k", "v1").ok());
    EXPECT_EQ(Str(*(*kv)->Get("k")), "v1");
    const uint64_t remote = client.bytes_read();
    EXPECT_EQ(Str(*(*kv)->Get("k")), "v1");
    EXPECT_GT((*kv)->stats().cache_hits, 0u);
    // The hit moved only the 8-byte validate word remotely.
    EXPECT_EQ(client.bytes_read(), remote + 8);
    ASSERT_TRUE((*kv)->Put("k", "v2").ok());
    EXPECT_EQ(Str(*(*kv)->Get("k")), "v2");
    ASSERT_TRUE((*kv)->Delete("k").ok());
    EXPECT_GT((*kv)->stats().cache_invalidations, 0u);
    EXPECT_EQ((*kv)->Get("k").code(), ErrorCode::kNotFound);
  });
}

TEST(KvSlotCacheTest, ValidateOnHitObservesRemoteWriters) {
  TestCluster cluster(SmallCluster(2));
  // Client 0 caches the slot, client 1 overwrites the key remotely; the
  // next cached GET must fail validation and return the new value.
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    kv::KvOptions opts;
    opts.cache_slots = 16;
    auto kv = kv::KvStore::Create(client, "shared", opts);
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("hot", "mine").ok());
    EXPECT_EQ(Str(*(*kv)->Get("hot")), "mine");
    ASSERT_TRUE(client.NotifyInc("cached").ok());
    ASSERT_TRUE(client.WaitNotify("overwritten", 1).ok());
    EXPECT_EQ(Str(*(*kv)->Get("hot")), "theirs");
    EXPECT_GT((*kv)->stats().cache_misses, 0u);
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("cached", 1).ok());
    auto kv = kv::KvStore::Open(client, "shared");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("hot", "theirs").ok());
    ASSERT_TRUE(client.NotifyInc("overwritten").ok());
  });
  cluster.sim().Run();
}

TEST(KvSlotCacheTest, ConcurrentWritersNeverYieldTornCachedReads) {
  constexpr uint32_t kClients = 3;
  TestCluster cluster(SmallCluster(kClients));
  int done = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      Result<std::unique_ptr<kv::KvStore>> kv(ErrorCode::kInternal, "");
      if (c == 0) {
        kv::KvOptions opts;
        opts.cache_slots = 32;
        kv = kv::KvStore::Create(client, "torn", opts);
        ASSERT_TRUE(client.NotifyInc("ready").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
        kv = kv::KvStore::Open(client, "torn", /*cache_slots=*/32);
      }
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < 20; ++i) {
        Status st = (*kv)->Put(
            "hot", "from-" + std::to_string(c) + "-" + std::to_string(i));
        if (!st.ok()) {
          ASSERT_EQ(st.code(), ErrorCode::kAborted) << st;
          --i;
          continue;
        }
        auto got = (*kv)->Get("hot");
        ASSERT_TRUE(got.ok()) << got.status();
        // Linearizability of the cached GET path: any read must return a
        // complete written value, never a torn or stale-version mix.
        EXPECT_EQ(Str(*got).rfind("from-", 0), 0u) << Str(*got);
      }
      ++done;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(done, static_cast<int>(kClients));
}

}  // namespace
}  // namespace rstore
